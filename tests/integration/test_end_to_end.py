"""End-to-end integration tests across all samplers and configurations.

These tests exercise the whole stack — stream generation, per-PE key
generation and jump kernels, local reservoirs, distributed selection,
threshold establishment and pruning, cost accounting — and check the
global invariants that Algorithm 1 guarantees after every round.
"""

import numpy as np
import pytest

from repro.core import make_distributed_sampler
from repro.network import SimComm
from repro.runtime import MachineSpec
from repro.selection import MultiPivotSelection
from repro.stream import (
    BatchSizeSchedule,
    MiniBatchStream,
    NormalDriftWeightGenerator,
    RecordingStream,
    ZipfWeightGenerator,
)

ALGORITHMS = ["ours", "ours-8", "gather", "ours-variable"]


def check_sample_validity(sampler, recorded, k, algorithm):
    """Common invariant checks after a run."""
    all_items = recorded.all_items()
    n = len(all_items)
    ids = sampler.sample_ids()
    # no duplicates, only ids that actually appeared in the stream
    assert len(set(ids.tolist())) == len(ids)
    assert set(ids.tolist()) <= set(all_items.ids.tolist())
    if algorithm == "ours-variable":
        assert min(k, n) <= len(ids) <= sampler.k_hi
    else:
        assert len(ids) == min(k, n)


class TestAllAlgorithmsOnVariousStreams:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("p", [1, 3, 8])
    def test_uniform_weights_stream(self, algorithm, p):
        k = 17
        comm = SimComm(p)
        sampler = make_distributed_sampler(algorithm, k, comm, seed=5)
        stream = RecordingStream(MiniBatchStream(p, 23, seed=6))
        for _ in range(5):
            sampler.process_round(stream.next_round().batches)
        check_sample_validity(sampler, stream, k, algorithm)

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_skewed_drifting_weights(self, algorithm):
        # the paper's preliminary skewed input: drifting normal weights
        p, k = 4, 12
        sampler = make_distributed_sampler(algorithm, k, SimComm(p), seed=7)
        stream = RecordingStream(
            MiniBatchStream(p, 30, weights=NormalDriftWeightGenerator(round_drift=5.0, pe_drift=2.0), seed=8)
        )
        for _ in range(4):
            sampler.process_round(stream.next_round().batches)
        check_sample_validity(sampler, stream, k, algorithm)

    @pytest.mark.parametrize("algorithm", ["ours", "gather"])
    def test_heavy_tailed_weights(self, algorithm):
        p, k = 4, 10
        sampler = make_distributed_sampler(algorithm, k, SimComm(p), seed=9)
        stream = RecordingStream(MiniBatchStream(p, 40, weights=ZipfWeightGenerator(1.5), seed=10))
        for _ in range(4):
            sampler.process_round(stream.next_round().batches)
        check_sample_validity(sampler, stream, k, algorithm)

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_variable_batch_sizes_across_pes_and_rounds(self, algorithm):
        p, k = 5, 15
        sampler = make_distributed_sampler(algorithm, k, SimComm(p), seed=11)
        schedule = BatchSizeSchedule([5, 0, 40, 12, 3], jitter=2)
        stream = RecordingStream(MiniBatchStream(p, schedule, seed=12))
        for _ in range(6):
            sampler.process_round(stream.next_round().batches)
        check_sample_validity(sampler, stream, k, algorithm)

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_uniform_sampling_mode(self, algorithm):
        p, k = 4, 9
        sampler = make_distributed_sampler(algorithm, k, SimComm(p), weighted=False, seed=13)
        stream = RecordingStream(MiniBatchStream(p, 25, seed=14))
        for _ in range(4):
            sampler.process_round(stream.next_round().batches)
        check_sample_validity(sampler, stream, k, algorithm)


class TestThresholdSemantics:
    def test_ours_sample_equals_keys_below_threshold(self):
        p, k = 4, 20
        sampler = make_distributed_sampler("ours", k, SimComm(p), seed=15)
        stream = MiniBatchStream(p, 50, seed=16)
        for _ in range(5):
            sampler.process_round(stream.next_round().batches)
        threshold = sampler.threshold
        keys = np.concatenate([r.keys_array() for r in sampler.reservoirs])
        assert len(keys) == k
        assert np.all(keys <= threshold + 1e-15)

    def test_gather_and_ours_thresholds_are_comparable(self):
        # both algorithms estimate the k-th smallest key of the same key
        # distribution, so after the same number of items their thresholds
        # must be of the same order of magnitude
        p, k, rounds, batch = 4, 50, 6, 100
        ours = make_distributed_sampler("ours", k, SimComm(p), seed=17)
        gather = make_distributed_sampler("gather", k, SimComm(p), seed=18)
        stream_a = MiniBatchStream(p, batch, seed=19)
        stream_b = MiniBatchStream(p, batch, seed=19)
        for _ in range(rounds):
            ours.process_round(stream_a.next_round().batches)
            gather.process_round(stream_b.next_round().batches)
        ratio = ours.threshold / gather.threshold
        assert 0.2 < ratio < 5.0


class TestCostAccountingIntegration:
    def test_communication_volume_scales_with_p(self):
        def total_comm_time(p):
            machine = MachineSpec.forhlr_like()
            comm = SimComm(p, cost=machine.comm)
            sampler = make_distributed_sampler("ours", 20, comm, machine=machine, seed=20)
            stream = MiniBatchStream(p, 50, seed=21)
            for _ in range(3):
                sampler.process_round(stream.next_round().batches)
            return comm.ledger.total_time

        assert total_comm_time(16) > total_comm_time(2)
        assert total_comm_time(1) == 0.0

    def test_gather_moves_more_volume_than_ours_for_large_k(self):
        p, k, batch, rounds = 8, 200, 100, 4
        machine = MachineSpec.forhlr_like()
        ours_comm = SimComm(p, cost=machine.comm)
        gather_comm = SimComm(p, cost=machine.comm)
        ours = make_distributed_sampler("ours", k, ours_comm, machine=machine, seed=22)
        gather = make_distributed_sampler("gather", k, gather_comm, machine=machine, seed=22)
        stream_a = MiniBatchStream(p, batch, seed=23)
        stream_b = MiniBatchStream(p, batch, seed=23)
        for _ in range(rounds):
            ours.process_round(stream_a.next_round().batches)
            gather.process_round(stream_b.next_round().batches)
        # the centralized algorithm ships candidate items (2 words each),
        # our algorithm only ships counts and pivots
        assert gather_comm.ledger.total_words > ours_comm.ledger.total_words

    def test_multi_pivot_uses_fewer_selection_rounds_than_single(self):
        p, k, batch, rounds = 8, 300, 200, 5
        single = make_distributed_sampler("ours", k, SimComm(p), seed=24)
        multi = make_distributed_sampler("ours-8", k, SimComm(p), seed=24)
        stream_a = MiniBatchStream(p, batch, seed=25)
        stream_b = MiniBatchStream(p, batch, seed=25)
        single_depth = multi_depth = 0
        for _ in range(rounds):
            m1 = single.process_round(stream_a.next_round().batches)
            m2 = multi.process_round(stream_b.next_round().batches)
            if m1.selection_ran:
                single_depth += m1.selection_stats.recursion_depth
            if m2.selection_ran:
                multi_depth += m2.selection_stats.recursion_depth
        assert multi_depth < single_depth


class TestLongRunStability:
    def test_many_rounds_keep_invariants(self):
        p, k = 4, 25
        sampler = make_distributed_sampler("ours", k, SimComm(p), seed=26)
        stream = RecordingStream(MiniBatchStream(p, 30, seed=27))
        thresholds = []
        for _ in range(25):
            sampler.process_round(stream.next_round().batches)
            if sampler.threshold is not None:
                thresholds.append(sampler.threshold)
            assert sampler.sample_size() == min(k, stream.items_emitted)
        # threshold is non-increasing over the whole run
        assert all(a >= b - 1e-18 for a, b in zip(thresholds, thresholds[1:]))
        check_sample_validity(sampler, stream, k, "ours")

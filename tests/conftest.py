"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.network import SimComm
from repro.network.cost_model import CostParameters


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministically seeded generator, fresh per test."""
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture
def fast_cost() -> CostParameters:
    """Cost parameters with easy-to-check round numbers."""
    return CostParameters(alpha=1.0, beta=0.001)


def make_comm(p: int, **kwargs) -> SimComm:
    """Convenience constructor used across test modules."""
    return SimComm(p, **kwargs)

"""Adaptive mini-batch sizing: the MIMD controller and its driver wiring."""

import numpy as np
import pytest

from repro.pipeline import BatchSizeAutotuner, PipelinedSamplingRun
from repro.runtime import ParallelStreamingRun
from repro.stream.shard import StreamShardSpec, WorkerStreamShard


class TestBatchSizeAutotuner:
    def test_grows_when_rounds_are_fast(self):
        tuner = BatchSizeAutotuner(1024, target_round_time=0.1)
        assert tuner.update(0.01) == 2048
        assert tuner.update(0.01) == 4096
        assert tuner.adjustments == 2

    def test_shrinks_when_rounds_are_slow(self):
        tuner = BatchSizeAutotuner(4096, target_round_time=0.1)
        assert tuner.update(1.0) == 2048
        assert tuner.update(1.0) == 1024

    def test_dead_band_leaves_size_alone(self):
        tuner = BatchSizeAutotuner(4096, target_round_time=0.1, band=0.3)
        assert tuner.update(0.1) is None
        assert tuner.update(0.08) is None
        assert tuner.update(0.125) is None
        assert tuner.size == 4096
        assert tuner.adjustments == 0

    def test_clamped_at_bounds(self):
        tuner = BatchSizeAutotuner(512, target_round_time=0.1, min_size=256, max_size=1024)
        assert tuner.update(1.0) == 256
        assert tuner.update(1.0) is None  # already at min_size
        assert tuner.size == 256
        tuner2 = BatchSizeAutotuner(512, target_round_time=0.1, min_size=256, max_size=1024)
        assert tuner2.update(0.001) == 1024
        assert tuner2.update(0.001) is None

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            BatchSizeAutotuner(0)
        with pytest.raises(ValueError):
            BatchSizeAutotuner(10, band=1.5)
        with pytest.raises(ValueError):
            BatchSizeAutotuner(10, grow=0.5)
        with pytest.raises(ValueError):
            BatchSizeAutotuner(10, min_size=100, max_size=50)


class TestVariableShards:
    def test_fixed_shard_rejects_resize(self):
        shard = WorkerStreamShard(StreamShardSpec(p=2, pe=0, batch_size=100))
        with pytest.raises(ValueError, match="variable=True"):
            shard.set_batch_size(200)

    def test_variable_shard_ids_stay_globally_unique_across_resizes(self):
        shards = [
            WorkerStreamShard(StreamShardSpec(p=2, pe=pe, batch_size=10, variable=True))
            for pe in range(2)
        ]
        seen = set()
        for size in (10, 25, 7, 40):
            for shard in shards:
                shard.set_batch_size(size)
                batch = shard.next_batch()
                assert len(batch) == size
                ids = set(batch.ids.tolist())
                assert not (ids & seen), "variable shards produced duplicate ids"
                seen |= ids

    def test_round_index_counts_delivered_rounds_only(self):
        shard = WorkerStreamShard(StreamShardSpec(p=1, pe=0, batch_size=8))
        assert shard.round_index == 0
        shard.prefetch()
        assert shard.round_index == 0  # generated ahead, but not delivered yet
        shard.next_batch()
        assert shard.round_index == 1

    def test_prefetch_is_transparent(self):
        """A prefetched batch is the exact batch next_batch would produce."""
        spec = StreamShardSpec(p=2, pe=1, batch_size=64, seed=5)
        plain = WorkerStreamShard(spec)
        prefetched = WorkerStreamShard(spec)
        for round_index in range(4):
            if round_index % 2 == 0:
                assert prefetched.prefetch() == 64
                prefetched.prefetch()  # idempotent until consumed
            a = plain.next_batch()
            b = prefetched.next_batch()
            np.testing.assert_array_equal(a.ids, b.ids)
            np.testing.assert_array_equal(a.weights, b.weights)

    def test_stamped_shard_stamps_equal_arrival_indices(self):
        from repro.stream import TimestampedMiniBatchStream

        stream = TimestampedMiniBatchStream(2, 32, seed=9)
        shards = [
            WorkerStreamShard(StreamShardSpec(p=2, pe=pe, batch_size=32, seed=9, stamped=True))
            for pe in range(2)
        ]
        for _ in range(3):
            round_batches = stream.next_round().batches
            for pe, shard in enumerate(shards):
                batch = shard.next_batch()
                np.testing.assert_array_equal(batch.ids, round_batches[pe].ids)
                np.testing.assert_array_equal(batch.stamps, round_batches[pe].stamps)
                np.testing.assert_array_equal(batch.weights, round_batches[pe].weights)


class TestAutoBatchDrivers:
    def test_pipelined_run_auto_resizes(self):
        with PipelinedSamplingRun(
            "ours", k=20, p=2, comm="sim", pipeline="relaxed",
            batch_size="auto", warmup_rounds=0, seed=3,
            target_round_time=1e-4,  # far below any real round: forces shrinks
        ) as run:
            run.run_rounds(6)
            assert run.autotuner is not None
            assert run.autotuner.adjustments > 0
            assert run.batch_size == run.autotuner.size

    def test_parallel_run_auto_resizes(self):
        with ParallelStreamingRun(
            "ours", k=20, p=2, comm="sim", batch_size="auto",
            warmup_rounds=0, seed=3, target_round_time=1e9,  # forces growth
        ) as run:
            metrics = run.run_rounds(4)
            assert run.batch_size > 4096
        assert metrics.total_items > 0

    def test_auto_sample_is_still_exact_size_k(self):
        with PipelinedSamplingRun(
            "ours", k=25, p=2, comm="sim", pipeline="relaxed",
            batch_size="auto", warmup_rounds=1, seed=8, target_round_time=1e-4,
        ) as run:
            run.run_rounds(6)
            assert len(run.sample_ids()) == 25

    def test_rejects_unknown_batch_size_string(self):
        with pytest.raises(ValueError, match="auto"):
            PipelinedSamplingRun("ours", k=5, p=2, comm="sim", batch_size="huge")
        with pytest.raises(ValueError, match="auto"):
            ParallelStreamingRun("ours", k=5, p=2, comm="sim", batch_size="huge")

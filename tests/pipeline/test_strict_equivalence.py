"""Strict pipeline mode must be byte-identical to the lock-step drivers.

The acceptance gate of the asynchronous ingestion pipeline: for the same
seed, ``pipeline="strict"`` produces exactly the sample the synchronous
:class:`~repro.runtime.ParallelStreamingRun` produces — ids *and* keys,
on the simulated and the real multiprocess backend.  Strict mode only
moves *when* the shard batches are materialised (into a worker background
thread, overlapping the selection); every RNG stream is consumed in the
lock-step order, so nothing about the sample may change.
"""

import numpy as np
import pytest

from repro.core import DistributedSamplingRun
from repro.pipeline import PipelinedSamplingRun
from repro.runtime import ParallelStreamingRun

ROUNDS = 5
SEED = 13


def _lockstep_run(algorithm, comm, **kwargs):
    with ParallelStreamingRun(algorithm, comm=comm, **kwargs) as run:
        run.run_rounds(ROUNDS)
        ids = np.sort(run.sample_ids())
        threshold = run.sampler.threshold
    return ids, threshold


def _pipelined_run(algorithm, comm, mode, **kwargs):
    with PipelinedSamplingRun(algorithm, comm=comm, pipeline=mode, **kwargs) as run:
        metrics = run.run_rounds(ROUNDS)
        ids = np.sort(run.sample_ids())
        threshold = run.sampler.threshold
    return ids, threshold, metrics


@pytest.mark.parametrize("algorithm,k", [("ours", 40), ("ours-8", 40), ("ours-variable", 25)])
def test_strict_matches_lockstep_on_sim(algorithm, k):
    kwargs = dict(k=k, p=2, batch_size=250, warmup_rounds=1, seed=SEED)
    ref_ids, ref_threshold = _lockstep_run(algorithm, "sim", **kwargs)
    ids, threshold, metrics = _pipelined_run(algorithm, "sim", "strict", **kwargs)
    np.testing.assert_array_equal(ref_ids, ids)
    assert threshold == ref_threshold
    # the pipeline actually engaged: prepare time was recorded and (partly) hidden
    assert metrics.phase_times().get("prepare") is not None
    assert metrics.total_overlap_saved >= 0.0


def test_strict_matches_lockstep_on_process_backend():
    kwargs = dict(k=40, p=2, batch_size=250, warmup_rounds=1, seed=SEED)
    ref_ids, ref_threshold = _lockstep_run("ours", "sim", **kwargs)
    ids, threshold, metrics = _pipelined_run("ours", "process", "strict", **kwargs)
    np.testing.assert_array_equal(ref_ids, ids)
    assert threshold == ref_threshold
    assert metrics.comm_backend == "process"
    assert metrics.wall_time > 0.0


@pytest.mark.parametrize("p", [3, 4])
def test_strict_equivalence_at_higher_pe_counts(p):
    kwargs = dict(k=50, p=p, batch_size=200, warmup_rounds=1, seed=SEED + 1)
    ref_ids, _ = _lockstep_run("ours", "sim", **kwargs)
    ids, _, _ = _pipelined_run("ours", "sim", "strict", **kwargs)
    np.testing.assert_array_equal(ref_ids, ids)


def test_strict_equivalence_for_uniform_sampling():
    kwargs = dict(k=35, p=2, batch_size=250, warmup_rounds=1, seed=SEED, weighted=False)
    ref_ids, _ = _lockstep_run("ours", "sim", **kwargs)
    ids, _, _ = _pipelined_run("ours", "sim", "strict", **kwargs)
    np.testing.assert_array_equal(ref_ids, ids)


def test_strict_equivalence_without_warmup():
    """Pre-threshold rounds fall back to the lock-step path, so even a run
    whose first measured rounds have no threshold stays byte-identical."""
    kwargs = dict(k=30, p=2, batch_size=200, warmup_rounds=0, seed=SEED + 2)
    ref_ids, _ = _lockstep_run("ours", "sim", **kwargs)
    ids, _, _ = _pipelined_run("ours", "sim", "strict", **kwargs)
    np.testing.assert_array_equal(ref_ids, ids)


class TestRelaxedBackendEquivalence:
    """Relaxed mode is deterministic: sim and process agree byte-for-byte.

    (Relaxed is *not* byte-identical to lock-step — keys come from the
    dedicated generation RNG — but for a given seed its threshold
    trajectory and sample are fully determined on either backend.)
    """

    def test_relaxed_sim_equals_relaxed_process(self):
        kwargs = dict(k=40, p=2, batch_size=250, warmup_rounds=1, seed=SEED)
        sim_ids, sim_thr, _ = _pipelined_run("ours", "sim", "relaxed", **kwargs)
        proc_ids, proc_thr, _ = _pipelined_run("ours", "process", "relaxed", **kwargs)
        np.testing.assert_array_equal(sim_ids, proc_ids)
        assert sim_thr == proc_thr
        assert len(sim_ids) == 40

    def test_windowed_pipelined_sim_equals_process(self):
        kwargs = dict(k=30, p=2, batch_size=200, warmup_rounds=1, seed=9, window=1200)
        sim_ids, _, sim_metrics = _pipelined_run("ours", "sim", "relaxed", **kwargs)
        proc_ids, _, _ = _pipelined_run("ours", "process", "relaxed", **kwargs)
        np.testing.assert_array_equal(sim_ids, proc_ids)
        assert len(sim_ids) == 30
        assert sim_metrics.total_evicted > 0


class TestHighLevelApiWiring:
    def test_api_strict_equals_api_off_for_default_stream(self):
        """`DistributedSamplingRun(pipeline="strict")` reproduces the
        lock-step run over the default stream (the shards replicate it)."""
        kwargs = dict(k=30, p=2, batch_size=300, seed=5)
        with DistributedSamplingRun("ours", pipeline="off", **kwargs) as off:
            off.run(ROUNDS)
            off_ids = np.sort(off.sample_ids())
        with DistributedSamplingRun("ours", pipeline="strict", **kwargs) as strict:
            metrics = strict.run(ROUNDS)
            strict_ids = np.sort(strict.sample_ids())
        np.testing.assert_array_equal(off_ids, strict_ids)
        assert metrics.num_rounds == ROUNDS

    def test_api_rejects_custom_stream_with_pipeline(self):
        from repro.stream import MiniBatchStream

        with pytest.raises(ValueError, match="stream"):
            DistributedSamplingRun(
                "ours", k=10, p=2, stream=MiniBatchStream(2, 50), pipeline="relaxed"
            )

    def test_api_rejects_gather_with_pipeline(self):
        with pytest.raises(ValueError, match="gather"):
            DistributedSamplingRun("gather", k=10, p=2, batch_size=100, pipeline="relaxed")

    def test_api_rejects_unknown_pipeline_mode(self):
        with pytest.raises(ValueError, match="pipeline mode"):
            DistributedSamplingRun("ours", k=10, p=2, batch_size=100, pipeline="bogus")

    def test_driver_rejects_pipeline_off(self):
        with pytest.raises(ValueError, match="lock-step"):
            PipelinedSamplingRun("ours", k=10, p=2, comm="sim", pipeline="off")

    def test_windowed_api_pipeline_runs(self):
        with DistributedSamplingRun(
            "ours", k=20, p=2, batch_size=150, seed=4, window=900, pipeline="relaxed"
        ) as run:
            metrics = run.run(6)
            assert len(run.sample_ids()) == 20
            assert metrics.total_evicted > 0

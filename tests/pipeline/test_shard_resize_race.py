"""Stress test: shard resizes racing an in-flight background prefetch.

The async pipeline dispatches :func:`~repro.core.pe_kernels.prefetch_stream_kernel`
(and the relaxed prepare kernels) to worker background threads while the
worker main loop keeps serving commands — including
:func:`~repro.core.pe_kernels.set_batch_size_kernel` from the autotuner.
An unguarded resize would mutate ``_batch_size``/``_emitted`` while
``_generate`` is mid-flight, corrupting the interleaved id bookkeeping
(duplicate or skipped ids).  The shard's internal lock must serialise the
two; the pipeline engines additionally enforce join-before-resize.
"""

import threading

import numpy as np
import pytest

from repro.pipeline.engine import UnboundedPipelineEngine
from repro.stream.shard import StreamShardSpec, WorkerStreamShard


class TestShardResizeRace:
    def _hammer(self, *, rounds=200, sizes=(1, 3, 7, 16, 64)):
        """Generate batches in a background thread while resizing from the
        main thread; returns all emitted ids."""
        shard = WorkerStreamShard(StreamShardSpec(p=2, pe=1, batch_size=4, variable=True))
        collected = []
        errors = []
        done = threading.Event()

        def producer():
            try:
                for _ in range(rounds):
                    shard.prefetch()
                    collected.append(shard.next_batch().ids)
            except BaseException as exc:  # pragma: no cover - the failure mode
                errors.append(exc)
            finally:
                done.set()

        thread = threading.Thread(target=producer)
        thread.start()
        i = 0
        while not done.is_set():
            shard.set_batch_size(sizes[i % len(sizes)])
            i += 1
        thread.join()
        assert not errors, errors
        return np.concatenate(collected)

    def test_ids_stay_unique_and_well_formed_under_racing_resizes(self):
        ids = self._hammer()
        assert ids.size == np.unique(ids).size, "resize race produced duplicate ids"
        # PE-interleaved layout: every id of pe=1 in a p=2 stream is odd
        assert np.all(ids % 2 == 1)
        # ids are emitted in increasing order for one PE
        assert np.all(np.diff(ids) > 0)

    def test_resize_between_prefetch_and_consume_keeps_prefetched_size(self):
        shard = WorkerStreamShard(StreamShardSpec(p=1, pe=0, batch_size=5, variable=True))
        shard.prefetch()
        shard.set_batch_size(11)
        assert len(shard.next_batch()) == 5  # already-generated batch is kept
        assert len(shard.next_batch()) == 11

    def test_fixed_shard_still_rejects_resize(self):
        shard = WorkerStreamShard(StreamShardSpec(p=1, pe=0, batch_size=5))
        with pytest.raises(ValueError, match="variable=True"):
            shard.set_batch_size(6)


class TestEngineResizeInvariant:
    def test_apply_resize_with_pending_prepare_is_refused(self):
        """The engine half of the guard: a deferred resize must never be
        dispatched while a prepare is in flight."""

        class _Sampler:
            _has_worker_stream = True
            comm = None
            _handle = None

        engine = UnboundedPipelineEngine.__new__(UnboundedPipelineEngine)
        engine.sampler = _Sampler()
        engine._pending = object()  # simulate an in-flight prepare
        engine._requested_batch_size = 32
        engine._rounds = 0
        with pytest.raises(RuntimeError, match="prepare is in flight"):
            engine._apply_batch_size_change()

"""Statistical correctness of the relaxed pipeline mode.

Relaxed rounds filter arrivals against a threshold that is stale by one
round and reconcile at ingest time.  Keys conditioned below the stale
threshold and re-truncated to the fresh one follow exactly the
distribution of keys drawn below the fresh threshold, so the sampling
distribution must be unchanged — verified here with the chi-squared /
total-variation machinery of ``tests/core/test_statistical_correctness.py``
against the dense reference sampler and against the lock-step run.

The superset-then-prune invariant is verified at the kernel level with a
hypothesis property: candidates prepared under the stale threshold are a
superset of the fresh-threshold candidates, and the reconciliation prune
removes exactly the keys above the fresh threshold.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats

from repro.analysis.statistics import (
    chi_square_statistic,
    total_variation_distance,
    weighted_inclusion_reference,
)
from repro.core import pe_kernels
from repro.core.local_reservoir import LocalReservoir
from repro.pipeline import PipelinedSamplingRun
from repro.runtime import ParallelStreamingRun
from repro.stream.generators import WeightGenerator
from repro.stream.shard import StreamShardSpec, WorkerStreamShard

# small finite population + many trials, matching the noise floor the
# core statistical suite's tolerances are calibrated for
P = 2
BATCH = 3
ROUNDS = 4
N_ITEMS = P * BATCH * ROUNDS
K = 6
TRIALS = 400


class IdDerivedWeights(WeightGenerator):
    """Deterministic weights derived from the (fixed) item ids.

    The shard id layout is deterministic, so tying the weight to the id
    gives every trial the same finite weighted population — which is what
    lets inclusion frequencies be compared across trials and against the
    dense reference.
    """

    def __init__(self, p: int) -> None:
        self.p = p

    def generate(self, size, rng, *, pe=0, round_index=0):
        start = (round_index * self.p + pe) * size
        ids = np.arange(start, start + size)
        return 0.5 + (ids % 7).astype(np.float64)


def _population_weights() -> np.ndarray:
    ids = np.arange(N_ITEMS)
    return 0.5 + (ids % 7).astype(np.float64)


def _inclusion_counts(make_run) -> np.ndarray:
    counts = np.zeros(N_ITEMS)
    for seed in range(TRIALS):
        with make_run(seed) as run:
            run.run_rounds(ROUNDS)
            sample = run.sample_ids()
        counts[sample] += 1
    return counts


@pytest.fixture(scope="module")
def relaxed_counts() -> np.ndarray:
    return _inclusion_counts(
        lambda seed: PipelinedSamplingRun(
            "ours",
            k=K,
            p=P,
            comm="sim",
            pipeline="relaxed",
            batch_size=BATCH,
            warmup_rounds=0,
            seed=seed,
            weights=IdDerivedWeights(P),
        )
    )


class TestRelaxedInclusionProbabilities:
    def test_relaxed_matches_dense_reference(self, relaxed_counts):
        weights = _population_weights()
        reference = weighted_inclusion_reference(
            weights, K, trials=4000, rng=np.random.default_rng(3)
        )
        observed = relaxed_counts / TRIALS
        assert total_variation_distance(observed, reference) < 0.06
        statistic, dof = chi_square_statistic(relaxed_counts, reference, TRIALS)
        assert statistic < stats.chi2.ppf(0.9999, dof), (statistic, dof)

    def test_relaxed_matches_lockstep_frequencies(self, relaxed_counts):
        lockstep_counts = _inclusion_counts(
            lambda seed: ParallelStreamingRun(
                "ours",
                k=K,
                p=P,
                comm="sim",
                batch_size=BATCH,
                warmup_rounds=0,
                seed=seed,
                weights=IdDerivedWeights(P),
            )
        )
        # both estimates carry Monte-Carlo noise, hence the wider tolerance
        assert total_variation_distance(relaxed_counts, lockstep_counts) < 0.09

    def test_heavier_items_included_more_often(self, relaxed_counts):
        weights = _population_weights()
        observed = relaxed_counts / TRIALS
        heavy = observed[weights == weights.max()].mean()
        light = observed[weights == weights.min()].mean()
        assert heavy > light


class TestSupersetThenPruneInvariant:
    """Kernel-level property: stale candidates ⊇ fresh candidates, and the
    reconciliation prune removes exactly the keys above the fresh threshold."""

    @staticmethod
    def _state_with_prepared(n, stale_threshold, seed):
        state = pe_kernels.make_pe_state(0, np.random.SeedSequence(seed), k=8)
        spec = StreamShardSpec(p=1, pe=0, batch_size=n, seed=seed)
        state["stream"] = WorkerStreamShard(spec)
        candidates, batch_items, _, _ = pe_kernels.prepare_batch_kernel(
            state, stale_threshold, True
        )
        assert batch_items == n
        return state, candidates

    @given(
        seed=st.integers(0, 2**20),
        n=st.integers(1, 200),
        stale=st.floats(0.05, 4.0),
        tighten=st.floats(0.05, 1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_reconciliation_prunes_exactly_the_stale_extra(self, seed, n, stale, tighten):
        fresh = stale * tighten  # fresh <= stale: the threshold only tightens
        state, candidates = self._state_with_prepared(n, stale, seed)
        prepared_keys = np.array(state["prepared"]["keys"], copy=True)
        prepared_ids = np.array(state["prepared"]["ids"], copy=True)
        assert np.all(prepared_keys <= stale)
        survivor_ids = set(prepared_ids[prepared_keys <= fresh].tolist())

        inserted, stale_extra, size = pe_kernels.ingest_prepared_kernel(state, fresh)
        # the prune removed exactly the candidates above the fresh threshold
        assert stale_extra == candidates - len(survivor_ids)
        assert inserted == len(survivor_ids)
        assert size == len(survivor_ids)
        reservoir: LocalReservoir = state["reservoir"]
        if size:
            assert reservoir.max_key() <= fresh
        # superset-then-prune: what remains is exactly the fresh subset of
        # the stale candidate set
        assert set(reservoir.item_ids().tolist()) == survivor_ids

    def test_stale_threshold_equal_means_no_prune(self):
        state, candidates = self._state_with_prepared(64, 1.5, seed=3)
        inserted, stale_extra, size = pe_kernels.ingest_prepared_kernel(state, 1.5)
        assert stale_extra == 0
        assert inserted == candidates == size

    def test_end_to_end_stale_extra_bookkeeping(self):
        """Per-round stale_extra is non-negative and only counts relaxed
        rounds; the total surfaces in the run metrics."""
        with PipelinedSamplingRun(
            "ours", k=40, p=2, comm="sim", pipeline="relaxed",
            batch_size=300, warmup_rounds=1, seed=11,
        ) as run:
            metrics = run.run_rounds(6)
        per_round = [r.stale_extra_candidates for r in metrics.rounds]
        assert all(extra >= 0 for extra in per_round)
        assert metrics.total_stale_extra_candidates == sum(per_round)
        # thresholds tighten over a growing stream, so staleness must
        # actually have pruned something across six rounds
        assert metrics.total_stale_extra_candidates > 0

    def test_strict_mode_never_has_stale_extra(self):
        with PipelinedSamplingRun(
            "ours", k=40, p=2, comm="sim", pipeline="strict",
            batch_size=300, warmup_rounds=1, seed=11,
        ) as run:
            metrics = run.run_rounds(6)
        assert metrics.total_stale_extra_candidates == 0

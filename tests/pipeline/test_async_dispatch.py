"""The non-blocking per-PE execution layer (``run_per_pe_async``).

The base :class:`~repro.network.base.Communicator` executes asynchronous
dispatches eagerly (completed future); :class:`~repro.network.ProcessComm`
runs them in worker background threads so the workers keep serving
collectives — including error propagation at join time and interleaving
with other kernels on the same state group.
"""

import time

import pytest

from repro.core import pe_kernels
from repro.network import ProcessComm, SimComm
from repro.network.base import Communicator, PerPEFuture
from repro.network.process_comm import WorkerError
from repro.utils.rng import spawn_seed_sequences


def _reservoir_states(comm, k=8, seed=0):
    import functools

    seqs = spawn_seed_sequences(seed, comm.p)
    return comm.create_pe_state(
        functools.partial(pe_kernels.make_pe_state, k=k),
        per_pe_args=[(ss,) for ss in seqs],
    )


def _attach_shards(comm, handle, batch=64, seed=1):
    from repro.stream.shard import StreamShardSpec

    specs = [
        (StreamShardSpec(p=comm.p, pe=pe, batch_size=batch, seed=seed),)
        for pe in range(comm.p)
    ]
    comm.run_per_pe(handle, pe_kernels.install_stream_kernel, specs)


def _sleepy_kernel(state, seconds):
    time.sleep(seconds)
    return state["pe"]


def _failing_kernel(state):
    raise ValueError(f"boom on pe {state['pe']}")


class TestEagerDefault:
    def test_sim_comm_returns_completed_future(self):
        comm = SimComm(2)
        handle = _reservoir_states(comm)
        future = comm.run_per_pe(handle, pe_kernels.local_size_kernel)
        assert future == [0, 0]
        async_future = comm.run_per_pe_async(handle, pe_kernels.local_size_kernel)
        assert isinstance(async_future, PerPEFuture)
        assert async_future.asynchronous is False
        assert async_future.done
        assert async_future.wait() == [0, 0]
        assert async_future.wait() == [0, 0]  # idempotent
        assert async_future.wait_time == 0.0

    def test_base_future_without_results_raises(self):
        with pytest.raises(RuntimeError, match="no results"):
            PerPEFuture().wait()


class TestProcessAsync:
    def test_results_arrive_in_rank_order(self):
        with ProcessComm(3) as comm:
            handle = _reservoir_states(comm)
            future = comm.run_per_pe_async(handle, _sleepy_kernel, [(0.01,)] * 3)
            assert future.asynchronous is True
            assert future.wait() == [0, 1, 2]
            assert future.wait() == [0, 1, 2]  # cached after the join

    def test_collectives_proceed_while_kernel_runs(self):
        """The whole point: workers keep serving collectives during an
        asynchronously dispatched kernel."""
        with ProcessComm(2) as comm:
            handle = _reservoir_states(comm)
            future = comm.run_per_pe_async(handle, _sleepy_kernel, [(0.3,)] * 2)
            start = time.perf_counter()
            result = comm.allreduce([1.0, 2.0], Communicator.SUM)
            elapsed = time.perf_counter() - start
            assert result == [3.0, 3.0]
            # the allreduce must not have waited for the 0.3 s kernel
            assert elapsed < 0.25
            future.wait()

    def test_wait_time_is_measured(self):
        with ProcessComm(2) as comm:
            handle = _reservoir_states(comm)
            future = comm.run_per_pe_async(handle, _sleepy_kernel, [(0.1,)] * 2)
            future.wait()
            assert future.wait_time > 0.05

    def test_errors_surface_at_join(self):
        with ProcessComm(2) as comm:
            handle = _reservoir_states(comm)
            future = comm.run_per_pe_async(handle, _failing_kernel)
            with pytest.raises(WorkerError, match="boom on pe"):
                future.wait()
            # re-waiting re-raises the original failure instead of
            # re-sending the join for an already-popped tag
            with pytest.raises(WorkerError, match="boom on pe"):
                future.wait()
            # the workers survive a failed async kernel
            assert comm.run_per_pe(handle, pe_kernels.local_size_kernel) == [0, 0]

    def test_async_prepare_interleaves_with_sync_kernels(self):
        """Prepare in the background, query the reservoir in the
        foreground, then ingest — states stay consistent."""
        with ProcessComm(2) as comm:
            handle = _reservoir_states(comm)
            _attach_shards(comm, handle)
            future = comm.run_per_pe_async(
                handle, pe_kernels.prepare_batch_kernel, [(None, True)] * 2
            )
            sizes = comm.run_per_pe(handle, pe_kernels.local_size_kernel)
            assert sizes == [0, 0]
            prep = future.wait()
            assert [r[1] for r in prep] == [64, 64]
            ingest = comm.run_per_pe(handle, pe_kernels.ingest_prepared_kernel, [(None,)] * 2)
            assert [size for _, _, size in ingest] == [64, 64]

    def test_ingest_without_prepare_raises(self):
        with ProcessComm(2) as comm:
            handle = _reservoir_states(comm)
            with pytest.raises(WorkerError, match="no prepared batch"):
                comm.run_per_pe(handle, pe_kernels.ingest_prepared_kernel, [(None,)] * 2)

    def test_shutdown_with_pending_async_kernel_is_clean(self):
        comm = ProcessComm(2)
        handle = _reservoir_states(comm)
        comm.run_per_pe_async(handle, _sleepy_kernel, [(0.2,)] * 2)
        comm.shutdown()  # never joined; must not hang or leak
        assert not any(comm.workers_alive)

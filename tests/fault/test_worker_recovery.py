"""Worker-death recovery: the acceptance tests of the fault-tolerance PR.

Every test compares the recovered run's final ``sample_ids()`` against an
*undisturbed* reference run with identical parameters — recovery must be
invisible in the output, byte for byte.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.api import DistributedSamplingRun
from repro.network.process_comm import FaultSpec, WorkerError

from conftest import kill_worker, shm_segment_names

P = 3
RUN_KWARGS = dict(k=24, p=P, batch_size=150, seed=5)


def reference_ids(rounds: int, **overrides) -> np.ndarray:
    kwargs = {**RUN_KWARGS, **overrides}
    with DistributedSamplingRun("ours", comm="process", **kwargs) as ref:
        ref.run(rounds)
        return ref.sample_ids()


class TestSigkillRecovery:
    def test_sigkilled_worker_is_respawned_and_sample_is_byte_identical(
        self, make_process_comm, checkpoint_dir
    ):
        ref = reference_ids(6)
        comm = make_process_comm(P)
        run = DistributedSamplingRun(
            "ours", comm=comm, checkpoint_dir=checkpoint_dir, checkpoint_every=2, **RUN_KWARGS
        )
        run.run(3)
        kill_worker(comm, 1)
        run.run(3)

        assert run.metrics.recoveries == 1
        assert comm.workers_alive == [True] * P
        recovered = [r.recovered_pes for r in run.metrics.rounds if r.recovered_pes]
        assert recovered == [[1]]
        assert np.array_equal(run.sample_ids(), ref)

    def test_two_sequential_deaths_both_recovered(self, make_process_comm, checkpoint_dir):
        ref = reference_ids(9)
        comm = make_process_comm(P)
        run = DistributedSamplingRun(
            "ours", comm=comm, checkpoint_dir=checkpoint_dir, checkpoint_every=2, **RUN_KWARGS
        )
        run.run(3)
        kill_worker(comm, 0)
        run.run(3)
        kill_worker(comm, 2)
        run.run(3)

        assert run.metrics.recoveries == 2
        assert comm.workers_alive == [True] * P
        assert np.array_equal(run.sample_ids(), ref)

    def test_death_without_checkpoint_dir_reraises(self, make_process_comm):
        comm = make_process_comm(P)
        run = DistributedSamplingRun("ours", comm=comm, **RUN_KWARGS)
        run.run(2)
        kill_worker(comm, 1)
        with pytest.raises(WorkerError):
            run.run(2)

    def test_epoch_is_bumped_by_recovery(self, make_process_comm, checkpoint_dir):
        comm = make_process_comm(P)
        run = DistributedSamplingRun(
            "ours", comm=comm, checkpoint_dir=checkpoint_dir, checkpoint_every=1, **RUN_KWARGS
        )
        run.run(2)
        assert comm.epoch == 0
        kill_worker(comm, 2)
        run.run(2)
        assert comm.epoch == 1


class TestInjectedFaults:
    def test_die_in_kernel_recovers_byte_identical(self, make_process_comm, checkpoint_dir):
        ref = reference_ids(6)
        comm = make_process_comm(P, fault=FaultSpec(rank=2, action="die_in_kernel", after_calls=25))
        run = DistributedSamplingRun(
            "ours", comm=comm, checkpoint_dir=checkpoint_dir, checkpoint_every=2, **RUN_KWARGS
        )
        run.run(6)
        assert run.metrics.recoveries == 1
        assert comm.workers_alive == [True] * P
        assert np.array_equal(run.sample_ids(), ref)

    def test_dropped_message_recovers_without_any_death(self, make_process_comm, checkpoint_dir):
        ref = reference_ids(6)
        comm = make_process_comm(
            P, mailbox_timeout=1.5, fault=FaultSpec(rank=1, action="drop_send", after_calls=10)
        )
        run = DistributedSamplingRun(
            "ours", comm=comm, checkpoint_dir=checkpoint_dir, checkpoint_every=2, **RUN_KWARGS
        )
        run.run(6)
        # the lost message surfaced as peer timeouts, not a worker death:
        # recover() found nobody to respawn but still replayed cleanly
        assert run.metrics.recoveries == 1
        assert comm.workers_alive == [True] * P
        assert all(r.recovered_pes == [] for r in run.metrics.rounds)
        assert np.array_equal(run.sample_ids(), ref)

    def test_delayed_reply_completes_without_recovery(self, make_process_comm, checkpoint_dir):
        ref = reference_ids(6)
        comm = make_process_comm(
            P, fault=FaultSpec(rank=0, action="delay_reply", after_calls=5, seconds=0.2)
        )
        # health on with the default policy: a short delay must at most be
        # *warned* about, never killed — on_stall="warn" is the default
        run = DistributedSamplingRun(
            "ours",
            comm=comm,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=2,
            health=True,
            **RUN_KWARGS,
        )
        assert run.health.config.on_stall == "warn"
        run.run(6)
        assert run.metrics.recoveries == 0
        assert run.health.watchdog_kills == 0
        assert np.array_equal(run.sample_ids(), ref)

    def test_unknown_fault_action_rejected(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultSpec(rank=0, action="segfault")


class TestStallWatchdog:
    """A hang (not a death) escalated by the watchdog into recovery."""

    #: fast watchdog: 50 ms polls, ~1 s stall deadline
    WATCHDOG = dict(poll_interval=0.05, min_deadline=0.8, grace=0.2)
    #: the hang: rank 0 goes silent mid-round for far longer than any test
    #: would wait — only a watchdog kill can unstick the run
    HANG = dict(rank=0, action="delay_reply", after_calls=12, seconds=60.0)

    def test_hang_is_detected_and_recovered_byte_identical(
        self, make_process_comm, checkpoint_dir
    ):
        from repro.obs.health import HealthConfig

        ref = reference_ids(6)
        comm = make_process_comm(P, fault=FaultSpec(**self.HANG))
        run = DistributedSamplingRun(
            "ours",
            comm=comm,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=2,
            health=HealthConfig(on_stall="recover", **self.WATCHDOG),
            **RUN_KWARGS,
        )
        run.run(6)

        assert run.metrics.recoveries == 1
        assert run.metrics.stalls == 1
        assert run.health.watchdog_kills == 1
        # the watchdog must kill the hung rank, not a peer blocked on it
        recovered = [r.recovered_pes for r in run.metrics.rounds if r.recovered_pes]
        assert recovered == [[0]]
        assert comm.workers_alive == [True] * P
        assert np.array_equal(run.sample_ids(), ref)

    def test_hang_with_on_stall_raise_surfaces_stall_error(
        self, make_process_comm, checkpoint_dir
    ):
        from repro.obs.health import HealthConfig, StallError

        comm = make_process_comm(P, fault=FaultSpec(**self.HANG))
        run = DistributedSamplingRun(
            "ours",
            comm=comm,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=2,
            health=HealthConfig(on_stall="raise", **self.WATCHDOG),
            **RUN_KWARGS,
        )
        with pytest.raises(StallError) as excinfo:
            run.run(6)
        assert excinfo.value.rank == 0


def _warn_then_die_kernel(state):
    import logging
    import os
    import time

    logging.getLogger("repro.worker.test").warning("disk almost full on this rank")
    # eager forwarding rides the beat queue's feeder thread; give it a
    # moment to flush — the guarantee is best-effort crash context
    time.sleep(0.2)
    os._exit(1)


class TestEagerLogForwarding:
    def test_warning_logged_before_death_reaches_coordinator(
        self, make_process_comm, checkpoint_dir, caplog
    ):
        import logging

        comm = make_process_comm(P)
        run = DistributedSamplingRun(
            "ours", comm=comm, checkpoint_dir=checkpoint_dir, checkpoint_every=2, **RUN_KWARGS
        )
        run.run(2)
        with caplog.at_level(logging.WARNING, logger="repro"):
            with pytest.raises(WorkerError):
                comm.run_per_pe(run.sampler._handle, _warn_then_die_kernel, None)
            # the buffered copy died with the workers; recover() drains the
            # eagerly-forwarded ≥WARNING copies off the beat queue
            comm.recover()
        assert any("disk almost full" in message for message in caplog.messages)


class TestShmHygiene:
    def test_no_segments_leak_after_recovered_shm_run(self, make_process_comm, checkpoint_dir):
        before = shm_segment_names()
        ref = reference_ids(6, batch_size=400, payload_transport="shm", shm_min_bytes=64)
        comm = make_process_comm(
            P,
            payload_transport="shm",
            shm_min_bytes=64,
            fault=FaultSpec(rank=1, action="die_in_kernel", after_calls=25),
        )
        run = DistributedSamplingRun(
            "ours",
            comm=comm,
            batch_size=400,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=2,
            **{k: v for k, v in RUN_KWARGS.items() if k != "batch_size"},
        )
        run.run(6)
        assert run.metrics.recoveries == 1
        assert np.array_equal(run.sample_ids(), ref)
        comm.shutdown()
        assert shm_segment_names() == before

"""Worker-death recovery: the acceptance tests of the fault-tolerance PR.

Every test compares the recovered run's final ``sample_ids()`` against an
*undisturbed* reference run with identical parameters — recovery must be
invisible in the output, byte for byte.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.api import DistributedSamplingRun
from repro.network.process_comm import FaultSpec, WorkerError

from conftest import kill_worker, shm_segment_names

P = 3
RUN_KWARGS = dict(k=24, p=P, batch_size=150, seed=5)


def reference_ids(rounds: int, **overrides) -> np.ndarray:
    kwargs = {**RUN_KWARGS, **overrides}
    with DistributedSamplingRun("ours", comm="process", **kwargs) as ref:
        ref.run(rounds)
        return ref.sample_ids()


class TestSigkillRecovery:
    def test_sigkilled_worker_is_respawned_and_sample_is_byte_identical(
        self, make_process_comm, checkpoint_dir
    ):
        ref = reference_ids(6)
        comm = make_process_comm(P)
        run = DistributedSamplingRun(
            "ours", comm=comm, checkpoint_dir=checkpoint_dir, checkpoint_every=2, **RUN_KWARGS
        )
        run.run(3)
        kill_worker(comm, 1)
        run.run(3)

        assert run.metrics.recoveries == 1
        assert comm.workers_alive == [True] * P
        recovered = [r.recovered_pes for r in run.metrics.rounds if r.recovered_pes]
        assert recovered == [[1]]
        assert np.array_equal(run.sample_ids(), ref)

    def test_two_sequential_deaths_both_recovered(self, make_process_comm, checkpoint_dir):
        ref = reference_ids(9)
        comm = make_process_comm(P)
        run = DistributedSamplingRun(
            "ours", comm=comm, checkpoint_dir=checkpoint_dir, checkpoint_every=2, **RUN_KWARGS
        )
        run.run(3)
        kill_worker(comm, 0)
        run.run(3)
        kill_worker(comm, 2)
        run.run(3)

        assert run.metrics.recoveries == 2
        assert comm.workers_alive == [True] * P
        assert np.array_equal(run.sample_ids(), ref)

    def test_death_without_checkpoint_dir_reraises(self, make_process_comm):
        comm = make_process_comm(P)
        run = DistributedSamplingRun("ours", comm=comm, **RUN_KWARGS)
        run.run(2)
        kill_worker(comm, 1)
        with pytest.raises(WorkerError):
            run.run(2)

    def test_epoch_is_bumped_by_recovery(self, make_process_comm, checkpoint_dir):
        comm = make_process_comm(P)
        run = DistributedSamplingRun(
            "ours", comm=comm, checkpoint_dir=checkpoint_dir, checkpoint_every=1, **RUN_KWARGS
        )
        run.run(2)
        assert comm.epoch == 0
        kill_worker(comm, 2)
        run.run(2)
        assert comm.epoch == 1


class TestInjectedFaults:
    def test_die_in_kernel_recovers_byte_identical(self, make_process_comm, checkpoint_dir):
        ref = reference_ids(6)
        comm = make_process_comm(P, fault=FaultSpec(rank=2, action="die_in_kernel", after_calls=25))
        run = DistributedSamplingRun(
            "ours", comm=comm, checkpoint_dir=checkpoint_dir, checkpoint_every=2, **RUN_KWARGS
        )
        run.run(6)
        assert run.metrics.recoveries == 1
        assert comm.workers_alive == [True] * P
        assert np.array_equal(run.sample_ids(), ref)

    def test_dropped_message_recovers_without_any_death(self, make_process_comm, checkpoint_dir):
        ref = reference_ids(6)
        comm = make_process_comm(
            P, mailbox_timeout=1.5, fault=FaultSpec(rank=1, action="drop_send", after_calls=10)
        )
        run = DistributedSamplingRun(
            "ours", comm=comm, checkpoint_dir=checkpoint_dir, checkpoint_every=2, **RUN_KWARGS
        )
        run.run(6)
        # the lost message surfaced as peer timeouts, not a worker death:
        # recover() found nobody to respawn but still replayed cleanly
        assert run.metrics.recoveries == 1
        assert comm.workers_alive == [True] * P
        assert all(r.recovered_pes == [] for r in run.metrics.rounds)
        assert np.array_equal(run.sample_ids(), ref)

    def test_delayed_reply_completes_without_recovery(self, make_process_comm, checkpoint_dir):
        ref = reference_ids(6)
        comm = make_process_comm(
            P, fault=FaultSpec(rank=0, action="delay_reply", after_calls=5, seconds=0.2)
        )
        run = DistributedSamplingRun(
            "ours", comm=comm, checkpoint_dir=checkpoint_dir, checkpoint_every=2, **RUN_KWARGS
        )
        run.run(6)
        assert run.metrics.recoveries == 0
        assert np.array_equal(run.sample_ids(), ref)

    def test_unknown_fault_action_rejected(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultSpec(rank=0, action="segfault")


class TestShmHygiene:
    def test_no_segments_leak_after_recovered_shm_run(self, make_process_comm, checkpoint_dir):
        before = shm_segment_names()
        ref = reference_ids(6, batch_size=400, payload_transport="shm", shm_min_bytes=64)
        comm = make_process_comm(
            P,
            payload_transport="shm",
            shm_min_bytes=64,
            fault=FaultSpec(rank=1, action="die_in_kernel", after_calls=25),
        )
        run = DistributedSamplingRun(
            "ours",
            comm=comm,
            batch_size=400,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=2,
            **{k: v for k, v in RUN_KWARGS.items() if k != "batch_size"},
        )
        run.run(6)
        assert run.metrics.recoveries == 1
        assert np.array_equal(run.sample_ids(), ref)
        comm.shutdown()
        assert shm_segment_names() == before

"""Fault-injection harness fixtures.

The harness kills real worker processes (``SIGKILL`` by pid) and installs
deterministic :class:`~repro.network.process_comm.FaultSpec` failures, so
these tests exercise the genuine recovery path: sentinel-based death
detection, abort sentinels, epoch bump, respawn, checkpoint restore and
stream replay.  Timeouts are kept small — a lost message must surface as
a mailbox timeout in ~1 s, not the production default of 30 s.
"""

from __future__ import annotations

import glob
import os
import signal
import time

import pytest

from repro.network.process_comm import ProcessComm

#: small-timeout settings so injected faults surface fast on one core
FAST_TIMEOUTS = dict(mailbox_timeout=5.0, reply_timeout=60.0)


def shm_segment_names() -> list:
    """Names of this library's shared-memory segments currently on disk."""
    return sorted(os.path.basename(p) for p in glob.glob("/dev/shm/reprshm_*"))


def kill_worker(comm: ProcessComm, rank: int) -> None:
    """SIGKILL one worker and wait until the OS has reaped it."""
    pid = comm.worker_pids[rank]
    os.kill(pid, signal.SIGKILL)
    deadline = time.monotonic() + 10.0
    while comm.workers_alive[rank]:
        if time.monotonic() > deadline:  # pragma: no cover - diagnostics
            raise RuntimeError(f"worker {rank} (pid {pid}) survived SIGKILL")
        time.sleep(0.01)


@pytest.fixture
def make_process_comm():
    """Factory for fast-timeout :class:`ProcessComm` instances.

    Every communicator built through the factory is shut down at test
    end even if the test body raises, so no worker processes or IPC
    resources leak into later tests.
    """
    comms = []

    def factory(p: int, **kwargs) -> ProcessComm:
        merged = {**FAST_TIMEOUTS, **kwargs}
        comm = ProcessComm(p, **merged)
        comms.append(comm)
        return comm

    yield factory
    for comm in comms:
        comm.shutdown()


@pytest.fixture
def checkpoint_dir(tmp_path):
    """A fresh checkpoint directory per test."""
    return tmp_path / "ckpt"

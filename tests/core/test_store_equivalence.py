"""Store-backend and kernel-tier equivalence: identical samples, always.

Key generation is store-independent (the per-PE RNG streams only feed the
key/jump kernels), so for the same seed the two store backends see the same
candidate keys and must end up with byte-identical reservoirs.  This is the
property the ablation study relies on, and it pins down any divergence a
store refactor could introduce.

The same contract extends to the kernel tiers: the compiled ``"jit"`` tier
replays the numpy reference kernels draw for draw, so every suite here is
parametrized over ``kernel_tier`` and a dedicated class pins the cross-tier
byte-identity on the sequential / window / decay / pipeline paths too.  The
jit legs skip themselves where numba is not installed (the CI matrix runs
one leg with numba and one without).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CentralizedGatherSampler,
    DistributedReservoirSampler,
    DistributedUniformReservoirSampler,
    LocalReservoir,
    SequentialUniformReservoir,
    SequentialWeightedReservoir,
    VariableSizeReservoirSampler,
    numba_available,
)
from repro.network import SimComm
from repro.stream import MiniBatchStream

requires_numba = pytest.mark.skipif(not numba_available(), reason="numba not installed")

#: kernel-tier axis — the compiled leg self-skips without numba
TIERS = ["numpy", pytest.param("jit", marks=requires_numba)]


def run_sampler(factory, *, p=4, batch=100, rounds=4, stream_seed=11):
    sampler = factory()
    stream = MiniBatchStream(p, batch, seed=stream_seed)
    for _ in range(rounds):
        sampler.process_round(stream.next_round().batches)
    return sampler


def state_of(sampler):
    return (
        sorted(sampler.sample_ids().tolist()),
        None if sampler.threshold is None else pytest.approx(sampler.threshold),
        sampler.sample_size(),
    )


class TestDistributedEquivalence:
    @pytest.mark.parametrize("kernel_tier", TIERS)
    @pytest.mark.parametrize("seed", [0, 3, 12345])
    def test_weighted_samples_identical(self, seed, kernel_tier):
        states = {
            store: state_of(
                run_sampler(
                    lambda: DistributedReservoirSampler(
                        25, SimComm(4), seed=seed, store=store, kernel_tier=kernel_tier
                    ),
                    stream_seed=seed + 50,
                )
            )
            for store in ("btree", "merge")
        }
        assert states["btree"] == states["merge"]

    @pytest.mark.parametrize("kernel_tier", TIERS)
    @pytest.mark.parametrize("seed", [1, 8])
    def test_uniform_samples_identical(self, seed, kernel_tier):
        states = {
            store: state_of(
                run_sampler(
                    lambda: DistributedUniformReservoirSampler(
                        15, SimComm(3), seed=seed, store=store, kernel_tier=kernel_tier
                    ),
                    p=3,
                    stream_seed=seed + 70,
                )
            )
            for store in ("btree", "merge")
        }
        assert states["btree"] == states["merge"]

    def test_local_thresholding_path_identical(self):
        # a huge first batch exercises the Section-5 chunked policy path
        states = {}
        for store in ("btree", "merge"):
            sampler = DistributedReservoirSampler(
                10, SimComm(2), seed=4, store=store, local_thresholding=True
            )
            stream = MiniBatchStream(2, 3000, seed=5)
            sampler.process_round(stream.next_round().batches)
            states[store] = state_of(sampler)
        assert states["btree"] == states["merge"]

    def test_variable_size_sampler_identical(self):
        states = {
            store: state_of(
                run_sampler(
                    lambda: VariableSizeReservoirSampler(
                        20, 40, SimComm(4), seed=6, store=store
                    ),
                    stream_seed=77,
                )
            )
            for store in ("btree", "merge")
        }
        assert states["btree"] == states["merge"]

    def test_gather_root_store_identical(self):
        states = {
            store: state_of(
                run_sampler(
                    lambda: CentralizedGatherSampler(18, SimComm(4), seed=9, store=store),
                    stream_seed=91,
                )
            )
            for store in ("btree", "merge")
        }
        assert states["btree"] == states["merge"]


class TestSequentialStoreEquivalence:
    def test_weighted_store_backends_identical(self, rng):
        ids = np.arange(500)
        weights = rng.uniform(0.1, 5.0, size=500)
        samples = {}
        for store in ("btree", "merge"):
            sampler = SequentialWeightedReservoir(30, seed=21, store=store)
            from repro.stream import ItemBatch

            for start in range(0, 500, 100):
                sampler.process(
                    ItemBatch(ids=ids[start : start + 100], weights=weights[start : start + 100])
                )
            samples[store] = sorted(sampler.sample_ids().tolist())
            assert sampler.size == 30
            assert sampler.items_seen == 500
        assert samples["btree"] == samples["merge"]

    def test_uniform_store_backends_identical(self):
        from repro.stream import ItemBatch

        samples = {}
        for store in ("btree", "merge"):
            sampler = SequentialUniformReservoir(25, seed=33, store=store)
            for start in range(0, 400, 80):
                batch = np.arange(start, start + 80)
                sampler.process(ItemBatch(ids=batch, weights=np.ones(80)))
            samples[store] = sorted(sampler.sample_ids().tolist())
        assert samples["btree"] == samples["merge"]


@requires_numba
class TestKernelTierByteIdentity:
    """``kernel_tier="jit"`` must reproduce the numpy tier **bit for bit**
    on every ingestion path — distributed, sequential, window, decay and
    pipelined.  Tier selection may only ever change the cost of a run,
    never its sample."""

    def _distributed_states(self, factory, *, p=4, rounds=4, batch=150, stream_seed=7):
        states = {}
        for tier in ("numpy", "jit"):
            sampler = factory(tier)
            stream = MiniBatchStream(p, batch, seed=stream_seed)
            thresholds = [
                sampler.process_round(stream.next_round().batches).threshold
                for _ in range(rounds)
            ]
            states[tier] = (sorted(sampler.sample_items()), thresholds)
        return states

    @pytest.mark.parametrize("seed", [2, 19])
    def test_distributed_weighted_identical_across_tiers(self, seed):
        states = self._distributed_states(
            lambda tier: DistributedReservoirSampler(
                25, SimComm(4), seed=seed, kernel_tier=tier
            ),
            stream_seed=seed + 5,
        )
        assert states["numpy"] == states["jit"]

    def test_distributed_uniform_identical_across_tiers(self):
        states = self._distributed_states(
            lambda tier: DistributedUniformReservoirSampler(
                20, SimComm(3), seed=4, kernel_tier=tier
            ),
            p=3,
        )
        assert states["numpy"] == states["jit"]

    def test_variable_size_identical_across_tiers(self):
        states = self._distributed_states(
            lambda tier: VariableSizeReservoirSampler(
                15, 35, SimComm(4), seed=6, kernel_tier=tier
            )
        )
        assert states["numpy"] == states["jit"]

    def test_gather_identical_across_tiers(self):
        states = self._distributed_states(
            lambda tier: CentralizedGatherSampler(18, SimComm(4), seed=9, kernel_tier=tier)
        )
        assert states["numpy"] == states["jit"]

    def test_sequential_weighted_identical_across_tiers(self):
        from repro.stream import ItemBatch

        rng = np.random.default_rng(12)
        weights = rng.uniform(0.1, 5.0, size=600)
        samples = {}
        for tier in ("numpy", "jit"):
            sampler = SequentialWeightedReservoir(30, seed=21, store="merge", kernel_tier=tier)
            for start in range(0, 600, 120):
                sampler.process(
                    ItemBatch(
                        ids=np.arange(start, start + 120),
                        weights=weights[start : start + 120],
                    )
                )
            samples[tier] = (sampler.sample_with_keys(), sampler.threshold)
        assert samples["numpy"] == samples["jit"]

    def test_decayed_identical_across_tiers(self):
        from repro.stream import ItemBatch
        from repro.window import DecayedReservoir

        samples = {}
        for tier in ("numpy", "jit"):
            sampler = DecayedReservoir(20, 0.995, seed=8, kernel_tier=tier)
            for start in range(0, 500, 100):
                sampler.process(
                    ItemBatch(
                        ids=np.arange(start, start + 100),
                        weights=np.linspace(0.5, 3.0, 100),
                    )
                )
            samples[tier] = sampler.sample_with_keys()
        assert samples["numpy"] == samples["jit"]

    def test_windowed_identical_across_tiers(self):
        from repro.core import make_distributed_sampler

        samples = {}
        for tier in ("numpy", "jit"):
            sampler = make_distributed_sampler(
                "ours", 20, SimComm(2), seed=3, window=600, kernel_tier=tier
            )
            stream = MiniBatchStream(2, 200, seed=5)
            for _ in range(5):
                sampler.process_round(stream.next_round().batches)
            samples[tier] = np.sort(sampler.sample_ids())
        np.testing.assert_array_equal(samples["numpy"], samples["jit"])

    @pytest.mark.parametrize("mode", ["strict", "relaxed"])
    def test_pipelined_identical_across_tiers(self, mode):
        from repro.pipeline import PipelinedSamplingRun

        samples = {}
        for tier in ("numpy", "jit"):
            with PipelinedSamplingRun(
                "ours",
                comm="sim",
                k=30,
                p=2,
                batch_size=200,
                warmup_rounds=1,
                seed=11,
                pipeline=mode,
                kernel_tier=tier,
            ) as run:
                run.run_rounds(4)
                samples[tier] = (np.sort(run.sample_ids()), run.sampler.threshold)
        np.testing.assert_array_equal(samples["numpy"][0], samples["jit"][0])
        assert samples["numpy"][1] == samples["jit"][1]


class TestLocalReservoirPropertyEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(
        batches=st.lists(
            st.lists(
                st.floats(min_value=0.001, max_value=1.0, allow_nan=False),
                min_size=0,
                max_size=30,
            ),
            min_size=1,
            max_size=6,
        ),
        prune=st.integers(min_value=1, max_value=40),
        threshold=st.floats(min_value=0.05, max_value=1.0, allow_nan=False),
    )
    def test_random_batch_sequences_agree(self, batches, prune, threshold):
        """Arbitrary interleavings of batch-insert / threshold-prefilter /
        prune leave both backends with identical reservoirs."""
        reservoirs = {b: LocalReservoir(backend=b) for b in ("btree", "merge")}
        next_id = 0
        seen = set()
        for i, batch in enumerate(batches):
            # keep keys globally unique: with tied keys the two backends may
            # legitimately order the tied *ids* differently
            unique = [key for key in batch if key not in seen and not seen.add(key)]
            keys = np.asarray(unique, dtype=np.float64)
            ids = np.arange(next_id, next_id + keys.shape[0])
            next_id += keys.shape[0]
            thr = threshold if i % 2 else None
            for reservoir in reservoirs.values():
                reservoir.insert_batch(keys, ids, threshold=thr)
        for reservoir in reservoirs.values():
            reservoir.prune_to_rank(prune)
        a, b = reservoirs["btree"], reservoirs["merge"]
        assert len(a) == len(b)
        np.testing.assert_allclose(a.keys_array(), b.keys_array())
        np.testing.assert_array_equal(a.item_ids(), b.item_ids())
        if len(a):
            rank = max(1, len(a) // 2)
            assert a.kth_key(rank) == b.kth_key(rank)
            assert a.count_le(0.5) == b.count_le(0.5)

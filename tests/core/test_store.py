"""Unit tests for the pluggable reservoir store backends."""

import numpy as np
import pytest

from repro.core import BTreeStore, MergeStore, make_store
from repro.core.store import STORE_BACKENDS, normalize_store_name

BACKENDS = ["btree", "merge"]


class TestFactory:
    def test_make_store_by_name(self):
        assert isinstance(make_store("merge"), MergeStore)
        assert isinstance(make_store("btree"), BTreeStore)
        # historic alias resolves to the merge store
        assert isinstance(make_store("sorted_array"), MergeStore)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            make_store("skiplist")
        with pytest.raises(ValueError):
            normalize_store_name("")

    def test_normalize_folds_alias(self):
        assert normalize_store_name("sorted_array") == "merge"
        assert normalize_store_name("BTREE") == "btree"
        assert set(STORE_BACKENDS) == {"btree", "merge", "sorted_array"}


@pytest.mark.parametrize("backend", BACKENDS)
class TestStoreBasics:
    def test_insert_and_rank_queries(self, backend, rng):
        store = make_store(backend)
        keys = rng.random(150)
        for i, key in enumerate(keys):
            store.insert(float(key), i)
        ordered = np.sort(keys)
        assert len(store) == 150
        assert store.min_key() == pytest.approx(ordered[0])
        assert store.max_key() == pytest.approx(ordered[-1])
        assert store.kth_key(40) == pytest.approx(ordered[39])
        query = float(rng.random())
        assert store.count_le(query) == int(np.sum(keys <= query))
        assert store.count_less(query) == int(np.sum(keys < query))

    def test_insert_batch_threshold_prefilter(self, backend, rng):
        store = make_store(backend)
        keys = rng.random(500)
        inserted = store.insert_batch(keys, np.arange(500), threshold=0.25)
        assert inserted == int(np.sum(keys < 0.25))
        assert len(store) == inserted
        if inserted:
            assert store.max_key() < 0.25

    def test_insert_batch_capacity_truncates(self, backend, rng):
        store = make_store(backend)
        keys = rng.random(300)
        store.insert_batch(keys, np.arange(300), capacity=64)
        assert len(store) == 64
        np.testing.assert_allclose(store.keys_array(), np.sort(keys)[:64])

    def test_insert_batch_empty_and_mismatch(self, backend):
        store = make_store(backend)
        assert store.insert_batch(np.empty(0), np.empty(0, dtype=np.int64)) == 0
        with pytest.raises(ValueError):
            store.insert_batch(np.array([0.1, 0.2]), np.array([1]))

    def test_kth_keys_matches_scalar_queries(self, backend, rng):
        """Regression for the element-by-element rank-query loop: the
        vectorized kth_keys must agree with repeated kth_key calls."""
        store = make_store(backend)
        store.insert_batch(rng.random(80), np.arange(80))
        ranks = np.array([1, 5, 17, 42, 80])
        expected = np.array([store.kth_key(int(r)) for r in ranks])
        np.testing.assert_allclose(store.kth_keys(ranks), expected)

    def test_kth_keys_out_of_range(self, backend, rng):
        store = make_store(backend)
        store.insert_batch(rng.random(10), np.arange(10))
        with pytest.raises(IndexError):
            store.kth_keys(np.array([0]))
        with pytest.raises(IndexError):
            store.kth_keys(np.array([11]))
        assert store.kth_keys(np.empty(0, dtype=np.int64)).shape == (0,)

    def test_extraction_and_truncate(self, backend, rng):
        store = make_store(backend)
        keys = rng.random(50)
        store.insert_batch(keys, np.arange(50))
        np.testing.assert_allclose(store.keys_array(), np.sort(keys))
        assert store.ids_array().tolist() == np.argsort(keys, kind="stable").tolist()
        np.testing.assert_allclose(
            store.keys_in_rank_range(10, 20), np.sort(keys)[10:20]
        )
        removed = store.truncate_to_rank(30)
        assert removed == 20 and len(store) == 30

    def test_empty_extremes_raise(self, backend):
        store = make_store(backend)
        with pytest.raises(IndexError):
            store.max_key()
        with pytest.raises(IndexError):
            store.min_key()

    def test_items_in_key_order(self, backend):
        store = make_store(backend)
        store.insert(0.5, 7)
        store.insert(0.1, 3)
        assert list(store.items()) == [(0.1, 3), (0.5, 7)]


class TestTieOrdering:
    """Equal keys must keep existing entries before newly inserted ones in
    BOTH backends, otherwise the backends drift apart on tied keys."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_existing_before_new_on_ties(self, backend):
        store = make_store(backend)
        store.insert_batch(np.array([0.5, 0.5]), np.array([1, 2]))
        store.insert_batch(np.array([0.5]), np.array([3]))
        assert store.ids_array().tolist() == [1, 2, 3]

    def test_backends_agree_on_ties(self):
        a, b = make_store("btree"), make_store("merge")
        for store in (a, b):
            store.insert_batch(np.array([0.3, 0.3, 0.1]), np.array([10, 11, 12]))
            store.insert_batch(np.array([0.3, 0.1]), np.array([13, 14]))
        assert a.ids_array().tolist() == b.ids_array().tolist()

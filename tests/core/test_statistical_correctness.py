"""Statistical correctness of the samplers.

These tests provide the scientific evidence that the distributed mini-batch
algorithm produces genuine weighted/uniform samples without replacement:

* exact single-draw probabilities (``k = 1``),
* empirical inclusion frequencies compared against the dense reference
  sampler (chi-square and total-variation checks),
* uniform samplers: inclusion probability ``k / n`` for every item,
* agreement between the jump kernels and the dense kernels.

All tests use fixed seeds and generous tolerances so they are deterministic,
and every distributed trial is exercised under both reservoir store
backends ("btree" and "merge") via the module-level ``store`` fixture —
the sampling distribution must not depend on the storage data structure.
"""

import numpy as np
import pytest
from scipy import stats

from repro.analysis.statistics import (
    chi_square_statistic,
    total_variation_distance,
    weighted_inclusion_reference,
)
from repro.core import (
    CentralizedGatherSampler,
    DistributedReservoirSampler,
    DistributedUniformReservoirSampler,
)
from repro.network import SimComm
from repro.stream import ItemBatch, partition_random


def run_distributed_trial(sampler_factory, ids, weights, p, rounds, seed):
    """Stream the (ids, weights) items through a distributed sampler."""
    rng = np.random.default_rng(seed)
    sampler = sampler_factory(seed)
    batch = ItemBatch(ids=ids, weights=weights)
    # split the items into `rounds` global mini-batches, each scattered
    # randomly over the PEs
    order = rng.permutation(len(ids))
    chunks = np.array_split(order, rounds)
    for chunk in chunks:
        parts = partition_random(batch.take(chunk), p, rng)
        sampler.process_round(parts)
    return sampler.sample_ids()


N_ITEMS = 24
P = 4
ROUNDS = 3
TRIALS = 400


@pytest.fixture(params=["btree", "merge"], ids=["store-btree", "store-merge"])
def store(request):
    """Reservoir store backend each distributed trial runs under."""
    return request.param


@pytest.fixture(scope="module")
def weighted_setup():
    rng = np.random.default_rng(7)
    ids = np.arange(N_ITEMS)
    weights = rng.uniform(0.5, 8.0, size=N_ITEMS)
    return ids, weights


class TestSingleDrawExactness:
    """k = 1: the inclusion probability of item i is exactly w_i / W."""

    def test_distributed_weighted_single_draw(self, weighted_setup, store):
        ids, weights = weighted_setup
        counts = np.zeros(N_ITEMS)
        for seed in range(TRIALS):
            sample = run_distributed_trial(
                lambda s: DistributedReservoirSampler(1, SimComm(P), seed=s, store=store),
                ids, weights, P, ROUNDS, seed,
            )
            counts[sample] += 1
        expected = weights / weights.sum()
        statistic, dof = chi_square_statistic(counts, expected, TRIALS)
        # generous: reject only if the fit is catastrophically bad
        assert statistic < stats.chi2.ppf(0.9999, dof), (statistic, dof)
        assert total_variation_distance(counts, expected) < 0.12

    def test_centralized_weighted_single_draw(self, weighted_setup, store):
        ids, weights = weighted_setup
        counts = np.zeros(N_ITEMS)
        for seed in range(TRIALS):
            sample = run_distributed_trial(
                lambda s: CentralizedGatherSampler(1, SimComm(P), seed=s, store=store),
                ids, weights, P, ROUNDS, seed,
            )
            counts[sample] += 1
        expected = weights / weights.sum()
        statistic, dof = chi_square_statistic(counts, expected, TRIALS)
        assert statistic < stats.chi2.ppf(0.9999, dof)


class TestInclusionFrequenciesAgainstReference:
    """k > 1: compare against the dense reference sampler's frequencies."""

    def test_distributed_matches_dense_reference(self, weighted_setup, store):
        ids, weights = weighted_setup
        k = 6
        counts = np.zeros(N_ITEMS)
        for seed in range(TRIALS):
            sample = run_distributed_trial(
                lambda s: DistributedReservoirSampler(k, SimComm(P), seed=s, store=store),
                ids, weights, P, ROUNDS, seed,
            )
            counts[sample] += 1
        observed = counts / TRIALS
        reference = weighted_inclusion_reference(weights, k, trials=4000, rng=np.random.default_rng(3))
        # total variation between the two inclusion-frequency vectors
        assert total_variation_distance(observed, reference) < 0.06
        # heavier items must be included more often
        heavy, light = np.argmax(weights), np.argmin(weights)
        assert observed[heavy] > observed[light]

    def test_gather_matches_dense_reference(self, weighted_setup, store):
        ids, weights = weighted_setup
        k = 6
        counts = np.zeros(N_ITEMS)
        for seed in range(TRIALS):
            sample = run_distributed_trial(
                lambda s: CentralizedGatherSampler(k, SimComm(P), seed=s, store=store),
                ids, weights, P, ROUNDS, seed,
            )
            counts[sample] += 1
        observed = counts / TRIALS
        reference = weighted_inclusion_reference(weights, k, trials=4000, rng=np.random.default_rng(4))
        assert total_variation_distance(observed, reference) < 0.06

    def test_distributed_and_gather_agree_with_each_other(self, weighted_setup):
        ids, weights = weighted_setup
        k = 5
        counts = {"ours": np.zeros(N_ITEMS), "gather": np.zeros(N_ITEMS)}
        for seed in range(TRIALS):
            ours = run_distributed_trial(
                lambda s: DistributedReservoirSampler(k, SimComm(P), seed=s),
                ids, weights, P, ROUNDS, seed,
            )
            gather = run_distributed_trial(
                lambda s: CentralizedGatherSampler(k, SimComm(P), seed=s),
                ids, weights, P, ROUNDS, seed + 10_000,
            )
            counts["ours"][ours] += 1
            counts["gather"][gather] += 1
        # both estimates carry Monte-Carlo noise, hence the wider tolerance
        assert total_variation_distance(counts["ours"], counts["gather"]) < 0.09


class TestUniformSampling:
    def test_uniform_inclusion_probability_is_k_over_n(self, store):
        ids = np.arange(N_ITEMS)
        weights = np.ones(N_ITEMS)
        k = 6
        counts = np.zeros(N_ITEMS)
        for seed in range(TRIALS):
            sample = run_distributed_trial(
                lambda s: DistributedUniformReservoirSampler(k, SimComm(P), seed=s, store=store),
                ids, weights, P, ROUNDS, seed,
            )
            counts[sample] += 1
        freq = counts / TRIALS
        expected = np.full(N_ITEMS, k / N_ITEMS)
        np.testing.assert_allclose(freq, expected, atol=0.08)
        statistic, dof = chi_square_statistic(counts, expected, TRIALS)
        assert statistic < stats.chi2.ppf(0.9999, dof)

    def test_weighted_sampler_with_equal_weights_is_uniform(self):
        ids = np.arange(N_ITEMS)
        weights = np.full(N_ITEMS, 3.0)
        k = 4
        counts = np.zeros(N_ITEMS)
        for seed in range(TRIALS):
            sample = run_distributed_trial(
                lambda s: DistributedReservoirSampler(k, SimComm(P), seed=s),
                ids, weights, P, ROUNDS, seed,
            )
            counts[sample] += 1
        freq = counts / TRIALS
        np.testing.assert_allclose(freq, np.full(N_ITEMS, k / N_ITEMS), atol=0.08)


class TestOrderInsensitivity:
    def test_partitioning_does_not_bias_the_sample(self, weighted_setup):
        """Whether an item arrives early/late or on PE 0/3 must not matter."""
        ids, weights = weighted_setup
        k = 5
        # always deliver item 0 in the first round on PE 0, item 1 in the
        # last round on the last PE; their inclusion frequencies must still
        # follow their weights
        counts = np.zeros(N_ITEMS)
        for seed in range(TRIALS):
            sampler = DistributedReservoirSampler(k, SimComm(P), seed=seed)
            batch = ItemBatch(ids=ids, weights=weights)
            first = batch.take(np.arange(0, N_ITEMS // 2))
            second = batch.take(np.arange(N_ITEMS // 2, N_ITEMS))
            sampler.process_round(first.split(P))
            sampler.process_round(second.split(P))
            counts[sampler.sample_ids()] += 1
        observed = counts / TRIALS
        reference = weighted_inclusion_reference(weights, k, trials=4000, rng=np.random.default_rng(5))
        assert total_variation_distance(observed, reference) < 0.06

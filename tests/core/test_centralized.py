"""Tests for the centralized gathering baseline (Section 4.5)."""

import numpy as np
import pytest

from repro.core import CentralizedGatherSampler
from repro.network import SimComm
from repro.stream import ItemBatch, MiniBatchStream, UnitWeightGenerator


def make_sampler(p=4, k=20, **kwargs):
    return CentralizedGatherSampler(k, SimComm(p), seed=1, **kwargs)


def run_rounds(sampler, stream, rounds):
    out = []
    for _ in range(rounds):
        out.append(sampler.process_round(stream.next_round().batches))
    return out


class TestInvariants:
    def test_sample_size_is_min_k_n(self):
        sampler = make_sampler(p=4, k=30)
        stream = MiniBatchStream(4, 5, seed=2)
        for round_index in range(5):
            sampler.process_round(stream.next_round().batches)
            assert sampler.sample_size() == min(30, 20 * (round_index + 1))

    def test_sample_ids_unique_and_valid(self):
        sampler = make_sampler(p=4, k=25)
        stream = MiniBatchStream(4, 40, seed=3)
        run_rounds(sampler, stream, 4)
        ids = sampler.sample_ids()
        assert len(ids) == 25
        assert len(set(ids.tolist())) == 25
        assert ids.max() < 640

    def test_threshold_is_largest_reservoir_key(self):
        sampler = make_sampler(p=4, k=10)
        stream = MiniBatchStream(4, 20, seed=4)
        run_rounds(sampler, stream, 3)
        keys = [key for _, key in sampler.sample_items()]
        assert sampler.threshold == pytest.approx(max(keys))

    def test_threshold_decreases_over_rounds(self):
        sampler = make_sampler(p=2, k=10)
        stream = MiniBatchStream(2, 30, seed=5)
        thresholds = []
        for _ in range(6):
            sampler.process_round(stream.next_round().batches)
            if sampler.threshold is not None:
                thresholds.append(sampler.threshold)
        assert thresholds == sorted(thresholds, reverse=True)

    def test_first_batch_keeps_only_k_per_pe(self):
        sampler = make_sampler(p=2, k=5)
        stream = MiniBatchStream(2, 1000, seed=6)
        metrics = sampler.process_round(stream.next_round().batches)
        # each PE contributes at most k candidates in the very first batch
        assert metrics.candidates_gathered <= 2 * 5
        assert sampler.sample_size() == 5

    def test_empty_round(self):
        sampler = make_sampler(p=3, k=5)
        metrics = sampler.process_round([ItemBatch.empty()] * 3)
        assert metrics.batch_items == 0
        assert sampler.sample_size() == 0

    def test_wrong_batch_count(self):
        sampler = make_sampler(p=3)
        with pytest.raises(ValueError):
            sampler.process_round([ItemBatch.empty()] * 4)

    def test_uniform_mode(self):
        sampler = make_sampler(p=4, k=10, weighted=False)
        stream = MiniBatchStream(4, 25, weights=UnitWeightGenerator(), seed=7)
        run_rounds(sampler, stream, 3)
        assert sampler.sample_size() == 10
        assert 0.0 < sampler.threshold <= 1.0

    def test_non_default_root(self):
        sampler = CentralizedGatherSampler(10, SimComm(4), root=2, seed=8)
        stream = MiniBatchStream(4, 20, seed=9)
        run_rounds(sampler, stream, 2)
        assert sampler.sample_size() == 10


class TestPhases:
    def test_gather_phase_present(self):
        sampler = make_sampler(p=4, k=10)
        stream = MiniBatchStream(4, 30, seed=10)
        metrics = run_rounds(sampler, stream, 2)[-1]
        assert "gather" in metrics.phase_times
        assert metrics.phase_times["gather"].comm > 0
        assert "select" in metrics.phase_times
        assert metrics.phase_times["select"].local > 0
        assert "threshold" in metrics.phase_times

    def test_steady_state_gathers_few_candidates(self):
        sampler = make_sampler(p=4, k=10)
        stream = MiniBatchStream(4, 100, seed=11)
        metrics = run_rounds(sampler, stream, 8)
        assert metrics[-1].candidates_gathered <= 15

    def test_communication_in_gather_phase(self):
        sampler = make_sampler(p=8, k=10)
        stream = MiniBatchStream(8, 20, seed=12)
        run_rounds(sampler, stream, 2)
        by_phase = sampler.comm.ledger.time_by_phase()
        assert by_phase.get("gather", 0) > 0
        assert by_phase.get("threshold", 0) > 0


class TestAgreementWithDistributed:
    def test_same_sample_size_and_overlapping_behaviour(self):
        from repro.core import DistributedReservoirSampler

        k, p = 20, 4
        stream_a = MiniBatchStream(p, 50, seed=13)
        stream_b = MiniBatchStream(p, 50, seed=13)
        ours = DistributedReservoirSampler(k, SimComm(p), seed=14)
        gather = CentralizedGatherSampler(k, SimComm(p), seed=14)
        for _ in range(4):
            ours.process_round(stream_a.next_round().batches)
            gather.process_round(stream_b.next_round().batches)
        assert ours.sample_size() == gather.sample_size() == k

    def test_preload(self):
        sampler = make_sampler(p=2, k=3)
        sampler.preload(
            [[(0.01, -1)], [(0.02, -2), (0.03, -3)]],
            items_seen=1000,
            total_weight=5e4,
            threshold=0.03,
        )
        assert sampler.sample_size() == 3
        assert sampler.threshold == pytest.approx(0.03)
        with pytest.raises(RuntimeError):
            sampler.preload([[], []], items_seen=1, total_weight=1.0, threshold=0.5)

"""Backend equivalence: SimComm and ProcessComm must produce byte-identical
samples for the same seed.

This is the acceptance gate of the real execution backend: the per-PE
kernels consume the same spawned random streams and the worker-side
collectives apply reductions in the same order as the simulated trees, so
every algorithm must yield exactly the same reservoir contents — ids *and*
keys — and the same threshold trajectory under both backends.
"""

import numpy as np
import pytest

from repro.core import make_distributed_sampler, numba_available
from repro.network import ProcessComm, SimComm
from repro.runtime import ParallelStreamingRun
from repro.stream import MiniBatchStream

ROUNDS = 5
BATCH = 300
SEED = 13

#: kernel-tier axis — the compiled leg self-skips without numba
TIERS = ["numpy", pytest.param("jit", marks=pytest.mark.skipif(
    not numba_available(), reason="numba not installed"))]


def _run_sampler(comm, algorithm, k, p, *, weighted=True, store="merge", kernel_tier="numpy"):
    sampler = make_distributed_sampler(
        algorithm, k, comm, seed=SEED, weighted=weighted, store=store, kernel_tier=kernel_tier
    )
    stream = MiniBatchStream(p, BATCH, seed=SEED + 1)
    thresholds = []
    for _ in range(ROUNDS):
        metrics = sampler.process_round(stream.next_round().batches)
        thresholds.append(metrics.threshold)
    items = sorted(sampler.sample_items())
    return np.sort(sampler.sample_ids()), thresholds, items


@pytest.mark.parametrize("kernel_tier", TIERS)
@pytest.mark.parametrize("payload_transport", ["pickle", "shm"])
@pytest.mark.parametrize(
    "algorithm,k",
    [("ours", 40), ("ours-8", 40), ("gather", 30), ("ours-variable", 25)],
)
def test_samples_byte_identical_across_backends(algorithm, k, payload_transport, kernel_tier):
    p = 2
    sim_ids, sim_thresholds, sim_items = _run_sampler(
        SimComm(p), algorithm, k, p, kernel_tier=kernel_tier
    )
    # shm_min_bytes low enough that the per-round candidate arrays of these
    # small test workloads genuinely take the shared-memory path
    with ProcessComm(p, payload_transport=payload_transport, shm_min_bytes=64) as proc:
        proc_ids, proc_thresholds, proc_items = _run_sampler(
            proc, algorithm, k, p, kernel_tier=kernel_tier
        )
    np.testing.assert_array_equal(sim_ids, proc_ids)
    assert sim_thresholds == proc_thresholds
    assert sim_items == proc_items  # keys too, not just ids


@pytest.mark.parametrize("p", [3, 4, 5, 6])
def test_equivalence_at_higher_pe_counts(p):
    """Non-power-of-two counts exercise the worker allgather's
    gather-then-broadcast fallback, which reuses one ``seq`` for two
    sub-collectives — the mailbox stashing must keep them apart."""
    sim_ids, sim_thresholds, _ = _run_sampler(SimComm(p), "ours", 50, p)
    with ProcessComm(p) as proc:
        proc_ids, proc_thresholds, _ = _run_sampler(proc, "ours", 50, p)
    np.testing.assert_array_equal(sim_ids, proc_ids)
    assert sim_thresholds == proc_thresholds


@pytest.mark.parametrize("p", [3, 5, 6])
@pytest.mark.parametrize("algorithm,k", [("ours", 50), ("gather", 30)])
def test_equivalence_non_power_of_two_under_shm_transport(p, algorithm, k):
    """The shm transport must stay byte-identical on the non-power-of-two
    collective paths too (descriptors through gather+broadcast reuse)."""
    sim_ids, sim_thresholds, sim_items = _run_sampler(SimComm(p), algorithm, k, p)
    with ProcessComm(p, payload_transport="shm", shm_min_bytes=64) as proc:
        proc_ids, proc_thresholds, proc_items = _run_sampler(proc, algorithm, k, p)
    np.testing.assert_array_equal(sim_ids, proc_ids)
    assert sim_thresholds == proc_thresholds
    assert sim_items == proc_items


def test_equivalence_for_uniform_sampling():
    p = 2
    sim_ids, _, sim_items = _run_sampler(SimComm(p), "ours", 35, p, weighted=False)
    with ProcessComm(p) as proc:
        proc_ids, _, proc_items = _run_sampler(proc, "ours", 35, p, weighted=False)
    np.testing.assert_array_equal(sim_ids, proc_ids)
    assert sim_items == proc_items


def test_equivalence_with_btree_store():
    p = 2
    sim_ids, _, _ = _run_sampler(SimComm(p), "ours", 30, p, store="btree")
    with ProcessComm(p) as proc:
        proc_ids, _, _ = _run_sampler(proc, "ours", 30, p, store="btree")
    np.testing.assert_array_equal(sim_ids, proc_ids)


def test_worker_stream_runs_identical_across_backends():
    """The ParallelStreamingRun path (worker-generated batches) is also exact."""
    kwargs = dict(k=40, p=2, batch_size=250, warmup_rounds=1, seed=SEED)
    with ParallelStreamingRun("ours", comm="sim", **kwargs) as sim_run:
        sim_run.run_rounds(4)
        sim_ids = np.sort(sim_run.sample_ids())
    with ParallelStreamingRun("ours", comm="process", **kwargs) as proc_run:
        metrics = proc_run.run_rounds(4)
        proc_ids = np.sort(proc_run.sample_ids())
    np.testing.assert_array_equal(sim_ids, proc_ids)
    assert metrics.wall_time > 0.0
    assert metrics.comm_backend == "process"


def test_process_backend_via_api_string():
    """comm="process" threads through the factory with p=."""
    sampler = make_distributed_sampler("ours", 20, "process", p=2, seed=3)
    try:
        stream = MiniBatchStream(2, 100, seed=4)
        for _ in range(3):
            sampler.process_round(stream.next_round().batches)
        assert len(sampler.sample_ids()) == 20
    finally:
        sampler.comm.shutdown()


class TestRunOwnershipAndMetrics:
    def test_run_owns_comm_built_from_name(self):
        from repro.core import DistributedSamplingRun

        with DistributedSamplingRun("ours", k=10, p=2, batch_size=50, seed=1, comm="process") as run:
            metrics = run.run(2)
            assert metrics.comm_backend == "process"
        with pytest.raises(RuntimeError):  # run owned the comm and shut it down
            run.comm.barrier()

    def test_run_leaves_caller_provided_comm_running(self):
        from repro.core import DistributedSamplingRun
        from repro.network import Communicator

        with ProcessComm(2) as comm:
            with DistributedSamplingRun("ours", k=10, p=2, batch_size=50, seed=1, comm=comm) as run:
                run.run(2)
            # the caller's communicator must survive the run's close()
            assert comm.allreduce([1.0, 1.0], Communicator.SUM) == [2.0, 2.0]

    def test_sim_backend_from_name_uses_machine_cost_model(self):
        from repro.runtime.machine import MachineSpec

        machine = MachineSpec.latency_bound()
        sampler = make_distributed_sampler("ours", 10, "sim", p=2, machine=machine, seed=0)
        assert sampler.comm.cost is machine.comm

    def test_process_round_attributes_insert_phase_time(self):
        with ProcessComm(2) as comm:
            sampler = make_distributed_sampler("ours", 20, comm, seed=2)
            stream = MiniBatchStream(2, 200, seed=3)
            metrics = sampler.process_round(stream.next_round().batches)
            assert metrics.phase_times["insert"].comm > 0.0  # measured dispatch time

"""Tests for local reservoirs (B+ tree / sorted-array backends) and the §5 policy."""

import numpy as np
import pytest

from repro.core import LocalReservoir, LocalThresholdPolicy, SortedArrayStore

BACKENDS = ["btree", "merge", "sorted_array"]


class TestSortedArrayStore:
    def test_insert_keeps_order(self, rng):
        store = SortedArrayStore()
        for i, key in enumerate(rng.random(100)):
            store.insert(float(key), i)
        keys = store.keys_array()
        assert np.all(np.diff(keys) >= 0)
        assert len(store) == 100

    def test_insert_many(self, rng):
        store = SortedArrayStore()
        store.insert_many(rng.random(50), np.arange(50))
        store.insert_many(rng.random(30), np.arange(50, 80))
        assert len(store) == 80
        assert np.all(np.diff(store.keys_array()) >= 0)

    def test_insert_many_empty(self):
        store = SortedArrayStore()
        store.insert_many(np.array([]), np.array([]))
        assert len(store) == 0

    def test_counts_and_kth(self):
        store = SortedArrayStore()
        store.insert_many(np.array([0.1, 0.2, 0.2, 0.4]), np.arange(4))
        assert store.count_le(0.2) == 3
        assert store.count_less(0.2) == 1
        assert store.kth_key(1) == pytest.approx(0.1)
        assert store.kth_key(4) == pytest.approx(0.4)
        assert store.max_key() == pytest.approx(0.4)
        assert store.min_key() == pytest.approx(0.1)

    def test_truncate(self):
        store = SortedArrayStore()
        store.insert_many(np.arange(10, dtype=float), np.arange(10))
        assert store.truncate_to_rank(4) == 6
        assert store.keys_array().tolist() == [0.0, 1.0, 2.0, 3.0]
        assert store.truncate_to_rank(10) == 0

    def test_empty_extremes_raise(self):
        store = SortedArrayStore()
        with pytest.raises(IndexError):
            store.max_key()
        with pytest.raises(IndexError):
            store.min_key()

    def test_items_and_ids(self):
        store = SortedArrayStore()
        store.insert(0.5, 7)
        store.insert(0.1, 3)
        assert list(store.items()) == [(0.1, 3), (0.5, 7)]
        assert store.ids_array().tolist() == [3, 7]


@pytest.mark.parametrize("backend", BACKENDS)
class TestLocalReservoir:
    def test_insert_and_queries(self, backend, rng):
        reservoir = LocalReservoir(backend=backend)
        keys = rng.random(200)
        for i, key in enumerate(keys):
            reservoir.insert(float(key), i)
        ordered = np.sort(keys)
        assert len(reservoir) == 200
        assert reservoir.max_key() == pytest.approx(ordered[-1])
        assert reservoir.min_key() == pytest.approx(ordered[0])
        assert reservoir.kth_key(1) == pytest.approx(ordered[0])
        assert reservoir.kth_key(57) == pytest.approx(ordered[56])
        query = float(rng.random())
        assert reservoir.count_le(query) == int(np.sum(keys <= query))
        assert reservoir.count_less(query) == int(np.sum(keys < query))

    def test_insert_many_matches_individual(self, backend, rng):
        a = LocalReservoir(backend=backend)
        b = LocalReservoir(backend=backend)
        keys = rng.random(100)
        ids = np.arange(100)
        for key, item in zip(keys, ids):
            a.insert(float(key), int(item))
        b.insert_many(keys, ids)
        np.testing.assert_allclose(a.keys_array(), b.keys_array())

    def test_insert_many_length_mismatch(self, backend):
        reservoir = LocalReservoir(backend=backend)
        with pytest.raises(ValueError):
            reservoir.insert_many([0.1, 0.2], [1])

    def test_kth_key_out_of_range(self, backend):
        reservoir = LocalReservoir(backend=backend)
        reservoir.insert(0.5, 1)
        with pytest.raises(IndexError):
            reservoir.kth_key(0)
        with pytest.raises(IndexError):
            reservoir.kth_key(2)

    def test_prune_to_rank(self, backend, rng):
        reservoir = LocalReservoir(backend=backend)
        keys = rng.random(60)
        reservoir.insert_many(keys, np.arange(60))
        removed = reservoir.prune_to_rank(25)
        assert removed == 35
        np.testing.assert_allclose(reservoir.keys_array(), np.sort(keys)[:25])

    def test_prune_above_key_inclusive_and_exclusive(self, backend):
        reservoir = LocalReservoir(backend=backend)
        reservoir.insert_many(np.array([0.1, 0.2, 0.3, 0.4]), np.arange(4))
        copy = LocalReservoir(backend=backend)
        copy.insert_many(np.array([0.1, 0.2, 0.3, 0.4]), np.arange(4))
        assert reservoir.prune_above_key(0.2, inclusive=True) == 2
        assert reservoir.keys_array().tolist() == [0.1, 0.2]
        assert copy.prune_above_key(0.2, inclusive=False) == 3
        assert copy.keys_array().tolist() == [0.1]

    def test_keys_in_rank_range(self, backend, rng):
        reservoir = LocalReservoir(backend=backend)
        keys = rng.random(40)
        reservoir.insert_many(keys, np.arange(40))
        np.testing.assert_allclose(reservoir.keys_in_rank_range(5, 12), np.sort(keys)[5:12])

    def test_items_and_ids(self, backend):
        reservoir = LocalReservoir(backend=backend)
        reservoir.insert(0.7, 42)
        reservoir.insert(0.2, 13)
        assert reservoir.items() == [(0.2, 13), (0.7, 42)]
        assert reservoir.item_ids().tolist() == [13, 42]

    def test_sample_keys_probability_extremes(self, backend, rng):
        reservoir = LocalReservoir(backend=backend)
        reservoir.insert_many(rng.random(50), np.arange(50))
        assert reservoir.sample_keys(0.0, rng).shape == (0,)
        all_keys = reservoir.sample_keys(1.0, rng)
        assert all_keys.shape == (50,)
        limited = reservoir.sample_keys(1.0, rng, limit=5)
        assert limited.shape == (5,)
        np.testing.assert_allclose(limited, reservoir.keys_array()[:5])

    def test_sample_keys_on_empty(self, backend, rng):
        reservoir = LocalReservoir(backend=backend)
        assert reservoir.sample_keys(0.5, rng).shape == (0,)

    def test_kth_keys_vectorized_matches_loop(self, backend, rng):
        """Regression: the vectorized rank query must agree with the old
        element-by-element kth_key loop."""
        reservoir = LocalReservoir(backend=backend)
        reservoir.insert_many(rng.random(64), np.arange(64))
        ranks = np.array([1, 2, 13, 40, 64])
        expected = np.array([reservoir.kth_key(int(r)) for r in ranks])
        np.testing.assert_allclose(reservoir.kth_keys(ranks), expected)

    def test_insert_batch_threshold_and_capacity(self, backend, rng):
        reservoir = LocalReservoir(backend=backend)
        keys = rng.random(200)
        inserted = reservoir.insert_batch(keys, np.arange(200), threshold=0.5, capacity=30)
        assert inserted == int(np.sum(keys < 0.5))
        assert len(reservoir) == min(30, inserted)
        np.testing.assert_allclose(
            reservoir.keys_array(), np.sort(keys[keys < 0.5])[:30]
        )


class TestLocalReservoirConstruction:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            LocalReservoir(backend="skiplist")


class TestLocalThresholdPolicy:
    def test_activation_and_refresh_sizes_match_paper(self):
        policy = LocalThresholdPolicy(k=1000)
        assert policy.activation_size == 1500  # max(1.5k, k+500)
        assert policy.refresh_size == 1250  # max(1.1k, k+250)
        small = LocalThresholdPolicy(k=100)
        assert small.activation_size == 600  # k+500 dominates
        assert small.refresh_size == 350  # k+250 dominates

    def test_applies_to_batch(self):
        policy = LocalThresholdPolicy(k=100)
        assert not policy.applies_to_batch(500)
        assert policy.applies_to_batch(600)

    def test_refresh_prunes_to_k(self, rng):
        policy = LocalThresholdPolicy(k=50)
        reservoir = LocalReservoir()
        reservoir.insert_many(rng.random(400), np.arange(400))
        threshold, removed = policy.refresh_if_needed(reservoir)
        assert removed == 350
        assert len(reservoir) == 50
        assert threshold == pytest.approx(reservoir.max_key())

    def test_no_refresh_below_limit(self, rng):
        policy = LocalThresholdPolicy(k=50)
        reservoir = LocalReservoir()
        reservoir.insert_many(rng.random(200), np.arange(200))  # below refresh size 300
        threshold, removed = policy.refresh_if_needed(reservoir)
        assert removed == 0
        assert len(reservoir) == 200
        assert threshold == pytest.approx(reservoir.kth_key(50))

    def test_returns_none_threshold_while_underfull(self, rng):
        policy = LocalThresholdPolicy(k=50)
        reservoir = LocalReservoir()
        reservoir.insert_many(rng.random(10), np.arange(10))
        threshold, removed = policy.refresh_if_needed(reservoir)
        assert threshold is None and removed == 0

    def test_never_prunes_below_k(self, rng):
        # correctness requirement from Section 5
        policy = LocalThresholdPolicy(k=20)
        reservoir = LocalReservoir()
        reservoir.insert_many(rng.random(1000), np.arange(1000))
        policy.refresh_if_needed(reservoir)
        assert len(reservoir) >= 20

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            LocalThresholdPolicy(k=0)
        with pytest.raises(ValueError):
            LocalThresholdPolicy(k=10, hard_factor=0.5)
        with pytest.raises(ValueError):
            LocalThresholdPolicy(k=10, refresh_factor=0.9)

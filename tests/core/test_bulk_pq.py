"""Tests for the distributed bulk priority-queue view."""

import numpy as np
import pytest

from repro.core import DistributedBulkPriorityQueue, LocalReservoir
from repro.network import SimComm


@pytest.fixture
def queue(rng):
    p = 4
    reservoirs = [LocalReservoir() for _ in range(p)]
    keys = []
    for pe, reservoir in enumerate(reservoirs):
        local = rng.random(25)
        reservoir.insert_many(local, np.arange(pe * 100, pe * 100 + 25))
        keys.extend(local.tolist())
    comm = SimComm(p)
    return DistributedBulkPriorityQueue(reservoirs, comm, seed=0), np.sort(np.array(keys))


class TestQueries:
    def test_global_size(self, queue):
        q, keys = queue
        assert q.global_size() == len(keys)

    def test_global_min_max(self, queue):
        q, keys = queue
        assert q.global_min() == pytest.approx(keys[0])
        assert q.global_max() == pytest.approx(keys[-1])

    def test_global_rank(self, queue, rng):
        q, keys = queue
        for query in rng.random(10):
            assert q.global_rank(query) == int(np.sum(keys <= query))

    def test_global_select(self, queue):
        q, keys = queue
        result = q.global_select(17)
        assert result.key == pytest.approx(keys[16])

    def test_top_k_items_sorted_by_key(self, queue):
        q, keys = queue
        top = q.top_k_items(10)
        assert len(top) == 10
        top_keys = [key for _, key in top]
        assert top_keys == sorted(top_keys)
        np.testing.assert_allclose(top_keys, keys[:10])

    def test_top_k_larger_than_size_returns_all(self, queue):
        q, keys = queue
        assert len(q.top_k_items(10_000)) == len(keys)

    def test_top_k_zero(self, queue):
        q, _ = queue
        assert q.top_k_items(0) == []

    def test_communication_is_charged(self, queue):
        q, _ = queue
        q.global_size()
        assert q.comm.ledger.total_time > 0


class TestPrune:
    def test_prune_to_top_k(self, queue):
        q, keys = queue
        threshold, removed = q.prune_to_top_k(30)
        assert removed == len(keys) - 30
        assert q.global_size() == 30
        assert threshold == pytest.approx(keys[29])

    def test_prune_noop_when_small(self, queue):
        q, keys = queue
        threshold, removed = q.prune_to_top_k(len(keys) + 5)
        assert removed == 0
        assert threshold is None

    def test_mismatched_sizes_rejected(self, rng):
        with pytest.raises(ValueError):
            DistributedBulkPriorityQueue([LocalReservoir()], SimComm(2))

    def test_empty_queue(self):
        q = DistributedBulkPriorityQueue([LocalReservoir(), LocalReservoir()], SimComm(2))
        assert q.global_size() == 0
        assert q.top_k_items(5) == []

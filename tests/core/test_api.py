"""Tests for the high-level convenience API."""

import numpy as np
import pytest

import repro
from repro import DistributedSamplingRun, ReservoirSampler, make_distributed_sampler
from repro.core import (
    CentralizedGatherSampler,
    DistributedReservoirSampler,
    VariableSizeReservoirSampler,
)
from repro.network import SimComm
from repro.selection import MultiPivotSelection, SinglePivotSelection
from repro.stream import MiniBatchStream


class TestReservoirSamplerFacade:
    def test_weighted_feed_and_sample(self, rng):
        sampler = ReservoirSampler(k=10, weighted=True, seed=1)
        sampler.feed(np.arange(100), rng.uniform(1, 5, size=100))
        assert sampler.items_seen == 100
        assert len(sampler.sample_ids()) == 10
        assert sampler.threshold is not None

    def test_uniform_mode(self):
        sampler = ReservoirSampler(k=5, weighted=False, seed=2)
        sampler.feed(np.arange(50))
        assert len(sampler.sample_ids()) == 5

    def test_add_single_items(self):
        sampler = ReservoirSampler(k=3, seed=3)
        assert sampler.add(1, 2.0)
        assert sampler.size == 1

    def test_feed_defaults_to_unit_weights(self):
        sampler = ReservoirSampler(k=4, seed=4)
        sampler.feed([1, 2, 3, 4, 5])
        assert sampler.items_seen == 5

    def test_feed_batch(self):
        from repro.stream import ItemBatch

        sampler = ReservoirSampler(k=2, seed=5)
        sampler.feed_batch(ItemBatch.from_weights([1.0, 2.0, 3.0]))
        assert sampler.items_seen == 3

    def test_sample_with_keys(self):
        sampler = ReservoirSampler(k=2, seed=6)
        sampler.feed([1, 2, 3], [1.0, 1.0, 1.0])
        triples = sampler.sample_with_keys()
        assert len(triples) == 2
        assert all(len(t) == 3 for t in triples)


class TestFactory:
    def test_ours(self):
        sampler = make_distributed_sampler("ours", 10, SimComm(4))
        assert isinstance(sampler, DistributedReservoirSampler)
        assert isinstance(sampler.selection, SinglePivotSelection)

    def test_ours_with_pivot_count(self):
        sampler = make_distributed_sampler("ours-8", 10, SimComm(4))
        assert isinstance(sampler.selection, MultiPivotSelection)
        assert sampler.selection.num_pivots == 8
        sampler = make_distributed_sampler("ours-1", 10, SimComm(4))
        assert isinstance(sampler.selection, SinglePivotSelection)

    def test_gather(self):
        sampler = make_distributed_sampler("gather", 10, SimComm(4))
        assert isinstance(sampler, CentralizedGatherSampler)

    def test_variable(self):
        sampler = make_distributed_sampler("ours-variable", 10, SimComm(4), k_hi=25)
        assert isinstance(sampler, VariableSizeReservoirSampler)
        assert sampler.k_lo == 10 and sampler.k_hi == 25

    def test_variable_default_upper_bound(self):
        sampler = make_distributed_sampler("variable", 10, SimComm(4))
        assert sampler.k_hi == 20

    def test_case_insensitive(self):
        assert isinstance(make_distributed_sampler("OURS", 5, SimComm(2)), DistributedReservoirSampler)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_distributed_sampler("coordinator", 10, SimComm(4))

    def test_uniform_flag_passed_through(self):
        sampler = make_distributed_sampler("ours", 10, SimComm(2), weighted=False)
        assert sampler.weighted is False


class TestDistributedSamplingRun:
    def test_run_by_name(self):
        run = DistributedSamplingRun("ours-8", k=20, p=4, batch_size=50, seed=1)
        metrics = run.run(rounds=3)
        assert metrics.num_rounds == 3
        assert metrics.total_items == 600
        assert len(run.sample_ids()) == 20
        assert metrics.simulated_time > 0

    def test_run_with_sampler_object(self):
        sampler = DistributedReservoirSampler(10, SimComm(2), seed=2)
        run = DistributedSamplingRun(sampler, stream=MiniBatchStream(2, 30, seed=3))
        run.run(rounds=2)
        assert run.sampler is sampler
        assert run.metrics.algorithm == "ours"

    def test_mismatched_stream_rejected(self):
        sampler = DistributedReservoirSampler(10, SimComm(2), seed=4)
        with pytest.raises(ValueError):
            DistributedSamplingRun(sampler, stream=MiniBatchStream(3, 10, seed=5))

    def test_communication_summary(self):
        run = DistributedSamplingRun("gather", k=10, p=4, batch_size=20, seed=6)
        run.run(rounds=2)
        summary = run.communication_summary()
        assert summary["messages"] > 0

    def test_zero_rounds(self):
        run = DistributedSamplingRun("ours", k=5, p=2, batch_size=10, seed=7)
        metrics = run.run(rounds=0)
        assert metrics.num_rounds == 0

    def test_sample_items_pairs(self):
        run = DistributedSamplingRun("ours", k=5, p=2, batch_size=20, seed=8)
        run.run(rounds=2)
        items = run.sample_items()
        assert len(items) == 5
        assert all(isinstance(item_id, int) and key > 0 for item_id, key in items)


class TestTopLevelExports:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)

    def test_main_classes_exported(self):
        for name in [
            "ReservoirSampler",
            "DistributedReservoirSampler",
            "CentralizedGatherSampler",
            "VariableSizeReservoirSampler",
            "SinglePivotSelection",
            "MultiPivotSelection",
            "SimComm",
            "MachineSpec",
            "MiniBatchStream",
        ]:
            assert hasattr(repro, name), name

    def test_all_list_is_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name


class TestStoreThreading:
    """The store backend choice must reach every layer from the facades."""

    def test_reservoir_sampler_store_param(self):
        from repro.core import ReservoirSampler

        sampler = ReservoirSampler(k=10, weighted=True, seed=0, store="merge")
        sampler.feed(np.arange(100), np.ones(100))
        assert len(sampler.sample_ids()) == 10
        uniform = ReservoirSampler(k=5, weighted=False, seed=0, store="btree")
        uniform.feed(np.arange(50))
        assert len(uniform.sample_ids()) == 5

    def test_make_distributed_sampler_store(self):
        from repro.core import make_distributed_sampler
        from repro.network import SimComm

        for algorithm in ("ours", "ours-8", "ours-variable", "gather"):
            for store in ("btree", "merge"):
                sampler = make_distributed_sampler(algorithm, 8, SimComm(2), store=store)
                assert sampler.store == store, (algorithm, store)
        legacy = make_distributed_sampler("ours", 8, SimComm(2), backend="sorted_array")
        assert legacy.store == "merge"

    def test_run_metrics_record_store(self):
        from repro.core import DistributedSamplingRun

        run = DistributedSamplingRun("ours", k=10, p=2, batch_size=30, store="btree", seed=3)
        run.run(2)
        assert run.metrics.store == "btree"
        assert run.metrics.as_dict()["store"] == "btree"

"""Tests for the sequential reservoir samplers."""

import numpy as np
import pytest

from repro.core import SequentialUniformReservoir, SequentialWeightedReservoir
from repro.core.sequential import dense_uniform_sample, dense_weighted_sample
from repro.stream import ItemBatch


class TestWeightedReservoirBasics:
    def test_sample_size_is_min_k_n(self, rng):
        sampler = SequentialWeightedReservoir(k=10, seed=1)
        for i in range(5):
            sampler.insert(i, 1.0)
        assert sampler.size == 5
        assert sampler.threshold is None
        for i in range(5, 50):
            sampler.insert(i, 1.0)
        assert sampler.size == 10
        assert sampler.threshold is not None

    def test_sample_ids_are_unique_and_seen(self):
        sampler = SequentialWeightedReservoir(k=20, seed=2)
        for i in range(200):
            sampler.insert(i, float(i % 7 + 1))
        ids = sampler.sample_ids()
        assert len(ids) == 20
        assert len(set(ids.tolist())) == 20
        assert set(ids.tolist()) <= set(range(200))

    def test_threshold_is_max_key(self):
        sampler = SequentialWeightedReservoir(k=5, seed=3)
        for i in range(100):
            sampler.insert(i, 1.0)
        keys = [key for key, _, _ in sampler.sample_with_keys()]
        assert sampler.threshold == pytest.approx(max(keys))

    def test_threshold_decreases_over_time(self):
        sampler = SequentialWeightedReservoir(k=10, seed=4)
        thresholds = []
        for i in range(2000):
            sampler.insert(i, 1.0)
            if sampler.threshold is not None and i % 200 == 0:
                thresholds.append(sampler.threshold)
        assert thresholds == sorted(thresholds, reverse=True)

    def test_counters(self):
        sampler = SequentialWeightedReservoir(k=5, seed=5)
        batch = ItemBatch.from_weights(np.ones(50))
        inserted = sampler.process(batch)
        assert sampler.items_seen == 50
        assert sampler.total_weight == pytest.approx(50.0)
        assert inserted == sampler.insertions
        assert inserted >= 5

    def test_insertions_grow_logarithmically(self):
        # Efraimidis-Spirakis: expected insertions ~ k * ln(n / k)
        k, n = 20, 20_000
        sampler = SequentialWeightedReservoir(k=k, seed=6)
        for i in range(n):
            sampler.insert(i, 1.0)
        expected = k * (1 + np.log(n / k))
        assert sampler.insertions < 4 * expected
        assert sampler.insertions >= k

    def test_rejects_non_positive_weight(self):
        sampler = SequentialWeightedReservoir(k=2, seed=0)
        with pytest.raises(ValueError):
            sampler.insert(1, 0.0)
        with pytest.raises(ValueError):
            sampler.insert(1, -1.0)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            SequentialWeightedReservoir(k=0)

    def test_extend_interface(self):
        sampler = SequentialWeightedReservoir(k=3, seed=1)
        sampler.extend((i, 1.0) for i in range(10))
        assert sampler.items_seen == 10

    def test_sample_returns_id_weight_pairs(self):
        sampler = SequentialWeightedReservoir(k=3, seed=1)
        sampler.insert(7, 2.5)
        assert sampler.sample() == [(7, 2.5)]


class TestUniformReservoirBasics:
    def test_sample_size(self):
        sampler = SequentialUniformReservoir(k=10, seed=1)
        for i in range(100):
            sampler.insert(i)
        assert sampler.size == 10
        assert sampler.items_seen == 100

    def test_filling_phase(self):
        sampler = SequentialUniformReservoir(k=10, seed=1)
        for i in range(7):
            assert sampler.insert(i)
        assert sampler.sample_ids().tolist() != []
        assert sampler.threshold is None

    def test_process_batch_ignores_weights(self):
        sampler = SequentialUniformReservoir(k=5, seed=2)
        sampler.process(ItemBatch.from_weights([10.0, 0.1, 5.0, 1.0, 2.0, 3.0]))
        assert sampler.items_seen == 6

    def test_skips_keep_items_seen_accurate(self):
        sampler = SequentialUniformReservoir(k=5, seed=3)
        for i in range(10_000):
            sampler.insert(i)
        assert sampler.items_seen == 10_000
        # in steady state only a tiny fraction is inserted
        assert sampler.insertions < 300

    def test_extend_ids(self):
        sampler = SequentialUniformReservoir(k=4, seed=4)
        sampler.extend_ids(range(20))
        assert sampler.items_seen == 20


class TestDenseReferenceSamplers:
    def test_dense_weighted_size(self, rng):
        ids = np.arange(100)
        sample = dense_weighted_sample(ids, np.ones(100), 10, rng)
        assert len(sample) == 10
        assert len(set(sample.tolist())) == 10

    def test_dense_weighted_k_larger_than_n(self, rng):
        sample = dense_weighted_sample(np.arange(5), np.ones(5), 10, rng)
        assert sorted(sample.tolist()) == [0, 1, 2, 3, 4]

    def test_dense_weighted_k_zero(self, rng):
        assert dense_weighted_sample(np.arange(5), np.ones(5), 0, rng).shape == (0,)

    def test_dense_uniform_size(self, rng):
        sample = dense_uniform_sample(np.arange(50), 7, rng)
        assert len(sample) == 7

    def test_dense_weighted_prefers_heavy_items(self, rng):
        # one item with overwhelming weight is almost always sampled
        weights = np.ones(100)
        weights[3] = 10_000.0
        hits = 0
        for seed in range(200):
            sample = dense_weighted_sample(np.arange(100), weights, 5, np.random.default_rng(seed))
            hits += 3 in sample
        assert hits > 190


class TestAgreementWithDenseSampler:
    def test_single_draw_probabilities_match_weights(self):
        # k=1: inclusion probability is exactly w_i / W for the reservoir
        # sampler as well; compare empirical frequencies
        weights = np.array([1.0, 2.0, 4.0, 8.0])
        counts = np.zeros(4)
        trials = 4000
        for seed in range(trials):
            sampler = SequentialWeightedReservoir(k=1, seed=seed)
            for i, w in enumerate(weights):
                sampler.insert(i, float(w))
            counts[sampler.sample_ids()[0]] += 1
        freq = counts / trials
        expected = weights / weights.sum()
        np.testing.assert_allclose(freq, expected, atol=0.03)

    def test_uniform_inclusion_probability_is_k_over_n(self):
        n, k, trials = 40, 8, 1500
        counts = np.zeros(n)
        for seed in range(trials):
            sampler = SequentialUniformReservoir(k=k, seed=seed)
            for i in range(n):
                sampler.insert(i)
            counts[sampler.sample_ids()] += 1
        freq = counts / trials
        np.testing.assert_allclose(freq, np.full(n, k / n), atol=0.05)


class TestStoreBackedSequentialSamplers:
    """The vectorized store-backed batch path must stay a correct sampler."""

    def test_weighted_store_single_draw_matches_weights(self):
        from repro.stream import ItemBatch

        weights = np.array([1.0, 2.0, 4.0, 8.0])
        counts = np.zeros(4)
        trials = 3000
        for seed in range(trials):
            sampler = SequentialWeightedReservoir(k=1, seed=seed, store="merge")
            sampler.process(ItemBatch(ids=np.arange(4), weights=weights))
            counts[sampler.sample_ids()[0]] += 1
        freq = counts / trials
        np.testing.assert_allclose(freq, weights / weights.sum(), atol=0.03)

    def test_weighted_store_invariants(self):
        from repro.stream import ItemBatch

        rng = np.random.default_rng(5)
        sampler = SequentialWeightedReservoir(k=20, seed=9, store="merge")
        for start in range(0, 300, 60):
            ids = np.arange(start, start + 60)
            sampler.process(ItemBatch(ids=ids, weights=rng.uniform(0.5, 3.0, 60)))
        assert sampler.size == 20
        assert sampler.items_seen == 300
        assert sampler.threshold is not None
        sample = sampler.sample()
        assert len(sample) == 20
        assert all(w > 0 for _, w in sample)
        triples = sampler.sample_with_keys()
        keys = [key for key, _, _ in triples]
        assert keys == sorted(keys)
        assert max(keys) == pytest.approx(sampler.threshold)

    def test_uniform_store_inclusion_probability(self):
        from repro.stream import ItemBatch

        n, k, trials = 30, 6, 1200
        counts = np.zeros(n)
        for seed in range(trials):
            sampler = SequentialUniformReservoir(k=k, seed=seed, store="merge")
            sampler.process(ItemBatch(ids=np.arange(n), weights=np.ones(n)))
            counts[sampler.sample_ids()] += 1
        np.testing.assert_allclose(counts / trials, np.full(n, k / n), atol=0.06)

    def test_store_backed_single_insert(self):
        sampler = SequentialUniformReservoir(k=3, seed=1, store="btree")
        for i in range(10):
            sampler.insert(i)
        assert sampler.size == 3
        assert sampler.items_seen == 10

    def test_unknown_store_rejected(self):
        with pytest.raises(ValueError):
            SequentialWeightedReservoir(k=5, store="skiplist")

    def test_insertion_count_matches_reservoir_entries(self):
        """Regression: the store path must count items that actually entered
        the reservoir, not every item that merely passed the prefilter."""
        from repro.stream import ItemBatch

        rng = np.random.default_rng(11)
        sampler = SequentialWeightedReservoir(k=20, seed=2, store="merge")
        first = sampler.process(
            ItemBatch(ids=np.arange(10_000), weights=rng.uniform(0.5, 2.0, 10_000))
        )
        assert first <= 20  # NOT 10_000: only k items can enter a k-reservoir
        assert sampler.insertions == first
        later = sampler.process(
            ItemBatch(ids=np.arange(10_000, 11_000), weights=rng.uniform(0.5, 2.0, 1_000))
        )
        assert 0 <= later <= 20
        assert sampler.insertions == first + later

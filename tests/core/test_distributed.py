"""Tests for the fully distributed reservoir sampler (Algorithm 1)."""

import numpy as np
import pytest

from repro.core import DistributedReservoirSampler, DistributedUniformReservoirSampler
from repro.core.distributed import ReservoirKeySet
from repro.core.local_reservoir import LocalReservoir
from repro.network import SimComm
from repro.selection import MultiPivotSelection, SinglePivotSelection
from repro.stream import ItemBatch, MiniBatchStream, UnitWeightGenerator


def make_sampler(p=4, k=20, **kwargs):
    comm = SimComm(p)
    return DistributedReservoirSampler(k, comm, seed=1, **kwargs)


def run_rounds(sampler, stream, rounds):
    metrics = []
    for _ in range(rounds):
        mb = stream.next_round()
        metrics.append(sampler.process_round(mb.batches))
    return metrics


class TestReservoirKeySet:
    def test_adapts_local_reservoirs(self, rng):
        reservoirs = [LocalReservoir() for _ in range(3)]
        for i, reservoir in enumerate(reservoirs):
            reservoir.insert_many(rng.random(10 * (i + 1)), np.arange(10 * (i + 1)))
        keyset = ReservoirKeySet(reservoirs)
        assert keyset.p == 3
        assert keyset.local_size(2) == 30
        assert keyset.total_size() == 60
        key = reservoirs[0].kth_key(3)
        assert keyset.select_local(0, 3) == key
        assert keyset.count_le(0, key) >= 3

    def test_requires_reservoirs(self):
        with pytest.raises(ValueError):
            ReservoirKeySet([])


class TestInvariants:
    def test_sample_size_is_min_k_n(self):
        sampler = make_sampler(p=4, k=30)
        stream = MiniBatchStream(4, 5, seed=2)
        for round_index in range(6):
            sampler.process_round(stream.next_round().batches)
            expected = min(30, 4 * 5 * (round_index + 1))
            assert sampler.sample_size() == expected

    def test_sample_ids_unique_and_from_stream(self):
        sampler = make_sampler(p=4, k=25)
        stream = MiniBatchStream(4, 50, seed=3)
        run_rounds(sampler, stream, 5)
        ids = sampler.sample_ids()
        assert len(ids) == 25
        assert len(set(ids.tolist())) == 25
        assert ids.min() >= 0 and ids.max() < 1000

    def test_threshold_is_kth_smallest_key_globally(self):
        sampler = make_sampler(p=4, k=15)
        stream = MiniBatchStream(4, 30, seed=4)
        run_rounds(sampler, stream, 4)
        keys = np.sort(np.concatenate([r.keys_array() for r in sampler.reservoirs]))
        assert len(keys) == 15
        assert sampler.threshold == pytest.approx(keys[-1])

    def test_no_local_key_exceeds_threshold(self):
        sampler = make_sampler(p=8, k=40)
        stream = MiniBatchStream(8, 25, seed=5)
        run_rounds(sampler, stream, 5)
        for reservoir in sampler.reservoirs:
            if len(reservoir):
                assert reservoir.max_key() <= sampler.threshold + 1e-15

    def test_threshold_monotonically_decreases(self):
        sampler = make_sampler(p=4, k=20)
        stream = MiniBatchStream(4, 40, seed=6)
        thresholds = []
        for _ in range(6):
            sampler.process_round(stream.next_round().batches)
            if sampler.threshold is not None:
                thresholds.append(sampler.threshold)
        assert thresholds == sorted(thresholds, reverse=True)

    def test_items_seen_and_weight_accumulate(self):
        sampler = make_sampler(p=2, k=5)
        stream = MiniBatchStream(2, 10, weights=UnitWeightGenerator(), seed=7)
        run_rounds(sampler, stream, 3)
        assert sampler.items_seen == 60
        assert sampler.total_weight == pytest.approx(60.0)
        assert sampler.rounds_processed == 3

    def test_empty_batches_are_fine(self):
        sampler = make_sampler(p=3, k=5)
        empty = [ItemBatch.empty() for _ in range(3)]
        metrics = sampler.process_round(empty)
        assert metrics.batch_items == 0
        assert sampler.sample_size() == 0
        # an empty round after data must not disturb the sample
        stream = MiniBatchStream(3, 10, seed=8)
        sampler.process_round(stream.next_round().batches)
        before = sorted(sampler.sample_ids().tolist())
        sampler.process_round(empty)
        assert sorted(sampler.sample_ids().tolist()) == before

    def test_wrong_batch_count_rejected(self):
        sampler = make_sampler(p=3)
        with pytest.raises(ValueError):
            sampler.process_round([ItemBatch.empty()] * 2)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            make_sampler(k=0)


class TestBackendsAndSelections:
    @pytest.mark.parametrize("backend", ["btree", "merge", "sorted_array"])
    def test_backends_agree_on_sample_size(self, backend):
        sampler = make_sampler(p=4, k=20, backend=backend)
        stream = MiniBatchStream(4, 30, seed=9)
        run_rounds(sampler, stream, 4)
        assert sampler.sample_size() == 20

    def test_store_kwarg_and_backend_alias(self):
        assert make_sampler(store="btree").store == "btree"
        assert make_sampler(store="merge").store == "merge"
        # deprecated alias still works and takes precedence
        assert make_sampler(backend="sorted_array").store == "merge"
        assert make_sampler().store == "merge"
        with pytest.raises(ValueError):
            make_sampler(store="skiplist")

    @pytest.mark.parametrize(
        "selection", [SinglePivotSelection(), MultiPivotSelection(4), MultiPivotSelection(8)],
        ids=["single", "multi4", "multi8"],
    )
    def test_selection_algorithms_give_exact_sample_size(self, selection):
        comm = SimComm(6)
        sampler = DistributedReservoirSampler(33, comm, selection=selection, seed=10)
        stream = MiniBatchStream(6, 20, seed=11)
        run_rounds(sampler, stream, 4)
        assert sampler.sample_size() == 33
        keys = np.sort(np.concatenate([r.keys_array() for r in sampler.reservoirs]))
        assert sampler.threshold == pytest.approx(keys[-1])

    def test_local_thresholding_limits_first_batch_insertions(self):
        k = 10
        p = 2
        big_batch = 3000  # far above max(1.5k, k+500) = 510
        with_policy = DistributedReservoirSampler(k, SimComm(p), seed=12, local_thresholding=True)
        without_policy = DistributedReservoirSampler(k, SimComm(p), seed=12, local_thresholding=False)
        stream_a = MiniBatchStream(p, big_batch, seed=13)
        stream_b = MiniBatchStream(p, big_batch, seed=13)
        metrics_a = with_policy.process_round(stream_a.next_round().batches)
        metrics_b = without_policy.process_round(stream_b.next_round().batches)
        assert metrics_b.max_insertions == big_batch
        assert metrics_a.max_insertions < big_batch
        # both end with a correct sample
        assert with_policy.sample_size() == k
        assert without_policy.sample_size() == k

    def test_uniform_sampler_uses_uniform_keys(self):
        comm = SimComm(4)
        sampler = DistributedUniformReservoirSampler(10, comm, seed=14)
        stream = MiniBatchStream(4, 20, weights=UnitWeightGenerator(), seed=15)
        run_rounds(sampler, stream, 4)
        assert sampler.sample_size() == 10
        assert 0.0 < sampler.threshold <= 1.0
        for reservoir in sampler.reservoirs:
            for key, _ in reservoir.items():
                assert 0.0 < key <= 1.0


class TestRoundMetrics:
    def test_phase_times_present_and_positive(self):
        sampler = make_sampler(p=4, k=10)
        stream = MiniBatchStream(4, 50, seed=16)
        metrics = run_rounds(sampler, stream, 3)
        last = metrics[-1]
        assert "insert" in last.phase_times
        assert "select" in last.phase_times
        assert "threshold" in last.phase_times
        assert last.simulated_time > 0
        assert last.phase_times["insert"].local > 0
        assert last.phase_times["select"].comm > 0

    def test_selection_stats_recorded_once_over_k(self):
        sampler = make_sampler(p=4, k=10)
        stream = MiniBatchStream(4, 50, seed=17)
        metrics = run_rounds(sampler, stream, 2)
        assert metrics[0].selection_ran
        assert metrics[0].selection_stats is not None
        assert metrics[0].selection_stats.recursion_depth >= 0

    def test_no_selection_before_k_items(self):
        sampler = make_sampler(p=2, k=100)
        stream = MiniBatchStream(2, 10, seed=18)
        metrics = sampler.process_round(stream.next_round().batches)
        assert not metrics.selection_ran
        assert sampler.threshold is None

    def test_insertions_per_pe_recorded(self):
        sampler = make_sampler(p=3, k=12)
        stream = MiniBatchStream(3, 20, seed=19)
        metrics = sampler.process_round(stream.next_round().batches)
        assert len(metrics.insertions_per_pe) == 3
        assert sum(metrics.insertions_per_pe) == 60  # first batch inserts everything

    def test_steady_state_insertions_are_few(self):
        sampler = make_sampler(p=4, k=20)
        stream = MiniBatchStream(4, 100, seed=20)
        metrics = run_rounds(sampler, stream, 10)
        # by round 10, n = 4000 >> k = 20, so per-round insertions ~ k/round
        assert metrics[-1].total_insertions <= 20

    def test_communication_charged_to_ledger(self):
        sampler = make_sampler(p=8, k=10)
        stream = MiniBatchStream(8, 20, seed=21)
        run_rounds(sampler, stream, 2)
        summary = sampler.comm.ledger.summary()
        assert summary["messages"] > 0
        assert set(summary["time_by_phase"]) >= {"select", "threshold"}


class TestPreload:
    def test_preload_installs_state(self):
        sampler = make_sampler(p=2, k=4)
        per_pe = [[(0.001, -1), (0.002, -2)], [(0.003, -3), (0.004, -4)]]
        sampler.preload(per_pe, items_seen=10_000, total_weight=5e5, threshold=0.004)
        assert sampler.sample_size() == 4
        assert sampler.items_seen == 10_000
        assert sampler.threshold == pytest.approx(0.004)

    def test_preload_requires_fresh_sampler(self):
        sampler = make_sampler(p=2, k=4)
        stream = MiniBatchStream(2, 5, seed=0)
        sampler.process_round(stream.next_round().batches)
        with pytest.raises(RuntimeError):
            sampler.preload([[], []], items_seen=1, total_weight=1.0, threshold=0.5)

    def test_preload_wrong_pe_count(self):
        sampler = make_sampler(p=2, k=4)
        with pytest.raises(ValueError):
            sampler.preload([[]], items_seen=1, total_weight=1.0, threshold=0.5)

    def test_sampling_continues_correctly_after_preload(self):
        sampler = make_sampler(p=2, k=4)
        per_pe = [[(0.001, -1), (0.002, -2)], [(0.003, -3), (0.004, -4)]]
        sampler.preload(per_pe, items_seen=100_000, total_weight=5e6, threshold=0.004)
        stream = MiniBatchStream(2, 50, seed=22)
        run_rounds(sampler, stream, 3)
        assert sampler.sample_size() == 4
        assert sampler.threshold <= 0.004

"""Kernel-tier gating, graceful degradation, and numpy/jit bit-identity.

The compiled tier is an *optional* acceleration: ``"auto"`` silently falls
back to numpy when numba is missing, ``"jit"`` raises an actionable error,
and whichever tier runs must produce byte-identical samples.  The
availability flag is stubbed via monkeypatch so both degradation paths are
unit-tested regardless of whether numba is installed in this environment;
the true compiled-path tests skip-mark themselves when it is not.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.api as apimod
from repro.core import DistributedSamplingRun, ReservoirSampler, jit_kernels
from repro.core import keys as keymod
from repro.core.jit_kernels import (
    KERNEL_TIERS,
    jump_positions,
    normalize_kernel_tier,
    numba_available,
    resolve_kernel_tier,
)
from repro.core.store import MergeStore, make_store
from repro.network import SimComm
from repro.stream import MiniBatchStream

requires_numba = pytest.mark.skipif(not numba_available(), reason="numba not installed")

#: tier axis for equivalence parametrization — the jit leg self-skips
TIER_PARAMS = ["numpy", pytest.param("jit", marks=requires_numba)]


# ---------------------------------------------------------------------------
# tier normalization / resolution
# ---------------------------------------------------------------------------
class TestTierResolution:
    def test_tier_constants(self):
        assert KERNEL_TIERS == ("numpy", "jit", "auto")

    @pytest.mark.parametrize("raw,expected", [("numpy", "numpy"), ("  NumPy ", "numpy"), ("AUTO", "auto"), ("jit", "jit")])
    def test_normalize_accepts_known_tiers(self, raw, expected):
        assert normalize_kernel_tier(raw) == expected

    @pytest.mark.parametrize("bad", ["cython", "", "fast", None, 3])
    def test_normalize_rejects_unknown_tier(self, bad):
        with pytest.raises(ValueError, match="kernel_tier"):
            normalize_kernel_tier(bad)

    def test_numpy_resolves_to_itself(self):
        assert resolve_kernel_tier("numpy") == "numpy"

    def test_auto_silently_falls_back_without_numba(self, monkeypatch):
        monkeypatch.setattr(jit_kernels, "NUMBA_AVAILABLE", False)
        assert resolve_kernel_tier("auto") == "numpy"

    def test_auto_prefers_jit_with_numba(self, monkeypatch):
        monkeypatch.setattr(jit_kernels, "NUMBA_AVAILABLE", True)
        assert resolve_kernel_tier("auto") == "jit"

    def test_jit_without_numba_raises_actionable_error(self, monkeypatch):
        monkeypatch.setattr(jit_kernels, "NUMBA_AVAILABLE", False)
        monkeypatch.setattr(jit_kernels, "NUMBA_IMPORT_ERROR", "No module named 'numba'")
        with pytest.raises(RuntimeError) as err:
            resolve_kernel_tier("jit")
        message = str(err.value)
        # actionable: names the missing dependency, how to install it, and
        # the silent-fallback alternative
        assert "numba" in message
        assert "pip install" in message
        assert "auto" in message
        assert "No module named 'numba'" in message

    def test_numba_available_reflects_flag(self, monkeypatch):
        monkeypatch.setattr(jit_kernels, "NUMBA_AVAILABLE", True)
        assert jit_kernels.numba_available()
        monkeypatch.setattr(jit_kernels, "NUMBA_AVAILABLE", False)
        assert not jit_kernels.numba_available()


# ---------------------------------------------------------------------------
# graceful degradation through the public API
# ---------------------------------------------------------------------------
class TestGracefulDegradation:
    def test_sequential_sampler_jit_without_numba_raises(self, monkeypatch):
        monkeypatch.setattr(jit_kernels, "NUMBA_AVAILABLE", False)
        with pytest.raises(RuntimeError, match="numba"):
            ReservoirSampler(10, kernel_tier="jit")

    def test_sequential_sampler_auto_falls_back(self, monkeypatch):
        monkeypatch.setattr(jit_kernels, "NUMBA_AVAILABLE", False)
        sampler = ReservoirSampler(10, store="merge", kernel_tier="auto")
        assert sampler.kernel_tier == "numpy"
        for i in range(100):
            sampler.add(i, 1.0 + (i % 7))
        assert sampler.size == 10

    def test_distributed_factory_fails_before_building_comm(self, monkeypatch):
        """kernel_tier='jit' without numba must error out *before* the
        communicator (and its worker processes) are created, so nothing
        can leak."""
        monkeypatch.setattr(jit_kernels, "NUMBA_AVAILABLE", False)
        calls = []

        def spy_resolve_comm(*args, **kwargs):
            calls.append(args)
            raise AssertionError("communicator built after the tier error")

        monkeypatch.setattr(apimod, "_resolve_comm", spy_resolve_comm)
        with pytest.raises(RuntimeError, match="numba"):
            apimod.make_distributed_sampler("ours", 10, "process", p=2, kernel_tier="jit")
        assert calls == []  # no spawn attempt at all

    def test_run_metrics_record_resolved_tier(self, monkeypatch):
        monkeypatch.setattr(jit_kernels, "NUMBA_AVAILABLE", False)
        with DistributedSamplingRun(
            "ours", k=10, p=2, batch_size=50, seed=1, comm="sim", kernel_tier="auto"
        ) as run:
            run.run(2)
            assert run.metrics.kernel_tier == "numpy"
            assert run.metrics.as_dict()["kernel_tier"] == "numpy"

    def test_jit_wrappers_raise_without_numba(self, monkeypatch):
        monkeypatch.setattr(jit_kernels, "NUMBA_AVAILABLE", False)
        rng = np.random.default_rng(0)
        with pytest.raises(RuntimeError, match="numba"):
            jit_kernels.weighted_jump_positions_jit(np.ones(4), 0.5, rng)
        with pytest.raises(RuntimeError, match="numba"):
            jit_kernels.uniform_jump_positions_jit(4, 0.5, rng)
        with pytest.raises(RuntimeError, match="numba"):
            jit_kernels.merge_sorted_jit(
                np.ones(1), np.ones(1, dtype=np.int64), np.ones(1), np.ones(1, dtype=np.int64)
            )
        with pytest.raises(RuntimeError, match="numba"):
            jit_kernels.take_ranks_jit(np.ones(3), np.array([1]))

    def test_dispatcher_requires_weights_for_weighted(self):
        with pytest.raises(ValueError, match="weights"):
            jump_positions(0.5, np.random.default_rng(0), weighted=True, tier="numpy")

    def test_store_rejects_unknown_tier(self):
        with pytest.raises(ValueError, match="kernel_tier"):
            MergeStore(kernel_tier="fast")
        with pytest.raises(ValueError, match="kernel_tier"):
            make_store("btree", kernel_tier="fast")  # validated even when unused


# ---------------------------------------------------------------------------
# per-item reference walks: jump skipping visits exactly the items that
# item-by-item traversal with the same random stream would have admitted
# ---------------------------------------------------------------------------
_TINY = float(np.finfo(np.float64).tiny)


def _reference_weighted_walk(weights, threshold, rng):
    """Item-by-item replay of the weighted jump traversal.

    Walks the batch one item at a time (no ``searchsorted``, no resumable
    frontier) while consuming the random stream exactly like the batch
    kernels, so any divergence in which items the jump kernels visit — or
    in the keys they assign — shows up as a bitwise mismatch.
    """
    weights = [float(w) for w in weights]
    n = len(weights)
    if n == 0:
        return [], []
    prefix_sums = []
    running = 0.0
    for w in weights:  # left-to-right accumulate == np.cumsum
        running += w
        prefix_sums.append(running)
    total = prefix_sums[-1]
    indices, keys = [], []
    consumed = 0.0
    while True:
        skip = -math.log(1.0 - rng.random()) / threshold
        target = consumed + skip
        if target > total or not math.isfinite(target):
            break
        j = 0  # from-scratch per-item scan: first inclusive prefix >= target
        while j < n and prefix_sums[j] < target:
            j += 1
        if j >= n:
            break
        w = weights[j]
        lower = math.exp(-threshold * w)
        u = max(lower + (1.0 - rng.random()) * (1.0 - lower), _TINY)
        indices.append(j)
        keys.append(-math.log(u) / w)
        consumed = prefix_sums[j]
        if j == n - 1:
            break
    return indices, keys


def _reference_uniform_walk(count, threshold, rng):
    """Item-by-item replay of the geometric jump traversal: the skip
    budget is spent one item at a time instead of one jump."""
    indices, keys = [], []
    position = -1
    while True:
        if threshold >= 1.0:
            skip = 0
        else:
            skip = int(math.floor(math.log(1.0 - rng.random()) / math.log(1.0 - threshold)))
        position += 1
        while skip > 0 and position < count:
            skip -= 1
            position += 1
        if position >= count:
            break
        indices.append(position)
        keys.append((1.0 - rng.random()) * threshold)
    return indices, keys


class TestJumpSkippingVisitsExactlyTheAdmittedItems:
    @pytest.mark.parametrize("tier", TIER_PARAMS)
    @settings(max_examples=60, deadline=None)
    @given(
        weights=st.lists(
            st.floats(min_value=0.01, max_value=10.0, allow_nan=False),
            min_size=0,
            max_size=60,
        ),
        threshold=st.floats(min_value=0.05, max_value=5.0, allow_nan=False),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_weighted_jumps_match_per_item_walk(self, tier, weights, threshold, seed):
        weights = np.asarray(weights, dtype=np.float64)
        idx, keys = jump_positions(
            threshold,
            np.random.default_rng(seed),
            weighted=True,
            tier=tier,
            weights=weights,
        )
        ref_idx, ref_keys = _reference_weighted_walk(
            weights, threshold, np.random.default_rng(seed)
        )
        np.testing.assert_array_equal(idx, np.asarray(ref_idx, dtype=np.int64))
        np.testing.assert_array_equal(keys, np.asarray(ref_keys, dtype=np.float64))
        assert np.all(keys < threshold)
        assert np.all(np.diff(idx) >= 0)  # visited in batch order

    @pytest.mark.parametrize("tier", TIER_PARAMS)
    @settings(max_examples=60, deadline=None)
    @given(
        count=st.integers(min_value=0, max_value=400),
        threshold=st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_uniform_jumps_match_per_item_walk(self, tier, count, threshold, seed):
        idx, keys = jump_positions(
            threshold, np.random.default_rng(seed), weighted=False, tier=tier, count=count
        )
        ref_idx, ref_keys = _reference_uniform_walk(
            count, threshold, np.random.default_rng(seed)
        )
        np.testing.assert_array_equal(idx, np.asarray(ref_idx, dtype=np.int64))
        np.testing.assert_array_equal(keys, np.asarray(ref_keys, dtype=np.float64))
        assert np.all(np.diff(idx) > 0)  # uniform jumps never revisit an item


# ---------------------------------------------------------------------------
# compiled-tier bit-identity (run only where numba is installed)
# ---------------------------------------------------------------------------
@requires_numba
class TestCompiledTierBitIdentity:
    @pytest.mark.parametrize("seed", [0, 7, 991])
    def test_weighted_jump_kernels_identical(self, seed):
        weights = np.random.default_rng(seed).uniform(0.05, 8.0, size=500)
        idx_np, keys_np = keymod.weighted_jump_positions(
            weights, 0.8, np.random.default_rng(seed + 1)
        )
        idx_jit, keys_jit = jit_kernels.weighted_jump_positions_jit(
            weights, 0.8, np.random.default_rng(seed + 1)
        )
        np.testing.assert_array_equal(idx_np, idx_jit)
        np.testing.assert_array_equal(keys_np, keys_jit)

    @pytest.mark.parametrize("threshold", [0.01, 0.3, 1.0])
    def test_uniform_jump_kernels_identical(self, threshold):
        idx_np, keys_np = keymod.uniform_jump_positions(
            2000, threshold, np.random.default_rng(5)
        )
        idx_jit, keys_jit = jit_kernels.uniform_jump_positions_jit(
            2000, threshold, np.random.default_rng(5)
        )
        np.testing.assert_array_equal(idx_np, idx_jit)
        np.testing.assert_array_equal(keys_np, keys_jit)

    def test_merge_store_identical_under_both_tiers(self):
        rng = np.random.default_rng(3)
        stores = {tier: MergeStore(kernel_tier=tier) for tier in ("numpy", "jit")}
        next_id = 0
        for _ in range(30):
            n = int(rng.integers(0, 40))
            keys = rng.uniform(0.0, 1.0, size=n)
            ids = np.arange(next_id, next_id + n, dtype=np.int64)
            next_id += n
            for store in stores.values():
                store.insert_batch(keys, ids, threshold=0.7 if next_id % 2 else None)
            if next_id % 3 == 0:
                for store in stores.values():
                    store.prune_to_rank(25)
        np.testing.assert_array_equal(
            stores["numpy"].keys_array(), stores["jit"].keys_array()
        )
        np.testing.assert_array_equal(stores["numpy"].ids_array(), stores["jit"].ids_array())

    def test_merge_tie_semantics_old_entries_first(self):
        """Equal keys keep existing entries before the incoming batch —
        the compiled two-pointer merge must preserve MergeStore's
        ``searchsorted(side="right")`` convention exactly."""
        old_keys = np.array([0.25, 0.5, 0.5])
        old_ids = np.array([1, 2, 3], dtype=np.int64)
        new_keys = np.array([0.25, 0.5, 0.75])
        new_ids = np.array([10, 11, 12], dtype=np.int64)
        merged_keys, merged_ids = jit_kernels.merge_sorted_jit(
            old_keys, old_ids, new_keys, new_ids
        )
        expected_ids = np.array([1, 10, 2, 3, 11, 12], dtype=np.int64)
        np.testing.assert_array_equal(merged_ids, expected_ids)
        np.testing.assert_array_equal(merged_keys, np.sort(np.concatenate([old_keys, new_keys])))

    def test_take_ranks_matches_numpy_fancy_indexing(self):
        keys = np.sort(np.random.default_rng(11).uniform(size=64))
        ranks = np.array([1, 2, 17, 64], dtype=np.int64)
        np.testing.assert_array_equal(jit_kernels.take_ranks_jit(keys, ranks), keys[ranks - 1])

    def test_distributed_samples_identical_across_tiers(self):
        samples = {}
        for tier in ("numpy", "jit"):
            sampler = apimod.make_distributed_sampler(
                "ours", 30, SimComm(4), seed=17, kernel_tier=tier
            )
            stream = MiniBatchStream(4, 200, seed=18)
            thresholds = []
            for _ in range(4):
                thresholds.append(sampler.process_round(stream.next_round().batches).threshold)
            samples[tier] = (sorted(sampler.sample_items()), thresholds)
        assert samples["numpy"] == samples["jit"]

"""Tests for the variable-reservoir-size sampler (Section 4.4)."""

import numpy as np
import pytest

from repro.core import VariableSizeReservoirSampler
from repro.network import SimComm
from repro.stream import MiniBatchStream


def make_sampler(p=4, k_lo=20, k_hi=40, **kwargs):
    return VariableSizeReservoirSampler(k_lo, k_hi, SimComm(p), seed=1, **kwargs)


class TestSizeBand:
    def test_sample_size_stays_in_band(self):
        sampler = make_sampler(p=4, k_lo=20, k_hi=40)
        stream = MiniBatchStream(4, 15, seed=2)
        for round_index in range(8):
            sampler.process_round(stream.next_round().batches)
            n = 60 * (round_index + 1)
            size = sampler.sample_size()
            if n <= 40:
                assert size == n
            else:
                assert 20 <= size <= 40

    def test_small_stream_keeps_everything(self):
        sampler = make_sampler(p=2, k_lo=50, k_hi=100)
        stream = MiniBatchStream(2, 10, seed=3)
        for _ in range(3):
            sampler.process_round(stream.next_round().batches)
        assert sampler.sample_size() == 60  # below k_hi: nothing discarded
        assert sampler.threshold is None

    def test_invalid_band(self):
        with pytest.raises(ValueError):
            VariableSizeReservoirSampler(10, 5, SimComm(2))
        with pytest.raises(ValueError):
            VariableSizeReservoirSampler(0, 5, SimComm(2))

    def test_degenerate_band_equals_fixed_k(self):
        sampler = make_sampler(p=2, k_lo=10, k_hi=10)
        stream = MiniBatchStream(2, 20, seed=4)
        for _ in range(4):
            sampler.process_round(stream.next_round().batches)
        assert sampler.sample_size() == 10


class TestSelectionFrequency:
    def test_selection_skipped_while_inside_band(self):
        sampler = make_sampler(p=4, k_lo=50, k_hi=200)
        stream = MiniBatchStream(4, 10, seed=5)
        for _ in range(3):  # 120 items total, below k_hi
            sampler.process_round(stream.next_round().batches)
        assert sampler.selections_run == 0
        assert sampler.rounds_without_selection == 3

    def test_selection_runs_once_band_exceeded(self):
        sampler = make_sampler(p=4, k_lo=10, k_hi=30)
        stream = MiniBatchStream(4, 20, seed=6)
        sampler.process_round(stream.next_round().batches)  # 80 items > 30
        assert sampler.selections_run == 1
        assert 10 <= sampler.sample_size() <= 30

    def test_variable_needs_fewer_selections_than_fixed(self):
        from repro.core import DistributedReservoirSampler

        p, rounds = 4, 12
        stream_a = MiniBatchStream(p, 10, seed=7)
        stream_b = MiniBatchStream(p, 10, seed=7)
        fixed = DistributedReservoirSampler(30, SimComm(p), seed=8)
        variable = VariableSizeReservoirSampler(30, 90, SimComm(p), seed=8)
        fixed_selections = 0
        for _ in range(rounds):
            metrics = fixed.process_round(stream_a.next_round().batches)
            fixed_selections += int(metrics.selection_ran)
            variable.process_round(stream_b.next_round().batches)
        assert variable.selections_run < fixed_selections

    def test_sample_is_subset_of_stream_ids(self):
        sampler = make_sampler(p=4, k_lo=15, k_hi=25)
        stream = MiniBatchStream(4, 30, seed=9)
        for _ in range(4):
            sampler.process_round(stream.next_round().batches)
        ids = sampler.sample_ids()
        assert len(set(ids.tolist())) == len(ids)
        assert ids.max() < 480

"""Tests for key generation and skip values (exponential/geometric jumps)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats

from repro.core import keys as keymod


class TestExponentialKeys:
    def test_shape_and_positivity(self, rng):
        keys = keymod.exponential_keys(np.full(1000, 2.0), rng)
        assert keys.shape == (1000,)
        assert np.all(keys > 0)

    def test_empty_input(self, rng):
        assert keymod.exponential_keys(np.array([]), rng).shape == (0,)

    def test_distribution_is_exponential_with_rate_w(self, rng):
        w = 3.0
        keys = keymod.exponential_keys(np.full(20_000, w), rng)
        # mean of Exp(rate w) is 1/w
        assert keys.mean() == pytest.approx(1.0 / w, rel=0.05)
        # Kolmogorov-Smirnov test against the exponential distribution
        _, p_value = stats.kstest(keys, "expon", args=(0, 1.0 / w))
        assert p_value > 1e-4

    def test_heavier_items_get_smaller_keys(self, rng):
        light = keymod.exponential_keys(np.full(20_000, 1.0), rng)
        heavy = keymod.exponential_keys(np.full(20_000, 10.0), rng)
        assert heavy.mean() < light.mean() / 5

    def test_rejects_invalid_weights(self, rng):
        with pytest.raises(ValueError):
            keymod.exponential_keys(np.array([1.0, -1.0]), rng)


class TestUniformKeys:
    def test_range(self, rng):
        keys = keymod.uniform_keys(10_000, rng)
        assert np.all(keys > 0) and np.all(keys <= 1.0)

    def test_uniformity(self, rng):
        keys = keymod.uniform_keys(20_000, rng)
        _, p_value = stats.kstest(keys, "uniform")
        assert p_value > 1e-4

    def test_negative_count_rejected(self, rng):
        with pytest.raises(ValueError):
            keymod.uniform_keys(-1, rng)


class TestScalarSkips:
    def test_weighted_skip_is_exponential_with_rate_T(self, rng):
        threshold = 0.5
        skips = np.array([keymod.weighted_skip(threshold, rng) for _ in range(20_000)])
        assert skips.mean() == pytest.approx(1.0 / threshold, rel=0.05)

    def test_weighted_skip_requires_positive_threshold(self, rng):
        with pytest.raises(ValueError):
            keymod.weighted_skip(0.0, rng)

    def test_weighted_key_below_threshold_is_below(self, rng):
        for _ in range(500):
            w = float(rng.uniform(0.1, 10.0))
            t = float(rng.uniform(0.01, 5.0))
            key = keymod.weighted_key_below_threshold(w, t, rng)
            assert 0.0 < key <= t + 1e-12

    def test_weighted_key_conditional_distribution(self, rng):
        # conditional on being below T, the key must follow the truncated
        # Exp(w) distribution; check via the conditional CDF at T/2
        w, t = 2.0, 0.8
        keys = np.array([keymod.weighted_key_below_threshold(w, t, rng) for _ in range(20_000)])
        expected = (1 - math.exp(-w * t / 2)) / (1 - math.exp(-w * t))
        observed = np.mean(keys <= t / 2)
        assert observed == pytest.approx(expected, abs=0.02)

    def test_geometric_skip_distribution(self, rng):
        t = 0.25
        skips = np.array([keymod.geometric_skip(t, rng) for _ in range(20_000)])
        assert np.all(skips >= 0)
        # geometric with success probability t has mean (1-t)/t
        assert skips.mean() == pytest.approx((1 - t) / t, rel=0.06)

    def test_geometric_skip_threshold_one(self, rng):
        assert keymod.geometric_skip(1.0, rng) == 0

    def test_geometric_skip_invalid_threshold(self, rng):
        with pytest.raises(ValueError):
            keymod.geometric_skip(0.0, rng)
        with pytest.raises(ValueError):
            keymod.geometric_skip(1.5, rng)

    def test_uniform_key_below_threshold(self, rng):
        keys = np.array([keymod.uniform_key_below_threshold(0.3, rng) for _ in range(5000)])
        assert np.all(keys > 0) and np.all(keys <= 0.3)
        # uniform in (0, 0.3]
        assert keys.mean() == pytest.approx(0.15, abs=0.01)


class TestWeightedJumpKernel:
    def test_returned_keys_below_threshold(self, rng):
        weights = rng.uniform(0.1, 10.0, size=5000)
        idx, keys = keymod.weighted_jump_positions(weights, 0.05, rng)
        assert np.all(keys < 0.05)
        assert np.all(np.diff(idx) > 0)  # strictly increasing positions
        assert np.all((idx >= 0) & (idx < 5000))

    def test_empty_batch(self, rng):
        idx, keys = keymod.weighted_jump_positions(np.array([]), 0.5, rng)
        assert idx.shape == (0,) and keys.shape == (0,)

    def test_huge_threshold_accepts_everything(self, rng):
        weights = rng.uniform(0.5, 1.0, size=200)
        idx, keys = keymod.weighted_jump_positions(weights, 1e9, rng)
        assert len(idx) == 200

    def test_tiny_threshold_accepts_almost_nothing(self, rng):
        weights = rng.uniform(0.5, 1.0, size=10_000)
        idx, _ = keymod.weighted_jump_positions(weights, 1e-9, rng)
        assert len(idx) <= 2

    def test_acceptance_count_matches_dense_kernel(self):
        # The jump kernel and the dense kernel must accept the same expected
        # number of items: P(key < T) per item.
        weights = np.random.default_rng(1).uniform(0.1, 2.0, size=2000)
        threshold = 0.01
        jump_counts = []
        dense_counts = []
        for seed in range(200):
            rng_a = np.random.default_rng(1000 + seed)
            rng_b = np.random.default_rng(5000 + seed)
            jump_counts.append(len(keymod.weighted_jump_positions(weights, threshold, rng_a)[0]))
            dense_counts.append(len(keymod.dense_weighted_candidates(weights, threshold, rng_b)[0]))
        assert np.mean(jump_counts) == pytest.approx(np.mean(dense_counts), rel=0.15)

    def test_acceptance_probability_proportional_to_weight(self):
        # items with double weight are accepted roughly twice as often under
        # a small threshold
        weights = np.tile([1.0, 2.0], 1000)
        threshold = 0.02
        accepted = np.zeros(2)
        for seed in range(300):
            rng = np.random.default_rng(seed)
            idx, _ = keymod.weighted_jump_positions(weights, threshold, rng)
            accepted[0] += np.sum(idx % 2 == 0)
            accepted[1] += np.sum(idx % 2 == 1)
        assert accepted[1] / accepted[0] == pytest.approx(2.0, rel=0.15)

    def test_invalid_threshold(self, rng):
        with pytest.raises(ValueError):
            keymod.weighted_jump_positions(np.array([1.0]), 0.0, rng)


class TestUniformJumpKernel:
    def test_positions_and_keys_valid(self, rng):
        idx, keys = keymod.uniform_jump_positions(1000, 0.1, rng)
        assert np.all((idx >= 0) & (idx < 1000))
        assert np.all(np.diff(idx) > 0)
        assert np.all(keys <= 0.1)

    def test_acceptance_rate_is_threshold(self):
        counts = []
        for seed in range(300):
            rng = np.random.default_rng(seed)
            idx, _ = keymod.uniform_jump_positions(2000, 0.05, rng)
            counts.append(len(idx))
        assert np.mean(counts) == pytest.approx(2000 * 0.05, rel=0.1)

    def test_zero_count(self, rng):
        idx, keys = keymod.uniform_jump_positions(0, 0.5, rng)
        assert len(idx) == 0

    def test_threshold_one_accepts_everything(self, rng):
        idx, _ = keymod.uniform_jump_positions(50, 1.0, rng)
        assert len(idx) == 50

    def test_invalid_arguments(self, rng):
        with pytest.raises(ValueError):
            keymod.uniform_jump_positions(-1, 0.5, rng)
        with pytest.raises(ValueError):
            keymod.uniform_jump_positions(10, 0.0, rng)


class TestDenseKernels:
    def test_dense_weighted_respects_threshold(self, rng):
        weights = rng.uniform(0.1, 5.0, size=1000)
        idx, keys = keymod.dense_weighted_candidates(weights, 0.1, rng)
        assert np.all(keys < 0.1)
        assert len(idx) == len(keys)

    def test_dense_weighted_infinite_threshold(self, rng):
        weights = rng.uniform(0.1, 5.0, size=100)
        idx, keys = keymod.dense_weighted_candidates(weights, math.inf, rng)
        assert len(idx) == 100

    def test_dense_uniform(self, rng):
        idx, keys = keymod.dense_uniform_candidates(1000, 0.2, rng)
        assert np.all(keys < 0.2)
        idx_all, _ = keymod.dense_uniform_candidates(10, math.inf, rng)
        assert len(idx_all) == 10

    def test_dense_uniform_negative_count(self, rng):
        with pytest.raises(ValueError):
            keymod.dense_uniform_candidates(-1, 0.5, rng)


@settings(max_examples=50, deadline=None)
@given(
    weights=st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=300),
    threshold=st.floats(min_value=1e-4, max_value=10.0),
    seed=st.integers(min_value=0, max_value=2**20),
)
def test_jump_positions_are_sorted_unique_and_keys_below_threshold(weights, threshold, seed):
    rng = np.random.default_rng(seed)
    idx, keys = keymod.weighted_jump_positions(np.array(weights), threshold, rng)
    assert len(idx) == len(keys)
    assert np.all(np.diff(idx) > 0)
    assert np.all(keys < threshold)
    assert np.all(idx < len(weights))

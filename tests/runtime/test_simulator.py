"""Tests for the streaming simulation driver."""

import pytest

from repro.core import DistributedReservoirSampler
from repro.network import SimComm
from repro.runtime import StreamingSimulation
from repro.stream import MiniBatchStream


def make_simulation(p=4, k=10, batch=20, warmup=0, seed=1):
    sampler = DistributedReservoirSampler(k, SimComm(p), seed=seed)
    stream = MiniBatchStream(p, batch, seed=seed + 1)
    return StreamingSimulation(sampler, stream, warmup_rounds=warmup)


class TestRunRounds:
    def test_collects_one_metric_per_round(self):
        sim = make_simulation()
        metrics = sim.run_rounds(5)
        assert metrics.num_rounds == 5
        assert metrics.total_items == 5 * 4 * 20
        assert metrics.simulated_time > 0

    def test_zero_rounds(self):
        sim = make_simulation()
        assert sim.run_rounds(0).num_rounds == 0

    def test_warmup_rounds_not_reported(self):
        sim = make_simulation(warmup=3)
        metrics = sim.run_rounds(2)
        assert metrics.num_rounds == 2
        # warm-up consumed stream rounds as well
        assert sim.stream.round_index == 5
        assert sim.sampler.items_seen == 5 * 4 * 20

    def test_step_returns_round_metrics(self):
        sim = make_simulation()
        round_metrics = sim.step()
        assert round_metrics.round_index == 0
        assert sim.metrics.num_rounds == 1

    def test_mismatched_stream_and_sampler(self):
        sampler = DistributedReservoirSampler(5, SimComm(2), seed=0)
        with pytest.raises(ValueError):
            StreamingSimulation(sampler, MiniBatchStream(3, 10, seed=0))

    def test_metrics_algorithm_name(self):
        sim = make_simulation()
        assert sim.metrics.algorithm == "ours"
        assert sim.metrics.p == 4

    def test_sample_ids_passthrough(self):
        sim = make_simulation(k=7)
        sim.run_rounds(3)
        assert len(sim.sample_ids()) == 7

    def test_communication_summary(self):
        sim = make_simulation()
        sim.run_rounds(2)
        assert sim.communication_summary()["messages"] > 0


class TestRunForSimulatedTime:
    def test_stops_after_duration(self):
        sim = make_simulation()
        first = sim.step()
        per_round = first.simulated_time
        metrics = sim.run_for_simulated_time(per_round * 5, max_rounds=100)
        assert metrics.simulated_time >= per_round * 5
        assert metrics.num_rounds < 100

    def test_respects_max_rounds(self):
        sim = make_simulation()
        metrics = sim.run_for_simulated_time(1e9, max_rounds=3)
        assert metrics.num_rounds == 3

    def test_respects_min_rounds(self):
        sim = make_simulation()
        metrics = sim.run_for_simulated_time(1e-30, min_rounds=2, max_rounds=10)
        assert metrics.num_rounds >= 2

    def test_invalid_duration(self):
        sim = make_simulation()
        with pytest.raises(ValueError):
            sim.run_for_simulated_time(0.0)


class TestWarmupEdgeCases:
    def test_negative_warmup_rejected(self):
        sampler = DistributedReservoirSampler(5, SimComm(2), seed=0)
        with pytest.raises(ValueError):
            StreamingSimulation(sampler, MiniBatchStream(2, 10, seed=0), warmup_rounds=-1)

    def test_warmup_runs_exactly_once(self):
        sim = make_simulation(warmup=2)
        sim.step()
        sim.step()
        # 2 warm-up + 2 measured; a third step must not re-warm
        sim.step()
        assert sim.stream.round_index == 5
        assert sim.metrics.num_rounds == 3

    def test_warmup_without_steps_consumes_nothing(self):
        sim = make_simulation(warmup=3)
        # warm-up is lazy: no stream rounds consumed until the first step
        assert sim.stream.round_index == 0
        assert sim.run_rounds(0).num_rounds == 0
        assert sim.stream.round_index == 0

    def test_warmup_only_run_then_measure_matches_fresh_state(self):
        # metrics of the first measured round reflect the warmed-up sampler
        sim = make_simulation(warmup=1, k=10, batch=50)
        first = sim.step()
        assert first.items_seen_total == 2 * 4 * 50  # warm-up items included
        assert first.round_index == 1  # sampler-side round counter kept running

    def test_zero_warmup_equals_default(self):
        explicit = make_simulation(warmup=0)
        default = make_simulation()
        assert explicit.run_rounds(2).total_items == default.run_rounds(2).total_items


class TestRoundLimitEdgeCases:
    def test_max_rounds_zero_rejected(self):
        sim = make_simulation()
        with pytest.raises(ValueError):
            sim.run_for_simulated_time(1.0, max_rounds=0)

    def test_min_rounds_zero_still_runs_until_duration(self):
        sim = make_simulation()
        per_round = sim.step().simulated_time
        metrics = sim.run_for_simulated_time(per_round * 2, min_rounds=0, max_rounds=50)
        assert metrics.simulated_time >= per_round * 2

    def test_min_rounds_wins_over_tiny_duration(self):
        sim = make_simulation()
        metrics = sim.run_for_simulated_time(1e-30, min_rounds=5, max_rounds=10)
        assert metrics.num_rounds == 5

    def test_max_rounds_wins_over_min_rounds(self):
        sim = make_simulation()
        metrics = sim.run_for_simulated_time(1e-30, min_rounds=8, max_rounds=3)
        assert metrics.num_rounds == 3

    def test_duration_reached_mid_run_keeps_metrics_consistent(self):
        sim = make_simulation()
        per_round = sim.step().simulated_time
        metrics = sim.run_for_simulated_time(per_round * 3.5, max_rounds=100)
        assert metrics.num_rounds == len(metrics.rounds)
        assert metrics.total_items == sum(r.batch_items for r in metrics.rounds)

"""Tests for the wall-clock parallel run driver."""

import pytest

from repro.core import DistributedReservoirSampler
from repro.network import SimComm
from repro.runtime import ParallelStreamingRun, RunMetrics


class TestParallelStreamingRun:
    def test_sim_backend_round_loop(self):
        with ParallelStreamingRun(
            "ours", k=20, p=2, comm="sim", batch_size=100, warmup_rounds=1, seed=5
        ) as run:
            metrics = run.run_rounds(3)
        assert metrics.num_rounds == 3
        assert metrics.total_items == 3 * 2 * 100  # warm-up rounds are not reported
        assert metrics.wall_time > 0.0
        assert metrics.comm_backend == "sim"
        assert run.sampler.items_seen == 4 * 2 * 100  # warm-up consumed the stream too

    def test_process_backend_round_loop(self):
        with ParallelStreamingRun(
            "ours", k=15, p=2, comm="process", batch_size=80, warmup_rounds=0, seed=6
        ) as run:
            metrics = run.run_rounds(2)
            ids = run.sample_ids()
        assert metrics.num_rounds == 2
        assert metrics.wall_throughput_total() > 0.0
        assert len(ids) == 15

    def test_run_for_wall_time_bounds(self):
        with ParallelStreamingRun(
            "ours", k=10, p=2, comm="sim", batch_size=50, warmup_rounds=0, seed=7
        ) as run:
            metrics = run.run_for_wall_time(1e-9, min_rounds=2, max_rounds=4)
        assert 2 <= metrics.num_rounds <= 4

    def test_run_for_wall_time_respects_max_rounds(self):
        with ParallelStreamingRun(
            "ours", k=10, p=2, comm="sim", batch_size=50, warmup_rounds=0, seed=7
        ) as run:
            metrics = run.run_for_wall_time(1e9, max_rounds=3)
        assert metrics.num_rounds == 3

    def test_communication_summary_nonempty(self):
        with ParallelStreamingRun(
            "ours", k=10, p=2, comm="sim", batch_size=50, warmup_rounds=0, seed=8
        ) as run:
            run.run_rounds(2)
            assert run.communication_summary()["messages"] > 0

    def test_stream_round_requires_attached_stream(self):
        sampler = DistributedReservoirSampler(5, SimComm(2), seed=0)
        with pytest.raises(RuntimeError, match="attach_worker_stream"):
            sampler.process_stream_round()

    def test_externally_owned_comm_is_not_shut_down(self):
        comm = SimComm(2)
        with ParallelStreamingRun("ours", k=5, comm=comm, batch_size=20, warmup_rounds=0) as run:
            run.run_rounds(1)
        # SimComm.shutdown is a no-op anyway; assert ownership bookkeeping
        assert run._owns_comm is False

    def test_gather_baseline_runs_with_and_without_auto_batching(self):
        for batch_size in (50, "auto"):
            with ParallelStreamingRun(
                "gather", k=10, p=2, comm="sim", batch_size=batch_size,
                warmup_rounds=0, seed=4,
            ) as run:
                metrics = run.run_rounds(2)
            assert metrics.num_rounds == 2
            assert len(run.sample_ids()) == 10

    def test_invalid_arguments_do_not_leak_workers(self):
        import multiprocessing as mp

        with pytest.raises(ValueError):
            ParallelStreamingRun("no-such-algorithm", k=5, p=2, comm="process", batch_size=20)
        assert not mp.active_children()


class TestWallClockMetrics:
    def test_wall_throughput_without_wall_time_is_zero(self):
        # 0.0, not inf — inf would serialise as the invalid JSON token
        # Infinity in every benchmark's as_dict() output
        metrics = RunMetrics(p=2, k=5, algorithm="ours")
        assert metrics.wall_throughput_total() == 0.0

    def test_as_dict_contains_wall_fields(self):
        metrics = RunMetrics(p=2, k=5, algorithm="ours", comm_backend="process", wall_time=2.0)
        payload = metrics.as_dict()
        assert payload["wall_time"] == 2.0
        assert payload["comm_backend"] == "process"
        assert "wall_throughput_total" in payload

"""Tests for the machine model (local-work cost formulas)."""

import math

import pytest

from repro.network.cost_model import CostParameters
from repro.runtime import MachineSpec


class TestConstruction:
    def test_defaults_valid(self):
        spec = MachineSpec()
        assert spec.time_scan_item > 0
        assert spec.cache_items > 0

    def test_forhlr_like_is_default(self):
        assert MachineSpec.forhlr_like() == MachineSpec()

    def test_latency_bound_has_higher_alpha(self):
        assert MachineSpec.latency_bound().comm.alpha > MachineSpec().comm.alpha

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            MachineSpec(time_scan_item=0.0)
        with pytest.raises(ValueError):
            MachineSpec(cache_items=0)
        with pytest.raises(ValueError):
            MachineSpec(out_of_cache_factor=-1.0)

    def test_with_cache_items(self):
        spec = MachineSpec().with_cache_items(123)
        assert spec.cache_items == 123
        # original is frozen/unchanged
        assert MachineSpec().cache_items != 123 or MachineSpec().cache_items == 100_000

    def test_with_comm(self):
        comm = CostParameters(alpha=1.0, beta=1.0)
        assert MachineSpec().with_comm(comm).comm is comm


class TestScanTime:
    def test_linear_in_items(self):
        spec = MachineSpec(cache_items=1000)
        assert spec.scan_time(500) == pytest.approx(500 * spec.time_scan_item)

    def test_zero_items_free(self):
        assert MachineSpec().scan_time(0) == 0.0

    def test_out_of_cache_penalty(self):
        spec = MachineSpec(cache_items=1000, out_of_cache_factor=4.0)
        in_cache = spec.scan_time(1000)
        out_of_cache = spec.scan_time(2000)
        assert out_of_cache == pytest.approx(2 * 4 * in_cache)

    def test_batch_size_argument_controls_cache_residency(self):
        spec = MachineSpec(cache_items=1000, out_of_cache_factor=4.0)
        # scanning 10 items of a huge batch still pays the cache penalty
        assert spec.scan_time(10, batch_size=10_000) == pytest.approx(
            4.0 * 10 * spec.time_scan_item
        )


class TestOtherCosts:
    def test_key_gen_linear(self):
        spec = MachineSpec()
        assert spec.key_gen_time(10) == pytest.approx(10 * spec.time_key_gen)
        assert spec.key_gen_time(0) == 0.0
        assert spec.key_gen_time(-5) == 0.0

    def test_tree_op_logarithmic_in_size(self):
        spec = MachineSpec()
        small = spec.tree_op_time(1, 10)
        large = spec.tree_op_time(1, 10_000)
        assert large > small
        assert large / small == pytest.approx(math.log2(10_002) / math.log2(12), rel=0.01)

    def test_tree_op_zero_ops(self):
        assert MachineSpec().tree_op_time(0, 100) == 0.0

    def test_array_append_and_sequential_select(self):
        spec = MachineSpec()
        assert spec.array_append_time(3) == pytest.approx(3 * spec.time_array_append)
        assert spec.sequential_select_time(7) == pytest.approx(7 * spec.time_sequential_select_item)
        assert spec.sequential_select_time(-1) == 0.0

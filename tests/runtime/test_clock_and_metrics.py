"""Tests for the phase clock and the round/run metric containers."""

import pytest

from repro.runtime import PhaseClock, PhaseTimes, RoundMetrics, RunMetrics
from repro.runtime.metrics import PHASES
from repro.selection.base import SelectionStats


class TestPhaseClock:
    def test_charge_and_max(self):
        clock = PhaseClock(3)
        clock.charge("insert", 0, 1.0)
        clock.charge("insert", 1, 3.0)
        clock.charge("insert", 1, 1.0)
        assert clock.max_time("insert") == pytest.approx(4.0)
        assert clock.per_pe("insert") == [1.0, 4.0, 0.0]

    def test_unknown_phase_is_zero(self):
        clock = PhaseClock(2)
        assert clock.max_time("select") == 0.0
        assert clock.per_pe("select") == [0.0, 0.0]

    def test_total_max_time_sums_phases(self):
        clock = PhaseClock(2)
        clock.charge("a", 0, 1.0)
        clock.charge("b", 1, 2.0)
        assert clock.total_max_time() == pytest.approx(3.0)

    def test_invalid_arguments(self):
        clock = PhaseClock(2)
        with pytest.raises(ValueError):
            clock.charge("a", 0, -1.0)
        with pytest.raises(IndexError):
            clock.charge("a", 5, 1.0)
        with pytest.raises(ValueError):
            PhaseClock(0)

    def test_snapshot_and_reset(self):
        clock = PhaseClock(2)
        clock.charge("a", 0, 1.0)
        snap = clock.snapshot()
        assert snap == {"a": [1.0, 0.0]}
        clock.reset()
        assert clock.total_max_time() == 0.0
        # snapshot is a copy, unaffected by reset
        assert snap == {"a": [1.0, 0.0]}


class TestPhaseTimes:
    def test_total_and_addition(self):
        a = PhaseTimes(local=1.0, comm=2.0)
        b = PhaseTimes(local=0.5, comm=0.25)
        c = a + b
        assert a.total == pytest.approx(3.0)
        assert c.local == pytest.approx(1.5)
        assert c.comm == pytest.approx(2.25)


def make_round(i, *, insert=1.0, select=0.5, items=100, insertions=(3, 2)):
    return RoundMetrics(
        round_index=i,
        batch_items=items,
        items_seen_total=(i + 1) * items,
        sample_size=10,
        threshold=0.5,
        phase_times={
            "insert": PhaseTimes(local=insert, comm=0.0),
            "select": PhaseTimes(local=0.1, comm=select),
        },
        insertions_per_pe=list(insertions),
        selection_stats=SelectionStats(recursion_depth=4),
        selection_ran=True,
    )


class TestRoundMetrics:
    def test_simulated_time_sums_phases(self):
        metrics = make_round(0)
        assert metrics.simulated_time == pytest.approx(1.0 + 0.1 + 0.5)

    def test_insertion_aggregates(self):
        metrics = make_round(0, insertions=(5, 9, 1))
        assert metrics.max_insertions == 9
        assert metrics.total_insertions == 15

    def test_phase_total_missing_phase(self):
        assert make_round(0).phase_total("gather") == 0.0

    def test_as_dict_round_trips_key_fields(self):
        d = make_round(2).as_dict()
        assert d["round"] == 2
        assert d["batch_items"] == 100
        assert set(d["phases"]) == {"insert", "select"}


class TestRunMetrics:
    def make_run(self, rounds=4):
        run = RunMetrics(p=4, k=10, algorithm="ours")
        for i in range(rounds):
            run.add_round(make_round(i))
        return run

    def test_totals(self):
        run = self.make_run(3)
        assert run.num_rounds == 3
        assert run.total_items == 300
        assert run.simulated_time == pytest.approx(3 * 1.6)
        assert run.total_insertions == 15
        assert run.max_insertions_per_pe == 9

    def test_throughput(self):
        run = self.make_run(2)
        assert run.throughput_total() == pytest.approx(200 / 3.2)
        assert run.throughput_per_pe() == pytest.approx(200 / 3.2 / 4)

    def test_empty_run_throughput_is_zero(self):
        # 0.0, not inf: every benchmark serialises as_dict() with
        # json.dumps, and inf would emit the spec-invalid Infinity token
        run = RunMetrics(p=1, k=1, algorithm="x")
        assert run.throughput_total() == 0.0
        assert run.throughput_per_pe() == 0.0
        assert run.wall_throughput_total() == 0.0

    def test_phase_times_and_fractions(self):
        run = self.make_run(2)
        totals = run.phase_times()
        assert totals["insert"].local == pytest.approx(2.0)
        fractions = run.phase_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert fractions["insert"] > fractions["select"]

    def test_phase_fraction_of_empty_run(self):
        run = RunMetrics(p=1, k=1, algorithm="x")
        assert run.phase_fractions() == {}

    def test_mean_selection_depth(self):
        run = self.make_run(3)
        assert run.mean_selection_depth() == pytest.approx(4.0)

    def test_selection_time(self):
        run = self.make_run(2)
        assert run.selection_time() == pytest.approx(2 * 0.6)

    def test_as_dict(self):
        d = self.make_run(1).as_dict()
        assert d["algorithm"] == "ours"
        assert d["rounds"] == 1
        assert "throughput_per_pe" in d

    def test_canonical_phase_order_constant(self):
        assert PHASES == (
            "prepare",
            "insert",
            "expire",
            "select",
            "threshold",
            "gather",
            "overlap",
        )


class TestBenchmarkJsonSafety:
    """Every benchmark writes ``as_dict()`` via ``json.dumps``; the payload
    must stay strictly valid JSON (no ``Infinity``/``NaN`` tokens) even for
    zero-round or zero-time runs."""

    def test_empty_run_as_dict_round_trips_with_allow_nan_false(self):
        import json

        run = RunMetrics(p=4, k=10, algorithm="ours")
        payload = run.as_dict()
        restored = json.loads(json.dumps(payload, allow_nan=False))
        assert restored["throughput_per_pe"] == 0.0
        assert restored["wall_throughput_total"] == 0.0

    def test_populated_run_as_dict_round_trips_with_allow_nan_false(self):
        import json

        run = RunMetrics(p=2, k=5, algorithm="ours", wall_time=1.5)
        run.add_round(make_round(0))
        restored = json.loads(json.dumps(run.as_dict(), allow_nan=False))
        assert restored["rounds"] == 1
        assert restored["throughput_per_pe"] > 0.0
        assert restored["wall_throughput_total"] > 0.0


class TestJsonRoundTrip:
    """``as_dict`` → ``json`` → ``from_dict`` must be lossless, so traces
    and checkpoints can embed metrics snapshots (the phase ``(local, comm)``
    tuples come back from JSON as lists)."""

    def roundtrip(self, metrics):
        import json

        cls = type(metrics)
        return cls.from_dict(json.loads(json.dumps(metrics.as_dict(), allow_nan=False)))

    def test_round_metrics_round_trip_is_lossless(self):
        original = make_round(3, insertions=(5, 9, 1))
        assert self.roundtrip(original) == original

    def test_round_metrics_round_trip_preserves_optionals(self):
        original = make_round(0)
        original.threshold = None
        original.selection_stats = None
        original.evicted_items = 7
        original.window_buffer_items = 40
        original.selection_skipped = True
        original.overlap_saved_time = 0.125
        original.stale_extra_candidates = 3
        original.recovered_pes = [1, 2]
        restored = self.roundtrip(original)
        assert restored == original
        assert restored.threshold is None
        assert restored.selection_stats is None

    def test_run_metrics_round_trip_is_lossless(self):
        run = RunMetrics(
            p=3,
            k=10,
            algorithm="ours",
            store="merge",
            comm_backend="process",
            kernel_tier="numpy",
            wall_time=1.5,
            recoveries=2,
        )
        for i in range(3):
            run.add_round(make_round(i))
        restored = self.roundtrip(run)
        assert restored == run
        assert restored.num_rounds == 3
        assert restored.phase_times()["insert"].local == run.phase_times()["insert"].local

    def test_empty_run_round_trips(self):
        run = RunMetrics(p=1, k=1, algorithm="x")
        assert self.roundtrip(run) == run

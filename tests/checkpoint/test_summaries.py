"""Checkpoint/restore for the sibling summaries.

The snapshot-capable summaries (weighted top-k, recency reservoir) keep
their entire per-PE state in the same reservoir-shaped slots the samplers
use, so the sampler capture path round-trips them byte-identically:
restoring a snapshot and continuing the stream yields exactly the state
of never having stopped.  The other summary families carry state the
format cannot represent and must be rejected with an actionable error,
not restored silently wrong.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.checkpoint import (
    CheckpointError,
    load_checkpoint_file,
    restore_summary,
    save_checkpoint_file,
    snapshot_summary,
)
from repro.summaries import (
    DistributedTopK,
    HeavyHitters,
    RecencyReservoir,
    StreamingQuantiles,
)

P = 3
ROUNDS_BEFORE = 4
ROUNDS_AFTER = 3
BATCH = 40


def feed(summary, rounds, *, start_round=0):
    for r in range(start_round, start_round + rounds):
        rng = np.random.default_rng(900 + r)
        ids = np.arange(r * BATCH, (r + 1) * BATCH)
        weights = rng.pareto(1.3, BATCH) + 0.05
        summary.ingest(ids, weights)


def make_summary(kind, seed=11):
    if kind == "topk":
        return DistributedTopK(15, "sim", p=P, seed=seed)
    return RecencyReservoir(15, "sim", p=P, recency=1.07, seed=seed)


@pytest.mark.parametrize("kind", ["topk", "recency"])
class TestRoundTrip:
    def test_resume_is_byte_identical(self, kind, tmp_path):
        # reference: run straight through
        reference = make_summary(kind)
        feed(reference, ROUNDS_BEFORE + ROUNDS_AFTER)

        # checkpointed: stop after ROUNDS_BEFORE, persist, restore, continue
        original = make_summary(kind)
        feed(original, ROUNDS_BEFORE)
        path = tmp_path / "summary.ckpt"
        save_checkpoint_file(str(path), snapshot_summary(original))

        resumed = make_summary(kind)
        restore_summary(resumed, load_checkpoint_file(str(path)))
        feed(resumed, ROUNDS_AFTER, start_round=ROUNDS_BEFORE)

        if kind == "topk":
            assert resumed.top_k() == reference.top_k()
        else:
            assert sorted(resumed.sample_items()) == sorted(reference.sample_items())
        assert resumed.threshold == reference.threshold
        assert resumed.items_seen == reference.items_seen
        assert resumed.total_weight == reference.total_weight
        assert resumed.rounds_processed == reference.rounds_processed

    def test_restore_requires_matching_type(self, kind, tmp_path):
        original = make_summary(kind)
        feed(original, 2)
        snapshot = snapshot_summary(original)
        other = make_summary("recency" if kind == "topk" else "topk")
        with pytest.raises(CheckpointError, match="must match"):
            restore_summary(other, snapshot)

    def test_restore_rejects_wrong_p(self, kind):
        original = make_summary(kind)
        feed(original, 2)
        snapshot = snapshot_summary(original)
        if kind == "topk":
            other = DistributedTopK(15, "sim", p=P + 1, seed=11)
        else:
            other = RecencyReservoir(15, "sim", p=P + 1, recency=1.07, seed=11)
        with pytest.raises(CheckpointError, match="p="):
            restore_summary(other, snapshot)


class TestRecencyDriverFields:
    def test_stamp_counter_round_trips(self):
        original = make_summary("recency")
        feed(original, ROUNDS_BEFORE)
        snapshot = snapshot_summary(original)
        resumed = make_summary("recency")
        restore_summary(resumed, snapshot)
        assert resumed._next_stamp == original._next_stamp == ROUNDS_BEFORE


class TestUnsupportedSummaries:
    def test_heavy_hitters_rejected_with_reason(self):
        hh = HeavyHitters(8, "sim", p=P)
        hh.ingest(np.arange(100) % 7)
        with pytest.raises(CheckpointError, match="Misra-Gries"):
            snapshot_summary(hh)
        with pytest.raises(CheckpointError, match="re-ingest"):
            restore_summary(hh, {"summary_type": "HeavyHitters"})

    def test_quantiles_rejected_with_reason(self):
        quantiles = StreamingQuantiles((0.5,), "sim", p=P)
        quantiles.ingest(np.arange(50), np.linspace(0, 1, 50))
        with pytest.raises(CheckpointError, match="cursors"):
            snapshot_summary(quantiles)

    def test_sampler_snapshot_not_accepted_as_summary(self):
        from repro.checkpoint import snapshot_sampler
        from repro.core.distributed import DistributedWeightedReservoirSampler
        from repro.network.base import make_communicator

        sampler = DistributedWeightedReservoirSampler(10, make_communicator("sim", P), seed=1)
        snapshot = snapshot_sampler(sampler)
        target = make_summary("topk")
        with pytest.raises(CheckpointError, match="restore_sampler"):
            restore_summary(target, snapshot)

"""Envelope format, schema versioning and checkpoint-manager behaviour.

Every failure mode of a restore must raise a :class:`CheckpointError`
whose message tells the operator what is wrong and what to do — never a
bare pickle/struct traceback, never silently wrong state.
"""

from __future__ import annotations

import os
import struct

import numpy as np
import pytest

from repro.checkpoint import (
    FORMAT_VERSION,
    MAGIC,
    CheckpointError,
    CheckpointManager,
    dump_envelope,
    load_checkpoint_file,
    load_envelope,
    save_checkpoint_file,
)
from repro.core.api import ReservoirSampler


class TestEnvelope:
    def test_round_trip(self):
        payload = {"keys": np.arange(5.0), "nested": {"p": 4}}
        restored = load_envelope(dump_envelope(payload))
        assert restored["nested"] == {"p": 4}
        assert np.array_equal(restored["keys"], payload["keys"])

    def test_wrong_magic_is_not_a_checkpoint(self):
        data = b"GARBAGE!" + dump_envelope({})[8:]
        with pytest.raises(CheckpointError, match="not a repro checkpoint"):
            load_envelope(data)

    def test_future_version_names_both_versions(self):
        data = bytearray(dump_envelope({"x": 1}))
        struct.pack_into("<I", data, 8, FORMAT_VERSION + 7)
        with pytest.raises(CheckpointError, match="newer"):
            load_envelope(bytes(data))

    def test_truncated_header(self):
        with pytest.raises(CheckpointError, match="truncated"):
            load_envelope(MAGIC[:4])

    def test_truncated_payload(self):
        data = dump_envelope({"x": list(range(100))})
        with pytest.raises(CheckpointError, match="truncated"):
            load_envelope(data[:-10])

    def test_corrupted_payload_fails_checksum(self):
        data = bytearray(dump_envelope({"x": list(range(100))}))
        data[-5] ^= 0xFF
        with pytest.raises(CheckpointError, match="corrupted"):
            load_envelope(bytes(data))

    def test_unpicklable_payload_is_actionable(self):
        with pytest.raises(CheckpointError, match="not picklable"):
            dump_envelope({"fn": lambda: None})


class TestFileIO:
    def test_save_load_round_trip(self, tmp_path):
        path = save_checkpoint_file(tmp_path / "a" / "b.rpk", {"v": 42})
        assert load_checkpoint_file(path) == {"v": 42}

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint file"):
            load_checkpoint_file(tmp_path / "nope.rpk")

    def test_save_is_atomic_no_tmp_leftovers(self, tmp_path):
        save_checkpoint_file(tmp_path / "c.rpk", {"v": 1})
        save_checkpoint_file(tmp_path / "c.rpk", {"v": 2})
        assert sorted(os.listdir(tmp_path)) == ["c.rpk"]
        assert load_checkpoint_file(tmp_path / "c.rpk") == {"v": 2}

    def test_corrupt_file_names_the_path(self, tmp_path):
        path = save_checkpoint_file(tmp_path / "d.rpk", {"v": 3})
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0x01
        path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointError, match="d.rpk"):
            load_checkpoint_file(path)


class TestManager:
    def test_cadence(self, tmp_path):
        manager = CheckpointManager(tmp_path, every=3)
        asked = [r for r in range(1, 10) if manager.should_checkpoint(r)]
        assert asked == [3, 6, 9]
        assert not CheckpointManager(tmp_path, every=None).should_checkpoint(3)

    def test_round_zero_never_triggers_cadence(self, tmp_path):
        assert not CheckpointManager(tmp_path, every=1).should_checkpoint(0)

    def test_prune_keeps_newest(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep=2)
        for r in range(5):
            manager.save(r, {"round": r})
        rounds = [r for r, _ in manager.list_checkpoints()]
        assert rounds == [3, 4]
        assert manager.load_latest() == (4, {"round": 4})

    def test_keep_zero_retains_everything(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep=0)
        for r in range(4):
            manager.save(r, {"round": r})
        assert len(manager.list_checkpoints()) == 4

    def test_load_latest_empty_dir_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="nothing to restore"):
            CheckpointManager(tmp_path).load_latest()

    def test_foreign_files_are_ignored(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(1, {"round": 1})
        (tmp_path / "notes.txt").write_text("hi")
        (tmp_path / "ckpt-bad.rpk").write_text("hi")
        assert [r for r, _ in manager.list_checkpoints()] == [1]

    def test_invalid_cadence_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="checkpoint_every"):
            CheckpointManager(tmp_path, every=0)


class TestSequentialSamplerFiles:
    def test_save_load_round_trip_continues_identically(self, tmp_path):
        rng = np.random.default_rng(3)
        first = rng.random(200)
        second = rng.random(200)

        reference = ReservoirSampler(k=16, seed=9)
        reference.feed(range(200), first)
        reference.feed(range(200, 400), second)

        sampler = ReservoirSampler(k=16, seed=9)
        sampler.feed(range(200), first)
        path = sampler.save(tmp_path / "seq.rpk")
        restored = ReservoirSampler.load(path)
        restored.feed(range(200, 400), second)
        assert np.array_equal(restored.sample_ids(), reference.sample_ids())

    def test_load_rejects_run_checkpoint(self, tmp_path):
        path = save_checkpoint_file(tmp_path / "other.rpk", {"kind": "something_else"})
        with pytest.raises(CheckpointError, match="sequential-sampler"):
            ReservoirSampler.load(path)

"""Checkpoint → restore → continue must equal an uninterrupted run, byte for byte.

The property is checked two ways:

* a Hypothesis sweep over variant × checkpoint round × run length on the
  simulated backend (cheap enough for many examples), and
* fixed parametrized cases on the real multiprocess backend, where each
  case costs worker spawns.
"""

from __future__ import annotations

import tempfile

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.api import DistributedSamplingRun

#: (label, constructor kwargs) of every checkpointable variant
VARIANTS = {
    "ours": dict(),
    "ours-2": dict(algorithm="ours-2"),
    "ours-variable": dict(algorithm="ours-variable"),
    "gather": dict(algorithm="gather"),
    "uniform": dict(weighted=False),
    "window": dict(window=300),
    "pipeline-strict": dict(pipeline="strict"),
    "pipeline-relaxed": dict(pipeline="relaxed"),
}

BASE = dict(k=16, p=2, batch_size=64, seed=13)


def build_run(label, *, checkpoint_dir=None, checkpoint_every=None, **extra):
    kwargs = {**BASE, **VARIANTS[label], **extra}
    algorithm = kwargs.pop("algorithm", "ours")
    return DistributedSamplingRun(
        algorithm,
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=checkpoint_every,
        **kwargs,
    )


def roundtrip_ids(label, ckpt_round, total_rounds, *, comm="sim", resume_comm=None, **extra):
    """sample_ids() after save at ``ckpt_round``, resume, run to ``total_rounds``."""
    with tempfile.TemporaryDirectory() as tmp:
        with build_run(label, checkpoint_dir=tmp, comm=comm, **extra) as interrupted:
            interrupted.run(ckpt_round)
            interrupted.save_checkpoint()
        resumed = DistributedSamplingRun.resume(tmp, comm=resume_comm)
        try:
            assert resumed.rounds_completed == ckpt_round
            resumed.run(total_rounds - ckpt_round)
            return resumed.sample_ids()
        finally:
            resumed.close()


def reference_ids(label, total_rounds, *, comm="sim", **extra):
    with build_run(label, comm=comm, **extra) as run:
        run.run(total_rounds)
        return run.sample_ids()


class TestSimRoundTripProperty:
    @settings(max_examples=25, deadline=None)
    @given(
        label=st.sampled_from(sorted(VARIANTS)),
        ckpt_round=st.integers(min_value=0, max_value=4),
        extra_rounds=st.integers(min_value=1, max_value=4),
    )
    def test_restore_continue_equals_uninterrupted(self, label, ckpt_round, extra_rounds):
        total = ckpt_round + extra_rounds
        resumed = roundtrip_ids(label, ckpt_round, total)
        assert np.array_equal(resumed, reference_ids(label, total))

    @settings(max_examples=10, deadline=None)
    @given(
        ckpt_round=st.integers(min_value=1, max_value=4),
        kernel_tier=st.sampled_from(["numpy", "auto"]),
    )
    def test_kernel_tier_does_not_perturb_restore(self, ckpt_round, kernel_tier):
        resumed = roundtrip_ids("ours", ckpt_round, 6, kernel_tier=kernel_tier)
        assert np.array_equal(resumed, reference_ids("ours", 6, kernel_tier=kernel_tier))


class TestProcessBackendRoundTrip:
    @pytest.mark.parametrize("label", ["ours", "pipeline-strict", "window", "uniform"])
    def test_restore_continue_equals_uninterrupted(self, label):
        resumed = roundtrip_ids(label, 3, 6, comm="process", resume_comm="process")
        assert np.array_equal(resumed, reference_ids(label, 6, comm="process"))

    def test_cross_backend_restore_sim_to_process(self):
        resumed = roundtrip_ids("ours", 3, 6, comm="sim", resume_comm="process")
        assert np.array_equal(resumed, reference_ids("ours", 6, comm="sim"))

    def test_cross_backend_restore_process_to_sim(self):
        resumed = roundtrip_ids("ours", 3, 6, comm="process", resume_comm="sim")
        assert np.array_equal(resumed, reference_ids("ours", 6, comm="process"))


class TestPeriodicCheckpointing:
    def test_cadence_writes_and_prunes(self, tmp_path):
        with build_run(
            "ours", checkpoint_dir=tmp_path, checkpoint_every=2, keep_checkpoints=2
        ) as run:
            run.run(8)
        from repro.checkpoint import CheckpointManager

        rounds = [r for r, _ in CheckpointManager(tmp_path).list_checkpoints()]
        assert rounds == [6, 8]

    def test_checkpoint_every_requires_dir(self):
        with pytest.raises(ValueError, match="checkpoint_dir"):
            build_run("ours", checkpoint_every=2)

    def test_save_checkpoint_without_dir_raises(self):
        with build_run("ours") as run:
            with pytest.raises(RuntimeError, match="checkpoint_dir"):
                run.save_checkpoint()


class TestResumeValidation:
    def test_unknown_override_rejected(self, tmp_path):
        with build_run("ours", checkpoint_dir=tmp_path) as run:
            run.save_checkpoint()
        with pytest.raises(ValueError, match="overrides"):
            DistributedSamplingRun.resume(tmp_path, batch_size=999)

    def test_empty_dir_raises_actionable(self, tmp_path):
        from repro.checkpoint import CheckpointError

        with pytest.raises(CheckpointError, match="nothing to restore"):
            DistributedSamplingRun.resume(tmp_path)

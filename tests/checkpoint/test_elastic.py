"""Elastic re-sharding: statistical correctness and guard rails.

Changing ``p`` mid-run cannot preserve byte-identity (per-PE random
streams depend on the grid), so the contract is statistical instead:
every item's inclusion probability is unchanged by a reshard.  The
chi-squared test below drives a p=4 → 2 → 6 schedule through many
independent trials and compares the per-item inclusion counts against
the uniform ``k/n`` law.
"""

from __future__ import annotations

import tempfile

import numpy as np
import pytest

from repro.analysis.statistics import chi_square_statistic
from repro.checkpoint import CheckpointError
from repro.checkpoint.elastic import collect_reservoir_pairs, deal_pairs, next_free_stream_id
from repro.core.api import DistributedSamplingRun

scipy_stats = pytest.importorskip("scipy.stats")

K = 12
BATCH = 10  # per PE per round
P_SCHEDULE = [(4, 2), (2, 2), (6, 2)]  # (p, rounds) phases
N_TOTAL = BATCH * sum(p * rounds for p, rounds in P_SCHEDULE)


def run_elastic_trial(seed: int) -> np.ndarray:
    """Final sample ids of one p=4→2→6 run, all phases checkpoint-chained."""
    with tempfile.TemporaryDirectory() as tmp:
        p0, rounds0 = P_SCHEDULE[0]
        with DistributedSamplingRun(
            "ours", k=K, p=p0, batch_size=BATCH, weighted=False, seed=seed, checkpoint_dir=tmp
        ) as run:
            run.run(rounds0)
            run.save_checkpoint()
        for phase, (p, rounds) in enumerate(P_SCHEDULE[1:], start=1):
            resumed = DistributedSamplingRun.resume(tmp, p=p, seed=seed + 7919 * phase)
            try:
                assert resumed.sampler.p == p
                resumed.run(rounds)
                resumed.save_checkpoint()
                ids = resumed.sample_ids()
            finally:
                resumed.close()
        return ids


class TestInclusionProbabilities:
    def test_chi_squared_uniform_inclusion_across_reshard(self):
        trials = 120
        counts = np.zeros(N_TOTAL, dtype=np.int64)
        for trial in range(trials):
            ids = run_elastic_trial(seed=1000 + trial)
            assert len(ids) == K
            assert len(np.unique(ids)) == K
            assert ids.min() >= 0 and ids.max() < N_TOTAL
            counts += np.bincount(ids, minlength=N_TOTAL)
        expected = np.full(N_TOTAL, K / N_TOTAL)
        statistic, dof = chi_square_statistic(counts, expected, trials)
        critical = scipy_stats.chi2.ppf(0.999, dof)
        assert statistic < critical, (
            f"chi2={statistic:.1f} exceeds the 99.9% quantile {critical:.1f} (dof={dof}); "
            "resharding perturbed the inclusion probabilities"
        )


class TestElasticMechanics:
    def test_counters_survive_the_reshard_chain(self):
        with tempfile.TemporaryDirectory() as tmp:
            with DistributedSamplingRun(
                "ours", k=K, p=4, batch_size=BATCH, weighted=False, seed=3, checkpoint_dir=tmp
            ) as run:
                run.run(2)
                run.save_checkpoint()
                seen_before = run.sampler.items_seen
            resumed = DistributedSamplingRun.resume(tmp, p=2)
            try:
                assert resumed.sampler.items_seen == seen_before
                resumed.run(2)
                assert resumed.sampler.items_seen == seen_before + 2 * 2 * BATCH
            finally:
                resumed.close()

    def test_resharded_checkpoint_is_rewritten_at_new_p(self):
        with tempfile.TemporaryDirectory() as tmp:
            with DistributedSamplingRun(
                "ours", k=K, p=4, batch_size=BATCH, weighted=False, seed=4, checkpoint_dir=tmp
            ) as run:
                run.run(2)
                run.save_checkpoint()
            resumed = DistributedSamplingRun.resume(tmp, p=2)
            resumed.close()
            again = DistributedSamplingRun.resume(tmp)  # no p override
            try:
                assert again.sampler.p == 2
            finally:
                again.close()

    def test_deal_is_balanced_and_deterministic(self):
        pairs = [(float(k), k) for k in range(11)]
        dealt = deal_pairs(pairs, 3)
        sizes = sorted(len(d) for d in dealt)
        assert sizes == [3, 4, 4]
        assert sorted(p for d in dealt for p in d) == pairs
        assert deal_pairs(pairs, 3) == dealt

    def test_deal_rejects_bad_p(self):
        with pytest.raises(CheckpointError, match="p >= 1"):
            deal_pairs([], 0)

    def test_collected_pairs_are_key_sorted(self):
        with tempfile.TemporaryDirectory() as tmp:
            with DistributedSamplingRun(
                "ours", k=K, p=4, batch_size=BATCH, seed=5, checkpoint_dir=tmp
            ) as run:
                run.run(2)
                snapshot = run._snapshot()
                sample_size = len(run.sample_ids())
        pairs = collect_reservoir_pairs(snapshot["sampler"])
        keys = [key for key, _ in pairs]
        assert keys == sorted(keys)
        assert len(pairs) == sample_size
        assert next_free_stream_id(snapshot) >= 4 * 2 * BATCH


class TestElasticGuards:
    def _checkpointed(self, tmp, **kwargs):
        with DistributedSamplingRun(
            checkpoint_dir=tmp, k=K, batch_size=BATCH, seed=6, **kwargs
        ) as run:
            run.run(2)
            run.save_checkpoint()

    def test_window_variant_rejected(self, tmp_path):
        self._checkpointed(tmp_path, p=4, window=200)
        with pytest.raises(CheckpointError, match="not supported"):
            DistributedSamplingRun.resume(tmp_path, p=2)

    def test_gather_variant_rejected(self, tmp_path):
        self._checkpointed(tmp_path, algorithm="gather", p=4)
        with pytest.raises(CheckpointError, match="not supported"):
            DistributedSamplingRun.resume(tmp_path, p=2)

    def test_variable_size_variant_rejected(self, tmp_path):
        self._checkpointed(tmp_path, algorithm="ours-variable", p=4)
        with pytest.raises(CheckpointError, match="not supported"):
            DistributedSamplingRun.resume(tmp_path, p=2)

    def test_pipelined_run_rejected(self, tmp_path):
        self._checkpointed(tmp_path, p=4, pipeline="strict")
        with pytest.raises(CheckpointError, match="pipeline"):
            DistributedSamplingRun.resume(tmp_path, p=2)

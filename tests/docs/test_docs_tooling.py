"""Tests for the documentation tooling.

The docs site itself is built by the CI ``docs`` job (mkdocs with
``--strict``); these tests keep the pieces that do not need mkdocs honest:

* the API-reference generator covers **every public symbol** of
  ``repro.core`` and ``repro.network`` (acceptance criterion of the docs
  satellite),
* the committed ``docs/api`` pages are in sync with the generator,
* the cross-reference checker passes on the repository itself.
"""

import importlib
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
DOCS_DIR = REPO_ROOT / "docs"

sys.path.insert(0, str(DOCS_DIR))
gen_api_reference = importlib.import_module("gen_api_reference")


@pytest.fixture(scope="module")
def generated(tmp_path_factory):
    output = tmp_path_factory.mktemp("api")
    gen_api_reference.generate(output)
    return output


class TestApiReferenceCoverage:
    @pytest.mark.parametrize("package_name", ["repro.core", "repro.network"])
    def test_every_public_symbol_is_documented(self, generated, package_name):
        package = importlib.import_module(package_name)
        page = (generated / f"{package_name.replace('.', '_')}.md").read_text()
        missing = [
            name
            for name in package.__all__
            if f"### `{name}`" not in page and f"### `{name}(" not in page
        ]
        assert not missing, f"{package_name} symbols missing from the API reference: {missing}"

    def test_all_packages_have_pages(self, generated):
        for package_name in gen_api_reference.PACKAGES:
            assert (generated / f"{package_name.replace('.', '_')}.md").exists()
        assert (generated / "index.md").exists()

    def test_new_backend_symbols_are_documented(self, generated):
        page = (generated / "repro_network.md").read_text()
        for symbol in ("Communicator", "ProcessComm", "SimComm", "WorkerError", "make_communicator"):
            assert f"### `{symbol}`" in page or f"### `{symbol}(" in page

    def test_runtime_page_documents_parallel_run(self, generated):
        page = (generated / "repro_runtime.md").read_text()
        assert "ParallelStreamingRun" in page
        assert "wall" in page.lower()


class TestCommittedPagesInSync:
    def test_committed_api_pages_match_generator(self, generated):
        committed = DOCS_DIR / "api"
        assert committed.is_dir(), "docs/api is missing; run docs/gen_api_reference.py"
        fresh = {p.name: p.read_text() for p in generated.glob("*.md")}
        on_disk = {p.name: p.read_text() for p in committed.glob("*.md")}
        assert set(fresh) == set(on_disk)
        stale = [name for name in fresh if fresh[name] != on_disk[name]]
        assert not stale, (
            f"docs/api pages are stale: {stale}; regenerate with "
            "`PYTHONPATH=src python docs/gen_api_reference.py`"
        )


class TestLinkChecker:
    def test_repository_cross_references_resolve(self):
        result = subprocess.run(
            [sys.executable, str(DOCS_DIR / "check_links.py")],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
        )
        assert result.returncode == 0, result.stdout + result.stderr

    def test_checker_detects_broken_link(self, tmp_path, monkeypatch):
        import check_links

        page = tmp_path / "docs" / "broken.md"
        page.parent.mkdir()
        page.write_text("see [missing](does-not-exist.md)")
        (tmp_path / "README.md").write_text("fine")
        monkeypatch.setattr(check_links, "REPO_ROOT", tmp_path)
        assert check_links.main() == 1

"""Tests for the ArrayKeySet backend of the DistributedKeySet interface."""

import numpy as np
import pytest

from repro.selection import ArrayKeySet


class TestArrayKeySet:
    def test_basic_queries(self, rng):
        arrays = [np.sort(rng.random(20)), np.sort(rng.random(5)), np.array([])]
        ks = ArrayKeySet(arrays, assume_sorted=True)
        assert ks.p == 3
        assert ks.local_size(0) == 20
        assert ks.local_size(2) == 0
        assert ks.total_size() == 25

    def test_sorting_applied_when_needed(self):
        ks = ArrayKeySet([np.array([3.0, 1.0, 2.0])])
        assert ks.local_keys(0).tolist() == [1.0, 2.0, 3.0]

    def test_count_le_and_less(self):
        ks = ArrayKeySet([np.array([1.0, 2.0, 2.0, 3.0])], assume_sorted=True)
        assert ks.count_le(0, 2.0) == 3
        assert ks.count_less(0, 2.0) == 1
        assert ks.count_le(0, 0.5) == 0
        assert ks.count_le(0, 10.0) == 4

    def test_select_local_is_one_based(self):
        ks = ArrayKeySet([np.array([1.0, 2.0, 3.0])], assume_sorted=True)
        assert ks.select_local(0, 1) == 1.0
        assert ks.select_local(0, 3) == 3.0
        with pytest.raises(IndexError):
            ks.select_local(0, 0)
        with pytest.raises(IndexError):
            ks.select_local(0, 4)

    def test_local_min_max_with_empty_pe(self):
        ks = ArrayKeySet([np.array([2.0, 5.0]), np.array([])], assume_sorted=True)
        assert ks.local_min(0) == 2.0
        assert ks.local_max(0) == 5.0
        assert ks.local_min(1) == np.inf
        assert ks.local_max(1) == -np.inf

    def test_keys_in_rank_range_clamps(self):
        ks = ArrayKeySet([np.arange(10, dtype=float)], assume_sorted=True)
        assert ks.keys_in_rank_range(0, 2, 5).tolist() == [2.0, 3.0, 4.0]
        assert ks.keys_in_rank_range(0, -3, 2).tolist() == [0.0, 1.0]
        assert ks.keys_in_rank_range(0, 8, 100).tolist() == [8.0, 9.0]
        assert ks.keys_in_rank_range(0, 5, 5).tolist() == []

    def test_from_global_round_robin(self):
        keys = np.arange(10, dtype=float)
        ks = ArrayKeySet.from_global(keys, 3)
        assert ks.total_size() == 10
        assert np.sort(np.concatenate([ks.local_keys(pe) for pe in range(3)])).tolist() == keys.tolist()

    def test_from_global_random(self, rng):
        keys = rng.random(100)
        ks = ArrayKeySet.from_global(keys, 4, rng)
        assert ks.total_size() == 100

    def test_all_keys_sorted(self, rng):
        arrays = [rng.random(10), rng.random(20)]
        ks = ArrayKeySet(arrays)
        np.testing.assert_allclose(ks.all_keys(), np.sort(np.concatenate(arrays)))

    def test_requires_at_least_one_pe(self):
        with pytest.raises(ValueError):
            ArrayKeySet([])

    def test_rejects_matrix_input(self):
        with pytest.raises(ValueError):
            ArrayKeySet([np.zeros((2, 2))])

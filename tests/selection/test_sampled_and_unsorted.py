"""Tests for the sampled-selection (§3.3.1) and unsorted-fallback (§3.3.4) algorithms."""

import numpy as np
import pytest

from repro.network import SimComm
from repro.selection import ArrayKeySet, SampledSelection, SelectionError, UnsortedSelection
from repro.utils import spawn_generators


def make_keyset(rng, p, per_pe):
    arrays = [rng.random(per_pe) for _ in range(p)]
    return ArrayKeySet(arrays), np.sort(np.concatenate(arrays))


class TestSampledSelection:
    @pytest.mark.parametrize("p", [1, 2, 4, 8, 16])
    def test_exact_result_on_random_input(self, p, rng):
        keyset, allkeys = make_keyset(rng, p, 64)
        n = len(allkeys)
        for k in [1, n // 2, n]:
            comm = SimComm(p)
            result = SampledSelection().select(keyset, k, comm, spawn_generators(k, p))
            assert result.key == pytest.approx(allkeys[k - 1])

    def test_uneven_pe_sizes(self, rng):
        arrays = [rng.random(200), rng.random(3), np.array([]), rng.random(47)]
        keyset = ArrayKeySet(arrays)
        allkeys = np.sort(np.concatenate(arrays))
        comm = SimComm(4)
        result = SampledSelection().select(keyset, 125, comm, rng)
        assert result.key == pytest.approx(allkeys[124])

    def test_middle_gather_is_small_fraction(self, rng):
        keyset, allkeys = make_keyset(rng, 8, 500)
        comm = SimComm(8)
        result = SampledSelection().select(keyset, 2000, comm, rng)
        # the bracketed middle window should be far smaller than the input
        assert result.stats.final_gather_items < len(allkeys) / 3

    def test_errors(self, rng):
        keyset, allkeys = make_keyset(rng, 2, 10)
        with pytest.raises(SelectionError):
            SampledSelection().select(keyset, 0, SimComm(2), rng)
        with pytest.raises(SelectionError):
            SampledSelection().select(keyset, len(allkeys) + 1, SimComm(2), rng)
        empty = ArrayKeySet([np.array([]), np.array([])])
        with pytest.raises(SelectionError):
            SampledSelection().select(empty, 1, SimComm(2), rng)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SampledSelection(oversampling=0.0)
        with pytest.raises(ValueError):
            SampledSelection(safety=0.0)

    def test_comm_mismatch(self, rng):
        keyset, _ = make_keyset(rng, 2, 10)
        with pytest.raises(ValueError):
            SampledSelection().select(keyset, 1, SimComm(3), rng)

    def test_communication_charged(self, rng):
        keyset, _ = make_keyset(rng, 8, 100)
        comm = SimComm(8)
        SampledSelection().select(keyset, 50, comm, rng)
        assert comm.ledger.total_time > 0


class TestUnsortedSelection:
    @pytest.mark.parametrize("p", [1, 2, 4, 8, 16])
    def test_exact_result(self, p, rng):
        keyset, allkeys = make_keyset(rng, p, 40)
        n = len(allkeys)
        for k in [1, n // 3, n]:
            comm = SimComm(p)
            result = UnsortedSelection().select(keyset, k, comm, spawn_generators(k + p, p))
            assert result.key == pytest.approx(allkeys[k - 1])

    def test_duplicate_heavy_input_terminates(self):
        arrays = [np.full(30, 2.0), np.full(30, 2.0), np.array([1.0, 3.0])]
        keyset = ArrayKeySet(arrays)
        result = UnsortedSelection().select(keyset, 31, SimComm(3), np.random.default_rng(0))
        assert result.key == pytest.approx(2.0)

    def test_expected_logarithmic_rounds(self, rng):
        keyset, allkeys = make_keyset(rng, 8, 250)
        result = UnsortedSelection(gather_cutoff=1).select(keyset, 1000, SimComm(8), rng)
        # ~2000 candidates: random-pivot partitioning needs O(log N) rounds
        assert result.stats.recursion_depth <= 40

    def test_errors(self, rng):
        empty = ArrayKeySet([np.array([])])
        with pytest.raises(SelectionError):
            UnsortedSelection().select(empty, 1, SimComm(1), rng)
        keyset, allkeys = make_keyset(rng, 2, 5)
        with pytest.raises(SelectionError):
            UnsortedSelection().select(keyset, 11, SimComm(2), rng)

    def test_comm_mismatch(self, rng):
        keyset, _ = make_keyset(rng, 2, 5)
        with pytest.raises(ValueError):
            UnsortedSelection().select(keyset, 1, SimComm(4), rng)

    def test_wrong_generator_count(self, rng):
        keyset, _ = make_keyset(rng, 4, 5)
        with pytest.raises(ValueError):
            UnsortedSelection().select(keyset, 1, SimComm(4), spawn_generators(0, 2))

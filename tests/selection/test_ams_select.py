"""Tests for the approximate (banded) amsSelect algorithm."""

import numpy as np
import pytest

from repro.network import SimComm
from repro.selection import AmsSelection, ArrayKeySet
from repro.utils import spawn_generators


def make_keyset(rng, p, per_pe):
    arrays = [rng.random(per_pe) for _ in range(p)]
    return ArrayKeySet(arrays), np.sort(np.concatenate(arrays))


class TestBandedSelection:
    @pytest.mark.parametrize("p", [1, 4, 8])
    def test_result_rank_inside_band(self, p, rng):
        keyset, allkeys = make_keyset(rng, p, 100)
        n = len(allkeys)
        for k_lo in [1, n // 4, n // 2]:
            k_hi = min(n, k_lo + max(1, k_lo // 2))
            comm = SimComm(p)
            result = AmsSelection(2).select_range(keyset, k_lo, k_hi, comm, spawn_generators(k_lo, p))
            true_rank = int(np.searchsorted(allkeys, result.key, side="right"))
            assert k_lo <= true_rank <= k_hi
            assert result.rank == true_rank

    def test_zero_width_band_is_exact(self, rng):
        keyset, allkeys = make_keyset(rng, 4, 50)
        comm = SimComm(4)
        result = AmsSelection(2).select_range(keyset, 60, 60, comm, rng)
        assert result.key == pytest.approx(allkeys[59])

    def test_select_applies_relative_slack(self, rng):
        keyset, allkeys = make_keyset(rng, 4, 100)
        algo = AmsSelection(2, relative_slack=0.5)
        result = algo.select(keyset, 100, SimComm(4), rng)
        true_rank = int(np.searchsorted(allkeys, result.key, side="right"))
        assert 100 <= true_rank <= 150

    def test_band_for_clamps_to_total(self):
        algo = AmsSelection(2, relative_slack=0.5)
        assert algo.band_for(10, total=12) == (10, 12)
        assert algo.band_for(10, total=1000) == (10, 15)

    def test_band_wider_than_input_returns_everything_ok(self, rng):
        keyset, allkeys = make_keyset(rng, 2, 10)
        result = AmsSelection(2).select_range(keyset, 1, 20, SimComm(2), rng)
        rank = int(np.searchsorted(allkeys, result.key, side="right"))
        assert 1 <= rank <= 20

    def test_invalid_slack_rejected(self):
        with pytest.raises(ValueError):
            AmsSelection(2, relative_slack=-0.1)

    def test_name(self):
        assert AmsSelection(4).name == "ams-select-4"


class TestBandEfficiency:
    def test_wide_band_needs_fewer_rounds_than_exact(self):
        rng = np.random.default_rng(7)
        p, per_pe = 8, 500
        exact_depths, banded_depths = [], []
        for trial in range(8):
            arrays = [rng.random(per_pe) for _ in range(p)]
            keyset = ArrayKeySet(arrays)
            k = 1000
            exact = AmsSelection(2).select_range(keyset, k, k, SimComm(p), spawn_generators(trial, p))
            banded = AmsSelection(2).select_range(
                keyset, k, int(1.5 * k), SimComm(p), spawn_generators(trial + 100, p)
            )
            exact_depths.append(exact.stats.recursion_depth)
            banded_depths.append(banded.stats.recursion_depth)
        assert np.mean(banded_depths) < np.mean(exact_depths)

    def test_constant_depth_for_constant_factor_band(self):
        # Corollary 5: with a wide band the expected recursion depth is O(1)
        rng = np.random.default_rng(11)
        p, per_pe = 8, 400
        depths = []
        for trial in range(10):
            arrays = [rng.random(per_pe) for _ in range(p)]
            keyset = ArrayKeySet(arrays)
            result = AmsSelection(2).select_range(keyset, 800, 1600, SimComm(p), spawn_generators(trial, p))
            depths.append(result.stats.recursion_depth)
        assert np.mean(depths) <= 3.0

"""Tests for the single-/multi-pivot distributed selection algorithms."""

import numpy as np
import pytest

from repro.network import SimComm
from repro.selection import (
    ArrayKeySet,
    MultiPivotSelection,
    PivotSelection,
    SelectionError,
    SinglePivotSelection,
)
from repro.utils import spawn_generators


def make_keyset(rng, p, sizes=None, max_size=50):
    if sizes is None:
        sizes = rng.integers(0, max_size, size=p)
        if sizes.sum() == 0:
            sizes[0] = 5
    arrays = [rng.random(int(s)) for s in sizes]
    return ArrayKeySet(arrays), np.sort(np.concatenate(arrays))


class TestExactSelection:
    @pytest.mark.parametrize("algo", [SinglePivotSelection(), MultiPivotSelection(4), MultiPivotSelection(8)],
                             ids=["single", "multi4", "multi8"])
    @pytest.mark.parametrize("p", [1, 2, 5, 8, 16])
    def test_selects_exact_kth_smallest(self, algo, p, rng):
        keyset, allkeys = make_keyset(rng, p)
        n = len(allkeys)
        for k in {1, n // 3 + 1, n // 2 + 1, n}:
            comm = SimComm(p)
            result = algo.select(keyset, k, comm, spawn_generators(k, p))
            assert result.key == pytest.approx(allkeys[k - 1])
            assert result.rank == k

    def test_rank_one_and_rank_n(self, rng):
        keyset, allkeys = make_keyset(rng, 4)
        comm = SimComm(4)
        algo = SinglePivotSelection()
        assert algo.select(keyset, 1, comm, rng).key == pytest.approx(allkeys[0])
        comm = SimComm(4)
        assert algo.select(keyset, len(allkeys), comm, rng).key == pytest.approx(allkeys[-1])

    def test_single_pe(self, rng):
        keyset = ArrayKeySet([np.sort(rng.random(100))], assume_sorted=True)
        comm = SimComm(1)
        result = SinglePivotSelection().select(keyset, 42, comm, rng)
        assert result.key == pytest.approx(keyset.local_keys(0)[41])

    def test_empty_pes_are_tolerated(self, rng):
        keyset = ArrayKeySet([np.array([]), np.sort(rng.random(30)), np.array([])])
        comm = SimComm(3)
        result = SinglePivotSelection().select(keyset, 10, comm, rng)
        assert result.key == pytest.approx(np.sort(keyset.local_keys(1))[9])

    def test_duplicate_keys_terminate(self):
        arrays = [np.full(20, 1.0), np.full(20, 1.0), np.array([0.5, 2.0])]
        keyset = ArrayKeySet(arrays)
        comm = SimComm(3)
        result = SinglePivotSelection().select(keyset, 21, comm, np.random.default_rng(0))
        assert result.key == pytest.approx(1.0)

    def test_errors_on_empty_keyset(self, rng):
        keyset = ArrayKeySet([np.array([]), np.array([])])
        with pytest.raises(SelectionError):
            SinglePivotSelection().select(keyset, 1, SimComm(2), rng)

    def test_errors_on_rank_out_of_range(self, rng):
        keyset, allkeys = make_keyset(rng, 3)
        with pytest.raises(SelectionError):
            SinglePivotSelection().select(keyset, len(allkeys) + 1, SimComm(3), rng)

    def test_errors_on_invalid_band(self, rng):
        keyset, _ = make_keyset(rng, 3)
        with pytest.raises(ValueError):
            SinglePivotSelection().select_range(keyset, 5, 4, SimComm(3), rng)
        with pytest.raises(ValueError):
            SinglePivotSelection().select(keyset, 0, SimComm(3), rng)

    def test_mismatched_comm_size_rejected(self, rng):
        keyset, _ = make_keyset(rng, 3)
        with pytest.raises(ValueError):
            SinglePivotSelection().select(keyset, 1, SimComm(4), rng)

    def test_per_pe_generators_accepted(self, rng):
        keyset, allkeys = make_keyset(rng, 4)
        rngs = spawn_generators(7, 4)
        result = SinglePivotSelection().select(keyset, 5, SimComm(4), rngs)
        assert result.key == pytest.approx(allkeys[4])

    def test_wrong_number_of_generators_rejected(self, rng):
        keyset, _ = make_keyset(rng, 4)
        with pytest.raises(ValueError):
            SinglePivotSelection().select(keyset, 1, SimComm(4), spawn_generators(0, 3))


class TestStatsAndCosts:
    def test_stats_populated(self, rng):
        keyset, allkeys = make_keyset(rng, 8, sizes=[200] * 8)
        comm = SimComm(8)
        result = SinglePivotSelection(gather_cutoff=4).select(keyset, 800, comm, rng)
        assert result.stats.recursion_depth >= 1
        assert result.stats.collective_calls >= 2
        assert result.stats.pivots_proposed >= result.stats.recursion_depth

    def test_communication_is_charged(self, rng):
        keyset, _ = make_keyset(rng, 8, sizes=[100] * 8)
        comm = SimComm(8)
        SinglePivotSelection().select(keyset, 100, comm, rng)
        assert comm.ledger.total_time > 0
        assert comm.ledger.total_messages > 0

    def test_no_communication_charged_for_single_pe(self, rng):
        keyset = ArrayKeySet([np.sort(rng.random(50))], assume_sorted=True)
        comm = SimComm(1)
        SinglePivotSelection().select(keyset, 10, comm, rng)
        assert comm.ledger.total_time == 0.0

    def test_multi_pivot_reduces_recursion_depth(self):
        # averaged over repetitions, 8 pivots need fewer rounds than 1 pivot
        rng = np.random.default_rng(123)
        p, per_pe, k = 16, 400, 3000
        depths = {1: [], 8: []}
        for trial in range(10):
            arrays = [rng.random(per_pe) for _ in range(p)]
            keyset = ArrayKeySet(arrays)
            for pivots in (1, 8):
                algo = PivotSelection(pivots, gather_cutoff=4)
                result = algo.select(keyset, k, SimComm(p), spawn_generators(trial * 10 + pivots, p))
                depths[pivots].append(result.stats.recursion_depth)
        assert np.mean(depths[8]) < np.mean(depths[1])

    def test_gather_cutoff_zero_still_terminates(self, rng):
        keyset, allkeys = make_keyset(rng, 4, sizes=[50] * 4)
        algo = PivotSelection(1, gather_cutoff=0, max_rounds=500)
        result = algo.select(keyset, 77, SimComm(4), rng)
        assert result.key == pytest.approx(allkeys[76])

    def test_max_rounds_fallback_flag(self):
        # force the fallback by allowing no recursion rounds at all
        rng = np.random.default_rng(5)
        keyset, allkeys = make_keyset(rng, 4, sizes=[60] * 4)
        algo = PivotSelection(1, gather_cutoff=1, max_rounds=1)
        result = algo.select(keyset, 120, SimComm(4), rng)
        assert result.key == pytest.approx(allkeys[119])

    def test_name_property(self):
        assert SinglePivotSelection().name == "single-pivot"
        assert MultiPivotSelection(8).name == "multi-pivot-8"


class TestParameterValidation:
    def test_invalid_constructor_arguments(self):
        with pytest.raises(ValueError):
            PivotSelection(0)
        with pytest.raises(ValueError):
            PivotSelection(1, gather_cutoff=-1)
        with pytest.raises(ValueError):
            PivotSelection(1, max_rounds=0)

    def test_multi_pivot_requires_at_least_two(self):
        with pytest.raises(ValueError):
            MultiPivotSelection(1)

"""Property-based tests: every selection algorithm agrees with numpy sorting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import SimComm
from repro.selection import (
    AmsSelection,
    ArrayKeySet,
    MultiPivotSelection,
    SampledSelection,
    SinglePivotSelection,
    UnsortedSelection,
)
from repro.utils import spawn_generators

ALGORITHMS = {
    "single-pivot": SinglePivotSelection(),
    "multi-pivot-4": MultiPivotSelection(4),
    "sampled": SampledSelection(),
    "unsorted": UnsortedSelection(),
}


@st.composite
def distributed_keys(draw):
    p = draw(st.integers(min_value=1, max_value=8))
    sizes = draw(st.lists(st.integers(min_value=0, max_value=40), min_size=p, max_size=p))
    if sum(sizes) == 0:
        sizes[0] = 1
    seed = draw(st.integers(min_value=0, max_value=2**20))
    rng = np.random.default_rng(seed)
    arrays = [rng.random(s) for s in sizes]
    k = draw(st.integers(min_value=1, max_value=sum(sizes)))
    return arrays, k, seed


@settings(max_examples=40, deadline=None)
@pytest.mark.parametrize("name", list(ALGORITHMS))
@given(case=distributed_keys())
def test_selection_matches_numpy(name, case):
    arrays, k, seed = case
    algo = ALGORITHMS[name]
    keyset = ArrayKeySet(arrays)
    allkeys = np.sort(np.concatenate(arrays))
    comm = SimComm(len(arrays))
    result = algo.select(keyset, k, comm, spawn_generators(seed, len(arrays)))
    assert result.key == pytest.approx(allkeys[k - 1])


@settings(max_examples=40, deadline=None)
@given(case=distributed_keys(), slack=st.floats(min_value=0.0, max_value=1.0))
def test_banded_selection_rank_is_in_band(case, slack):
    arrays, k, seed = case
    keyset = ArrayKeySet(arrays)
    allkeys = np.sort(np.concatenate(arrays))
    n = len(allkeys)
    k_hi = min(n, int(np.ceil(k * (1.0 + slack))))
    comm = SimComm(len(arrays))
    result = AmsSelection(2).select_range(keyset, k, k_hi, comm, spawn_generators(seed, len(arrays)))
    rank = int(np.searchsorted(allkeys, result.key, side="right"))
    assert k <= rank <= k_hi


@settings(max_examples=30, deadline=None)
@given(case=distributed_keys())
def test_selection_key_is_an_existing_key(case):
    arrays, k, seed = case
    keyset = ArrayKeySet(arrays)
    allkeys = np.concatenate(arrays)
    comm = SimComm(len(arrays))
    result = SinglePivotSelection().select(keyset, k, comm, spawn_generators(seed, len(arrays)))
    assert np.any(np.isclose(allkeys, result.key))

"""Tests for the sequential selection helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.selection import nth_smallest_numpy, quickselect_nth, smallest_k


class TestQuickselectNth:
    def test_known_small_array(self):
        values = np.array([5.0, 1.0, 4.0, 2.0, 3.0])
        assert quickselect_nth(values, 1) == 1.0
        assert quickselect_nth(values, 3) == 3.0
        assert quickselect_nth(values, 5) == 5.0

    def test_matches_sort_on_random_inputs(self, rng):
        for _ in range(30):
            n = int(rng.integers(1, 500))
            values = rng.normal(size=n)
            k = int(rng.integers(1, n + 1))
            assert quickselect_nth(values, k) == np.sort(values)[k - 1]

    def test_duplicates(self):
        values = np.array([2.0, 2.0, 2.0, 1.0, 3.0])
        assert quickselect_nth(values, 2) == 2.0
        assert quickselect_nth(values, 4) == 2.0

    def test_does_not_modify_input(self):
        values = np.array([3.0, 1.0, 2.0])
        copy = values.copy()
        quickselect_nth(values, 2)
        np.testing.assert_array_equal(values, copy)

    def test_out_of_range_rank(self):
        with pytest.raises(IndexError):
            quickselect_nth(np.array([1.0]), 0)
        with pytest.raises(IndexError):
            quickselect_nth(np.array([1.0]), 2)

    @settings(max_examples=80, deadline=None)
    @given(
        values=st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=200
        ),
        data=st.data(),
    )
    def test_property_matches_sorted(self, values, data):
        k = data.draw(st.integers(min_value=1, max_value=len(values)))
        assert quickselect_nth(np.array(values), k) == sorted(values)[k - 1]


class TestNthSmallestNumpy:
    def test_agrees_with_quickselect(self, rng):
        values = rng.random(1000)
        for k in [1, 10, 500, 1000]:
            assert nth_smallest_numpy(values, k) == quickselect_nth(values, k)

    def test_out_of_range(self):
        with pytest.raises(IndexError):
            nth_smallest_numpy(np.array([1.0, 2.0]), 3)


class TestSmallestK:
    def test_returns_k_smallest(self, rng):
        values = rng.random(100)
        out = smallest_k(values, 10, sort=True)
        np.testing.assert_allclose(out, np.sort(values)[:10])

    def test_k_larger_than_input(self):
        values = np.array([3.0, 1.0])
        out = smallest_k(values, 10, sort=True)
        np.testing.assert_allclose(out, [1.0, 3.0])

    def test_k_zero_or_negative(self):
        assert smallest_k(np.array([1.0]), 0).shape == (0,)
        assert smallest_k(np.array([1.0]), -3).shape == (0,)

    def test_unsorted_output_contains_same_elements(self, rng):
        values = rng.random(50)
        out = smallest_k(values, 20, sort=False)
        np.testing.assert_allclose(np.sort(out), np.sort(values)[:20])

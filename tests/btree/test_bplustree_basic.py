"""Basic B+ tree operations: construction, insertion, lookup, deletion."""

import numpy as np
import pytest

from repro.btree import BPlusTree


class TestConstruction:
    def test_empty_tree(self):
        tree = BPlusTree()
        assert len(tree) == 0
        assert not tree
        assert tree.height == 0
        tree.check_invariants()

    def test_order_must_be_at_least_four(self):
        with pytest.raises(ValueError):
            BPlusTree(order=3)

    def test_from_sorted_items(self):
        items = [(float(i), i) for i in range(100)]
        tree = BPlusTree.from_sorted_items(items, order=8)
        assert len(tree) == 100
        assert list(tree.items()) == items
        tree.check_invariants()

    def test_from_sorted_items_rejects_unsorted(self):
        with pytest.raises(ValueError):
            BPlusTree.from_sorted_items([(2.0, 0), (1.0, 1)])

    def test_from_items_sorts(self):
        tree = BPlusTree.from_items([(3.0, "c"), (1.0, "a"), (2.0, "b")])
        assert [k for k, _ in tree.items()] == [1.0, 2.0, 3.0]

    def test_bulk_load_various_sizes(self):
        for n in [0, 1, 2, 7, 8, 15, 16, 17, 64, 257, 1000]:
            tree = BPlusTree.from_sorted_items([(float(i), i) for i in range(n)], order=8)
            assert len(tree) == n
            tree.check_invariants()


class TestInsert:
    def test_single_insert(self):
        tree = BPlusTree()
        tree.insert(1.5, "a")
        assert len(tree) == 1
        assert tree.min_item() == (1.5, "a")
        assert tree.max_item() == (1.5, "a")

    def test_many_inserts_sorted_order(self, rng):
        tree = BPlusTree(order=6)
        keys = rng.random(500)
        for i, key in enumerate(keys):
            tree.insert(float(key), i)
        assert len(tree) == 500
        stored = [k for k, _ in tree.items()]
        assert stored == sorted(keys.tolist())
        tree.check_invariants()

    def test_duplicate_keys_allowed(self):
        tree = BPlusTree(order=4)
        for i in range(50):
            tree.insert(1.0, i)
        assert len(tree) == 50
        assert tree.count_le(1.0) == 50
        tree.check_invariants()

    def test_update_inserts_pairs(self):
        tree = BPlusTree()
        tree.update([(2.0, "b"), (1.0, "a")])
        assert len(tree) == 2

    def test_contains_and_get(self):
        tree = BPlusTree()
        tree.insert(3.0, "payload")
        assert 3.0 in tree
        assert 4.0 not in tree
        assert tree.get(3.0) == "payload"
        assert tree.get(4.0, default="missing") == "missing"

    def test_height_grows_logarithmically(self):
        tree = BPlusTree(order=4)
        for i in range(1000):
            tree.insert(float(i), i)
        # order-4 tree: height is O(log_2 n); 1000 items should stay shallow
        assert tree.height <= 12


class TestMinMax:
    def test_min_max_track_extremes(self, rng):
        tree = BPlusTree(order=5)
        keys = rng.normal(size=200)
        for i, key in enumerate(keys):
            tree.insert(float(key), i)
        assert tree.min_key() == pytest.approx(keys.min())
        assert tree.max_key() == pytest.approx(keys.max())

    def test_min_max_on_empty_raises(self):
        tree = BPlusTree()
        with pytest.raises(IndexError):
            tree.min_item()
        with pytest.raises(IndexError):
            tree.max_item()


class TestErase:
    def test_erase_at_returns_item(self):
        tree = BPlusTree.from_sorted_items([(float(i), i) for i in range(10)])
        key, value = tree.erase_at(3)
        assert (key, value) == (3.0, 3)
        assert len(tree) == 9

    def test_erase_at_out_of_range(self):
        tree = BPlusTree.from_sorted_items([(1.0, 1)])
        with pytest.raises(IndexError):
            tree.erase_at(1)
        with pytest.raises(IndexError):
            tree.erase_at(-1)

    def test_erase_by_key(self):
        tree = BPlusTree.from_sorted_items([(float(i), i * 10) for i in range(20)])
        assert tree.erase(5.0) == 50
        assert 5.0 not in tree
        tree.check_invariants()

    def test_erase_missing_key_raises(self):
        tree = BPlusTree.from_sorted_items([(1.0, 1)])
        with pytest.raises(KeyError):
            tree.erase(2.0)

    def test_erase_all_items(self, rng):
        tree = BPlusTree(order=4)
        keys = rng.random(100)
        for i, key in enumerate(keys):
            tree.insert(float(key), i)
        for _ in range(100):
            tree.erase_at(int(rng.integers(0, len(tree))))
            tree.check_invariants()
        assert len(tree) == 0

    def test_pop_max_and_min(self):
        tree = BPlusTree.from_sorted_items([(float(i), i) for i in range(32)], order=4)
        assert tree.pop_max() == (31.0, 31)
        assert tree.pop_min() == (0.0, 0)
        assert len(tree) == 30
        tree.check_invariants()

    def test_pop_on_empty_raises(self):
        tree = BPlusTree()
        with pytest.raises(IndexError):
            tree.pop_max()
        with pytest.raises(IndexError):
            tree.pop_min()

    def test_interleaved_insert_erase_keeps_invariants(self, rng):
        tree = BPlusTree(order=4)
        reference = []
        for step in range(600):
            if rng.random() < 0.6 or not reference:
                key = float(rng.integers(0, 40))
                tree.insert(key, step)
                reference.append(key)
                reference.sort()
            else:
                idx = int(rng.integers(0, len(reference)))
                key, _ = tree.erase_at(idx)
                assert key == reference.pop(idx)
        tree.check_invariants()
        assert [k for k, _ in tree.items()] == reference


class TestClear:
    def test_clear_empties_tree(self):
        tree = BPlusTree.from_sorted_items([(float(i), i) for i in range(50)])
        tree.clear()
        assert len(tree) == 0
        assert list(tree.items()) == []
        tree.check_invariants()

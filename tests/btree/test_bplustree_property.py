"""Property-based tests: the B+ tree behaves like a sorted multiset."""

import bisect

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.btree import BPlusTree

KEYS = st.floats(min_value=0.0, max_value=100.0, allow_nan=False, allow_infinity=False)
SMALL_KEYS = st.integers(min_value=0, max_value=20).map(float)  # forces duplicates


@settings(max_examples=60, deadline=None)
@given(keys=st.lists(KEYS, max_size=300), order=st.integers(min_value=4, max_value=24))
def test_insert_matches_sorted_reference(keys, order):
    tree = BPlusTree(order=order)
    for i, key in enumerate(keys):
        tree.insert(key, i)
    tree.check_invariants()
    assert list(tree.keys()) == sorted(keys)


@settings(max_examples=60, deadline=None)
@given(keys=st.lists(SMALL_KEYS, min_size=1, max_size=200), queries=st.lists(SMALL_KEYS, max_size=20))
def test_counts_match_reference_with_duplicates(keys, queries):
    tree = BPlusTree(order=4)
    for i, key in enumerate(keys):
        tree.insert(key, i)
    ordered = sorted(keys)
    for query in queries + keys[:5]:
        assert tree.count_le(query) == bisect.bisect_right(ordered, query)
        assert tree.count_less(query) == bisect.bisect_left(ordered, query)


@settings(max_examples=60, deadline=None)
@given(
    keys=st.lists(KEYS, min_size=1, max_size=200),
    order=st.integers(min_value=4, max_value=16),
    data=st.data(),
)
def test_select_matches_reference(keys, order, data):
    tree = BPlusTree(order=order)
    for i, key in enumerate(keys):
        tree.insert(key, i)
    ordered = sorted(keys)
    rank = data.draw(st.integers(min_value=0, max_value=len(keys) - 1))
    assert tree.select(rank)[0] == ordered[rank]


@settings(max_examples=60, deadline=None)
@given(
    keys=st.lists(KEYS, min_size=1, max_size=200),
    order=st.integers(min_value=4, max_value=16),
    data=st.data(),
)
def test_truncate_matches_reference(keys, order, data):
    tree = BPlusTree(order=order)
    for i, key in enumerate(keys):
        tree.insert(key, i)
    keep = data.draw(st.integers(min_value=0, max_value=len(keys)))
    removed = tree.truncate_to_rank(keep)
    tree.check_invariants()
    assert removed == len(keys) - keep
    assert list(tree.keys()) == sorted(keys)[:keep]


@settings(max_examples=40, deadline=None)
@given(
    keys=st.lists(KEYS, min_size=1, max_size=150),
    order=st.integers(min_value=4, max_value=12),
    data=st.data(),
)
def test_split_then_join_is_identity(keys, order, data):
    tree = BPlusTree(order=order)
    for i, key in enumerate(keys):
        tree.insert(key, i)
    cut = data.draw(st.integers(min_value=0, max_value=len(keys)))
    suffix = tree.split_at_rank(cut)
    tree.check_invariants()
    suffix.check_invariants()
    assert len(tree) == cut
    assert len(suffix) == len(keys) - cut
    tree.join(suffix)
    tree.check_invariants()
    assert list(tree.keys()) == sorted(keys)


class BPlusTreeMachine(RuleBasedStateMachine):
    """Stateful comparison of the B+ tree against a sorted list model."""

    def __init__(self):
        super().__init__()
        self.tree = None
        self.model = []

    @initialize(order=st.integers(min_value=4, max_value=10))
    def setup(self, order):
        self.tree = BPlusTree(order=order)
        self.model = []

    @rule(key=SMALL_KEYS)
    def insert(self, key):
        self.tree.insert(key, len(self.model))
        bisect.insort_right(self.model, key)

    @rule(data=st.data())
    def erase_at(self, data):
        if not self.model:
            return
        rank = data.draw(st.integers(min_value=0, max_value=len(self.model) - 1))
        key, _ = self.tree.erase_at(rank)
        assert key == self.model.pop(rank)

    @rule(data=st.data())
    def truncate(self, data):
        keep = data.draw(st.integers(min_value=0, max_value=len(self.model)))
        removed = self.tree.truncate_to_rank(keep)
        assert removed == len(self.model) - keep
        del self.model[keep:]

    @rule(query=SMALL_KEYS)
    def count(self, query):
        assert self.tree.count_le(query) == bisect.bisect_right(self.model, query)
        assert self.tree.count_less(query) == bisect.bisect_left(self.model, query)

    @invariant()
    def contents_match(self):
        if self.tree is None:
            return
        self.tree.check_invariants()
        assert list(self.tree.keys()) == self.model


TestBPlusTreeStateMachine = BPlusTreeMachine.TestCase
TestBPlusTreeStateMachine.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

"""Rank/select queries and ordered iteration of the B+ tree."""

import numpy as np
import pytest

from repro.btree import BPlusTree


@pytest.fixture
def random_tree(rng):
    keys = np.sort(rng.random(300))
    tree = BPlusTree.from_sorted_items([(float(k), i) for i, k in enumerate(keys)], order=8)
    return tree, keys


class TestSelect:
    def test_select_matches_sorted_order(self, random_tree):
        tree, keys = random_tree
        for rank in [0, 1, 10, 150, 298, 299]:
            assert tree.select(rank)[0] == pytest.approx(keys[rank])

    def test_select_out_of_range(self, random_tree):
        tree, _ = random_tree
        with pytest.raises(IndexError):
            tree.select(300)
        with pytest.raises(IndexError):
            tree.select(-1)

    def test_select_on_single_item(self):
        tree = BPlusTree()
        tree.insert(7.0, "x")
        assert tree.select(0) == (7.0, "x")


class TestCounts:
    def test_count_le_and_less_on_random_keys(self, random_tree, rng):
        tree, keys = random_tree
        for query in rng.random(50):
            assert tree.count_le(query) == int(np.sum(keys <= query))
            assert tree.count_less(query) == int(np.sum(keys < query))

    def test_count_on_empty_tree(self):
        tree = BPlusTree()
        assert tree.count_le(1.0) == 0
        assert tree.count_less(1.0) == 0

    def test_count_with_duplicates(self):
        tree = BPlusTree(order=4)
        for i in range(10):
            tree.insert(2.0, i)
        tree.insert(1.0, "low")
        tree.insert(3.0, "high")
        assert tree.count_less(2.0) == 1
        assert tree.count_le(2.0) == 11
        assert tree.rank_of_key(2.0) == 1

    def test_count_below_min_and_above_max(self, random_tree):
        tree, keys = random_tree
        assert tree.count_le(keys[0] - 1.0) == 0
        assert tree.count_le(keys[-1] + 1.0) == len(keys)


class TestRankSelectConsistency:
    def test_rank_of_selected_key(self, random_tree):
        tree, _ = random_tree
        for rank in range(0, 300, 17):
            key, _ = tree.select(rank)
            assert tree.count_less(key) <= rank < tree.count_le(key)

    def test_select_after_mutations(self, rng):
        tree = BPlusTree(order=4)
        reference = []
        for i in range(400):
            key = float(rng.random())
            tree.insert(key, i)
            reference.append(key)
        reference.sort()
        tree.truncate_to_rank(200)
        del reference[200:]
        for rank in range(0, 200, 13):
            assert tree.select(rank)[0] == pytest.approx(reference[rank])


class TestIteration:
    def test_items_sorted(self, random_tree):
        tree, keys = random_tree
        iterated = [k for k, _ in tree.items()]
        assert iterated == sorted(iterated)
        assert len(iterated) == len(keys)

    def test_keys_and_values_aligned(self):
        tree = BPlusTree.from_sorted_items([(float(i), f"v{i}") for i in range(20)])
        assert list(tree.keys()) == [float(i) for i in range(20)]
        assert list(tree.values()) == [f"v{i}" for i in range(20)]

    def test_keys_array_dtype_and_content(self, random_tree):
        tree, keys = random_tree
        arr = tree.keys_array()
        assert arr.dtype == np.float64
        np.testing.assert_allclose(arr, np.sort(keys))

    def test_items_in_rank_range(self, random_tree):
        tree, keys = random_tree
        segment = tree.items_in_rank_range(10, 25)
        assert [k for k, _ in segment] == pytest.approx(list(keys[10:25]))

    def test_items_in_rank_range_clamps(self, random_tree):
        tree, keys = random_tree
        assert tree.items_in_rank_range(-5, 3) == tree.items_in_rank_range(0, 3)
        assert len(tree.items_in_rank_range(290, 1000)) == 10
        assert tree.items_in_rank_range(50, 50) == []
        assert tree.items_in_rank_range(60, 40) == []

"""Suffix truncation, splitting and joining of B+ trees (Algorithm 1's splitAt)."""

import numpy as np
import pytest

from repro.btree import BPlusTree


def build_tree(n, order=8):
    return BPlusTree.from_sorted_items([(float(i), i) for i in range(n)], order=order)


class TestTruncate:
    def test_truncate_keeps_smallest(self):
        tree = build_tree(100)
        removed = tree.truncate_to_rank(40)
        assert removed == 60
        assert len(tree) == 40
        assert [k for k, _ in tree.items()] == [float(i) for i in range(40)]
        tree.check_invariants()

    def test_truncate_to_zero_clears(self):
        tree = build_tree(50)
        assert tree.truncate_to_rank(0) == 50
        assert len(tree) == 0
        tree.check_invariants()

    def test_truncate_beyond_size_is_noop(self):
        tree = build_tree(10)
        assert tree.truncate_to_rank(10) == 0
        assert tree.truncate_to_rank(100) == 0
        assert len(tree) == 10

    def test_truncate_negative_rejected(self):
        tree = build_tree(5)
        with pytest.raises(ValueError):
            tree.truncate_to_rank(-1)

    @pytest.mark.parametrize("order", [4, 5, 8, 16, 33])
    @pytest.mark.parametrize("n", [1, 2, 17, 100, 513])
    def test_truncate_every_possible_cut(self, order, n, rng):
        # one representative cut per (order, n); the property test sweeps more
        keep = int(rng.integers(0, n + 1))
        tree = build_tree(n, order=order)
        removed = tree.truncate_to_rank(keep)
        assert removed == n - keep
        assert len(tree) == keep
        assert [k for k, _ in tree.items()] == [float(i) for i in range(keep)]
        tree.check_invariants()

    def test_repeated_truncation(self, rng):
        keys = np.sort(rng.random(500))
        tree = BPlusTree.from_sorted_items([(float(k), i) for i, k in enumerate(keys)], order=6)
        expected = list(keys)
        while len(tree) > 0:
            keep = max(0, len(tree) - int(rng.integers(1, 60)))
            tree.truncate_to_rank(keep)
            expected = expected[:keep]
            assert [k for k, _ in tree.items()] == pytest.approx(expected)
            tree.check_invariants()

    def test_truncate_after_random_inserts(self, rng):
        tree = BPlusTree(order=4)
        keys = []
        for i, key in enumerate(rng.random(300)):
            tree.insert(float(key), i)
            keys.append(float(key))
        keys.sort()
        tree.truncate_to_rank(123)
        assert tree.keys_array() == pytest.approx(keys[:123])
        tree.check_invariants()


class TestSplitAtRank:
    def test_split_returns_suffix(self):
        tree = build_tree(60, order=5)
        suffix = tree.split_at_rank(25)
        assert len(tree) == 25
        assert len(suffix) == 35
        assert [k for k, _ in suffix.items()] == [float(i) for i in range(25, 60)]
        tree.check_invariants()
        suffix.check_invariants()

    def test_split_at_zero_moves_everything(self):
        tree = build_tree(20)
        suffix = tree.split_at_rank(0)
        assert len(tree) == 0
        assert len(suffix) == 20

    def test_split_at_size_moves_nothing(self):
        tree = build_tree(20)
        suffix = tree.split_at_rank(20)
        assert len(tree) == 20
        assert len(suffix) == 0


class TestSplitAtKey:
    def test_split_at_key_inclusive(self):
        tree = build_tree(30)
        suffix = tree.split_at_key(10.0, inclusive=True)
        assert tree.max_key() == 10.0
        assert suffix.min_key() == 11.0

    def test_split_at_key_exclusive(self):
        tree = build_tree(30)
        suffix = tree.split_at_key(10.0, inclusive=False)
        assert tree.max_key() == 9.0
        assert suffix.min_key() == 10.0

    def test_split_at_key_below_min(self):
        tree = build_tree(10)
        suffix = tree.split_at_key(-5.0)
        assert len(tree) == 0
        assert len(suffix) == 10


class TestJoin:
    def test_join_disjoint_ranges(self):
        left = build_tree(40, order=6)
        right = BPlusTree.from_sorted_items([(float(i), i) for i in range(40, 90)], order=6)
        left.join(right)
        assert len(left) == 90
        assert len(right) == 0
        assert [k for k, _ in left.items()] == [float(i) for i in range(90)]
        left.check_invariants()

    def test_join_with_empty_other(self):
        left = build_tree(10)
        left.join(BPlusTree())
        assert len(left) == 10

    def test_join_into_empty_self(self):
        left = BPlusTree()
        right = build_tree(15)
        left.join(right)
        assert len(left) == 15
        assert len(right) == 0

    def test_join_rejects_overlap(self):
        left = build_tree(10)
        right = build_tree(5)
        with pytest.raises(ValueError):
            left.join(right)

    def test_join_allows_touching_boundary(self):
        left = build_tree(10)
        right = BPlusTree.from_sorted_items([(9.0, "dup"), (12.0, "x")])
        left.join(right)  # equal boundary keys are allowed
        assert len(left) == 12

    def test_split_then_join_roundtrip(self, rng):
        keys = np.sort(rng.random(200))
        tree = BPlusTree.from_sorted_items([(float(k), i) for i, k in enumerate(keys)], order=7)
        suffix = tree.split_at_rank(77)
        tree.join(suffix)
        assert tree.keys_array() == pytest.approx(list(keys))
        tree.check_invariants()

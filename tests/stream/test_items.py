"""Tests for the ItemBatch struct-of-arrays container."""

import numpy as np
import pytest

from repro.stream import ItemBatch


class TestConstruction:
    def test_from_weights_assigns_consecutive_ids(self):
        batch = ItemBatch.from_weights([1.0, 2.0, 3.0], start_id=10)
        assert batch.ids.tolist() == [10, 11, 12]
        assert batch.weights.tolist() == [1.0, 2.0, 3.0]

    def test_empty(self):
        batch = ItemBatch.empty()
        assert len(batch) == 0
        assert batch.total_weight == 0.0

    def test_uniform_items_have_unit_weights(self):
        batch = ItemBatch.uniform_items(5, start_id=3)
        assert batch.weights.tolist() == [1.0] * 5
        assert batch.ids.tolist() == [3, 4, 5, 6, 7]

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            ItemBatch(ids=np.arange(3), weights=np.ones(2))

    def test_non_positive_weights_rejected(self):
        with pytest.raises(ValueError):
            ItemBatch(ids=np.arange(2), weights=np.array([1.0, 0.0]))

    def test_two_dimensional_ids_rejected(self):
        with pytest.raises(ValueError):
            ItemBatch(ids=np.zeros((2, 2), dtype=np.int64), weights=np.ones(4))

    def test_dtype_coercion(self):
        batch = ItemBatch(ids=[1, 2], weights=[1, 2])
        assert batch.ids.dtype == np.int64
        assert batch.weights.dtype == np.float64


class TestOperations:
    def test_total_weight(self):
        batch = ItemBatch.from_weights([0.5, 1.5, 2.0])
        assert batch.total_weight == pytest.approx(4.0)

    def test_iteration_yields_pairs(self):
        batch = ItemBatch.from_weights([1.0, 2.0], start_id=5)
        assert list(batch) == [(5, 1.0), (6, 2.0)]

    def test_take_subset(self):
        batch = ItemBatch.from_weights([1.0, 2.0, 3.0, 4.0])
        sub = batch.take(np.array([2, 0]))
        assert sub.ids.tolist() == [2, 0]
        assert sub.weights.tolist() == [3.0, 1.0]

    def test_concat(self):
        a = ItemBatch.from_weights([1.0], start_id=0)
        b = ItemBatch.from_weights([2.0, 3.0], start_id=1)
        merged = ItemBatch.concat([a, ItemBatch.empty(), b])
        assert merged.ids.tolist() == [0, 1, 2]
        assert len(merged) == 3

    def test_concat_of_nothing_is_empty(self):
        assert len(ItemBatch.concat([])) == 0

    def test_split_covers_all_items(self):
        batch = ItemBatch.from_weights(np.arange(1, 11, dtype=float))
        parts = batch.split(3)
        assert sum(len(p) for p in parts) == 10
        assert np.concatenate([p.ids for p in parts]).tolist() == batch.ids.tolist()

    def test_split_more_parts_than_items(self):
        batch = ItemBatch.from_weights([1.0, 2.0])
        parts = batch.split(5)
        assert len(parts) == 5
        assert sum(len(p) for p in parts) == 2

    def test_split_invalid_parts(self):
        with pytest.raises(ValueError):
            ItemBatch.empty().split(0)

"""Tests for the worker-local stream shards."""

import numpy as np
import pytest

from repro.stream import MiniBatchStream
from repro.stream.generators import UnitWeightGenerator
from repro.stream.shard import StreamShardSpec, WorkerStreamShard


class TestShardEquivalence:
    def test_matches_minibatch_stream_exactly(self):
        p, batch, seed = 3, 64, 9
        stream = MiniBatchStream(p, batch, seed=seed)
        shards = [
            WorkerStreamShard(StreamShardSpec(p=p, pe=pe, batch_size=batch, seed=seed))
            for pe in range(p)
        ]
        for _ in range(5):
            round_batches = stream.next_round()
            for pe in range(p):
                local = shards[pe].next_batch()
                np.testing.assert_array_equal(local.ids, round_batches.batches[pe].ids)
                np.testing.assert_array_equal(local.weights, round_batches.batches[pe].weights)

    def test_custom_weight_generator(self):
        shard = WorkerStreamShard(
            StreamShardSpec(p=2, pe=0, batch_size=8, seed=1, weights=UnitWeightGenerator())
        )
        batch = shard.next_batch()
        np.testing.assert_array_equal(batch.weights, np.ones(8))

    def test_ids_are_globally_unique_and_contiguous_per_round(self):
        p, batch = 2, 10
        shards = [
            WorkerStreamShard(StreamShardSpec(p=p, pe=pe, batch_size=batch, seed=0))
            for pe in range(p)
        ]
        seen = set()
        for round_index in range(3):
            for pe in range(p):
                ids = shards[pe].next_batch().ids
                assert ids[0] == (round_index * p + pe) * batch
                assert not seen.intersection(ids.tolist())
                seen.update(ids.tolist())

    def test_round_index_advances(self):
        shard = WorkerStreamShard(StreamShardSpec(p=1, pe=0, batch_size=4, seed=0))
        assert shard.round_index == 0
        shard.next_batch()
        assert shard.round_index == 1


class TestSpecValidation:
    def test_rejects_out_of_range_pe(self):
        with pytest.raises(ValueError):
            StreamShardSpec(p=2, pe=2, batch_size=4)

    def test_rejects_non_positive_sizes(self):
        with pytest.raises(ValueError):
            StreamShardSpec(p=0, pe=0, batch_size=4)
        with pytest.raises(ValueError):
            StreamShardSpec(p=1, pe=0, batch_size=0)

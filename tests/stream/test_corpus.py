"""Tests for the corpus-replay weighted stream adapter."""

import numpy as np
import pytest

from repro.stream import CorpusDocument, CorpusReplayStream, load_corpus, synthetic_corpus
from repro.stream.corpus import DEFAULT_CORPUS_ROOT


class TestSyntheticCorpus:
    def test_deterministic(self):
        a = synthetic_corpus(seed=5)
        b = synthetic_corpus(seed=5)
        assert a == b

    def test_seed_changes_corpus(self):
        assert synthetic_corpus(seed=1) != synthetic_corpus(seed=2)

    def test_site_grouped_order(self):
        docs = synthetic_corpus()
        sites = [d.site for d in docs]
        # grouped: each site forms one contiguous run
        first_seen = {}
        for i, site in enumerate(sites):
            if site in first_seen:
                assert sites[i - 1] == site, "sites must be contiguous runs"
            first_seen.setdefault(site, i)

    def test_heavy_tailed_positive_lengths(self):
        lengths = np.array([d.length for d in synthetic_corpus()])
        assert (lengths > 0).all()
        assert lengths.max() > 10 * np.median(lengths)


class TestLoadCorpus:
    def test_missing_root_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_corpus(str(tmp_path / "nope"))

    def test_scans_sites_and_weights(self, tmp_path):
        (tmp_path / "siteA").mkdir()
        (tmp_path / "siteB").mkdir()
        (tmp_path / "siteA" / "a.html").write_text("x" * 100)
        (tmp_path / "siteA" / "b.txt").write_text("y" * 7)
        (tmp_path / "siteB" / "c.json").write_text("z" * 42)
        (tmp_path / "siteB" / "ignored.bin").write_text("nope")
        (tmp_path / "root.md").write_text("r" * 3)
        docs = load_corpus(str(tmp_path))
        assert [(d.site, d.length) for d in docs] == [
            ("_root", 3),
            ("siteA", 100),
            ("siteA", 7),
            ("siteB", 42),
        ]

    def test_empty_files_skipped(self, tmp_path):
        (tmp_path / "empty.txt").write_text("")
        assert load_corpus(str(tmp_path)) == []


class TestCorpusReplayStream:
    def test_falls_back_to_synthetic_when_corpus_absent(self, tmp_path):
        stream = CorpusReplayStream(2, 8, corpus_root=str(tmp_path / "absent"))
        assert stream.source == "synthetic"
        assert stream.n_docs > 0

    def test_real_corpus_used_when_present(self, tmp_path):
        (tmp_path / "site").mkdir()
        (tmp_path / "site" / "a.txt").write_text("hello")
        stream = CorpusReplayStream(1, 4, corpus_root=str(tmp_path))
        assert stream.source == str(tmp_path)
        assert stream.n_docs == 1

    def test_deterministic_replay(self):
        def weights(stream, rounds):
            return [np.concatenate([b.weights for b in r.batches]) for r in stream.rounds(rounds)]

        a = weights(CorpusReplayStream(3, 16, seed=9), 5)
        b = weights(CorpusReplayStream(3, 16, seed=9), 5)
        for wa, wb in zip(a, b):
            np.testing.assert_array_equal(wa, wb)

    def test_minibatch_interface(self):
        stream = CorpusReplayStream(4, 10)
        round0 = stream.next_round()
        assert round0.p == 4
        assert round0.total_items == 40
        assert stream.round_index == 1
        assert stream.items_emitted == 40
        # globally unique, monotone ids
        ids = np.concatenate([b.ids for b in round0.batches])
        assert len(np.unique(ids)) == len(ids)

    def test_weights_are_doc_lengths_in_order(self):
        docs = [
            CorpusDocument("s/a", "s", 10),
            CorpusDocument("s/b", "s", 20),
            CorpusDocument("t/c", "t", 30),
        ]
        stream = CorpusReplayStream(1, 2, docs=docs, cycle=True)
        r0 = stream.next_round()
        np.testing.assert_array_equal(r0.batches[0].weights, [10.0, 20.0])
        r1 = stream.next_round()
        np.testing.assert_array_equal(r1.batches[0].weights, [30.0, 10.0])
        assert stream.doc_for(3).name == "s/a"

    def test_non_cycling_stream_dries_up(self):
        docs = [CorpusDocument("s/a", "s", 10)] * 5
        stream = CorpusReplayStream(2, 2, docs=docs, cycle=False)
        first = stream.next_round()
        assert first.total_items == 4
        second = stream.next_round()
        assert second.total_items == 1
        assert stream.exhausted
        third = stream.next_round()
        assert third.total_items == 0

    def test_start_id_offsets_ids(self):
        docs = [CorpusDocument("s/a", "s", 10), CorpusDocument("s/b", "s", 20)]
        stream = CorpusReplayStream(1, 2, docs=docs, start_id=100)
        r0 = stream.next_round()
        np.testing.assert_array_equal(r0.batches[0].ids, [100, 101])
        assert stream.doc_for(101).name == "s/b"
        with pytest.raises(KeyError):
            stream.doc_for(99)

    def test_drives_a_sampler(self):
        from repro.core.distributed import DistributedWeightedReservoirSampler
        from repro.network.base import make_communicator

        comm = make_communicator("sim", 2)
        sampler = DistributedWeightedReservoirSampler(16, comm, seed=3)
        stream = CorpusReplayStream(2, 32, seed=3)
        for round_batches in stream.rounds(4):
            sampler.process_round(round_batches.batches)
        assert sampler.sample_size() == 16
        assert sampler.items_seen == 4 * 2 * 32

    def test_default_root_constant(self):
        assert "Gint367" in DEFAULT_CORPUS_ROOT

"""Tests for the distributed mini-batch stream sources."""

import numpy as np
import pytest

from repro.stream import (
    BatchSizeSchedule,
    MiniBatchStream,
    RecordingStream,
    UnitWeightGenerator,
)


class TestBatchSizeSchedule:
    def test_constant_size(self):
        schedule = BatchSizeSchedule(100)
        assert schedule.size_for(0, 0) == 100
        assert schedule.size_for(3, 7) == 100

    def test_per_pe_sizes(self):
        schedule = BatchSizeSchedule([10, 20, 30])
        assert [schedule.size_for(pe, 0) for pe in range(3)] == [10, 20, 30]

    def test_callable_size(self):
        schedule = BatchSizeSchedule(lambda pe, r: pe * 10 + r)
        assert schedule.size_for(2, 3) == 23

    def test_jitter_stays_non_negative(self, rng):
        schedule = BatchSizeSchedule(2, jitter=5)
        for _ in range(50):
            assert schedule.size_for(0, 0, rng) >= 0

    def test_jitter_varies_sizes(self, rng):
        schedule = BatchSizeSchedule(100, jitter=10)
        sizes = {schedule.size_for(0, 0, rng) for _ in range(50)}
        assert len(sizes) > 1


class TestMiniBatchStream:
    def test_round_structure(self):
        stream = MiniBatchStream(p=4, batch_size=25, seed=1)
        batch_round = stream.next_round()
        assert batch_round.p == 4
        assert batch_round.round_index == 0
        assert batch_round.total_items == 100
        assert all(len(b) == 25 for b in batch_round.batches)

    def test_ids_are_globally_unique_and_dense(self):
        stream = MiniBatchStream(p=3, batch_size=10, seed=2)
        ids = []
        for _ in range(5):
            mb = stream.next_round()
            for batch in mb.batches:
                ids.extend(batch.ids.tolist())
        assert sorted(ids) == list(range(150))

    def test_items_emitted_counter(self):
        stream = MiniBatchStream(p=2, batch_size=7, seed=3)
        list(stream.rounds(4))
        assert stream.items_emitted == 56
        assert stream.round_index == 4

    def test_reproducibility(self):
        a = MiniBatchStream(p=2, batch_size=5, seed=9).next_round()
        b = MiniBatchStream(p=2, batch_size=5, seed=9).next_round()
        for batch_a, batch_b in zip(a.batches, b.batches):
            np.testing.assert_array_equal(batch_a.weights, batch_b.weights)

    def test_different_pes_get_different_weights(self):
        mb = MiniBatchStream(p=2, batch_size=50, seed=4).next_round()
        assert not np.array_equal(mb.batches[0].weights, mb.batches[1].weights)

    def test_unit_weight_stream(self):
        stream = MiniBatchStream(p=2, batch_size=5, weights=UnitWeightGenerator(), seed=0)
        mb = stream.next_round()
        assert all(np.all(b.weights == 1.0) for b in mb.batches)

    def test_total_weight(self):
        mb = MiniBatchStream(p=2, batch_size=50, weights=UnitWeightGenerator(), seed=0).next_round()
        assert mb.total_weight == pytest.approx(100.0)

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            MiniBatchStream(p=0, batch_size=1)

    def test_rounds_iterator_count(self):
        stream = MiniBatchStream(p=2, batch_size=3, seed=0)
        assert len(list(stream.rounds(7))) == 7

    def test_batch_for_accessor(self):
        mb = MiniBatchStream(p=3, batch_size=4, seed=0).next_round()
        assert mb.batch_for(2) is mb.batches[2]


class TestRecordingStream:
    def test_records_everything(self):
        inner = MiniBatchStream(p=3, batch_size=10, seed=5)
        stream = RecordingStream(inner)
        list(stream.rounds(4))
        recorded = stream.all_items()
        assert len(recorded) == 120
        assert sorted(recorded.ids.tolist()) == list(range(120))

    def test_empty_recording(self):
        stream = RecordingStream(MiniBatchStream(p=2, batch_size=4, seed=0))
        assert len(stream.all_items()) == 0

    def test_delegates_properties(self):
        stream = RecordingStream(MiniBatchStream(p=2, batch_size=4, seed=0))
        stream.next_round()
        assert stream.p == 2
        assert stream.round_index == 1
        assert stream.items_emitted == 8

"""Tests for the synthetic weight generators."""

import numpy as np
import pytest

from repro.stream import (
    ExponentialWeightGenerator,
    NormalDriftWeightGenerator,
    UniformWeightGenerator,
    UnitWeightGenerator,
    ZipfWeightGenerator,
)


ALL_GENERATORS = [
    UniformWeightGenerator(),
    UnitWeightGenerator(),
    NormalDriftWeightGenerator(),
    ExponentialWeightGenerator(),
    ZipfWeightGenerator(),
]


class TestCommonContract:
    @pytest.mark.parametrize("gen", ALL_GENERATORS, ids=lambda g: type(g).__name__)
    def test_weights_are_positive_and_finite(self, gen, rng):
        weights = gen(1000, rng, pe=2, round_index=3)
        assert weights.shape == (1000,)
        assert np.all(weights > 0)
        assert np.all(np.isfinite(weights))

    @pytest.mark.parametrize("gen", ALL_GENERATORS, ids=lambda g: type(g).__name__)
    def test_zero_size_batch(self, gen, rng):
        assert gen(0, rng).shape == (0,)

    @pytest.mark.parametrize("gen", ALL_GENERATORS, ids=lambda g: type(g).__name__)
    def test_reproducible_with_same_seed(self, gen):
        a = gen(50, np.random.default_rng(1))
        b = gen(50, np.random.default_rng(1))
        np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("gen", ALL_GENERATORS, ids=lambda g: type(g).__name__)
    def test_repr_is_informative(self, gen):
        assert type(gen).__name__ in repr(gen)


class TestUniform:
    def test_range_is_respected(self, rng):
        gen = UniformWeightGenerator(low=0.0, high=100.0)
        weights = gen(10_000, rng)
        assert weights.max() <= 100.0
        assert weights.min() > 0.0

    def test_mean_is_roughly_midpoint(self, rng):
        weights = UniformWeightGenerator(0.0, 100.0)(50_000, rng)
        assert weights.mean() == pytest.approx(50.0, rel=0.05)

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            UniformWeightGenerator(low=5.0, high=5.0)
        with pytest.raises(ValueError):
            UniformWeightGenerator(low=-1.0, high=1.0)


class TestUnit:
    def test_all_ones(self, rng):
        assert UnitWeightGenerator()(7, rng).tolist() == [1.0] * 7


class TestNormalDrift:
    def test_mean_increases_with_round(self, rng):
        gen = NormalDriftWeightGenerator(base_mean=50.0, std=1.0, round_drift=10.0, pe_drift=0.0)
        early = gen(5000, rng, round_index=0).mean()
        late = gen(5000, rng, round_index=10).mean()
        assert late > early + 50.0

    def test_mean_increases_with_pe(self, rng):
        gen = NormalDriftWeightGenerator(base_mean=50.0, std=1.0, round_drift=0.0, pe_drift=5.0)
        low = gen(5000, rng, pe=0).mean()
        high = gen(5000, rng, pe=20).mean()
        assert high > low + 50.0

    def test_weights_clamped_positive(self, rng):
        # extreme std forces negative draws; the clamp keeps them positive
        gen = NormalDriftWeightGenerator(base_mean=1.0, std=100.0)
        assert np.all(gen(1000, rng) > 0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            NormalDriftWeightGenerator(base_mean=-1.0)
        with pytest.raises(ValueError):
            NormalDriftWeightGenerator(std=0.0)


class TestExponential:
    def test_mean_close_to_scale(self, rng):
        weights = ExponentialWeightGenerator(scale=4.0)(50_000, rng)
        assert weights.mean() == pytest.approx(4.0, rel=0.05)

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            ExponentialWeightGenerator(scale=0.0)


class TestZipf:
    def test_heavy_tail_exists(self, rng):
        weights = ZipfWeightGenerator(exponent=1.5)(20_000, rng)
        # heavy-tailed: the max dwarfs the median
        assert weights.max() > 50 * np.median(weights)

    def test_larger_exponent_lighter_tail(self, rng):
        heavy = ZipfWeightGenerator(exponent=1.2)(20_000, np.random.default_rng(0))
        light = ZipfWeightGenerator(exponent=3.0)(20_000, np.random.default_rng(0))
        assert heavy.max() > light.max()

    def test_invalid_exponent(self):
        with pytest.raises(ValueError):
            ZipfWeightGenerator(exponent=1.0)

"""Tests for partitioning a global batch across PEs."""

import numpy as np
import pytest

from repro.stream import ItemBatch, partition_even, partition_random, partition_weighted_shares


@pytest.fixture
def batch():
    return ItemBatch.from_weights(np.linspace(1.0, 10.0, 100))


def union_ids(parts):
    return sorted(np.concatenate([p.ids for p in parts]).tolist())


class TestPartitionEven:
    def test_union_is_input(self, batch):
        parts = partition_even(batch, 7)
        assert len(parts) == 7
        assert union_ids(parts) == batch.ids.tolist()

    def test_sizes_nearly_equal(self, batch):
        parts = partition_even(batch, 6)
        sizes = [len(p) for p in parts]
        assert max(sizes) - min(sizes) <= 1

    def test_invalid_p(self, batch):
        with pytest.raises(ValueError):
            partition_even(batch, 0)


class TestPartitionRandom:
    def test_union_is_input(self, batch, rng):
        parts = partition_random(batch, 5, rng)
        assert union_ids(parts) == batch.ids.tolist()

    def test_empty_batch(self, rng):
        parts = partition_random(ItemBatch.empty(), 3, rng)
        assert all(len(p) == 0 for p in parts)

    def test_roughly_balanced(self, rng):
        big = ItemBatch.uniform_items(10_000)
        parts = partition_random(big, 4, rng)
        sizes = np.array([len(p) for p in parts])
        assert np.all(np.abs(sizes - 2500) < 300)

    def test_reproducible_with_seed(self, batch):
        a = partition_random(batch, 4, np.random.default_rng(3))
        b = partition_random(batch, 4, np.random.default_rng(3))
        for pa, pb in zip(a, b):
            np.testing.assert_array_equal(pa.ids, pb.ids)


class TestPartitionWeightedShares:
    def test_union_is_input(self, batch, rng):
        parts = partition_weighted_shares(batch, [1, 2, 3], rng)
        assert union_ids(parts) == batch.ids.tolist()

    def test_shares_bias_sizes(self, rng):
        big = ItemBatch.uniform_items(20_000)
        parts = partition_weighted_shares(big, [1.0, 9.0], rng)
        assert len(parts[1]) > 5 * len(parts[0])

    def test_zero_share_pe_gets_nothing(self, rng):
        parts = partition_weighted_shares(ItemBatch.uniform_items(500), [0.0, 1.0], rng)
        assert len(parts[0]) == 0

    def test_invalid_shares(self, batch, rng):
        with pytest.raises(ValueError):
            partition_weighted_shares(batch, [], rng)
        with pytest.raises(ValueError):
            partition_weighted_shares(batch, [-1.0, 2.0], rng)
        with pytest.raises(ValueError):
            partition_weighted_shares(batch, [0.0, 0.0], rng)

    def test_empty_batch(self, rng):
        parts = partition_weighted_shares(ItemBatch.empty(), [1, 1], rng)
        assert all(len(p) == 0 for p in parts)

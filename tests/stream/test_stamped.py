"""Timestamped batches/streams and the bursty (recency-sensitive) generator."""

import numpy as np
import pytest

from repro.stream import (
    BurstyWeightGenerator,
    ItemBatch,
    MiniBatchStream,
    TimestampedItemBatch,
    TimestampedMiniBatchStream,
)


class TestTimestampedItemBatch:
    def test_requires_aligned_stamps(self):
        with pytest.raises(ValueError, match="requires a stamps"):
            TimestampedItemBatch(ids=np.arange(3), weights=np.ones(3))
        with pytest.raises(ValueError, match="align"):
            TimestampedItemBatch(ids=np.arange(3), weights=np.ones(3), stamps=np.arange(2))

    def test_rejects_decreasing_stamps(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            TimestampedItemBatch(
                ids=np.arange(3), weights=np.ones(3), stamps=np.array([2, 1, 3])
            )

    def test_take_preserves_stamps(self):
        batch = TimestampedItemBatch(
            ids=np.arange(10, 15), weights=np.ones(5), stamps=np.arange(100, 105)
        )
        sub = batch.take(np.array([0, 2]))
        assert isinstance(sub, TimestampedItemBatch)
        np.testing.assert_array_equal(sub.stamps, [100, 102])
        np.testing.assert_array_equal(sub.ids, [10, 12])

    def test_concat_and_empty(self):
        a = TimestampedItemBatch(ids=np.arange(2), weights=np.ones(2), stamps=np.arange(2))
        b = TimestampedItemBatch(
            ids=np.arange(2, 4), weights=np.ones(2), stamps=np.arange(2, 4)
        )
        merged = TimestampedItemBatch.concat([a, b])
        np.testing.assert_array_equal(merged.stamps, np.arange(4))
        assert len(TimestampedItemBatch.empty()) == 0

    def test_split_preserves_stamps(self):
        batch = TimestampedItemBatch(
            ids=np.arange(7), weights=np.ones(7), stamps=np.arange(100, 107)
        )
        parts = batch.split(3)
        assert all(isinstance(part, TimestampedItemBatch) for part in parts)
        np.testing.assert_array_equal(
            np.concatenate([part.stamps for part in parts]), batch.stamps
        )
        with pytest.raises(ValueError):
            batch.split(0)

    def test_with_arrival_stamps(self):
        plain = ItemBatch(ids=np.array([7, 8]), weights=np.ones(2))
        stamped = TimestampedItemBatch.with_arrival_stamps(plain, start=40)
        np.testing.assert_array_equal(stamped.stamps, [40, 41])


class TestTimestampedMiniBatchStream:
    def test_items_match_plain_stream_and_carry_arrival_stamps(self):
        p, batch = 3, 17
        stamped = TimestampedMiniBatchStream(p, batch, seed=5)
        plain = MiniBatchStream(p, batch, seed=5)
        next_stamp = 0
        for _ in range(4):
            s_round = stamped.next_round()
            p_round = plain.next_round()
            for s_batch, p_batch in zip(s_round.batches, p_round.batches):
                np.testing.assert_array_equal(s_batch.ids, p_batch.ids)
                np.testing.assert_array_equal(s_batch.weights, p_batch.weights)
                np.testing.assert_array_equal(
                    s_batch.stamps, np.arange(next_stamp, next_stamp + len(s_batch))
                )
                next_stamp += len(s_batch)

    def test_stamps_are_globally_unique_and_increasing(self):
        stream = TimestampedMiniBatchStream(2, 10, seed=0)
        stamps = np.concatenate(
            [b.stamps for _ in range(3) for b in stream.next_round().batches]
        )
        np.testing.assert_array_equal(stamps, np.arange(60))


class TestBurstyWeightGenerator:
    def test_burst_rounds_are_heavier(self):
        gen = BurstyWeightGenerator(base_high=1.0, burst_high=100.0, period=4, burst_rounds=1)
        rng = np.random.default_rng(0)
        burst = gen(2_000, rng, round_index=0)
        quiet = gen(2_000, rng, round_index=1)
        assert burst.mean() > 10 * quiet.mean()
        assert (burst > 0).all() and (quiet > 0).all()
        assert gen(10, rng, round_index=4).max() > 1.0  # period wraps

    def test_validation(self):
        with pytest.raises(ValueError):
            BurstyWeightGenerator(period=0)
        with pytest.raises(ValueError):
            BurstyWeightGenerator(period=4, burst_rounds=5)
        with pytest.raises(ValueError):
            BurstyWeightGenerator(base_high=-1.0)

    def test_repr(self):
        assert "BurstyWeightGenerator" in repr(BurstyWeightGenerator())

"""Tests for the argument-validation helpers."""

import numpy as np
import pytest

from repro.utils.validation import check_positive, check_positive_int, check_probability, check_weights


class TestCheckPositiveInt:
    def test_accepts_positive(self):
        assert check_positive_int(3, "x") == 3

    def test_accepts_numpy_integer(self):
        assert check_positive_int(np.int64(5), "x") == 5

    def test_rejects_zero_by_default(self):
        with pytest.raises(ValueError):
            check_positive_int(0, "x")

    def test_allows_zero_when_requested(self):
        assert check_positive_int(0, "x", allow_zero=True) == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive_int(-1, "x", allow_zero=True)

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive_int(True, "x")

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_positive_int(1.5, "x")

    def test_error_message_contains_name(self):
        with pytest.raises(ValueError, match="widgets"):
            check_positive_int(-2, "widgets", allow_zero=True)


class TestCheckPositive:
    def test_accepts_positive_float(self):
        assert check_positive(0.25, "x") == 0.25

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive(0.0, "x")

    def test_allows_zero_when_requested(self):
        assert check_positive(0.0, "x", allow_zero=True) == 0.0

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_positive(float("nan"), "x")

    def test_rejects_inf(self):
        with pytest.raises(ValueError):
            check_positive(float("inf"), "x")


class TestCheckProbability:
    def test_accepts_half(self):
        assert check_probability(0.5, "p") == 0.5

    def test_accepts_one_by_default(self):
        assert check_probability(1.0, "p") == 1.0

    def test_rejects_zero_by_default(self):
        with pytest.raises(ValueError):
            check_probability(0.0, "p")

    def test_allow_zero(self):
        assert check_probability(0.0, "p", allow_zero=True) == 0.0

    def test_rejects_above_one(self):
        with pytest.raises(ValueError):
            check_probability(1.5, "p")

    def test_disallow_one(self):
        with pytest.raises(ValueError):
            check_probability(1.0, "p", allow_one=False)


class TestCheckWeights:
    def test_accepts_positive_weights(self):
        out = check_weights([1.0, 2.0, 3.0])
        assert out.dtype == np.float64
        assert out.tolist() == [1.0, 2.0, 3.0]

    def test_rejects_zero_weight(self):
        with pytest.raises(ValueError):
            check_weights([1.0, 0.0])

    def test_rejects_negative_weight(self):
        with pytest.raises(ValueError):
            check_weights([1.0, -2.0])

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_weights([1.0, float("nan")])

    def test_rejects_two_dimensional(self):
        with pytest.raises(ValueError):
            check_weights(np.ones((2, 2)))

    def test_empty_is_allowed(self):
        assert check_weights([]).shape == (0,)

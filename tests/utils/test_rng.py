"""Tests for random-generator management helpers."""

import numpy as np
import pytest

from repro.utils.rng import derive_generator, ensure_generator, spawn_generators, spawn_seed_sequences


class TestEnsureGenerator:
    def test_from_int_seed_is_deterministic(self):
        a = ensure_generator(42)
        b = ensure_generator(42)
        assert a.random() == b.random()

    def test_passthrough_of_existing_generator(self):
        gen = np.random.default_rng(1)
        assert ensure_generator(gen) is gen

    def test_from_seed_sequence(self):
        ss = np.random.SeedSequence(7)
        gen = ensure_generator(ss)
        assert isinstance(gen, np.random.Generator)

    def test_none_gives_generator(self):
        assert isinstance(ensure_generator(None), np.random.Generator)


class TestSpawnGenerators:
    def test_count_and_type(self):
        gens = spawn_generators(3, 5)
        assert len(gens) == 5
        assert all(isinstance(g, np.random.Generator) for g in gens)

    def test_streams_are_distinct(self):
        gens = spawn_generators(0, 4)
        draws = [g.random() for g in gens]
        assert len(set(draws)) == 4

    def test_reproducible_across_calls(self):
        first = [g.random() for g in spawn_generators(9, 3)]
        second = [g.random() for g in spawn_generators(9, 3)]
        assert first == second

    def test_zero_count(self):
        assert spawn_generators(1, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_seed_sequences(1, -1)

    def test_spawn_from_generator_source(self):
        gens = spawn_generators(np.random.default_rng(5), 3)
        assert len(gens) == 3


class TestDeriveGenerator:
    def test_same_keys_same_stream(self):
        a = derive_generator(10, 2, 3)
        b = derive_generator(10, 2, 3)
        assert a.random() == b.random()

    def test_different_keys_different_stream(self):
        a = derive_generator(10, 2, 3)
        b = derive_generator(10, 2, 4)
        assert a.random() != b.random()

    def test_rejects_generator_seed(self):
        with pytest.raises(TypeError):
            derive_generator(np.random.default_rng(0), 1)

    def test_none_seed_allowed(self):
        gen = derive_generator(None, 1, 2)
        assert isinstance(gen, np.random.Generator)

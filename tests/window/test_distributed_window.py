"""Distributed sliding-window sampling: backend equivalence and statistics.

Acceptance criteria of the windowed subsystem:

* the same seed yields **byte-identical** windowed samples (ids, keys and
  threshold trajectory) under ``comm="sim"`` and ``comm="process"``,
* expired ids never appear in the sample, the sample has exactly
  ``min(k, live)`` items, and the sample is uniform over the live window
  (chi-squared over many seeds),
* explicit stamps (:class:`TimestampedMiniBatchStream`) and driver-assigned
  arrival stamps agree, and
* the per-round metrics expose the window accounting (``expire`` phase,
  eviction and buffer counters).
"""

import numpy as np
import pytest
from scipy import stats

from repro.analysis.statistics import inclusion_counts
from repro.core import DistributedSamplingRun, make_distributed_sampler
from repro.network import ProcessComm, SimComm
from repro.stream import MiniBatchStream, TimestampedMiniBatchStream, UnitWeightGenerator
from repro.window import DistributedWindowSampler

ROUNDS = 6
BATCH = 120
SEED = 13
WINDOW = 500


def _run_sampler(comm, algorithm, k, p, *, weighted=True, window=WINDOW):
    sampler = make_distributed_sampler(
        algorithm, k, comm, seed=SEED, weighted=weighted, window=window
    )
    stream = TimestampedMiniBatchStream(p, BATCH, seed=SEED + 1)
    thresholds = []
    for _ in range(ROUNDS):
        metrics = sampler.process_round(stream.next_round().batches)
        thresholds.append(metrics.threshold)
    return np.sort(sampler.sample_ids()), thresholds, sorted(sampler.sample_items())


class TestBackendEquivalence:
    @pytest.mark.parametrize("algorithm,k", [("ours", 40), ("ours-4", 40), ("ours-8", 25)])
    def test_windowed_samples_byte_identical_across_backends(self, algorithm, k):
        p = 2
        sim_ids, sim_thresholds, sim_items = _run_sampler(SimComm(p), algorithm, k, p)
        with ProcessComm(p) as proc:
            proc_ids, proc_thresholds, proc_items = _run_sampler(proc, algorithm, k, p)
        np.testing.assert_array_equal(sim_ids, proc_ids)
        assert sim_thresholds == proc_thresholds
        assert sim_items == proc_items  # keys too, not just ids

    def test_equivalence_for_uniform_window_sampling(self):
        p = 3
        sim_ids, _, sim_items = _run_sampler(SimComm(p), "ours", 35, p, weighted=False)
        with ProcessComm(p) as proc:
            proc_ids, _, proc_items = _run_sampler(proc, "ours", 35, p, weighted=False)
        np.testing.assert_array_equal(sim_ids, proc_ids)
        assert sim_items == proc_items

    def test_window_via_api_string_backend(self):
        sampler = make_distributed_sampler("ours", 20, "process", p=2, seed=3, window=300)
        try:
            stream = TimestampedMiniBatchStream(2, 100, seed=4)
            for _ in range(4):
                sampler.process_round(stream.next_round().batches)
            assert len(sampler.sample_ids()) == 20
        finally:
            sampler.comm.shutdown()


class TestWindowSemantics:
    def test_expired_ids_never_appear_across_rounds(self):
        p, k, window = 4, 30, 300
        sampler = make_distributed_sampler("ours", k, SimComm(p), seed=1, window=window)
        stream = TimestampedMiniBatchStream(p, 50, seed=2)
        emitted = 0
        for _ in range(12):
            sampler.process_round(stream.next_round().batches)
            emitted += p * 50
            sample = np.sort(sampler.sample_ids())
            assert sample.shape[0] == min(k, min(emitted, window))
            assert len(np.unique(sample)) == sample.shape[0]
            # the synthetic stream's ids equal the arrival stamps
            assert sample.min() > emitted - 1 - window, "expired id in the sample"

    def test_plain_batches_get_arrival_stamps(self):
        """Un-stamped batches behave exactly like the stamped stream."""
        p, k = 2, 25
        stamped = make_distributed_sampler("ours", k, SimComm(p), seed=7, window=200)
        plain = make_distributed_sampler("ours", k, SimComm(p), seed=7, window=200)
        stamped_stream = TimestampedMiniBatchStream(p, 80, seed=8)
        plain_stream = MiniBatchStream(p, 80, seed=8)
        for _ in range(5):
            stamped.process_round(stamped_stream.next_round().batches)
            plain.process_round(plain_stream.next_round().batches)
        np.testing.assert_array_equal(
            np.sort(stamped.sample_ids()), np.sort(plain.sample_ids())
        )
        assert stamped.threshold == plain.threshold

    def test_round_metrics_expose_window_accounting(self):
        p = 2
        run = DistributedSamplingRun("ours", k=20, p=p, batch_size=100, seed=5, window=250)
        metrics = run.run(6)
        assert metrics.store == "window"
        assert metrics.total_evicted > 0
        last = metrics.rounds[-1]
        assert last.evicted_items > 0
        assert last.window_buffer_items >= 20
        assert "expire" in last.phase_times
        assert last.phase_times["insert"].total > 0.0
        assert metrics.as_dict()["total_evicted"] == metrics.total_evicted

    def test_buffer_is_bounded_oversample(self):
        p, k, window = 2, 10, 1_000
        sampler = make_distributed_sampler("ours", k, SimComm(p), seed=3, window=window)
        stream = TimestampedMiniBatchStream(p, 250, seed=4)
        for _ in range(10):
            sampler.process_round(stream.next_round().batches)
        # expected ~ p * k * (1 + ln(W/k)) ~= 112; generous slack
        assert k <= sampler.buffer_size() < 400
        assert sampler.evicted_items > 0

    def test_validation(self):
        with pytest.raises(ValueError, match="only supported"):
            make_distributed_sampler("gather", 10, SimComm(2), window=50)
        with pytest.raises(ValueError, match="only supported"):
            make_distributed_sampler("ours-variable", 10, SimComm(2), window=50)
        with pytest.raises(ValueError, match="decay"):
            make_distributed_sampler("ours", 10, SimComm(2), decay=0.9)
        with pytest.raises(ValueError, match="store"):
            make_distributed_sampler("ours", 10, SimComm(2), window=50, store="btree")
        with pytest.raises(ValueError, match="k_hi"):
            make_distributed_sampler("ours", 10, SimComm(2), window=50, k_hi=20)
        with pytest.raises(ValueError, match="local_thresholding"):
            make_distributed_sampler(
                "ours", 10, SimComm(2), window=50, local_thresholding=False
            )
        with pytest.raises(ValueError):
            DistributedWindowSampler(10, 0, SimComm(2))

    def test_invalid_window_args_do_not_leak_process_workers(self):
        import multiprocessing

        with pytest.raises(ValueError, match="only supported"):
            DistributedSamplingRun("gather", k=10, p=2, comm="process", window=50)
        for child in multiprocessing.active_children():
            child.join(timeout=5)
        assert not multiprocessing.active_children(), "worker processes leaked"

    def test_huge_stamps_keep_exact_cutoff(self):
        """Epoch-nanosecond-scale stamps (> 2**53) must not shift the cutoff."""
        from repro.stream import TimestampedItemBatch

        p, k, window = 2, 4, 10
        base = 2**60  # far beyond float64's integer range
        sampler = DistributedWindowSampler(k, window, SimComm(p), seed=0)

        def stamped(lo, hi, start):
            ids = np.arange(lo, hi, dtype=np.int64)
            return TimestampedItemBatch(
                ids=ids, weights=np.ones(len(ids)),
                stamps=np.arange(start, start + len(ids), dtype=np.int64),
            )

        sampler.process_round([stamped(0, 8, base), stamped(8, 16, base + 8)])
        # newest stamp is base + 15; live iff stamp > base + 5 -> ids 6..15
        sample = np.sort(sampler.sample_ids())
        assert sample.shape[0] == k
        assert sample.min() >= 6, "float64 quantization shifted the eviction cutoff"

    def test_sample_before_any_round_is_empty(self):
        sampler = DistributedWindowSampler(5, 100, SimComm(2), seed=0)
        assert sampler.sample_ids().shape == (0,)
        assert sampler.sample_size() == 0


class TestWindowedStatisticalCorrectness:
    def test_uniform_over_live_window_chi_squared(self):
        """The distributed window sample is uniform over the live window."""
        p, k, window, batch, rounds, trials = 2, 4, 60, 25, 4, 300
        n = p * batch * rounds  # 200 emitted, last 60 live
        counts = np.zeros(window)
        for seed in range(trials):
            sampler = make_distributed_sampler(
                "ours", k, SimComm(p), seed=seed, weighted=False, window=window
            )
            stream = TimestampedMiniBatchStream(
                p, batch, weights=UnitWeightGenerator(), seed=seed + 10_000
            )
            for _ in range(rounds):
                sampler.process_round(stream.next_round().batches)
            counts += inclusion_counts([sampler.sample_ids() - (n - window)], window)
        expected = np.full(window, trials * k / window)
        chi2 = float(((counts - expected) ** 2 / expected).sum())
        p_value = float(stats.chi2.sf(chi2, df=window - 1))
        assert p_value > 1e-3, f"windowed sample not uniform: chi2={chi2:.1f}, p={p_value:.2g}"

    def test_weighted_window_prefers_heavy_live_items(self):
        """Heavier live items appear more often; expired heavy items never."""
        p, k, window = 2, 5, 40
        trials = 200
        heavy_live = 0
        for seed in range(trials):
            sampler = make_distributed_sampler(
                "ours", k, SimComm(p), seed=seed, weighted=True, window=window
            )
            stream = TimestampedMiniBatchStream(p, 20, seed=seed + 5_000)
            for _ in range(4):  # 160 items; live window = last 40 (ids 120..159)
                sampler.process_round(stream.next_round().batches)
            sample = sampler.sample_ids()
            assert sample.min() >= 120
            heavy_live += np.count_nonzero(sample >= 140)
        # uniform weights 0..100 -> top half of the window holds about half
        # of the live weight; sampling k=5 of 40 should include it often
        assert heavy_live / (trials * k) > 0.3

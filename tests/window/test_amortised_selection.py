"""Amortised window selection: skip re-selection when the boundary is intact.

A windowed round whose eviction and insertion did not touch the sample
(the old boundary still separates exactly ``k`` live keys, proven by one
counting all-reduction) can skip the full threshold re-selection.  These
tests verify that skips actually happen under a skip-friendly workload,
that every round's extracted sample — skipped or not — equals the
brute-force ``k`` smallest live keys, and that the counter plumbing works.
"""

import numpy as np
import pytest

from repro.core import make_distributed_sampler
from repro.network import ProcessComm, SimComm
from repro.stream import TimestampedMiniBatchStream

P = 2
K = 16
BATCH = 32
#: many rounds per window -> few sample-touching arrivals/evictions per
#: round -> plenty of skip opportunities
WINDOW = 64 * P * BATCH
ROUNDS = 30


def _brute_force_sample(sampler) -> np.ndarray:
    """The k smallest-key live candidates, read straight out of the buffers."""
    pairs = []
    for pe in range(sampler.p):
        buffer = sampler.comm.local_pe_state(sampler._handle, pe)["reservoir"]
        pairs.extend(buffer.items())
    pairs.sort()
    return np.sort(np.array([item_id for _key, item_id in pairs[: sampler.k]], dtype=np.int64))


def test_skips_happen_and_samples_stay_exact():
    sampler = make_distributed_sampler("ours", K, SimComm(P), seed=7, window=WINDOW)
    stream = TimestampedMiniBatchStream(P, BATCH, seed=8)
    skipped_rounds = 0
    checked_after_skip = 0
    for _ in range(ROUNDS):
        metrics = sampler.process_round(stream.next_round().batches)
        if metrics.selection_skipped:
            skipped_rounds += 1
            assert not metrics.selection_ran  # skip replaces the selection
        # skipped or not, the extracted sample must be the brute-force one
        expected = _brute_force_sample(sampler)
        np.testing.assert_array_equal(np.sort(sampler.sample_ids()), expected)
        if metrics.selection_skipped:
            checked_after_skip += 1
    assert skipped_rounds > 0, "workload was chosen to produce skips"
    assert sampler.selection_skips == skipped_rounds
    assert checked_after_skip > 0


def test_amortisation_can_be_disabled():
    sampler = make_distributed_sampler("ours", K, SimComm(P), seed=7, window=WINDOW)
    sampler.amortise_selection = False
    stream = TimestampedMiniBatchStream(P, BATCH, seed=8)
    for _ in range(ROUNDS):
        metrics = sampler.process_round(stream.next_round().batches)
        assert not metrics.selection_skipped
    assert sampler.selection_skips == 0


def test_disabled_and_enabled_agree_while_no_skip_occurred():
    """Until the first skip, both variants consume identical randomness and
    must produce identical samples."""
    on = make_distributed_sampler("ours", K, SimComm(P), seed=3, window=WINDOW)
    off = make_distributed_sampler("ours", K, SimComm(P), seed=3, window=WINDOW)
    off.amortise_selection = False
    stream_on = TimestampedMiniBatchStream(P, BATCH, seed=4)
    stream_off = TimestampedMiniBatchStream(P, BATCH, seed=4)
    for _ in range(ROUNDS):
        m_on = on.process_round(stream_on.next_round().batches)
        off.process_round(stream_off.next_round().batches)
        if m_on.selection_skipped:
            break
        np.testing.assert_array_equal(np.sort(on.sample_ids()), np.sort(off.sample_ids()))


def test_skip_counter_in_run_metrics():
    from repro.core import DistributedSamplingRun

    with DistributedSamplingRun(
        "ours", k=K, p=P, batch_size=BATCH, seed=7, window=WINDOW
    ) as run:
        metrics = run.run(ROUNDS)
    assert metrics.total_selection_skips == run.sampler.selection_skips
    assert metrics.total_selection_skips > 0


def test_sim_and_process_backends_agree_with_amortisation():
    def run_backend(comm):
        sampler = make_distributed_sampler("ours", K, comm, seed=11, window=WINDOW)
        stream = TimestampedMiniBatchStream(P, BATCH, seed=12)
        skips = []
        for _ in range(12):
            metrics = sampler.process_round(stream.next_round().batches)
            skips.append(metrics.selection_skipped)
        return np.sort(sampler.sample_ids()), skips

    sim_ids, sim_skips = run_backend(SimComm(P))
    with ProcessComm(P) as proc:
        proc_ids, proc_skips = run_backend(proc)
    np.testing.assert_array_equal(sim_ids, proc_ids)
    assert sim_skips == proc_skips


@pytest.mark.parametrize("weighted", [True, False])
def test_pipelined_windowed_run_records_skips(weighted):
    """The amortised check also fires inside the pipelined windowed engine."""
    from repro.pipeline import PipelinedSamplingRun

    with PipelinedSamplingRun(
        "ours", k=K, p=P, comm="sim", pipeline="relaxed", batch_size=BATCH,
        warmup_rounds=0, seed=5, window=WINDOW, weighted=weighted,
    ) as run:
        metrics = run.run_rounds(ROUNDS)
    assert metrics.total_selection_skips == run.sampler.selection_skips
    assert metrics.total_selection_skips > 0

"""Exponential time-decay sampling: exactness, statistics, store backends.

The central correctness lever is that the log-space decayed key is a
*static* quantity whose order equals the decayed-key order at every query
time.  With ``decay = 1`` it is a monotone transform of the classic
exponential key consuming the identical random stream, so the decayed
sampler must reproduce the unbounded merge-store sampler **byte for
byte** — that pins the whole key-generation path.  The statistical tests
then compare inclusion frequencies against the dense reference sampler
run on the *effective* (decayed) weights.
"""

import numpy as np
import pytest
from scipy import stats

from repro import ReservoirSampler
from repro.analysis.statistics import chi_square_statistic, inclusion_counts
from repro.core.sequential import SequentialWeightedReservoir
from repro.stream import ItemBatch
from repro.window import DecayedReservoir, decayed_log_keys


class TestDecayedLogKeys:
    def test_zero_log_decay_is_log_of_exponential_keys(self):
        weights = np.random.default_rng(0).uniform(0.5, 4.0, 100)
        stamps = np.arange(100)
        a = decayed_log_keys(weights, stamps, 0.0, np.random.default_rng(5))
        from repro.core.keys import exponential_keys

        b = np.log(exponential_keys(weights, np.random.default_rng(5)))
        np.testing.assert_array_equal(a, b)

    def test_decay_shifts_later_keys_down(self):
        weights = np.ones(50)
        stamps = np.arange(50)
        log_decay = np.log(0.5)
        keys = decayed_log_keys(weights, stamps, log_decay, np.random.default_rng(1))
        base = decayed_log_keys(weights, stamps, 0.0, np.random.default_rng(1))
        np.testing.assert_allclose(keys - base, stamps * log_decay)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            decayed_log_keys(np.ones(3), np.arange(2), 0.0)


class TestDecayOneEquivalence:
    @pytest.mark.parametrize("store", ["merge", "btree"])
    def test_decay_one_matches_unbounded_weighted_sampler(self, store):
        rng = np.random.default_rng(11)
        ids = np.arange(4000)
        weights = rng.uniform(0.1, 9.0, 4000)
        decayed = DecayedReservoir(64, 1.0, seed=21, store=store)
        classic = SequentialWeightedReservoir(64, seed=21, store=store)
        for start in range(0, 4000, 333):
            batch = ItemBatch(ids=ids[start : start + 333], weights=weights[start : start + 333])
            decayed.process(batch)
            classic.process(batch)
        np.testing.assert_array_equal(
            np.sort(decayed.sample_ids()), np.sort(classic.sample_ids())
        )

    def test_store_backends_byte_identical(self):
        streams = []
        for store in ("merge", "btree"):
            sampler = DecayedReservoir(32, 0.97, seed=5, store=store)
            rng = np.random.default_rng(6)
            for start in range(0, 2000, 250):
                sampler.process(
                    ItemBatch(
                        ids=np.arange(start, start + 250),
                        weights=rng.uniform(0.2, 3.0, 250),
                    )
                )
            streams.append(sampler.sample_ids())
        np.testing.assert_array_equal(streams[0], streams[1])


class TestDecayedBehaviour:
    def test_validation(self):
        with pytest.raises(ValueError):
            DecayedReservoir(4, 0.0)
        with pytest.raises(ValueError):
            DecayedReservoir(4, 1.5)
        with pytest.raises(ValueError):
            DecayedReservoir(4, -0.1)

    def test_strong_decay_keeps_only_recent_items(self):
        sampler = DecayedReservoir(20, 0.5, weighted=False, seed=3)
        sampler.process(ItemBatch.uniform_items(5000))
        # with lambda = 0.5 anything older than ~60 steps is negligible
        assert sampler.sample_ids().min() >= 5000 - 200

    def test_sample_accessors(self):
        sampler = DecayedReservoir(5, 0.9, seed=2)
        sampler.process(ItemBatch(ids=np.arange(50), weights=np.full(50, 3.0)))
        assert sampler.size == 5
        assert sampler.items_seen == 50
        assert sampler.threshold is not None
        assert all(weight == 3.0 for _, weight in sampler.sample())
        keys = [key for key, _, _ in sampler.sample_with_keys()]
        assert keys == sorted(keys)

    def test_insert_single_items(self):
        sampler = DecayedReservoir(3, 0.99, seed=1)
        entered = [sampler.insert(i, 1.0) for i in range(10)]
        assert all(entered[:3])
        assert sampler.size == 3

    def test_decayed_inclusion_matches_effective_weight_reference(self):
        """Chi-squared: inclusion counts follow w_i * lambda^age_i."""
        n, k, lam, trials = 40, 3, 0.9, 600
        rng = np.random.default_rng(8)
        weights = rng.uniform(0.5, 4.0, n)
        ages = n - 1 - np.arange(n)
        effective = weights * lam**ages
        from repro.analysis.statistics import weighted_inclusion_reference

        reference = weighted_inclusion_reference(
            effective, k, trials=4000, rng=np.random.default_rng(9)
        )
        counts = np.zeros(n)
        for seed in range(trials):
            sampler = DecayedReservoir(k, lam, seed=seed)
            sampler.process(ItemBatch(ids=np.arange(n), weights=weights))
            counts += inclusion_counts([sampler.sample_ids()], n)
        statistic, dof = chi_square_statistic(counts, reference, trials)
        p_value = float(stats.chi2.sf(statistic, df=dof))
        assert p_value > 1e-3, f"decayed inclusion off: chi2={statistic:.1f}, p={p_value:.2g}"


class TestFacadeRouting:
    def test_decay_facade(self):
        sampler = ReservoirSampler(k=10, seed=4, decay=0.95)
        sampler.feed(np.arange(500), np.ones(500))
        assert sampler.decay == 0.95
        assert len(sampler.sample_ids()) == 10
        assert sampler.add(500, 2.0) in (True, False)

    def test_decay_accepts_store(self):
        sampler = ReservoirSampler(k=5, seed=0, decay=0.9, store="btree")
        sampler.feed(np.arange(100), np.ones(100))
        assert sampler.store == "btree"
        assert len(sampler.sample_ids()) == 5

"""Sequential sliding-window sampling: invariants and statistics.

* :func:`repro.window.buffer.suffix_topk_mask` agrees with the brute-force
  definition of the invariant for every chunk size,
* the candidate buffer stays a valid over-sample (it always contains the
  ``k`` smallest live keys) and expired ids never appear in the sample
  (hypothesis property over random feed patterns),
* the window sample is **uniform over the live window** (chi-squared over
  many seeds) and **weighted** sampling matches the dense reference
  sampler restricted to the live window (total-variation check),
* the :class:`repro.ReservoirSampler` facade routes ``window=`` correctly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats

from repro import ReservoirSampler
from repro.analysis.statistics import (
    inclusion_counts,
    total_variation_distance,
    weighted_inclusion_reference,
)
from repro.stream import ItemBatch
from repro.window import (
    SlidingWindowBuffer,
    SlidingWindowReservoir,
    suffix_topk_mask,
    suffix_topk_scan,
)


def brute_mask(keys, k):
    return np.array(
        [np.count_nonzero(keys[i + 1 :] <= keys[i]) < k for i in range(len(keys))],
        dtype=bool,
    )


class TestSuffixTopkMask:
    @pytest.mark.parametrize("k", [1, 2, 5, 17])
    @pytest.mark.parametrize("chunk", [1, 3, 64, 4096])
    def test_matches_brute_force(self, k, chunk):
        rng = np.random.default_rng(k * 1000 + chunk)
        keys = rng.random(257)
        mask = suffix_topk_mask(keys, k, chunk=chunk)
        np.testing.assert_array_equal(mask, brute_mask(keys, k))

    def test_empty_and_tiny(self):
        assert suffix_topk_mask(np.empty(0), 3).shape == (0,)
        np.testing.assert_array_equal(suffix_topk_mask(np.array([0.5]), 1), [True])

    def test_ties_resolve_to_later_arrival(self):
        # the earlier of two equal keys is dominated (it expires first)
        np.testing.assert_array_equal(
            suffix_topk_mask(np.array([0.5, 0.5]), 1), [False, True]
        )

    def test_sorted_descending_keeps_everything_up_to_k_suffix(self):
        keys = np.arange(10, 0, -1).astype(float)  # each suffix is all smaller
        mask = suffix_topk_mask(keys, 3)
        # item i has (9 - i) later items, all smaller: kept iff 9 - i < 3
        np.testing.assert_array_equal(mask, np.arange(10) >= 7)

    def test_sorted_ascending_keeps_everything(self):
        keys = np.arange(1, 11).astype(float)  # no later item is smaller
        assert suffix_topk_mask(keys, 1).all()

    @pytest.mark.parametrize("k", [1, 4, 9])
    def test_scan_dominator_counts_exact_for_kept_items(self, k):
        rng = np.random.default_rng(k)
        keys = rng.random(180)
        keep, doms = suffix_topk_scan(keys, k, chunk=32)
        for i in np.flatnonzero(keep):
            assert doms[i] == np.count_nonzero(keys[i + 1 :] <= keys[i])


class TestSlidingWindowBuffer:
    def test_buffer_contains_k_smallest_live(self):
        rng = np.random.default_rng(3)
        k, window, n = 8, 120, 600
        buf = SlidingWindowBuffer(k)
        keys = rng.random(n)
        for start in range(0, n, 53):
            stop = min(start + 53, n)
            buf.append(np.arange(start, stop), keys[start:stop], np.arange(start, stop))
            buf.evict_older_than(stop - 1 - window)
            live_lo = max(0, stop - window)
            live_keys = keys[live_lo:stop]
            expected = np.sort(live_keys)[: min(k, live_keys.shape[0])]
            got, ids, _ = buf.smallest(k)
            np.testing.assert_allclose(got, expected)
            np.testing.assert_array_equal(keys[ids], got)  # ids align with keys

    def test_rank_select_interface_matches_sorted_arrays(self):
        rng = np.random.default_rng(4)
        buf = SlidingWindowBuffer(5)
        keys = rng.random(40)
        buf.append(np.arange(40), keys, np.arange(40))
        live = np.sort(keys[np.asarray(brute_mask(keys, 5))])
        assert len(buf) == live.shape[0]
        np.testing.assert_allclose(buf.keys_array(), live)
        assert buf.count_le(live[2]) == 3
        assert buf.count_less(live[2]) == 2
        assert buf.kth_key(1) == live[0]
        np.testing.assert_allclose(buf.kth_keys(np.array([1, len(buf)])), live[[0, -1]])
        np.testing.assert_allclose(buf.keys_in_rank_range(1, 3), live[1:3])
        assert buf.max_key() == live[-1]
        assert buf.min_key() == live[0]
        assert len(buf.items()) == len(buf)

    def test_weight_tracking_and_validation(self):
        buf = SlidingWindowBuffer(2, track_weights=True)
        with pytest.raises(ValueError):
            buf.append(np.arange(3), np.random.rand(3), np.arange(3))  # no weights
        buf.append(np.arange(3), np.array([0.3, 0.1, 0.2]), np.arange(3), np.array([1.0, 2.0, 3.0]))
        _, ids, weights = buf.smallest(2)
        np.testing.assert_array_equal(ids, [1, 2])
        np.testing.assert_array_equal(weights, [2.0, 3.0])

    def test_mismatched_lengths_rejected(self):
        buf = SlidingWindowBuffer(2)
        with pytest.raises(ValueError):
            buf.append(np.arange(2), np.random.rand(3), np.arange(3))

    @pytest.mark.parametrize("splits", [[200], [1] * 60, [7, 1, 30, 1, 1, 25], [50, 50, 50, 50]])
    def test_incremental_appends_match_single_full_scan(self, splits):
        """Appending in any batch granularity yields the one true keep-set."""
        rng = np.random.default_rng(sum(splits))
        n = sum(splits)
        keys = rng.random(n)
        buf = SlidingWindowBuffer(4)
        start = 0
        for size in splits:
            buf.append(np.arange(start, start + size), keys[start : start + size],
                       np.arange(start, start + size))
            start += size
        expected = np.flatnonzero(suffix_topk_mask(keys, 4))
        got = np.sort(buf.item_ids())
        np.testing.assert_array_equal(got, expected)

    def test_sorted_view_survives_zero_eviction_and_empty_append(self):
        """Cache invalidation: no-op evictions/appends must keep the sorted
        view consistent (regression: a zero-eviction call used to clear half
        of the cache and crash the next rank query)."""
        rng = np.random.default_rng(5)
        buf = SlidingWindowBuffer(3)
        buf.append(np.arange(20), rng.random(20), np.arange(20))
        before = buf.count_le(0.5)  # populate the sort cache
        assert buf.evict_older_than(-1) == 0  # expires nothing
        assert buf.count_le(0.5) == before
        buf.append(np.empty(0, np.int64), np.empty(0), np.empty(0, np.int64))
        assert buf.count_le(0.5) == before
        np.testing.assert_array_equal(buf.keys_array(), np.sort(buf.keys_array()))

    def test_out_of_order_batches_rejected(self):
        buf = SlidingWindowBuffer(2)
        buf.append(np.arange(10, 13), np.random.rand(3), np.arange(3))
        with pytest.raises(ValueError, match="stamp order"):
            buf.append(np.arange(5, 8), np.random.rand(3), np.arange(3))


class TestSlidingWindowReservoir:
    def test_sample_size_tracks_window_fill(self):
        sampler = SlidingWindowReservoir(10, 50, weighted=False, seed=0)
        for i in range(7):
            sampler.insert(i)
        assert sampler.size == 7
        assert sampler.threshold is None
        for i in range(7, 200):
            sampler.insert(i)
        assert sampler.size == 10
        assert sampler.live_items == 50
        assert sampler.threshold is not None
        assert sampler.evicted_items > 0

    @given(
        k=st.integers(1, 8),
        window=st.integers(2, 60),
        chunks=st.lists(st.integers(1, 40), min_size=1, max_size=12),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_expired_ids_never_appear(self, k, window, chunks, seed):
        sampler = SlidingWindowReservoir(k, window, seed=seed)
        rng = np.random.default_rng(seed + 1)
        fed = 0
        for size in chunks:
            ids = np.arange(fed, fed + size)
            sampler.process(ItemBatch(ids=ids, weights=rng.uniform(0.1, 5.0, size)))
            fed += size
            sample = sampler.sample_ids()
            assert sample.shape[0] == min(k, min(fed, window))
            assert len(np.unique(sample)) == sample.shape[0]
            if fed > window:
                assert sample.min() >= fed - window, "expired id in the sample"

    def test_buffer_stays_logarithmic(self):
        sampler = SlidingWindowReservoir(5, 2_000, weighted=False, seed=9)
        for start in range(0, 20_000, 500):
            sampler.process(ItemBatch.uniform_items(500, start_id=start))
        # expected candidate count ~ k * (1 + ln(W / k)) ~= 35; allow slack
        assert sampler.buffer_size < 150

    def test_uniform_over_live_window_chi_squared(self):
        """Inclusion counts over window positions are uniform (many seeds)."""
        k, window, n, trials = 4, 30, 75, 400
        counts = np.zeros(window)
        for seed in range(trials):
            sampler = SlidingWindowReservoir(k, window, weighted=False, seed=seed)
            sampler.process(ItemBatch.uniform_items(n))
            sample = sampler.sample_ids()
            counts += inclusion_counts([sample - (n - window)], window)
        expected = np.full(window, trials * k / window)
        chi2 = float(((counts - expected) ** 2 / expected).sum())
        p_value = float(stats.chi2.sf(chi2, df=window - 1))
        assert p_value > 1e-3, f"window sample not uniform: chi2={chi2:.1f}, p={p_value:.2g}"

    def test_weighted_matches_dense_reference_on_live_window(self):
        """Windowed inclusion frequencies match dense sampling of the window."""
        k, window, n, trials = 3, 20, 50, 500
        rng = np.random.default_rng(42)
        weights = rng.uniform(0.5, 6.0, size=n)
        live_ids = np.arange(n - window, n)
        live_weights = weights[n - window :]
        counts = np.zeros(window)
        for seed in range(trials):
            sampler = SlidingWindowReservoir(k, window, weighted=True, seed=seed)
            sampler.process(ItemBatch(ids=np.arange(n), weights=weights))
            counts += inclusion_counts([sampler.sample_ids() - (n - window)], window)
        reference = weighted_inclusion_reference(
            live_weights, k, trials=trials, rng=np.random.default_rng(7)
        )
        tv = total_variation_distance(counts / (trials * k), reference / reference.sum())
        assert tv < 0.08, f"total variation vs dense reference too large: {tv:.3f}"

    def test_sample_with_keys_and_pairs(self):
        sampler = SlidingWindowReservoir(3, 10, seed=1)
        sampler.process(ItemBatch(ids=np.arange(25), weights=np.full(25, 2.0)))
        triples = sampler.sample_with_keys()
        assert len(triples) == 3
        assert all(weight == 2.0 for _, _, weight in triples)
        assert [i for i, _ in sampler.sample()] == [i for _, i, _ in triples]


class TestFacadeRouting:
    def test_window_facade(self):
        sampler = ReservoirSampler(k=5, weighted=False, seed=0, window=20)
        sampler.feed(np.arange(100))
        assert sampler.window == 20
        assert sampler.sample_ids().min() >= 80
        assert sampler.add(100) in (True, False)
        assert sampler.items_seen == 101

    def test_window_and_decay_are_exclusive(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            ReservoirSampler(k=5, window=10, decay=0.9)

    def test_window_rejects_store(self):
        with pytest.raises(ValueError, match="store"):
            ReservoirSampler(k=5, window=10, store="merge")

"""Live health monitoring: heartbeats, the watchdog, and non-interference.

The load-bearing guarantees:

* **non-interference** — ``sample_ids()`` is byte-identical with health
  monitoring on and off, on both execution backends (beats never touch a
  random generator, mirroring the tracing guarantee);
* **liveness bookkeeping** — a live run classifies every rank ``ok``,
  counts each rank's rounds, and exports the straggler-skew gauge;
* **watchdog semantics** — adaptive deadlines, single-culprit stall
  episodes, and the ``warn|recover|raise`` policy plumbing (the actual
  hang-recovery escalation runs against the fault harness in
  ``tests/fault/test_worker_recovery.py``).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.api import DistributedSamplingRun
from repro.obs.health import (
    BeatChannel,
    HealthConfig,
    HealthMonitor,
    StallError,
    close_local_sink,
    create_local_sink,
    drain_beat_messages,
    drain_local_sink,
    local_sink_send,
    resolve_health,
    worker_wait_beat,
)
from repro.obs.metrics import MetricsRegistry
from repro.runtime.parallel import ParallelStreamingRun

RUN_KWARGS = dict(k=30, p=2, batch_size=200, seed=9)
ROUNDS = 4


def run_sample_ids(driver, health, **overrides):
    kwargs = {**RUN_KWARGS, **overrides}
    with driver("ours", health=health, **kwargs) as run:
        if isinstance(run, DistributedSamplingRun):
            run.run(ROUNDS)
        else:
            run.run_rounds(ROUNDS)
        return np.sort(run.sample_ids())


# ---------------------------------------------------------------------------
# units
# ---------------------------------------------------------------------------
class TestHealthConfig:
    def test_deadline_floors_at_min_deadline(self):
        cfg = HealthConfig(min_deadline=1.5, grace=0.1, deadline_factor=4.0)
        assert cfg.deadline(None) == 1.5
        assert cfg.deadline(0.01) == 1.5

    def test_deadline_scales_with_ewma(self):
        cfg = HealthConfig(min_deadline=1.0, grace=0.25, deadline_factor=4.0)
        assert cfg.deadline(2.0) == pytest.approx(0.25 + 4.0 * 2.0)

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError, match="on_stall"):
            HealthConfig(on_stall="reboot")


class TestBeatChannel:
    def collect_channel(self):
        beats = []
        return beats, BeatChannel(3, beats.append, lambda: 7)

    def test_begin_end_wire_format(self):
        beats, chan = self.collect_channel()
        chan.begin("insert")
        chan.end("insert", 42, bump_round=True)
        (tag, rank, epoch, rnd, phase, kind, items, duration, sent_at) = beats[0]
        assert (tag, rank, epoch, rnd, phase, kind) == ("beat", 3, 7, 0, "insert", "start")
        (tag, rank, epoch, rnd, phase, kind, items, duration, sent_at) = beats[1]
        assert (tag, rank, epoch, rnd, phase, kind, items) == (
            "beat", 3, 7, 1, "insert", "end", 42,
        )
        assert duration >= 0.0

    def test_round_counter_bumps_only_on_request(self):
        beats, chan = self.collect_channel()
        for _ in range(3):
            chan.begin("prepare")
            chan.end("prepare")
        assert chan.round == 0
        chan.begin("insert")
        chan.end("insert", 10, bump_round=True)
        assert chan.round == 1

    def test_end_without_begin_is_harmless(self):
        beats, chan = self.collect_channel()
        chan.end("select")
        assert beats[0][5] == "end" and beats[0][7] == 0.0


class TestBeatTransport:
    def test_local_sink_roundtrip(self):
        token = create_local_sink()
        try:
            local_sink_send(token, ("beat", 0, 0, 0, "insert", "end", 5, 0.1, 1.0))
            drained = drain_local_sink(token)
            assert len(drained) == 1
            assert drain_local_sink(token) == []
        finally:
            close_local_sink(token)

    def test_send_to_closed_sink_is_dropped(self):
        token = create_local_sink()
        close_local_sink(token)
        local_sink_send(token, ("beat",))  # must not raise

    def test_drain_splits_beats_from_logs(self, caplog):
        import logging

        beat = ("beat", 1, 0, 2, "insert", "end", 3, 0.01, 5.0)
        record = (logging.WARNING, "repro.test", "late warning", 1, 0, 0.0)
        with caplog.at_level(logging.WARNING, logger="repro"):
            beats = drain_beat_messages([beat, ("log", record)])
        assert beats == [beat]
        assert any("late warning" in message for message in caplog.messages)

    def test_wait_beat_is_noop_outside_workers(self):
        worker_wait_beat()  # coordinator process: no queue registered


class TestResolveHealth:
    def test_none_and_false_disable(self):
        assert resolve_health(None) is None
        assert resolve_health(False) is None

    def test_on_stall_without_health_rejected(self):
        with pytest.raises(ValueError, match="health"):
            resolve_health(None, on_stall="recover")

    def test_true_builds_default_monitor(self):
        monitor = resolve_health(True)
        assert isinstance(monitor, HealthMonitor)
        assert monitor.config.on_stall == "warn"

    def test_config_and_policy_override(self):
        cfg = HealthConfig(min_deadline=9.0)
        monitor = resolve_health(cfg, on_stall="raise")
        assert monitor.config is cfg
        assert monitor.config.on_stall == "raise"

    def test_monitor_passthrough_adopts_registry(self):
        registry = MetricsRegistry()
        monitor = HealthMonitor()
        assert resolve_health(monitor, registry=registry) is monitor
        assert monitor.registry is registry

    def test_invalid_argument_rejected(self):
        with pytest.raises(TypeError, match="health"):
            resolve_health("yes")
        with pytest.raises(TypeError, match="health"):
            DistributedSamplingRun("ours", health="yes", **RUN_KWARGS)


class TestStallError:
    def test_message_carries_rank_phase_and_silence(self):
        err = StallError(2, "insert", 3.5)
        assert err.rank == 2 and err.phase == "insert"
        assert "rank 2" in str(err) and "insert" in str(err) and "3.50" in str(err)

    def test_between_phases_wording(self):
        assert "between phases" in str(StallError(0, None, 1.0))


# ---------------------------------------------------------------------------
# live integration (both backends)
# ---------------------------------------------------------------------------
class TestByteIdentity:
    @pytest.mark.parametrize("comm", ["sim", "process"])
    @pytest.mark.parametrize("driver", [DistributedSamplingRun, ParallelStreamingRun])
    def test_sample_ids_identical_with_health_on_off(self, driver, comm):
        baseline = run_sample_ids(driver, None, comm=comm)
        monitored = run_sample_ids(driver, True, comm=comm)
        off = run_sample_ids(driver, False, comm=comm)
        assert np.array_equal(baseline, monitored)
        assert np.array_equal(baseline, off)


class TestLiveMonitoring:
    @pytest.fixture(params=["sim", "process"])
    def finished_run(self, request):
        with DistributedSamplingRun(
            "ours", health=True, comm=request.param, k=40, p=4, batch_size=150, seed=3
        ) as run:
            run.run(ROUNDS)
            yield run

    def test_all_ranks_ok_after_clean_run(self, finished_run):
        status = finished_run.health.status()
        assert status["status"] == "ok" and status["healthy"]
        assert status["p"] == 4
        assert all(rank["state"] == "ok" for rank in status["ranks"].values())

    def test_beats_flow_and_rounds_are_counted(self, finished_run):
        finished_run.health._drain_once()
        status = finished_run.health.status()
        assert status["heartbeats"] > 0
        for rank in status["ranks"].values():
            assert rank["beats"] > 0
            assert rank["round"] == ROUNDS
            assert rank["items"] > 0

    def test_skew_gauge_exported(self, finished_run):
        # on the process backend the workers' final heartbeats may still be
        # in flight when the run returns; drain until they have landed
        deadline = time.monotonic() + 5.0
        while True:
            finished_run.health._drain_once()
            if finished_run.health.skew_by_phase() or time.monotonic() > deadline:
                break
            time.sleep(0.05)
        finished_run.health._update_registry()
        text = finished_run.health.registry.exposition()
        assert "repro_straggler_skew" in text
        # a loaded machine can legitimately classify a rank as a transient
        # straggler (the EWMA skew is real), so don't demand ok == p; the
        # contract is that every rank is accounted for and none is broken
        assert "repro_ranks_ok " in text
        states = [
            rank["state"] for rank in finished_run.health.status()["ranks"].values()
        ]
        assert len(states) == 4
        assert all(state in ("ok", "straggler") for state in states)
        skew = finished_run.health.skew_by_phase()
        assert skew, "phase EWMAs should produce at least one skew entry"
        assert all(ratio >= 1.0 for ratio in skew.values())

    def test_clean_run_detects_no_stalls(self, finished_run):
        metrics = finished_run.metrics
        assert metrics.stalls == 0
        assert finished_run.health.watchdog_kills == 0
        assert metrics.as_dict()["stalls"] == 0

    def test_registry_shared_with_tracer(self):
        with DistributedSamplingRun(
            "ours", health=True, trace=True, comm="sim", **RUN_KWARGS
        ) as run:
            run.run(2)
            assert run.health.registry is run.trace.registry

    def test_run_metrics_roundtrip_stall_counters(self):
        from repro.runtime.metrics import RunMetrics

        metrics = RunMetrics(p=2, k=10, algorithm="ours")
        metrics.stalls = 3
        metrics.stragglers_detected = 1
        clone = RunMetrics.from_dict(metrics.as_dict())
        assert clone.stalls == 3 and clone.stragglers_detected == 1

"""The ``repro`` logging hierarchy and worker log forwarding."""

from __future__ import annotations

import logging

import pytest

from repro.core.api import DistributedSamplingRun
from repro.obs.log import (
    ROOT_LOGGER,
    drain_worker_log_records,
    get_logger,
    install_worker_log_buffer,
    replay_worker_records,
    set_worker_log_epoch,
    uninstall_worker_log_buffer,
)


@pytest.fixture(autouse=True)
def clean_worker_buffer():
    yield
    uninstall_worker_log_buffer()


class TestLoggerHierarchy:
    def test_get_logger_prefixes_into_hierarchy(self):
        assert get_logger().name == ROOT_LOGGER
        assert get_logger("network.shm").name == "repro.network.shm"
        assert get_logger("repro.checkpoint").name == "repro.checkpoint"

    def test_root_logger_has_null_handler(self):
        handlers = logging.getLogger(ROOT_LOGGER).handlers
        assert any(isinstance(h, logging.NullHandler) for h in handlers)


class TestWorkerBuffer:
    def test_records_tagged_with_rank_and_epoch(self):
        install_worker_log_buffer(3, epoch=1)
        get_logger("network").warning("lost %d", 7)
        set_worker_log_epoch(2)
        get_logger("checkpoint").debug("pruned")
        records = drain_worker_log_records()
        assert [(r[3], r[4]) for r in records] == [(3, 1), (3, 2)]
        assert records[0][0] == logging.WARNING
        assert records[0][1] == "repro.network"
        assert records[0][2] == "lost 7"
        assert drain_worker_log_records() == []

    def test_reinstall_replaces_previous_buffer(self):
        install_worker_log_buffer(0)
        install_worker_log_buffer(1)
        get_logger().info("once")
        records = drain_worker_log_records()
        assert len(records) == 1
        assert records[0][3] == 1

    def test_drain_without_buffer_is_empty(self):
        uninstall_worker_log_buffer()
        assert drain_worker_log_records() == []

    def test_buffer_is_bounded(self):
        handler = install_worker_log_buffer(0)
        for i in range(handler.records.maxlen + 10):
            get_logger().info("m%d", i)
        assert len(drain_worker_log_records()) == handler.records.maxlen

    def test_replay_prefixes_rank_and_epoch(self, caplog):
        records = [(logging.WARNING, "repro.network", "boom", 2, 1, 0.0)]
        with caplog.at_level(logging.WARNING, logger="repro.network"):
            assert replay_worker_records(records) == 1
        assert caplog.records[-1].getMessage() == "[worker r2 e1] boom"


def _worker_log_kernel(state):
    get_logger("testworker").info("hello from rank %d", state["pe"])
    return True


class TestProcessCommForwarding:
    def test_worker_records_replayed_on_coordinator(self, make_process_comm, caplog):
        comm = make_process_comm(2)
        with DistributedSamplingRun(
            "ours", comm=comm, k=10, p=2, batch_size=100, seed=4
        ) as run:
            run.run(1)
            comm.run_per_pe(run.sampler._handle, _worker_log_kernel)
            with caplog.at_level(logging.INFO, logger="repro.testworker"):
                drained = comm.drain_worker_logs()
        assert drained >= 2
        messages = [r.getMessage() for r in caplog.records]
        assert any("[worker r0 e0] hello from rank 0" in m for m in messages)
        assert any("[worker r1 e0] hello from rank 1" in m for m in messages)

"""End-to-end trace collection: identity, alignment, and the p=4 trace.

The two load-bearing guarantees of the obs layer:

* **non-interference** — ``sample_ids()`` is byte-identical with tracing
  enabled and disabled, on both execution backends (tracers never touch
  a random generator);
* **alignment** — after the per-worker clock-offset calibration, worker
  spans land inside the coordinator round that collected them, spans
  within one track nest cleanly, and the exported Chrome trace of a
  ``p=4`` pipelined run validates with one track per PE (the PR's
  acceptance criterion).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.api import DistributedSamplingRun
from repro.obs import TraceCollector, validate_chrome_trace
from repro.pipeline import PipelinedSamplingRun
from repro.runtime.metrics import PHASES

RUN_KWARGS = dict(k=30, p=2, batch_size=200, seed=9)
ROUNDS = 4


def run_sample_ids(driver, trace, **overrides):
    kwargs = {**RUN_KWARGS, **overrides}
    with driver("ours", trace=trace, **kwargs) as run:
        if isinstance(run, DistributedSamplingRun):
            run.run(ROUNDS)
        else:
            run.run_rounds(ROUNDS)
        return np.sort(run.sample_ids())


class TestNullTracerByteIdentity:
    @pytest.mark.parametrize("comm", ["sim", "process"])
    @pytest.mark.parametrize("driver", [DistributedSamplingRun, PipelinedSamplingRun])
    def test_sample_ids_identical_with_tracing_on_off(self, driver, comm):
        baseline = run_sample_ids(driver, None, comm=comm)
        traced = run_sample_ids(driver, True, comm=comm)
        off = run_sample_ids(driver, False, comm=comm)
        assert np.array_equal(baseline, traced)
        assert np.array_equal(baseline, off)

    def test_invalid_trace_argument_rejected(self):
        with pytest.raises(TypeError, match="trace"):
            DistributedSamplingRun("ours", trace="yes", **RUN_KWARGS)


class TestCollectedEvents:
    @pytest.fixture(params=["sim", "process"])
    def collector(self, request):
        collector = TraceCollector()
        with DistributedSamplingRun(
            "ours", comm=request.param, trace=collector, **RUN_KWARGS
        ) as run:
            run.run(ROUNDS)
        return collector

    def test_every_round_collected_exactly_once(self, collector):
        rounds = [
            event[6]["round"]
            for event in collector.events()
            if event[0] == "coordinator" and event[1] == "X" and event[2] == "round"
        ]
        assert sorted(rounds) == list(range(ROUNDS))

    def test_events_sorted_and_timestamps_finite(self, collector):
        events = collector.events()
        assert events
        stamps = [event[4] for event in events]
        assert stamps == sorted(stamps)
        assert all(ts == ts and abs(ts) != float("inf") for ts in stamps)

    def test_pe_spans_tagged_with_rank_round_epoch_and_tier(self, collector):
        kernel_spans = [
            event
            for event in collector.events()
            if event[0].startswith("pe") and event[1] == "X" and event[3] == "kernel"
        ]
        assert kernel_spans
        for track, _ph, _name, _cat, _ts, _dur, args in kernel_spans:
            assert args["rank"] == int(track[2:])
            assert "kernel_tier" in args
            assert args["epoch"] == 0
            assert 0 <= args["round"] < ROUNDS

    def test_spans_nest_within_each_track(self, collector):
        # within one track any two spans either nest or are disjoint —
        # partial overlap would mean timestamps are inconsistent
        by_track = {}
        for track, ph, _n, _c, ts, dur, _a in collector.events():
            if ph == "X":
                by_track.setdefault(track, []).append((ts, ts + dur))
        eps = 1e-9
        for track, intervals in by_track.items():
            intervals.sort()
            for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
                assert s2 >= e1 - eps or e2 <= e1 + eps, (
                    f"partially overlapping spans on {track}"
                )

    def test_worker_spans_align_into_their_round(self, collector):
        # clock alignment: a PE's insert span of round r must fall inside
        # the coordinator's round-r span (generous slack for calibration
        # error; raw perf_counter origins differ by *seconds*)
        slack = 0.02
        round_bounds = {
            event[6]["round"]: (event[4], event[4] + event[5])
            for event in collector.events()
            if event[0] == "coordinator" and event[1] == "X" and event[2] == "round"
        }
        checked = 0
        for track, ph, name, cat, ts, dur, args in collector.events():
            if not track.startswith("pe") or ph != "X" or cat != "kernel":
                continue
            start, end = round_bounds[args["round"]]
            assert ts >= start - slack and ts + dur <= end + slack
            checked += 1
        assert checked > 0


class TestPipelinedTraceAcceptance:
    def test_p4_pipelined_trace_validates_with_one_track_per_pe(self, tmp_path):
        collector = TraceCollector()
        with PipelinedSamplingRun(
            "ours",
            k=50,
            p=4,
            batch_size=400,
            seed=3,
            comm="process",
            pipeline="relaxed",
            trace=collector,
        ) as run:
            run.run_rounds(ROUNDS)
        path = collector.export(tmp_path / "trace.json")

        trace = json.loads(path.read_text())
        events = validate_chrome_trace(trace)
        tracks = {
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert tracks == {"coordinator", "pe0", "pe1", "pe2", "pe3"}
        assert len(trace["metadata"]["clock_offsets"]) == 4
        # every PE produced aligned spans, and the pipelined phases appear
        pids_with_spans = {e["pid"] for e in events if e["ph"] == "X"}
        assert len(pids_with_spans) == 5
        phase_names = {
            e["name"] for e in events if e.get("cat") == "phase" and e["name"] in PHASES
        }
        assert {"prepare", "insert", "select", "threshold", "overlap"} <= phase_names

    def test_registry_fed_from_round_metrics(self):
        collector = TraceCollector()
        with DistributedSamplingRun("ours", trace=collector, **RUN_KWARGS) as run:
            run.run(ROUNDS)
            total_items = run.metrics.total_items
        snapshot = collector.registry.as_dict()
        assert snapshot["repro_rounds_total"]["value"] == ROUNDS
        assert snapshot["repro_items_total"]["value"] == total_items
        exposition = collector.registry.exposition()
        assert "repro_payload_bytes_total" in exposition

"""Unit tests of the tracer implementations and the process-tracer global."""

from __future__ import annotations

import pickle

import pytest

from repro.obs.tracer import (
    NULL_TRACER,
    MemoryTracer,
    NullTracer,
    process_tracer,
    set_process_tracer,
)


class TestNullTracer:
    def test_is_disabled_and_records_nothing(self):
        tracer = NullTracer()
        assert tracer.enabled is False
        with tracer.span("anything", cat="x", foo=1):
            pass
        tracer.instant("point", cat="x")
        tracer.counter("series", 3.0)
        assert tracer.drain() == []

    def test_span_context_manager_is_shared(self):
        # the hot path must not allocate per call
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b", cat="c", x=1)

    def test_span_propagates_exceptions(self):
        with pytest.raises(RuntimeError):
            with NULL_TRACER.span("x"):
                raise RuntimeError("boom")


class TestMemoryTracer:
    def test_span_records_complete_event(self):
        tracer = MemoryTracer(track="pe0")
        assert tracer.enabled is True
        with tracer.span("insert", cat="kernel", items=10):
            pass
        (event,) = tracer.events
        ph, name, cat, ts, dur, args = event
        assert (ph, name, cat) == ("X", "insert", "kernel")
        assert ts > 0.0 and dur >= 0.0
        assert args == {"items": 10}

    def test_span_records_even_when_body_raises(self):
        tracer = MemoryTracer()
        with pytest.raises(ValueError):
            with tracer.span("failing"):
                raise ValueError("boom")
        assert [e[1] for e in tracer.events] == ["failing"]

    def test_instant_and_counter_shapes(self):
        tracer = MemoryTracer()
        tracer.instant("marker", cat="fault", epoch=2)
        tracer.counter("depth", 7, cat="comm", extra="x")
        instant, counter = tracer.events
        assert instant[0] == "i" and instant[5] == {"epoch": 2}
        assert counter[0] == "C"
        assert counter[5] == {"extra": "x", "value": 7.0}

    def test_nested_spans_close_inner_first(self):
        tracer = MemoryTracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.events
        assert inner[1] == "inner" and outer[1] == "outer"
        # inner interval contained in outer interval
        assert outer[3] <= inner[3]
        assert inner[3] + inner[4] <= outer[3] + outer[4]

    def test_drain_clears_buffer(self):
        tracer = MemoryTracer(track="x", tags={"rank": 1})
        tracer.instant("a")
        assert len(tracer.drain()) == 1
        assert tracer.drain() == []
        assert tracer.tags == {"rank": 1}

    def test_events_pickle_cheaply(self):
        tracer = MemoryTracer()
        with tracer.span("s", cat="c", n=1):
            pass
        restored = pickle.loads(pickle.dumps(tracer.drain()))
        assert restored[0][1] == "s"


class TestProcessTracer:
    def test_default_is_null(self):
        assert process_tracer() is NULL_TRACER

    def test_set_returns_previous_and_restores(self):
        mine = MemoryTracer()
        previous = set_process_tracer(mine)
        try:
            assert process_tracer() is mine
        finally:
            assert set_process_tracer(previous) is mine
        assert process_tracer() is NULL_TRACER

    def test_none_resets_to_null(self):
        set_process_tracer(MemoryTracer())
        set_process_tracer(None)
        assert process_tracer() is NULL_TRACER

"""The HTTP exporter: ``/metrics`` scrapes and ``/health`` probes.

Runs everything against loopback on an ephemeral port (``port=0``) so
tests never collide; the PR's acceptance criterion — a live ``p=4`` run
serving valid Prometheus text with the straggler-skew gauge and a
``/health`` view with every rank ``ok`` — is the integration case at the
bottom.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.core.api import DistributedSamplingRun
from repro.obs.health import HealthConfig, HealthMonitor, resolve_health
from repro.obs.metrics import MetricsRegistry
from repro.obs.serve import PROMETHEUS_CONTENT_TYPE, HealthServer, resolve_serve


def fetch(url):
    with urllib.request.urlopen(url, timeout=5.0) as response:
        return response.status, response.headers.get("Content-Type"), response.read()


class TestHealthServer:
    @pytest.fixture
    def registry(self):
        registry = MetricsRegistry()
        registry.counter("demo_total", "demo counter").inc(3)
        return registry

    def test_metrics_endpoint_serves_prometheus_text(self, registry):
        with HealthServer(registry=registry) as server:
            status, content_type, body = fetch(server.url("/metrics"))
        assert status == 200
        assert content_type == PROMETHEUS_CONTENT_TYPE
        assert b"demo_total 3" in body

    def test_ephemeral_port_is_reported(self, registry):
        with HealthServer(registry=registry) as server:
            host, port = server.address
            assert host == "127.0.0.1" and port > 0
            assert server.running
        assert not server.running

    def test_health_without_monitor_is_unknown(self, registry):
        with HealthServer(registry=registry) as server:
            status, _, body = fetch(server.url("/health"))
        assert status == 200
        assert json.loads(body)["status"] == "unknown"

    def test_unknown_path_is_404(self, registry):
        with HealthServer(registry=registry) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                fetch(server.url("/nope"))
            assert excinfo.value.code == 404

    def test_root_lists_endpoints(self, registry):
        with HealthServer(registry=registry) as server:
            _, _, body = fetch(server.url("/"))
        assert json.loads(body)["endpoints"] == ["/metrics", "/health"]

    def test_health_unhealthy_returns_503(self):
        monitor = resolve_health(HealthConfig())
        with HealthServer(monitor=monitor) as server:
            # no comm attached: fabricate one stalled rank directly
            from repro.obs.health import _RankHealth

            monitor.ranks[0] = _RankHealth(state="stalled")
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                fetch(server.url("/health"))
            assert excinfo.value.code == 503
            payload = json.loads(excinfo.value.read())
            assert payload["status"] == "unhealthy"

    def test_close_is_idempotent(self, registry):
        server = HealthServer(registry=registry).start()
        server.close()
        server.close()


class TestResolveServe:
    def test_none_and_false_disable(self):
        assert resolve_serve(None) is None
        assert resolve_serve(False) is None

    def test_true_starts_loopback_server(self):
        server = resolve_serve(True)
        try:
            assert server.running and server.address[0] == "127.0.0.1"
        finally:
            server.close()

    def test_tuple_address(self):
        server = resolve_serve(("127.0.0.1", 0))
        try:
            assert server.running
        finally:
            server.close()

    def test_prebuilt_server_adopts_monitor(self):
        monitor = HealthMonitor()
        server = resolve_serve(HealthServer(), monitor=monitor)
        try:
            assert server.monitor is monitor
        finally:
            server.close()

    def test_invalid_argument_rejected(self):
        with pytest.raises(TypeError, match="serve_metrics"):
            resolve_serve("0.0.0.0:9000")
        with pytest.raises(TypeError, match="serve_metrics"):
            DistributedSamplingRun(
                "ours", serve_metrics=1234, k=10, p=2, batch_size=50, seed=0
            )


class TestLiveScrape:
    def test_live_p4_run_serves_metrics_and_health(self):
        with DistributedSamplingRun(
            "ours",
            comm="sim",
            health=True,
            serve_metrics=True,
            k=40,
            p=4,
            batch_size=150,
            seed=3,
        ) as run:
            run.run(4)
            run.health._drain_once()
            run.health._update_registry()

            status, content_type, body = fetch(run.server.url("/metrics"))
            assert status == 200 and content_type == PROMETHEUS_CONTENT_TYPE
            text = body.decode("utf-8")
            assert "repro_straggler_skew" in text
            assert "repro_heartbeats_total" in text
            # every non-comment line is "name[{labels}] value" — a cheap
            # validity check of the exposition format
            for line in text.splitlines():
                if line and not line.startswith("#"):
                    name, _, value = line.partition(" ")
                    assert name and float(value) is not None

            status, _, body = fetch(run.server.url("/health"))
            payload = json.loads(body)
            assert status == 200
            assert payload["status"] == "ok"
            assert [r["state"] for r in payload["ranks"].values()] == ["ok"] * 4
        assert not run.server.running

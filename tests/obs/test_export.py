"""Chrome trace-event export: schema, strict JSON, track layout."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.obs.export import (
    COORDINATOR_PID,
    chrome_trace_dict,
    validate_chrome_trace,
    write_chrome_trace,
)


def sample_events():
    # (track, ph, name, cat, ts, dur, args)
    return [
        ("coordinator", "X", "round", "round", 1.0, 0.5, {"round": 0}),
        ("pe0", "X", "insert", "kernel", 1.1, 0.2, {"rank": 0}),
        ("pe1", "i", "marker", "fault", 1.2, 0.0, None),
        ("pe0", "C", "depth", "comm", 1.3, 0.0, {"value": 3.0}),
    ]


class TestChromeTraceDict:
    def test_validates_and_round_trips_strict_json(self):
        trace = chrome_trace_dict(sample_events(), metadata={"rounds_recorded": 1})
        events = validate_chrome_trace(trace)
        restored = json.loads(json.dumps(trace, allow_nan=False))
        assert restored["metadata"]["rounds_recorded"] == 1
        assert len(events) == len(trace["traceEvents"])

    def test_one_process_name_record_per_track(self):
        trace = chrome_trace_dict(sample_events())
        names = {
            e["pid"]: e["args"]["name"]
            for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert sorted(names.values()) == ["coordinator", "pe0", "pe1"]
        assert names[COORDINATOR_PID] == "coordinator"

    def test_coordinator_track_exists_even_without_events(self):
        trace = chrome_trace_dict([("pe0", "i", "x", None, 0.0, 0.0, None)])
        names = [
            e["args"]["name"] for e in trace["traceEvents"] if e["ph"] == "M"
        ]
        assert "coordinator" in names

    def test_pe_tracks_sort_numerically(self):
        events = [
            (f"pe{r}", "i", "x", None, 0.0, 0.0, None) for r in (10, 2, 0)
        ]
        trace = chrome_trace_dict(events)
        names = [e["args"]["name"] for e in trace["traceEvents"] if e["ph"] == "M"]
        assert names == ["coordinator", "pe0", "pe2", "pe10"]

    def test_timestamps_scale_to_microseconds(self):
        trace = chrome_trace_dict(sample_events())
        span = next(e for e in trace["traceEvents"] if e["ph"] == "X" and e["name"] == "round")
        assert span["ts"] == pytest.approx(1.0e6)
        assert span["dur"] == pytest.approx(0.5e6)

    def test_numpy_and_nonfinite_args_become_json_safe(self):
        events = [
            (
                "pe0",
                "i",
                "x",
                None,
                0.0,
                0.0,
                {"n": np.int64(5), "f": np.float64(0.5), "bad": float("inf")},
            )
        ]
        trace = chrome_trace_dict(events)
        payload = json.loads(json.dumps(trace, allow_nan=False))
        args = next(e for e in payload["traceEvents"] if e["ph"] == "i")["args"]
        assert args == {"n": 5, "f": 0.5, "bad": None}


class TestWriteAndValidate:
    def test_write_chrome_trace_loads_back(self, tmp_path):
        path = write_chrome_trace(tmp_path / "trace.json", sample_events())
        validate_chrome_trace(json.loads(path.read_text()))

    def test_rejects_missing_trace_events(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace({"foo": 1})

    def test_rejects_unknown_phase_code(self):
        trace = {"traceEvents": [{"ph": "Z", "name": "x", "pid": 1, "ts": 0.0}]}
        with pytest.raises(ValueError, match="phase code"):
            validate_chrome_trace(trace)

    def test_rejects_complete_event_without_duration(self):
        trace = {"traceEvents": [{"ph": "X", "name": "x", "pid": 1, "ts": 0.0}]}
        with pytest.raises(ValueError, match="dur"):
            validate_chrome_trace(trace)

    def test_rejects_missing_required_key(self):
        trace = {"traceEvents": [{"ph": "i", "ts": 0.0}]}
        with pytest.raises(ValueError, match="name"):
            validate_chrome_trace(trace)

"""The ``python -m repro.obs.report`` skew-table and bench-history CLI."""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

from repro.obs import TraceCollector
from repro.obs.export import write_chrome_trace
from repro.obs.report import (
    main,
    phase_track_times,
    render_bench_history,
    render_report,
    skew_table,
)
from repro.core.api import DistributedSamplingRun


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory):
    collector = TraceCollector()
    with DistributedSamplingRun(
        "ours", k=30, p=2, batch_size=200, seed=9, trace=collector
    ) as run:
        run.run(3)
    return collector.export(tmp_path_factory.mktemp("trace") / "trace.json")


class TestLibraryApi:
    def test_phase_track_times_covers_pes_and_coordinator(self, trace_path):
        per_phase = phase_track_times(json.loads(trace_path.read_text()))
        assert "insert" in per_phase
        assert {"pe0", "pe1"} <= set(per_phase["insert"])
        assert all(t >= 0.0 for times in per_phase.values() for t in times.values())

    def test_skew_table_rows_in_canonical_order(self, trace_path):
        rows = skew_table(json.loads(trace_path.read_text()))
        phases = [row[0] for row in rows]
        assert phases == sorted(phases, key=["prepare", "insert", "expire", "select",
                                             "threshold", "gather", "overlap"].index)
        for _phase, _per_track, mean, peak, skew in rows:
            assert peak >= mean >= 0.0
            assert skew >= 1.0 or mean == 0.0

    def test_render_report_lists_tracks_and_phases(self, trace_path):
        text = render_report(json.loads(trace_path.read_text()))
        assert "phase" in text and "skew" in text
        assert "pe0" in text and "pe1" in text
        assert "insert" in text
        assert "recovery markers: 0" in text


class TestCli:
    def test_cli_prints_skew_table(self, trace_path, capsys):
        assert main([str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "insert" in out and "skew" in out

    def test_cli_no_per_pe_flag(self, trace_path, capsys):
        assert main([str(trace_path), "--no-per-pe"]) == 0
        out = capsys.readouterr().out
        assert "mean_s" in out and "pe0" not in out.splitlines()[0]

    def test_cli_missing_file_exits_2(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope.json")]) == 2
        assert "cannot load" in capsys.readouterr().err

    def test_cli_invalid_trace_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"traceEvents": [{"ph": "Z"}]}))
        assert main([str(bad)]) == 2
        assert "invalid trace" in capsys.readouterr().err

    def test_cli_on_handwritten_trace(self, tmp_path, capsys):
        path = write_chrome_trace(
            tmp_path / "t.json",
            [
                ("coordinator", "X", "insert", "phase", 0.0, 1.0, None),
                ("pe0", "X", "insert", "kernel", 0.1, 0.4, None),
                ("pe1", "X", "insert", "kernel", 0.1, 0.8, None),
            ],
        )
        assert main([str(path)]) == 0
        out = capsys.readouterr().out
        # pe skew = max 0.8 / mean 0.6
        assert "1.33" in out

    def test_cli_without_any_input_errors(self, capsys):
        with pytest.raises(SystemExit):
            main([])
        assert "required" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# benchmark history (harness append + trend table)
# ---------------------------------------------------------------------------
def _load_harness():
    path = Path(__file__).resolve().parents[2] / "benchmarks" / "harness.py"
    spec = importlib.util.spec_from_file_location("bench_harness", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def _record(items_per_s, revision="abcdef0123456789"):
    return {
        "items_per_s": items_per_s,
        "overhead_ratio": 1.01,
        "meta": {
            "schema_version": 1,
            "bench": "bench_demo",
            "git_revision": revision,
            "timestamp_utc": "2026-08-08T10:00:00+00:00",
        },
    }


class TestBenchHistory:
    @pytest.fixture(scope="class")
    def harness(self):
        return _load_harness()

    def test_append_creates_then_extends_history(self, harness, tmp_path):
        path = harness.append_bench_history(_record(100.0), bench="bench_demo", root=tmp_path)
        assert path == tmp_path / "BENCH_demo_history.json"
        harness.append_bench_history(_record(110.0), bench="bench_demo", root=tmp_path)
        history = json.loads(path.read_text())
        assert history["bench"] == "bench_demo"
        assert history["schema_version"] == harness.BENCH_SCHEMA_VERSION
        assert [r["items_per_s"] for r in history["records"]] == [100.0, 110.0]

    def test_corrupt_history_is_started_over(self, harness, tmp_path):
        path = harness.bench_history_path("bench_demo", tmp_path)
        path.write_text("{not json")
        harness.append_bench_history(_record(5.0), bench="bench_demo", root=tmp_path)
        assert len(json.loads(path.read_text())["records"]) == 1

    def test_history_is_capped(self, harness, tmp_path, monkeypatch):
        monkeypatch.setattr(harness, "BENCH_HISTORY_LIMIT", 3)
        for n in range(5):
            harness.append_bench_history(_record(float(n)), bench="bench_demo", root=tmp_path)
        records = json.loads(harness.bench_history_path("bench_demo", tmp_path).read_text())
        assert [r["items_per_s"] for r in records["records"]] == [2.0, 3.0, 4.0]

    def test_write_bench_json_appends_to_history(self, harness, tmp_path, monkeypatch, capsys):
        monkeypatch.setattr(harness, "REPO_ROOT", tmp_path)
        out = tmp_path / "BENCH_demo.json"
        for _ in range(2):
            harness.write_bench_json(out, {"items_per_s": 7.0}, bench="bench_demo")
        single = json.loads(out.read_text())
        assert single["items_per_s"] == 7.0 and single["meta"]["bench"] == "bench_demo"
        history = json.loads((tmp_path / "BENCH_demo_history.json").read_text())
        assert len(history["records"]) == 2

    def test_trend_table_shows_ratio_vs_previous(self):
        history = {
            "bench": "bench_demo",
            "records": [_record(100.0), _record(106.0, revision="feedc0ffee")],
        }
        text = render_bench_history(history)
        assert "items_per_s" in text and "bench_demo" in text
        assert "feedc0f" in text and "feedc0ff" not in text
        assert "×1.06" in text
        assert "2 record(s)" in text

    def test_trend_table_limit_and_empty(self):
        assert "no records" in render_bench_history({"records": []})
        history = {"bench": "b", "records": [_record(float(n)) for n in range(1, 6)]}
        text = render_bench_history(history, limit=2)
        assert "showing last 2" in text

    def test_cli_bench_history_mode(self, tmp_path, capsys):
        path = tmp_path / "BENCH_demo_history.json"
        path.write_text(json.dumps({"bench": "bench_demo", "records": [_record(3.0)]}))
        assert main(["--bench-history", str(path)]) == 0
        out = capsys.readouterr().out
        assert "bench_demo" in out and "items_per_s" in out

    def test_cli_bench_history_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["--bench-history", str(tmp_path / "nope.json")]) == 2
        assert "cannot load" in capsys.readouterr().err

"""The ``python -m repro.obs.report`` skew-table CLI."""

from __future__ import annotations

import json

import pytest

from repro.obs import TraceCollector
from repro.obs.export import write_chrome_trace
from repro.obs.report import main, phase_track_times, render_report, skew_table
from repro.core.api import DistributedSamplingRun


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory):
    collector = TraceCollector()
    with DistributedSamplingRun(
        "ours", k=30, p=2, batch_size=200, seed=9, trace=collector
    ) as run:
        run.run(3)
    return collector.export(tmp_path_factory.mktemp("trace") / "trace.json")


class TestLibraryApi:
    def test_phase_track_times_covers_pes_and_coordinator(self, trace_path):
        per_phase = phase_track_times(json.loads(trace_path.read_text()))
        assert "insert" in per_phase
        assert {"pe0", "pe1"} <= set(per_phase["insert"])
        assert all(t >= 0.0 for times in per_phase.values() for t in times.values())

    def test_skew_table_rows_in_canonical_order(self, trace_path):
        rows = skew_table(json.loads(trace_path.read_text()))
        phases = [row[0] for row in rows]
        assert phases == sorted(phases, key=["prepare", "insert", "expire", "select",
                                             "threshold", "gather", "overlap"].index)
        for _phase, _per_track, mean, peak, skew in rows:
            assert peak >= mean >= 0.0
            assert skew >= 1.0 or mean == 0.0

    def test_render_report_lists_tracks_and_phases(self, trace_path):
        text = render_report(json.loads(trace_path.read_text()))
        assert "phase" in text and "skew" in text
        assert "pe0" in text and "pe1" in text
        assert "insert" in text
        assert "recovery markers: 0" in text


class TestCli:
    def test_cli_prints_skew_table(self, trace_path, capsys):
        assert main([str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "insert" in out and "skew" in out

    def test_cli_no_per_pe_flag(self, trace_path, capsys):
        assert main([str(trace_path), "--no-per-pe"]) == 0
        out = capsys.readouterr().out
        assert "mean_s" in out and "pe0" not in out.splitlines()[0]

    def test_cli_missing_file_exits_2(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope.json")]) == 2
        assert "cannot load" in capsys.readouterr().err

    def test_cli_invalid_trace_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"traceEvents": [{"ph": "Z"}]}))
        assert main([str(bad)]) == 2
        assert "invalid trace" in capsys.readouterr().err

    def test_cli_on_handwritten_trace(self, tmp_path, capsys):
        path = write_chrome_trace(
            tmp_path / "t.json",
            [
                ("coordinator", "X", "insert", "phase", 0.0, 1.0, None),
                ("pe0", "X", "insert", "kernel", 0.1, 0.4, None),
                ("pe1", "X", "insert", "kernel", 0.1, 0.8, None),
            ],
        )
        assert main([str(path)]) == 0
        out = capsys.readouterr().out
        # pe skew = max 0.8 / mean 0.6
        assert "1.33" in out

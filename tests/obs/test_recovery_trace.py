"""Fault injection under tracing: recovery markers, no event loss/dup.

A traced run that loses a worker mid-stream must (a) still produce the
byte-identical sample of an undisturbed untraced run, (b) carry exactly
one ``recovery`` marker per survived death with the bumped epoch, and
(c) contain every round exactly once — the rounds replayed from the
checkpoint are collected once, the partially-executed originals are
rolled back by :meth:`TraceCollector.on_recovery`.
"""

from __future__ import annotations

import numpy as np

from repro.core.api import DistributedSamplingRun
from repro.obs import TraceCollector, validate_chrome_trace

from conftest import kill_worker

P = 3
RUN_KWARGS = dict(k=24, p=P, batch_size=150, seed=5)
TOTAL_ROUNDS = 6


def reference_ids() -> np.ndarray:
    with DistributedSamplingRun("ours", comm="process", **RUN_KWARGS) as ref:
        ref.run(TOTAL_ROUNDS)
        return ref.sample_ids()


class TestRecoveryTrace:
    def test_recovery_marker_and_exactly_once_rounds(
        self, make_process_comm, checkpoint_dir
    ):
        ref = reference_ids()
        comm = make_process_comm(P)
        collector = TraceCollector()
        run = DistributedSamplingRun(
            "ours",
            comm=comm,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=2,
            trace=collector,
            **RUN_KWARGS,
        )
        try:
            run.run(3)
            kill_worker(comm, 1)
            run.run(TOTAL_ROUNDS - 3)
            assert run.metrics.recoveries == 1
            sample = run.sample_ids()
        finally:
            run.close()

        # (a) recovery is invisible in the output, tracing or not
        assert np.array_equal(sample, ref)

        events = collector.events()

        # (b) exactly one recovery marker, carrying the bumped epoch and
        # the dead rank, plus the respawned worker's epoch-bump instants
        markers = [e for e in events if e[1] == "i" and e[2] == "recovery"]
        assert len(markers) == 1
        args = markers[0][6]
        assert args["epoch"] == 1
        assert args["dead_ranks"] == [1]
        assert collector.registry.as_dict()["repro_recoveries_total"]["value"] == 1

        # (c) every round exactly once: the replayed rounds replaced the
        # rolled-back originals, nothing lost, nothing duplicated
        rounds = [
            e[6]["round"]
            for e in events
            if e[0] == "coordinator" and e[1] == "X" and e[2] == "round"
        ]
        assert sorted(rounds) == list(range(TOTAL_ROUNDS))

        # per-PE events collected after the recovery carry the new epoch
        post = [
            e[6]["epoch"]
            for e in events
            if e[0].startswith("pe")
            and e[6] is not None
            and e[6].get("round", -1) >= run.metrics.rounds[-1].round_index
        ]
        assert post and all(epoch == 1 for epoch in post)

        # the trace still validates and exports cleanly after the rollback
        validate_chrome_trace(collector.chrome_trace())

    def test_trace_off_recovery_still_byte_identical(
        self, make_process_comm, checkpoint_dir
    ):
        # control: the same fault without tracing — guards against the
        # obs hooks becoming load-bearing for recovery itself
        ref = reference_ids()
        comm = make_process_comm(P)
        with DistributedSamplingRun(
            "ours",
            comm=comm,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=2,
            **RUN_KWARGS,
        ) as run:
            run.run(3)
            kill_worker(comm, 2)
            run.run(TOTAL_ROUNDS - 3)
            assert np.array_equal(run.sample_ids(), ref)

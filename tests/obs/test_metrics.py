"""The live metrics registry and its Prometheus text exposition."""

from __future__ import annotations

import json
import re
import threading

import pytest

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestInstruments:
    def test_counter_increments_and_rejects_decrease(self):
        counter = Counter("repro_items_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5.0
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = Gauge("repro_batch_size")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(4)
        assert gauge.value == 8.0

    def test_histogram_rendering_is_cumulative(self):
        hist = Histogram("repro_round_seconds", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 5.0, 50.0):
            hist.observe(value)
        assert hist.count == 4
        # stored per bucket (observe stops at the first fitting bound) ...
        assert hist.bucket_counts == [1, 1, 1]
        lines = hist.sample_lines()
        # ... rendered cumulatively, per le-bucket semantics
        assert 'repro_round_seconds_bucket{le="0.1"} 1' in lines
        assert 'repro_round_seconds_bucket{le="1"} 2' in lines
        assert 'repro_round_seconds_bucket{le="10"} 3' in lines
        assert 'repro_round_seconds_bucket{le="+Inf"} 4' in lines
        assert "repro_round_seconds_count 4" in lines
        assert hist.as_dict()["buckets"] == {"0.1": 1, "1": 2, "10": 3}

    def test_invalid_metric_name_rejected(self):
        with pytest.raises(ValueError):
            Counter("bad name with spaces")


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        first = registry.counter("repro_rounds_total", "rounds")
        assert registry.counter("repro_rounds_total") is first
        assert "repro_rounds_total" in registry
        assert len(registry) == 1

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("repro_x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("repro_x")

    def test_exposition_format(self):
        registry = MetricsRegistry()
        registry.counter("repro_items_total", "stream items processed").inc(42)
        registry.gauge("repro_threshold").set(0.25)
        registry.histogram("repro_round_seconds", "round time", buckets=(1.0,)).observe(0.5)
        text = registry.exposition()
        assert "# HELP repro_items_total stream items processed" in text
        assert "# TYPE repro_items_total counter" in text
        assert "repro_items_total 42" in text
        assert "repro_threshold 0.25" in text
        assert "# TYPE repro_round_seconds histogram" in text
        assert 'repro_round_seconds_bucket{le="1"} 1' in text
        assert text.endswith("\n")

    def test_as_dict_is_json_safe(self):
        registry = MetricsRegistry()
        registry.counter("repro_a").inc()
        registry.histogram("repro_b", buckets=(0.5,)).observe(0.1)
        snapshot = json.loads(json.dumps(registry.as_dict(), allow_nan=False))
        assert snapshot["repro_a"]["value"] == 1.0
        assert snapshot["repro_b"]["count"] == 1

    def test_help_text_is_escaped(self):
        registry = MetricsRegistry()
        registry.counter("repro_weird", "line one\nline two with back\\slash").inc()
        text = registry.exposition()
        assert "# HELP repro_weird line one\\nline two with back\\\\slash" in text
        # the exposition must stay line-oriented: exactly one HELP line
        help_lines = [l for l in text.splitlines() if l.startswith("# HELP repro_weird")]
        assert len(help_lines) == 1


class TestThreadSafety:
    """Concurrent writers + a scraping reader (the HTTP exporter shape)."""

    def test_concurrent_hammer_keeps_counts_exact(self):
        registry = MetricsRegistry()
        errors = []
        n_threads, n_iters = 8, 2000
        stop_scraping = threading.Event()

        def writer(idx):
            try:
                for i in range(n_iters):
                    registry.counter("repro_hits_total", "hammered").inc()
                    registry.gauge("repro_level").set(i)
                    registry.histogram("repro_lat", buckets=(0.5, 1.5)).observe(i % 2)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def scraper():
            try:
                while not stop_scraping.is_set():
                    text = registry.exposition()
                    snapshot = registry.as_dict()
                    # a snapshot must be self-consistent: the histogram's
                    # +Inf bucket equals its count
                    match = re.search(r'repro_lat_bucket\{le="\+Inf"\} (\d+)', text)
                    if match is not None:
                        count = int(re.search(r"repro_lat_count (\d+)", text).group(1))
                        assert int(match.group(1)) == count
                    if "repro_lat" in snapshot:
                        buckets = snapshot["repro_lat"]["buckets"]
                        assert buckets["1.5"] == snapshot["repro_lat"]["count"]
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(i,)) for i in range(n_threads)]
        scrape_thread = threading.Thread(target=scraper)
        scrape_thread.start()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stop_scraping.set()
        scrape_thread.join()
        assert not errors
        assert registry.get("repro_hits_total").value == n_threads * n_iters
        assert registry.get("repro_lat").count == n_threads * n_iters

"""The live metrics registry and its Prometheus text exposition."""

from __future__ import annotations

import json

import pytest

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestInstruments:
    def test_counter_increments_and_rejects_decrease(self):
        counter = Counter("repro_items_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5.0
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = Gauge("repro_batch_size")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(4)
        assert gauge.value == 8.0

    def test_histogram_buckets_are_cumulative(self):
        hist = Histogram("repro_round_seconds", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 5.0, 50.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.bucket_counts == [1, 2, 3]
        lines = hist.sample_lines()
        assert 'repro_round_seconds_bucket{le="+Inf"} 4' in lines
        assert "repro_round_seconds_count 4" in lines

    def test_invalid_metric_name_rejected(self):
        with pytest.raises(ValueError):
            Counter("bad name with spaces")


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        first = registry.counter("repro_rounds_total", "rounds")
        assert registry.counter("repro_rounds_total") is first
        assert "repro_rounds_total" in registry
        assert len(registry) == 1

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("repro_x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("repro_x")

    def test_exposition_format(self):
        registry = MetricsRegistry()
        registry.counter("repro_items_total", "stream items processed").inc(42)
        registry.gauge("repro_threshold").set(0.25)
        registry.histogram("repro_round_seconds", "round time", buckets=(1.0,)).observe(0.5)
        text = registry.exposition()
        assert "# HELP repro_items_total stream items processed" in text
        assert "# TYPE repro_items_total counter" in text
        assert "repro_items_total 42" in text
        assert "repro_threshold 0.25" in text
        assert "# TYPE repro_round_seconds histogram" in text
        assert 'repro_round_seconds_bucket{le="1"} 1' in text
        assert text.endswith("\n")

    def test_as_dict_is_json_safe(self):
        registry = MetricsRegistry()
        registry.counter("repro_a").inc()
        registry.histogram("repro_b", buckets=(0.5,)).observe(0.1)
        snapshot = json.loads(json.dumps(registry.as_dict(), allow_nan=False))
        assert snapshot["repro_a"]["value"] == 1.0
        assert snapshot["repro_b"]["count"] == 1

"""Fixtures for the observability tests.

Mirrors the fault-injection harness of ``tests/fault``: real worker
processes with small timeouts so injected deaths surface fast, plus a
fresh checkpoint directory per test for the recovery-trace cases.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.network.process_comm import ProcessComm

#: small-timeout settings so injected faults surface fast on one core
FAST_TIMEOUTS = dict(mailbox_timeout=5.0, reply_timeout=60.0)


def kill_worker(comm: ProcessComm, rank: int) -> None:
    """SIGKILL one worker and wait until the OS has reaped it."""
    pid = comm.worker_pids[rank]
    os.kill(pid, signal.SIGKILL)
    deadline = time.monotonic() + 10.0
    while comm.workers_alive[rank]:
        if time.monotonic() > deadline:  # pragma: no cover - diagnostics
            raise RuntimeError(f"worker {rank} (pid {pid}) survived SIGKILL")
        time.sleep(0.01)


@pytest.fixture
def make_process_comm():
    """Factory for fast-timeout :class:`ProcessComm` instances."""
    comms = []

    def factory(p: int, **kwargs) -> ProcessComm:
        merged = {**FAST_TIMEOUTS, **kwargs}
        comm = ProcessComm(p, **merged)
        comms.append(comm)
        return comm

    yield factory
    for comm in comms:
        comm.shutdown()


@pytest.fixture
def checkpoint_dir(tmp_path):
    """A fresh checkpoint directory per test."""
    return tmp_path / "ckpt"

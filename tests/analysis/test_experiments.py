"""Tests for the scaling-experiment engine (the harness behind Figures 3-6)."""

import numpy as np
import pytest

from repro.analysis.experiments import (
    ScalingConfig,
    run_configuration,
    run_strong_scaling,
    run_time_composition,
    run_weak_scaling,
    steady_state_preload,
)
from repro.core import DistributedReservoirSampler
from repro.network import SimComm


TINY = ScalingConfig.smoke().with_scale(
    node_counts=(1, 2),
    sample_sizes=(16,),
    weak_batch_sizes=(64,),
    strong_total_batches=(512,),
    rounds=2,
    warmup_rounds=0,
    steady_state_batches=20,
)


class TestScalingConfig:
    def test_presets_exist(self):
        assert ScalingConfig.scaled_default().machine is not None
        assert ScalingConfig.smoke().rounds <= ScalingConfig.scaled_default().rounds
        paper = ScalingConfig.paper_full()
        assert paper.pes_per_node == 20
        assert max(paper.sample_sizes) == 100_000

    def test_pe_count(self):
        assert ScalingConfig(pes_per_node=4).pe_count(16) == 64

    def test_cell_seed_deterministic_and_distinct(self):
        cfg = ScalingConfig()
        a = cfg.cell_seed("ours", 10, 100, 4)
        b = cfg.cell_seed("ours", 10, 100, 4)
        c = cfg.cell_seed("gather", 10, 100, 4)
        assert a == b
        assert a != c

    def test_with_scale_replaces_fields(self):
        cfg = ScalingConfig().with_scale(rounds=9)
        assert cfg.rounds == 9


class TestSteadyStatePreload:
    def test_preload_installs_k_items_and_threshold(self):
        sampler = DistributedReservoirSampler(32, SimComm(4), seed=0)
        steady_state_preload(sampler, k=32, items_seen=10_000, seed=1)
        assert sampler.sample_size() == 32
        assert sampler.items_seen == 10_000
        assert sampler.threshold is not None
        keys = np.sort(np.concatenate([r.keys_array() for r in sampler.reservoirs]))
        assert sampler.threshold == pytest.approx(keys[-1])

    def test_preloaded_ids_are_negative(self):
        sampler = DistributedReservoirSampler(8, SimComm(2), seed=0)
        steady_state_preload(sampler, k=8, items_seen=1000, seed=2)
        assert np.all(sampler.sample_ids() < 0)

    def test_requires_items_seen_much_larger_than_k(self):
        sampler = DistributedReservoirSampler(100, SimComm(2), seed=0)
        with pytest.raises(ValueError):
            steady_state_preload(sampler, k=100, items_seen=500, seed=0)

    def test_uniform_keys_stay_below_one(self):
        sampler = DistributedReservoirSampler(16, SimComm(2), weighted=False, seed=0)
        steady_state_preload(sampler, k=16, items_seen=100_000, weighted=False, seed=3)
        assert sampler.threshold <= 1.0


class TestRunConfiguration:
    def test_returns_metrics_with_requested_rounds(self):
        metrics = run_configuration(
            "ours", p=4, k=8, batch_per_pe=32, rounds=3, machine=TINY.machine_spec(), seed=1
        )
        assert metrics.num_rounds == 3
        assert metrics.total_items == 3 * 4 * 32
        assert metrics.simulated_time > 0

    def test_prewarm_changes_insertion_profile(self):
        cold = run_configuration(
            "ours", p=2, k=16, batch_per_pe=64, rounds=2, machine=TINY.machine_spec(), seed=2
        )
        warm = run_configuration(
            "ours", p=2, k=16, batch_per_pe=64, rounds=2, prewarm_items=100_000,
            machine=TINY.machine_spec(), seed=2,
        )
        assert warm.total_insertions < cold.total_insertions

    def test_all_algorithm_names_run(self):
        for algorithm in ("ours", "ours-8", "gather", "ours-variable"):
            metrics = run_configuration(
                algorithm, p=2, k=8, batch_per_pe=16, rounds=1, machine=TINY.machine_spec(), seed=3
            )
            assert metrics.num_rounds == 1

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            run_configuration("ours", p=0, k=1, batch_per_pe=1, rounds=1)


class TestSweeps:
    @pytest.fixture(scope="class")
    def weak_result(self):
        return run_weak_scaling(TINY)

    def test_weak_scaling_covers_all_cells(self, weak_result):
        cells = len(TINY.algorithms) * len(TINY.sample_sizes) * len(TINY.weak_batch_sizes) * len(TINY.node_counts)
        assert len(weak_result.runs) == cells
        assert weak_result.kind == "weak"

    def test_speedups_reference_is_one(self, weak_result):
        speedups = weak_result.speedups("ours", 16, 64)
        assert speedups[1] == pytest.approx(1.0)
        assert set(speedups) == {1, 2}

    def test_throughputs_positive(self, weak_result):
        throughputs = weak_result.throughputs_per_pe("gather", 16, 64)
        assert all(v > 0 for v in throughputs.values())

    def test_phase_fractions_sum_to_one(self, weak_result):
        fractions = weak_result.phase_fractions("ours", 16, 64, 2)
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_strong_scaling_divides_total_batch(self):
        result = run_strong_scaling(TINY)
        m1 = result.get("ours", 16, 512, 1)
        m2 = result.get("ours", 16, 512, 2)
        # total items per round constant => per-round items equal across node counts
        assert m1.total_items == m2.total_items

    def test_time_composition_modes(self):
        strong = run_time_composition(TINY, mode="strong")
        weak = run_time_composition(TINY, mode="weak")
        assert strong.kind == "strong"
        assert weak.kind == "weak"
        with pytest.raises(ValueError):
            run_time_composition(TINY, mode="diagonal")

    def test_selection_depth_accessor(self, weak_result):
        depth = weak_result.selection_depth("ours", 16, 64, 2)
        assert depth >= 0.0

    def test_missing_cell_raises(self, weak_result):
        with pytest.raises(KeyError):
            weak_result.get("ours", 999, 64, 1)

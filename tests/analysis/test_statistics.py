"""Tests for the statistical-analysis helpers."""

import numpy as np
import pytest

from repro.analysis import (
    chi_square_statistic,
    empirical_inclusion_frequencies,
    inclusion_counts,
    single_draw_reference_probabilities,
    total_variation_distance,
    weighted_inclusion_reference,
)


class TestInclusionCounts:
    def test_counts_over_samples(self):
        samples = [np.array([0, 2]), np.array([2, 3]), np.array([], dtype=np.int64)]
        counts = inclusion_counts(samples, 5)
        assert counts.tolist() == [1, 0, 2, 1, 0]

    def test_out_of_range_ids_rejected(self):
        with pytest.raises(ValueError):
            inclusion_counts([np.array([5])], 5)
        with pytest.raises(ValueError):
            inclusion_counts([np.array([-1])], 5)

    def test_frequencies(self):
        samples = [np.array([0]), np.array([0, 1])]
        freq = empirical_inclusion_frequencies(samples, 3)
        assert freq.tolist() == [1.0, 0.5, 0.0]

    def test_frequencies_require_samples(self):
        with pytest.raises(ValueError):
            empirical_inclusion_frequencies([], 3)


class TestReferenceProbabilities:
    def test_single_draw_is_normalised_weights(self):
        probs = single_draw_reference_probabilities([1.0, 3.0])
        assert probs.tolist() == [0.25, 0.75]

    def test_single_draw_rejects_bad_weights(self):
        with pytest.raises(ValueError):
            single_draw_reference_probabilities([1.0, 0.0])

    def test_weighted_reference_sums_to_k(self, rng):
        weights = rng.uniform(1, 5, size=10)
        freq = weighted_inclusion_reference(weights, k=3, trials=500, rng=rng)
        assert freq.sum() == pytest.approx(3.0)
        assert np.all((freq >= 0) & (freq <= 1))

    def test_weighted_reference_monotone_in_weight(self, rng):
        weights = np.array([1.0, 1.0, 1.0, 20.0])
        freq = weighted_inclusion_reference(weights, k=2, trials=2000, rng=rng)
        assert freq[3] > freq[:3].max()

    def test_weighted_reference_validates_arguments(self, rng):
        with pytest.raises(ValueError):
            weighted_inclusion_reference([1.0], k=0, trials=10, rng=rng)
        with pytest.raises(ValueError):
            weighted_inclusion_reference([1.0], k=1, trials=0, rng=rng)


class TestChiSquare:
    def test_perfect_fit_gives_zero(self):
        observed = np.array([50, 50])
        statistic, dof = chi_square_statistic(observed, np.array([0.5, 0.5]), trials=100)
        assert statistic == pytest.approx(0.0)
        assert dof == 1

    def test_bad_fit_gives_large_statistic(self):
        observed = np.array([100, 0])
        statistic, _ = chi_square_statistic(observed, np.array([0.5, 0.5]), trials=100)
        assert statistic > 50

    def test_zero_expectation_cells_ignored(self):
        observed = np.array([10, 0])
        statistic, dof = chi_square_statistic(observed, np.array([1.0, 0.0]), trials=10)
        assert np.isfinite(statistic)
        assert dof >= 1

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            chi_square_statistic(np.array([1, 2]), np.array([0.5]), trials=10)


class TestTotalVariation:
    def test_identical_distributions(self):
        assert total_variation_distance(np.array([0.5, 0.5]), np.array([0.5, 0.5])) == 0.0

    def test_disjoint_distributions(self):
        assert total_variation_distance(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == pytest.approx(1.0)

    def test_normalisation_applied(self):
        # inclusion-frequency vectors summing to k are fine
        a = np.array([2.0, 2.0])
        b = np.array([1.0, 1.0])
        assert total_variation_distance(a, b) == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            total_variation_distance(np.array([1.0]), np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            total_variation_distance(np.array([0.0]), np.array([1.0]))

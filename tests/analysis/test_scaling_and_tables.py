"""Tests for speedup/throughput series and table rendering."""

import pytest

from repro.analysis import ScalingSeries, format_fraction_table, format_series_table, format_table, speedup_series, throughput_series
from repro.runtime import PhaseTimes, RoundMetrics, RunMetrics


def make_run(p, time_per_round, items_per_round, rounds=2):
    run = RunMetrics(p=p, k=10, algorithm="ours")
    for i in range(rounds):
        run.add_round(
            RoundMetrics(
                round_index=i,
                batch_items=items_per_round,
                items_seen_total=(i + 1) * items_per_round,
                sample_size=10,
                threshold=0.1,
                phase_times={"insert": PhaseTimes(local=time_per_round, comm=0.0)},
                insertions_per_pe=[1] * p,
            )
        )
    return run


class TestScalingSeries:
    def test_add_and_lookup(self):
        series = ScalingSeries(algorithm="ours", k=10)
        series.add(1, 1.0)
        series.add(4, 3.5)
        assert series.as_dict() == {1: 1.0, 4: 3.5}
        assert series.value_at(4) == 3.5
        assert series.value_at(16) is None


class TestSpeedupSeries:
    def test_ideal_scaling_gives_linear_speedup(self):
        baseline = make_run(p=4, time_per_round=8.0, items_per_round=100)
        runs = {
            1: baseline,
            4: make_run(p=16, time_per_round=8.0, items_per_round=400),
            16: make_run(p=64, time_per_round=8.0, items_per_round=1600),
        }
        series = speedup_series(runs, baseline)
        assert series.as_dict()[1] == pytest.approx(1.0)
        assert series.as_dict()[4] == pytest.approx(4.0)
        assert series.as_dict()[16] == pytest.approx(16.0)

    def test_slower_run_gives_sub_one_speedup(self):
        baseline = make_run(p=4, time_per_round=1.0, items_per_round=100)
        slow = make_run(p=4, time_per_round=2.0, items_per_round=100)
        series = speedup_series({1: slow}, baseline)
        assert series.as_dict()[1] == pytest.approx(0.5)

    def test_empty_run_rejected(self):
        baseline = make_run(p=1, time_per_round=1.0, items_per_round=10)
        empty = RunMetrics(p=1, k=1, algorithm="x")
        with pytest.raises(ValueError):
            speedup_series({1: empty}, baseline)


class TestThroughputSeries:
    def test_per_pe_and_total(self):
        runs = {1: make_run(p=4, time_per_round=2.0, items_per_round=100)}
        per_pe = throughput_series(runs, per_pe=True).as_dict()[1]
        total = throughput_series(runs, per_pe=False).as_dict()[1]
        assert total == pytest.approx(200 / 4.0)
        assert per_pe == pytest.approx(total / 4)


class TestTables:
    def test_format_table_alignment_and_content(self):
        text = format_table(["a", "metric"], [[1, 2.5], [10, 0.000123]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "metric" in lines[0]
        assert "1.23e-04" in text or "0.000123" in text

    def test_format_table_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_format_series_table_merges_x_values(self):
        text = format_series_table({"ours": {1: 1.0, 4: 3.9}, "gather": {1: 1.1}})
        assert "nodes" in text
        assert "ours" in text and "gather" in text
        assert "-" in text.splitlines()[-1]  # missing value rendered as dash

    def test_format_fraction_table_includes_phases(self):
        text = format_fraction_table({"ours-8 @ 16": {"insert": 0.5, "select": 0.5}})
        assert "insert" in text and "gather" in text
        assert "ours-8 @ 16" in text

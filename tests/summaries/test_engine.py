"""Property-based checks of the order-statistics engine itself.

The engine's verbs are pure functions of the distributed key multiset, so
every one of them has an obvious sequential reference: sort the union.
Hypothesis drives randomized PE counts, skews and duplicate-heavy key
sets through :class:`ArrayKeySet` + :class:`SimComm` and compares.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import SimComm
from repro.selection import ArrayKeySet, OrderStatisticsEngine
from repro.selection.engine import ThresholdUpdate


@st.composite
def distributed_keys(draw):
    p = draw(st.integers(min_value=1, max_value=6))
    sizes = draw(st.lists(st.integers(min_value=0, max_value=30), min_size=p, max_size=p))
    if sum(sizes) == 0:
        sizes[0] = 1
    seed = draw(st.integers(min_value=0, max_value=2**20))
    rng = np.random.default_rng(seed)
    # duplicate-heavy keys: draw from a tiny value set half the time
    if draw(st.booleans()):
        arrays = [rng.integers(0, 8, size=s).astype(np.float64) for s in sizes]
    else:
        arrays = [rng.random(s) for s in sizes]
    return arrays, seed


def make_engine(arrays):
    keyset = ArrayKeySet(arrays)
    return OrderStatisticsEngine(keyset, SimComm(len(arrays)))


@settings(max_examples=60, deadline=None)
@given(case=distributed_keys(), data=st.data())
def test_rank_select_matches_sorted_reference(case, data):
    arrays, _ = case
    union = np.sort(np.concatenate(arrays))
    rank = data.draw(st.integers(min_value=1, max_value=union.shape[0]))
    engine = make_engine(arrays)
    result = engine.rank_select(rank)
    assert result.key == pytest.approx(union[rank - 1])


@settings(max_examples=60, deadline=None)
@given(case=distributed_keys(), data=st.data())
def test_count_le_matches_sorted_reference(case, data):
    arrays, _ = case
    union = np.sort(np.concatenate(arrays))
    probe = data.draw(
        st.one_of(
            st.floats(min_value=-1.0, max_value=9.0, allow_nan=False),
            st.sampled_from(union.tolist()),
        )
    )
    engine = make_engine(arrays)
    assert engine.count_le(probe) == int(np.searchsorted(union, probe, side="right"))


@settings(max_examples=40, deadline=None)
@given(case=distributed_keys(), data=st.data())
def test_count_le_many_matches_scalar_count_le(case, data):
    arrays, _ = case
    union = np.sort(np.concatenate(arrays))
    probes = data.draw(
        st.lists(
            st.one_of(
                st.floats(min_value=-1.0, max_value=9.0, allow_nan=False),
                st.sampled_from(union.tolist()),
            ),
            min_size=1,
            max_size=8,
        )
    )
    engine = make_engine(arrays)
    batched = engine.count_le_many(probes)
    expected = np.searchsorted(union, np.asarray(probes), side="right")
    np.testing.assert_array_equal(batched, expected)


@settings(max_examples=40, deadline=None)
@given(case=distributed_keys())
def test_global_size_and_merge(case):
    arrays, _ = case
    union = np.sort(np.concatenate(arrays))
    engine = make_engine(arrays)
    assert engine.global_size() == union.shape[0]
    np.testing.assert_allclose(engine.global_merge(), union)


class TestThresholdUpdate:
    def test_selects_when_total_exceeds_k(self):
        arrays = [np.arange(10.0), np.arange(10.0, 20.0)]
        engine = make_engine(arrays)
        update = engine.threshold_update(5)
        assert isinstance(update, ThresholdUpdate)
        assert update.action == "selected"
        assert update.selection_ran
        assert update.threshold == pytest.approx(4.0)
        assert update.total == 20
        assert update.result is not None

    def test_tightens_at_exact_count(self):
        arrays = [np.array([1.0, 3.0]), np.array([2.0])]
        engine = make_engine(arrays)
        update = engine.threshold_update(3)
        assert update.action == "tightened"
        assert not update.selection_ran
        assert update.threshold == pytest.approx(3.0)
        assert update.result is None

    def test_no_boundary_below_k(self):
        arrays = [np.array([1.0]), np.array([2.0])]
        engine = make_engine(arrays)
        update = engine.threshold_update(5)
        assert update.action == "none"
        assert update.threshold is None

    def test_tighten_can_be_disabled(self):
        arrays = [np.array([1.0, 3.0]), np.array([2.0])]
        engine = make_engine(arrays)
        update = engine.threshold_update(3, tighten_at_exact=False)
        assert update.action == "none"
        assert update.threshold is None

    def test_banded_update_accepts_rank_in_band(self):
        rng = np.random.default_rng(4)
        arrays = [rng.random(50) for _ in range(3)]
        union = np.sort(np.concatenate(arrays))
        engine = make_engine(arrays)
        engine.rng = np.random.default_rng(9)
        update = engine.threshold_update(10, k_hi=20)
        assert update.action == "selected"
        rank = int(np.searchsorted(union, update.threshold, side="right"))
        assert 10 <= rank <= 20

    def test_mismatched_p_rejected(self):
        with pytest.raises(ValueError, match="PEs"):
            OrderStatisticsEngine(ArrayKeySet([np.arange(3.0)]), SimComm(2))

"""Backend equivalence: every sibling summary is byte-identical sim vs process.

Same contract the samplers carry: the simulated and the real multiprocess
backend run the same kernels from the same per-PE seeds, so every query
result — not just statistics — must match exactly.
"""

import numpy as np
import pytest

from repro.summaries import (
    DistributedTopK,
    HeavyHitters,
    RecencyReservoir,
    StreamingQuantiles,
)

P = 4
ROUNDS = 6
BATCH = 120
SEED = 23


def stream_round(r):
    rng = np.random.default_rng(500 + r)
    ids = np.arange(r * BATCH, (r + 1) * BATCH)
    weights = rng.pareto(1.4, BATCH) + 0.01
    return ids, weights


def drive(summary):
    for r in range(ROUNDS):
        ids, weights = stream_round(r)
        summary.ingest(ids, weights)


def run_topk(backend):
    with DistributedTopK(25, backend, p=P, seed=SEED) as summary:
        drive(summary)
        return summary.top_k(), summary.threshold, summary.store_size()


def run_quantiles(backend):
    with StreamingQuantiles((0.25, 0.5, 0.9), backend, p=P, eps=0.02, seed=SEED) as summary:
        drive(summary)
        return summary.quantiles(), summary.reselections


def run_heavy(backend):
    zipf = np.random.default_rng(77).zipf(1.4, ROUNDS * BATCH) % 300
    with HeavyHitters(12, backend, p=P, capacity=96, prune_every=2, seed=SEED) as summary:
        for r in range(ROUNDS):
            summary.ingest(zipf[r * BATCH : (r + 1) * BATCH])
        return summary.candidates(), summary.top(), summary.pruned_total


def run_recency(backend):
    with RecencyReservoir(30, backend, p=P, recency=1.05, seed=SEED) as summary:
        drive(summary)
        return sorted(summary.sample_items()), summary.threshold


RUNNERS = {
    "topk": run_topk,
    "quantiles": run_quantiles,
    "heavy_hitters": run_heavy,
    "recency": run_recency,
}


@pytest.mark.parametrize("name", list(RUNNERS))
def test_sim_process_byte_identical(name):
    runner = RUNNERS[name]
    assert runner("sim") == runner("process")

"""Heavy-hitter guarantees: recall on skewed data, honest error bounds."""

import numpy as np
import pytest

from repro.summaries import HeavyHitters


def zipf_stream(rng, n, universe=400, a=1.3):
    return rng.zipf(a, n) % universe


def drive(summary, ids, batch=500):
    for s in range(0, len(ids), batch):
        summary.ingest(ids[s : s + batch])


class TestRecall:
    @pytest.mark.parametrize("prune_every", [0, 2])
    def test_no_false_negatives_on_zipfian(self, prune_every):
        rng = np.random.default_rng(41)
        n = 30000
        ids = zipf_stream(rng, n)
        summary = HeavyHitters(10, "sim", p=4, capacity=128, prune_every=prune_every, seed=8)
        drive(summary, ids)
        phi = 0.01
        true_counts = np.bincount(ids)
        truly_heavy = set(np.flatnonzero(true_counts >= phi * n).tolist())
        reported = {item for item, _ in summary.heavy_hitters(phi)}
        assert truly_heavy <= reported

    def test_top_matches_true_ranking_head(self):
        # with enough capacity the undercount error is small relative to the
        # zipfian head, so the reported top must start with the true top
        rng = np.random.default_rng(43)
        ids = zipf_stream(rng, 40000, a=1.6)
        summary = HeavyHitters(5, "sim", p=4, capacity=256, seed=9)
        drive(summary, ids)
        true_top = np.argsort(-np.bincount(ids), kind="stable")[:3].tolist()
        reported_top = [item for item, _ in summary.top(3)]
        assert reported_top == true_top


class TestErrorBound:
    def test_estimates_bracket_true_counts(self):
        rng = np.random.default_rng(47)
        ids = zipf_stream(rng, 20000)
        summary = HeavyHitters(8, "sim", p=3, capacity=96, prune_every=3, seed=10)
        drive(summary, ids)
        estimates, error = summary.candidates()
        true_counts = np.bincount(ids)
        assert error >= 0.0
        for item, estimate in estimates.items():
            true = float(true_counts[item]) if item < len(true_counts) else 0.0
            assert estimate <= true + 1e-9  # Misra-Gries never overcounts
            assert true <= estimate + error + 1e-9

    def test_prune_shrinks_tables_and_grows_error(self):
        rng = np.random.default_rng(53)
        ids = zipf_stream(rng, 20000, universe=2000, a=1.1)
        summary = HeavyHitters(8, "sim", p=4, capacity=64, seed=11)
        drive(summary, ids)
        merged_before, error_before = summary.candidates()
        dropped = summary.prune_candidates(keep=16)
        merged_after, error_after = summary.candidates()
        assert dropped > 0
        assert len(merged_after) < len(merged_before)
        assert error_after >= error_before
        assert summary.pruned_total == dropped


class TestApi:
    def test_capacity_must_cover_k(self):
        with pytest.raises(ValueError, match="capacity"):
            HeavyHitters(50, "sim", p=2, capacity=10)

    def test_prune_keep_must_cover_k(self):
        summary = HeavyHitters(8, "sim", p=2)
        with pytest.raises(ValueError, match="at least k"):
            summary.prune_candidates(keep=4)

    def test_phi_validated(self):
        summary = HeavyHitters(4, "sim", p=2)
        summary.ingest(np.zeros(10, dtype=np.int64))
        with pytest.raises(ValueError, match="phi"):
            summary.heavy_hitters(0.0)
        with pytest.raises(ValueError, match="phi"):
            summary.heavy_hitters(1.5)

    def test_counts_default_to_ones(self):
        summary = HeavyHitters(4, "sim", p=2)
        summary.ingest(np.array([3, 3, 3, 5]))
        estimates, _ = summary.candidates()
        assert estimates[3] == pytest.approx(3.0)
        assert estimates[5] == pytest.approx(1.0)
        assert summary.total_weight == pytest.approx(4.0)

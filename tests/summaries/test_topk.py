"""Exactness of the distributed weighted top-k.

The summary claims *exactness*, so the reference is brute force: sort all
(weight, id) pairs ever ingested and compare — including adversarial
weight ties at the boundary, the case the inclusive local filter and the
tie-keeping global prune exist for.
"""

import numpy as np
import pytest

from repro.summaries import DistributedTopK


def brute_force(ids, weights, k):
    order = np.lexsort((ids, -np.asarray(weights, dtype=np.float64)))
    return [(int(ids[i]), float(weights[i])) for i in order[:k]]


def drive(summary, ids, weights, batch=150):
    for s in range(0, len(ids), batch):
        summary.ingest(ids[s : s + batch], weights[s : s + batch])


class TestExactness:
    @pytest.mark.parametrize("k", [1, 10, 64])
    def test_matches_brute_force_heavy_tail(self, k):
        rng = np.random.default_rng(8)
        n = 3000
        ids = np.arange(n)
        weights = rng.pareto(1.2, n) + 0.01
        summary = DistributedTopK(k, "sim", p=4, seed=1)
        drive(summary, ids, weights)
        assert summary.top_k() == brute_force(ids, weights, k)

    def test_boundary_weight_ties(self):
        # many items share the exact boundary weight; the answer must pick
        # the smallest ids among them and lose none of the strictly heavier
        n = 400
        ids = np.arange(n)
        weights = np.full(n, 5.0)
        weights[:7] = 9.0  # strictly heavier block
        summary = DistributedTopK(20, "sim", p=4, seed=2)
        drive(summary, ids, weights, batch=64)
        got = summary.top_k()
        assert got == brute_force(ids, weights, 20)
        assert [i for i, _ in got[:7]] == list(range(7))
        assert [i for i, _ in got[7:]] == list(range(7, 20))

    def test_ties_split_across_rounds_and_pes(self):
        # boundary ties arriving in different rounds on different PEs
        rng = np.random.default_rng(3)
        ids = np.arange(1000)
        weights = rng.choice([1.0, 2.0, 3.0, 4.0], size=1000)
        perm = rng.permutation(1000)
        summary = DistributedTopK(50, "sim", p=5, seed=3)
        drive(summary, ids[perm], weights[perm], batch=90)
        assert summary.top_k() == brute_force(ids, weights, 50)

    def test_fewer_items_than_k(self):
        summary = DistributedTopK(100, "sim", p=3, seed=0)
        summary.ingest(np.arange(10), np.arange(10) + 1.0)
        got = summary.top_k()
        assert len(got) == 10
        assert got[0] == (9, 10.0)

    def test_store_stays_near_k(self):
        # the point of the rank-k prune: the candidate store does not grow
        # with the stream
        rng = np.random.default_rng(11)
        summary = DistributedTopK(16, "sim", p=4, seed=4)
        for r in range(30):
            ids = np.arange(r * 200, (r + 1) * 200)
            summary.ingest(ids, rng.random(200))
        assert summary.store_size() <= 4 * 16  # ties only, never unbounded
        assert summary.items_seen == 30 * 200


class TestApi:
    def test_per_pe_batches_validated(self):
        summary = DistributedTopK(5, "sim", p=2, seed=0)
        with pytest.raises(ValueError, match="per-PE"):
            summary.process_round([(np.arange(3), np.ones(3))])

    def test_round_metrics(self):
        summary = DistributedTopK(5, "sim", p=2, seed=0)
        metrics = summary.ingest(np.arange(40), np.random.default_rng(0).random(40))
        assert metrics["selection_ran"]
        assert metrics["total"] >= 5
        assert summary.rounds_processed == 1

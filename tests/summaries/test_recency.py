"""Statistical behaviour of the recency reservoir.

With ``recency == 1`` the summary *is* classic weighted reservoir
sampling, so with unit weights its inclusion law must be uniform — a
chi-squared test over many independent trials checks that no item is
systematically favoured.  With ``recency > 1`` later items must be
favoured monotonically.
"""

import numpy as np
import pytest

from repro.analysis.statistics import chi_square_statistic, inclusion_counts
from repro.summaries import RecencyReservoir

scipy_stats = pytest.importorskip("scipy.stats")

P = 2
K = 8
N = 64
BATCH = 16


def run_trial(seed, recency=1.0):
    summary = RecencyReservoir(K, "sim", p=P, recency=recency, seed=seed)
    ids = np.arange(N)
    for s in range(0, N, BATCH):
        summary.ingest(ids[s : s + BATCH], np.ones(BATCH))
    return summary.sample_ids()


class TestUniformInclusion:
    def test_chi_squared_uniform_with_unit_weights(self):
        trials = 300
        samples = [run_trial(2000 + t) for t in range(trials)]
        for sample in samples:
            assert len(sample) == K
            assert len(np.unique(sample)) == K
        counts = inclusion_counts(samples, N)
        statistic, dof = chi_square_statistic(counts, np.full(N, K / N), trials)
        critical = scipy_stats.chi2.ppf(0.999, dof)
        assert statistic < critical, (statistic, critical)


class TestRecencyBias:
    def test_later_items_favoured_monotonically(self):
        trials = 200
        counts = inclusion_counts(
            [run_trial(4000 + t, recency=1.6) for t in range(trials)], N
        )
        # average inclusion per ingest round must increase with the round
        per_round = counts.reshape(N // BATCH, BATCH).sum(axis=1).astype(float)
        assert (np.diff(per_round) > 0).all(), per_round
        assert per_round[-1] > 2 * per_round[0]

    def test_recency_one_is_unbiased_across_rounds(self):
        trials = 200
        counts = inclusion_counts([run_trial(6000 + t) for t in range(trials)], N)
        per_round = counts.reshape(N // BATCH, BATCH).sum(axis=1).astype(float)
        expected = trials * K / (N // BATCH)
        np.testing.assert_allclose(per_round, expected, rtol=0.2)

    def test_weighted_and_recency_compose(self):
        # one early item with overwhelming weight must stay in the sample
        # despite a strong recency bias
        summary = RecencyReservoir(4, "sim", p=2, recency=1.5, seed=3)
        summary.ingest(np.arange(20), np.concatenate([[1e12], np.ones(19)]))
        for r in range(1, 6):
            summary.ingest(np.arange(r * 20, (r + 1) * 20), np.ones(20))
        assert 0 in summary.sample_ids()


class TestApi:
    def test_recency_below_one_rejected(self):
        with pytest.raises(ValueError, match="recency"):
            RecencyReservoir(4, "sim", p=2, recency=0.9)

    def test_sample_size_capped_at_k(self):
        summary = RecencyReservoir(5, "sim", p=2, recency=1.2, seed=1)
        summary.ingest(np.arange(100), np.ones(100))
        assert summary.sample_size() == 5
        assert summary.items_seen == 100

    def test_unweighted_mode_ignores_weights(self):
        a = RecencyReservoir(5, "sim", p=2, recency=1.1, weighted=False, seed=2)
        b = RecencyReservoir(5, "sim", p=2, recency=1.1, weighted=False, seed=2)
        a.ingest(np.arange(50), np.ones(50))
        b.ingest(np.arange(50), np.random.default_rng(0).pareto(1.0, 50) + 0.1)
        assert sorted(a.sample_ids().tolist()) == sorted(b.sample_ids().tolist())

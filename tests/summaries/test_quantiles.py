"""Rank-error guarantee of the streaming quantile cursors."""

import numpy as np
import pytest

from repro.summaries import StreamingQuantiles

PHIS = (0.1, 0.5, 0.9, 0.99)
EPS = 0.02


def rank_of(value, values):
    return int(np.searchsorted(np.sort(values), value, side="right"))


def drive(summary, values, batch=200):
    ids = np.arange(len(values))
    for s in range(0, len(values), batch):
        summary.ingest(ids[s : s + batch], values[s : s + batch])


class TestRankError:
    @pytest.mark.parametrize(
        "make_values",
        [
            lambda rng, n: rng.normal(size=n),
            lambda rng, n: rng.pareto(1.5, n),
            lambda rng, n: rng.integers(0, 50, n).astype(float),  # heavy duplicates
        ],
        ids=["normal", "pareto", "duplicates"],
    )
    def test_all_cursors_within_eps(self, make_values):
        rng = np.random.default_rng(17)
        n = 5000
        values = make_values(rng, n)
        summary = StreamingQuantiles(PHIS, "sim", p=4, eps=EPS, seed=5)
        drive(summary, values)
        for phi, estimate in summary.quantiles().items():
            target = max(1, int(np.ceil(phi * n)))
            assert abs(rank_of(estimate, values) - target) <= EPS * n + 1, phi

    def test_guarantee_holds_at_every_round(self):
        rng = np.random.default_rng(23)
        n, batch = 3000, 250
        values = rng.normal(size=n)
        summary = StreamingQuantiles((0.5, 0.9), "sim", p=3, eps=EPS, seed=6)
        ids = np.arange(n)
        for s in range(0, n, batch):
            summary.ingest(ids[s : s + batch], values[s : s + batch])
            seen = values[: s + batch]
            for phi, estimate in summary.quantiles().items():
                target = max(1, int(np.ceil(phi * len(seen))))
                assert abs(rank_of(estimate, seen) - target) <= EPS * len(seen) + 1

    def test_cursors_amortise_on_stationary_input(self):
        # once the distribution stabilises, rounds stop triggering selections
        rng = np.random.default_rng(31)
        summary = StreamingQuantiles((0.5,), "sim", p=4, eps=0.05, seed=7)
        drive(summary, rng.normal(size=20000), batch=500)
        rounds = 20000 // 500
        assert summary.reselections < rounds / 2


class TestApi:
    def test_rejects_bad_phi(self):
        with pytest.raises(ValueError, match=r"\(0, 1\)"):
            StreamingQuantiles((0.0,), "sim", p=2)
        with pytest.raises(ValueError, match=r"\(0, 1\)"):
            StreamingQuantiles((1.5,), "sim", p=2)
        with pytest.raises(ValueError, match="at least one"):
            StreamingQuantiles((), "sim", p=2)

    def test_query_before_ingest_raises(self):
        summary = StreamingQuantiles((0.5,), "sim", p=2)
        with pytest.raises(RuntimeError, match="no data"):
            summary.quantiles()
        with pytest.raises(RuntimeError, match="no data"):
            summary.quantile(0.5)

    def test_untracked_phi_rejected(self):
        summary = StreamingQuantiles((0.5,), "sim", p=2)
        summary.ingest(np.arange(10), np.arange(10.0))
        assert summary.quantile(0.5) == pytest.approx(4.0)
        with pytest.raises(KeyError, match="not tracked"):
            summary.quantile(0.25)

"""Tests for the tree-based collective algorithms (routing layer)."""

import operator

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.collectives import (
    binomial_broadcast,
    binomial_gather,
    binomial_reduce,
    butterfly_allgather,
    butterfly_allreduce,
    hypercube_scan,
    payload_words,
)
from repro.network.message import MessageTrace
from repro.network.topology import Topology

PS = [1, 2, 3, 4, 5, 6, 7, 8, 12, 16, 17, 32]


class TestPayloadWords:
    def test_none_is_zero(self):
        assert payload_words(None) == 0.0

    def test_scalar_is_one(self):
        assert payload_words(3.5) == 1.0

    def test_numpy_array_size(self):
        assert payload_words(np.zeros(17)) == 17.0

    def test_list_length(self):
        assert payload_words([1, 2, 3]) == 3.0

    def test_empty_list(self):
        assert payload_words([]) == 0.0

    def test_string_counts_as_scalar(self):
        assert payload_words("hello") == 1.0


class TestBroadcast:
    @pytest.mark.parametrize("p", PS)
    def test_every_pe_receives_root_value(self, p):
        topo = Topology(p)
        values = [i * 10 for i in range(p)]
        root = p // 2
        result, rounds = binomial_broadcast(values, root, topo)
        assert result == [values[root]] * p
        assert rounds == topo.rounds

    @pytest.mark.parametrize("p", PS)
    def test_message_count_is_p_minus_one(self, p):
        topo = Topology(p)
        trace = MessageTrace()
        binomial_broadcast(list(range(p)), 0, topo, on_message=trace.add)
        assert len(trace) == p - 1

    def test_single_ported_per_round(self):
        topo = Topology(32)
        trace = MessageTrace()
        binomial_broadcast(list(range(32)), 0, topo, on_message=trace.add)
        assert trace.max_messages_per_rank_per_round() <= 1


class TestReduce:
    @pytest.mark.parametrize("p", PS)
    def test_sum_reduction(self, p):
        topo = Topology(p)
        values = [float(i + 1) for i in range(p)]
        result, _ = binomial_reduce(values, operator.add, 0, topo)
        assert result == pytest.approx(sum(values))

    @pytest.mark.parametrize("p", PS)
    def test_max_reduction_nonzero_root(self, p):
        topo = Topology(p)
        values = [float((i * 7) % p) for i in range(p)]
        result, _ = binomial_reduce(values, max, p - 1, topo)
        assert result == max(values)

    @pytest.mark.parametrize("p", PS)
    def test_message_count(self, p):
        topo = Topology(p)
        trace = MessageTrace()
        binomial_reduce([1] * p, operator.add, 0, topo, on_message=trace.add)
        assert len(trace) == p - 1

    def test_non_commutative_associative_op(self):
        # string concatenation is associative but not commutative; the
        # reduction must combine values in rank order within the tree
        topo = Topology(8)
        values = [chr(ord("a") + i) for i in range(8)]
        result, _ = binomial_reduce(values, operator.add, 0, topo)
        assert result == "abcdefgh"


class TestGather:
    @pytest.mark.parametrize("p", PS)
    def test_gather_preserves_rank_order(self, p):
        topo = Topology(p)
        values = [f"pe{i}" for i in range(p)]
        result, _ = binomial_gather(values, 0, topo)
        assert result == values

    @pytest.mark.parametrize("root", [0, 2, 6])
    def test_gather_any_root(self, root):
        topo = Topology(7)
        values = list(range(7))
        result, _ = binomial_gather(values, root, topo)
        assert result == values

    def test_gather_message_volume_grows_towards_root(self):
        topo = Topology(8)
        trace = MessageTrace()
        binomial_gather([np.zeros(2) for _ in range(8)], 0, topo, on_message=trace.add)
        # total forwarded volume exceeds the raw volume because messages are
        # aggregated along the tree
        assert trace.words_for_op("gather") >= 2 * 7


class TestAllreduce:
    @pytest.mark.parametrize("p", PS)
    def test_sum_available_everywhere(self, p):
        topo = Topology(p)
        values = [float(i) for i in range(p)]
        result, _ = butterfly_allreduce(values, operator.add, topo)
        assert result == pytest.approx([sum(values)] * p)

    @pytest.mark.parametrize("p", PS)
    def test_elementwise_numpy_sum(self, p):
        topo = Topology(p)
        values = [np.array([i, 2 * i], dtype=float) for i in range(p)]
        result, _ = butterfly_allreduce(values, operator.add, topo)
        expected = np.array([sum(range(p)), 2 * sum(range(p))], dtype=float)
        for row in result:
            np.testing.assert_allclose(row, expected)

    def test_rounds_power_of_two(self):
        topo = Topology(16)
        _, rounds = butterfly_allreduce(list(range(16)), operator.add, topo)
        assert rounds == 4

    def test_rounds_non_power_of_two_includes_fold(self):
        topo = Topology(10)
        _, rounds = butterfly_allreduce(list(range(10)), operator.add, topo)
        assert rounds == 3 + 2  # fold-in + butterfly(8) + fold-out


class TestAllgather:
    @pytest.mark.parametrize("p", PS)
    def test_every_pe_gets_all_values(self, p):
        topo = Topology(p)
        values = [i * 3 for i in range(p)]
        result, _ = butterfly_allgather(values, topo)
        assert all(row == values for row in result)


class TestScan:
    @pytest.mark.parametrize("p", PS)
    def test_inclusive_prefix_sum(self, p):
        topo = Topology(p)
        values = [float(i + 1) for i in range(p)]
        result, _ = hypercube_scan(values, operator.add, topo)
        assert result == pytest.approx(list(np.cumsum(values)))

    @settings(max_examples=30, deadline=None)
    @given(values=st.lists(st.integers(min_value=-100, max_value=100), min_size=1, max_size=24))
    def test_prefix_sum_property(self, values):
        topo = Topology(len(values))
        result, _ = hypercube_scan(values, operator.add, topo)
        assert result == list(np.cumsum(values))

"""Unit tests for the shared-memory payload transport building blocks.

The ring/descriptor/cache trio is exercised in-process here (sender and
receiver in the same interpreter — shared memory does not care); the
cross-process behaviour is covered by the transport-parametrized
``ProcessComm`` tests and the sim/process equivalence suite.
"""

import os

import numpy as np
import pytest

from repro.network.collectives import payload_words
from repro.network.shm_ring import (
    DEFAULT_SHM_MIN_BYTES,
    ShmAttachmentCache,
    ShmDescriptor,
    ShmRing,
    decode_payload,
    encode_payload,
)


@pytest.fixture
def ring():
    r = ShmRing()
    yield r
    r.destroy()


@pytest.fixture
def cache():
    c = ShmAttachmentCache()
    yield c
    c.close()


def _segment_exists(name: str) -> bool:
    return os.path.exists(os.path.join("/dev/shm", name))


needs_dev_shm = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="segment existence check needs /dev/shm"
)


class TestRingRoundTrip:
    def test_place_resolve_round_trip(self, ring, cache):
        array = np.arange(5000, dtype=np.float64).reshape(100, 50)
        descriptor = ring.place(array)
        out = cache.resolve(descriptor)
        np.testing.assert_array_equal(out, array)
        assert out.dtype == array.dtype
        assert out.shape == array.shape

    def test_resolved_array_is_an_independent_copy(self, ring, cache):
        array = np.ones(2048)
        out = cache.resolve(ring.place(array))
        out[:] = -1.0
        np.testing.assert_array_equal(cache.resolve(ring.place(array)), array)

    def test_dtypes_and_shapes_survive(self, ring, cache):
        for array in (
            np.arange(3000, dtype=np.int64),
            np.random.default_rng(0).random((30, 40), dtype=np.float32),
            np.arange(6000, dtype=np.uint8).reshape(2, 3, 1000),
        ):
            out = cache.resolve(ring.place(array))
            np.testing.assert_array_equal(out, array)
            assert out.dtype == array.dtype

    def test_non_contiguous_input_is_handled(self, ring, cache):
        base = np.arange(4000, dtype=np.float64).reshape(40, 100)
        sliced = base[:, ::2]  # not C-contiguous
        np.testing.assert_array_equal(cache.resolve(ring.place(sliced)), sliced)


class TestSlotLifecycle:
    def test_slot_reused_after_resolve(self, ring, cache):
        for _ in range(20):
            cache.resolve(ring.place(np.zeros(1024)))
        assert len(ring) == 1  # resolve releases the slot; no growth

    def test_unresolved_descriptors_occupy_distinct_slots(self, ring, cache):
        descriptors = [ring.place(np.full(512, i, dtype=np.float64)) for i in range(6)]
        assert len({d.segment for d in descriptors}) == 6
        for i, descriptor in enumerate(descriptors):
            np.testing.assert_array_equal(
                cache.resolve(descriptor), np.full(512, i, dtype=np.float64)
            )

    @needs_dev_shm
    def test_slot_grows_for_larger_payloads(self, ring, cache):
        small = ring.place(np.zeros(16))
        cache.resolve(small)
        big_array = np.arange(1 << 17, dtype=np.float64)  # 1 MiB > initial slot
        big = ring.place(big_array)
        assert big.segment != small.segment  # segment was recreated larger
        np.testing.assert_array_equal(cache.resolve(big), big_array)
        assert not _segment_exists(small.segment)  # old segment unlinked

    @needs_dev_shm
    def test_destroy_unlinks_all_segments(self):
        ring = ShmRing()
        cache = ShmAttachmentCache()
        names = [ring.place(np.zeros(256 + i)).segment for i in range(3)]
        assert all(_segment_exists(name) for name in names)
        ring.destroy()
        assert all(not _segment_exists(name) for name in names)
        ring.destroy()  # idempotent
        cache.close()
        cache.close()  # idempotent

    def test_place_after_destroy_is_rejected(self):
        ring = ShmRing()
        ring.destroy()
        with pytest.raises(RuntimeError, match="destroyed"):
            ring.place(np.zeros(8))


class TestEncodeDecode:
    def test_arrays_below_threshold_stay_inline(self, ring):
        small = np.zeros(4)
        assert encode_payload(small, ring, min_bytes=1024) is small
        assert len(ring) == 0

    def test_default_threshold_routes_large_arrays_only(self, ring):
        large = np.zeros(DEFAULT_SHM_MIN_BYTES // 8)
        tiny = np.zeros(8)
        encoded = encode_payload([large, tiny], ring, DEFAULT_SHM_MIN_BYTES)
        assert isinstance(encoded[0], ShmDescriptor)
        assert encoded[1] is tiny

    def test_containers_are_walked(self, ring, cache):
        payload = [
            (0, np.arange(1000, dtype=np.float64)),
            (1, {"keys": np.ones(1000), "count": 7}),
            "passthrough",
            None,
        ]
        encoded = encode_payload(payload, ring, min_bytes=64)
        assert isinstance(encoded[0][1], ShmDescriptor)
        assert isinstance(encoded[1][1]["keys"], ShmDescriptor)
        decoded = decode_payload(encoded, cache)
        np.testing.assert_array_equal(decoded[0][1], payload[0][1])
        np.testing.assert_array_equal(decoded[1][1]["keys"], payload[1][1]["keys"])
        assert decoded[1][1]["count"] == 7
        assert decoded[2] == "passthrough"
        assert decoded[3] is None

    def test_container_types_preserved(self, ring, cache):
        encoded = encode_payload((np.zeros(1000), [np.ones(1000)]), ring, min_bytes=64)
        assert isinstance(encoded, tuple)
        assert isinstance(encoded[1], list)
        decoded = decode_payload(encoded, cache)
        assert isinstance(decoded, tuple)
        assert isinstance(decoded[1], list)

    def test_object_arrays_stay_inline(self, ring):
        objects = np.array([{"a": 1}, {"b": 2}] * 600, dtype=object)
        assert encode_payload(objects, ring, min_bytes=64) is objects

    def test_structured_arrays_stay_inline(self, ring):
        """Record dtypes must keep the pickle path: ``dtype.str`` collapses
        them to an opaque void type, so a descriptor round-trip would drop
        the field layout and change values."""
        records = np.zeros(2048, dtype=[("id", "<i8"), ("w", "<f8")])
        assert records.nbytes >= 64
        assert encode_payload(records, ring, min_bytes=64) is records
        assert len(ring) == 0


class TestLedgerHonesty:
    def test_descriptor_reports_array_size_as_words(self, ring):
        """``payload_words`` must charge the same volume for a descriptor
        as for the array it stands in for — the ledger stays honest."""
        array = np.arange(3000, dtype=np.float64).reshape(50, 60)
        descriptor = ring.place(array)
        assert payload_words(descriptor) == payload_words(array) == array.size
        assert descriptor.nbytes == array.nbytes

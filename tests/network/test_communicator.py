"""Tests for the SPMD communicator facade and its cost accounting."""

import math

import numpy as np
import pytest

from repro.network import CostLedger, SimComm


class TestCollectiveResults:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 7, 8, 16, 20])
    def test_all_collectives_agree_with_numpy(self, p):
        comm = SimComm(p)
        values = [float(i + 1) for i in range(p)]
        assert comm.broadcast(values, root=p - 1) == [float(p)] * p
        assert comm.reduce(values, SimComm.SUM) == pytest.approx(sum(values))
        assert comm.allreduce(values, SimComm.MIN) == [1.0] * p
        assert comm.gather(values) == values
        assert all(row == values for row in comm.allgather(values))
        assert comm.scan(values, SimComm.SUM) == pytest.approx(list(np.cumsum(values)))

    def test_value_count_mismatch_rejected(self):
        comm = SimComm(4)
        with pytest.raises(ValueError):
            comm.broadcast([1, 2, 3])

    def test_reduce_ops_on_arrays(self):
        comm = SimComm(3)
        values = [np.array([i, -i], dtype=float) for i in range(3)]
        out = comm.allreduce(values, SimComm.MAX)
        np.testing.assert_allclose(out[0], [2.0, 0.0])
        out = comm.allreduce(values, SimComm.MIN)
        np.testing.assert_allclose(out[0], [0.0, -2.0])

    def test_send_returns_value_and_charges(self):
        comm = SimComm(4)
        value = comm.send(1, 2, {"x": 1}, words=3)
        assert value == {"x": 1}
        assert comm.ledger.total_messages == 1
        assert comm.ledger.total_time == pytest.approx(comm.cost.message_time(3))

    def test_send_to_self_is_free(self):
        comm = SimComm(4)
        comm.send(1, 1, "x")
        assert comm.ledger.total_messages == 0


class TestCostAccounting:
    def test_broadcast_time_matches_model(self, fast_cost):
        comm = SimComm(8, cost=fast_cost)
        comm.broadcast([np.zeros(10)] * 8)
        expected = fast_cost.collective_time(8, 10)
        assert comm.ledger.total_time == pytest.approx(expected)

    def test_gather_time_matches_model(self, fast_cost):
        comm = SimComm(4, cost=fast_cost)
        comm.gather([np.zeros(5)] * 4)
        expected = fast_cost.gather_time(4, 5)
        assert comm.ledger.total_time == pytest.approx(expected)

    def test_single_pe_communication_is_free(self):
        comm = SimComm(1)
        comm.allreduce([1.0], SimComm.SUM)
        comm.broadcast([1.0])
        comm.gather([1.0])
        assert comm.ledger.total_time == 0.0

    def test_phase_attribution(self):
        comm = SimComm(4)
        with comm.phase("select"):
            comm.allreduce([1.0] * 4, SimComm.SUM)
            with comm.phase("threshold"):
                comm.broadcast([1.0] * 4)
        comm.barrier()
        by_phase = comm.ledger.time_by_phase()
        assert set(by_phase) == {"select", "threshold", "other"}
        assert all(t > 0 for t in by_phase.values())

    def test_phase_restored_after_exception(self):
        comm = SimComm(2)
        with pytest.raises(RuntimeError):
            with comm.phase("select"):
                raise RuntimeError("boom")
        assert comm.current_phase == "other"

    def test_explicit_words_override(self, fast_cost):
        comm = SimComm(4, cost=fast_cost)
        comm.allreduce([np.zeros(100)] * 4, SimComm.SUM, words=1)
        assert comm.ledger.total_time == pytest.approx(fast_cost.collective_time(4, 1))

    def test_shared_ledger(self):
        ledger = CostLedger()
        comm = SimComm(4, ledger=ledger)
        comm.barrier()
        assert ledger.total_time > 0

    def test_message_counts_recorded(self):
        comm = SimComm(8)
        comm.broadcast([0.0] * 8)
        assert comm.ledger.total_messages == 7
        comm.gather([0.0] * 8)
        assert comm.ledger.total_messages == 14


class TestTrace:
    def test_trace_disabled_by_default(self):
        comm = SimComm(4)
        assert comm.trace is None

    def test_trace_records_messages(self):
        comm = SimComm(8, trace_messages=True)
        comm.broadcast([1.0] * 8)
        assert comm.trace.count_for_op("broadcast") == 7

    @pytest.mark.parametrize("p", [2, 3, 5, 8, 12, 16])
    def test_single_ported_property_per_collective(self, p):
        values = [float(i) for i in range(p)]
        for op_name in ("broadcast", "reduce", "allreduce", "gather", "allgather", "scan"):
            comm = SimComm(p, trace_messages=True)
            if op_name == "broadcast":
                comm.broadcast(values)
            elif op_name == "reduce":
                comm.reduce(values, SimComm.SUM)
            elif op_name == "allreduce":
                comm.allreduce(values, SimComm.SUM)
            elif op_name == "gather":
                comm.gather(values)
            elif op_name == "allgather":
                comm.allgather(values)
            else:
                comm.scan(values, SimComm.SUM)
            assert comm.trace.max_messages_per_rank_per_round() <= 1, op_name

    def test_sends_and_receives_per_rank(self):
        comm = SimComm(4, trace_messages=True)
        comm.broadcast([1.0] * 4, root=0)
        receives = comm.trace.receives_per_rank()
        assert receives.get(0, 0) == 0  # the root never receives in a broadcast
        assert sum(receives.values()) == 3

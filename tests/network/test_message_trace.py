"""Tests for message records and traces."""

import pytest

from repro.network.message import Message, MessageTrace


class TestMessage:
    def test_basic_fields(self):
        msg = Message(src=0, dst=1, words=4.0, op="broadcast", round_index=2)
        assert msg.src == 0 and msg.dst == 1 and msg.words == 4.0

    def test_self_message_rejected(self):
        with pytest.raises(ValueError):
            Message(src=3, dst=3, words=1.0)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Message(src=0, dst=1, words=-1.0)

    def test_messages_are_hashable_and_frozen(self):
        msg = Message(src=0, dst=1, words=1.0)
        assert hash(msg) == hash(Message(src=0, dst=1, words=1.0))
        with pytest.raises(AttributeError):
            msg.words = 2.0


class TestMessageTrace:
    def make_trace(self):
        trace = MessageTrace()
        trace.add(Message(src=0, dst=1, words=2.0, op="a", round_index=0))
        trace.add(Message(src=1, dst=2, words=3.0, op="a", round_index=1))
        trace.add(Message(src=2, dst=0, words=5.0, op="b", round_index=0))
        return trace

    def test_len_and_iter(self):
        trace = self.make_trace()
        assert len(trace) == 3
        assert len(list(trace)) == 3

    def test_count_and_words_for_op(self):
        trace = self.make_trace()
        assert trace.count_for_op("a") == 2
        assert trace.words_for_op("a") == pytest.approx(5.0)
        assert trace.count_for_op("missing") == 0

    def test_sends_and_receives_per_rank(self):
        trace = self.make_trace()
        assert trace.sends_per_rank() == {0: 1, 1: 1, 2: 1}
        assert trace.receives_per_rank() == {1: 1, 2: 1, 0: 1}

    def test_max_messages_per_rank_per_round(self):
        trace = self.make_trace()
        assert trace.max_messages_per_rank_per_round() == 1
        trace.add(Message(src=0, dst=2, words=1.0, op="a", round_index=0))
        assert trace.max_messages_per_rank_per_round() == 2

    def test_clear(self):
        trace = self.make_trace()
        trace.clear()
        assert len(trace) == 0
        assert trace.max_messages_per_rank_per_round() == 0

"""Tests for the real multiprocess communicator backend.

Covers

* equivalence of every collective against the simulated backend for
  power-of-two and non-power-of-two PE counts (the worker-side tree
  algorithms must mirror the simulated combine order exactly),
* the PE-state execution layer (state persistence, per-PE dispatch),
* fault handling: worker exceptions surface as :class:`WorkerError`
  without orphaning processes, shutdown is idempotent, and a
  ``KeyboardInterrupt`` unwinding through the context manager leaves no
  children behind.
"""

import multiprocessing as mp

import numpy as np
import pytest

from repro.network import (
    Communicator,
    ProcessComm,
    SimComm,
    WorkerError,
    make_communicator,
    merge_largest,
    merge_smallest,
)
from repro.network.process_comm import default_start_method


@pytest.fixture
def proc2():
    comm = ProcessComm(2)
    yield comm
    comm.shutdown()


def _no_orphans(comm: ProcessComm) -> bool:
    return not any(comm.workers_alive)


# ---------------------------------------------------------------------------
# module-level kernels/factories (must be picklable for the workers)
# ---------------------------------------------------------------------------
def counter_state(pe, offset):
    return {"pe": pe, "count": offset}


def bump(state, amount):
    state["count"] += amount
    return (state["pe"], state["count"])


def fail_on_pe_one(state):
    if state["pe"] == 1:
        raise ValueError("injected failure")
    return state["pe"]


class TestCollectiveEquivalence:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 5, 8])
    def test_all_collectives_match_simulated_backend(self, p):
        sim = SimComm(p)
        values = [float((i * 7) % 5 + 1) for i in range(p)]
        arrays = [np.sort(np.random.default_rng(i).random(4)) for i in range(p)]
        with ProcessComm(p) as proc:
            assert proc.broadcast(values, root=p - 1) == sim.broadcast(values, root=p - 1)
            assert proc.reduce(values, Communicator.SUM) == sim.reduce(values, Communicator.SUM)
            assert proc.allreduce(values, Communicator.MIN) == sim.allreduce(values, Communicator.MIN)
            assert proc.allreduce(values, Communicator.MAX) == sim.allreduce(values, Communicator.MAX)
            assert proc.gather(values, root=0) == sim.gather(values, root=0)
            assert proc.allgather(values) == sim.allgather(values)
            assert proc.scan(values, Communicator.SUM) == sim.scan(values, Communicator.SUM)
            for op in (merge_smallest(2), merge_largest(2)):
                got = proc.allreduce(arrays, op)
                expected = sim.allreduce(arrays, op)
                for a, b in zip(got, expected):
                    np.testing.assert_array_equal(a, b)

    def test_send_routes_between_workers(self):
        with ProcessComm(3) as proc:
            payload = {"keys": np.arange(5)}
            result = proc.send(0, 2, payload)
            np.testing.assert_array_equal(result["keys"], payload["keys"])

    def test_barrier_and_phase_accounting(self, proc2):
        with proc2.phase("select"):
            proc2.barrier()
            proc2.allreduce([1.0, 2.0], Communicator.SUM)
        by_phase = proc2.ledger.time_by_phase()
        assert by_phase.get("select", 0.0) > 0.0

    def test_wrong_value_count_rejected(self, proc2):
        with pytest.raises(ValueError):
            proc2.allreduce([1.0], Communicator.SUM)


class TestStateLayer:
    def test_states_persist_across_calls(self, proc2):
        handle = proc2.create_pe_state(counter_state, per_pe_args=[(10,), (20,)])
        assert proc2.run_per_pe(handle, bump, [(1,), (2,)]) == [(0, 11), (1, 22)]
        assert proc2.run_per_pe(handle, bump, [(1,), (2,)]) == [(0, 12), (1, 24)]
        assert proc2.run_on_pe(handle, 1, bump, 100) == (1, 124)

    def test_multiple_state_groups_are_independent(self, proc2):
        first = proc2.create_pe_state(counter_state, per_pe_args=[(0,), (0,)])
        second = proc2.create_pe_state(counter_state, per_pe_args=[(5,), (5,)])
        proc2.run_per_pe(first, bump, [(1,), (1,)])
        assert proc2.run_per_pe(second, bump, [(0,), (0,)]) == [(0, 5), (1, 5)]

    def test_local_state_access_is_refused(self, proc2):
        handle = proc2.create_pe_state(counter_state, per_pe_args=[(0,), (0,)])
        with pytest.raises(NotImplementedError):
            proc2.local_pe_state(handle, 0)

    def test_mismatched_args_rejected(self, proc2):
        handle = proc2.create_pe_state(counter_state, per_pe_args=[(0,), (0,)])
        with pytest.raises(ValueError):
            proc2.run_per_pe(handle, bump, [(1,)])


class TestFaultHandling:
    def test_worker_exception_raises_worker_error(self, proc2):
        handle = proc2.create_pe_state(counter_state, per_pe_args=[(0,), (0,)])
        with pytest.raises(WorkerError, match="injected failure"):
            proc2.run_per_pe(handle, fail_on_pe_one)
        # the failure names the failing rank and the backend stays usable
        assert proc2.run_per_pe(handle, bump, [(1,), (1,)]) == [(0, 1), (1, 1)]
        assert all(proc2.workers_alive)

    def test_shutdown_leaves_no_orphans_after_exception(self):
        comm = ProcessComm(2)
        handle = comm.create_pe_state(counter_state, per_pe_args=[(0,), (0,)])
        with pytest.raises(WorkerError):
            comm.run_per_pe(handle, fail_on_pe_one)
        comm.shutdown()
        assert _no_orphans(comm)
        assert not mp.active_children()

    def test_shutdown_is_idempotent_and_blocks_further_use(self):
        comm = ProcessComm(2)
        comm.shutdown()
        comm.shutdown()
        assert _no_orphans(comm)
        with pytest.raises(RuntimeError):
            comm.allreduce([1.0, 2.0], Communicator.SUM)

    def test_keyboard_interrupt_unwinds_cleanly(self):
        with pytest.raises(KeyboardInterrupt):
            with ProcessComm(2) as comm:
                raise KeyboardInterrupt
        assert _no_orphans(comm)
        assert not mp.active_children()

    def test_context_manager_tears_down(self):
        with ProcessComm(2) as comm:
            comm.barrier()
        assert _no_orphans(comm)


class TestFactory:
    def test_make_communicator_dispatch(self):
        assert isinstance(make_communicator("sim", 3), SimComm)
        with make_communicator("process", 2) as comm:
            assert isinstance(comm, ProcessComm)
            assert comm.p == 2

    def test_make_communicator_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown communicator backend"):
            make_communicator("carrier-pigeon", 2)

    def test_default_start_method_is_supported(self):
        assert default_start_method() in mp.get_all_start_methods()

    def test_spawn_start_method_works_when_available(self):
        if "spawn" not in mp.get_all_start_methods():
            pytest.skip("spawn not available")
        with ProcessComm(2, start_method="spawn") as comm:
            assert comm.allreduce([1.0, 2.0], Communicator.SUM) == [3.0, 3.0]
            handle = comm.create_pe_state(counter_state, per_pe_args=[(1,), (2,)])
            assert comm.run_per_pe(handle, bump, [(1,), (1,)]) == [(0, 2), (1, 3)]


# ---------------------------------------------------------------------------
# shared-memory payload transport
# ---------------------------------------------------------------------------
def echo_array(state, array):
    """Kernel returning a large array (reply travels worker -> coordinator)."""
    return array * 2.0


class TestShmPayloadTransport:
    """The shm transport must be a pure transport change: same values, no
    leaked segments, small payloads still pickled."""

    @pytest.mark.parametrize("p", [2, 3, 5])
    def test_collectives_match_pickle_transport(self, p):
        arrays = [np.random.default_rng(i).random(2048) for i in range(p)]
        with ProcessComm(p) as pickle_comm, ProcessComm(
            p, payload_transport="shm", shm_min_bytes=256
        ) as shm_comm:
            for op_name in ("gather", "allgather", "broadcast"):
                got = getattr(shm_comm, op_name)(arrays)
                expected = getattr(pickle_comm, op_name)(arrays)
                np.testing.assert_array_equal(np.asarray(got), np.asarray(expected))
            got = shm_comm.allreduce(arrays, Communicator.SUM)
            expected = pickle_comm.allreduce(arrays, Communicator.SUM)
            for a, b in zip(got, expected):
                np.testing.assert_array_equal(a, b)

    def test_send_large_array_between_workers(self):
        payload = np.arange(1 << 15, dtype=np.float64)
        with ProcessComm(3, payload_transport="shm", shm_min_bytes=1024) as comm:
            result = comm.send(0, 2, payload)
        np.testing.assert_array_equal(result, payload)

    def test_command_args_and_replies_take_the_shm_path(self):
        array = np.arange(1 << 14, dtype=np.float64)
        with ProcessComm(2, payload_transport="shm", shm_min_bytes=1024) as comm:
            handle = comm.create_pe_state(counter_state, per_pe_args=[(0,), (0,)])
            results = comm.run_per_pe(handle, echo_array, [(array,), (array + 1,)])
        np.testing.assert_array_equal(results[0], array * 2.0)
        np.testing.assert_array_equal(results[1], (array + 1) * 2.0)

    def test_nested_gather_payloads_survive(self):
        """Lists of (rank, array) pairs — the binomial gather's message
        shape — must round-trip through descriptors."""
        arrays = [np.full(4096, float(r)) for r in range(4)]
        with ProcessComm(4, payload_transport="shm", shm_min_bytes=512) as comm:
            gathered = comm.gather(arrays, root=0)
        for rank, got in enumerate(gathered):
            np.testing.assert_array_equal(got, arrays[rank])

    def test_shutdown_unlinks_coordinator_segments(self):
        import os

        if not os.path.isdir("/dev/shm"):
            pytest.skip("segment existence check needs /dev/shm")
        comm = ProcessComm(2, payload_transport="shm", shm_min_bytes=64)
        try:
            comm.gather([np.arange(1000, dtype=np.float64)] * 2, root=0)
            ring = comm._codec.ring
            assert ring is not None and len(ring) > 0
            names = list(ring.segment_names)
            assert any(os.path.exists(os.path.join("/dev/shm", n)) for n in names)
        finally:
            comm.shutdown()
        assert all(not os.path.exists(os.path.join("/dev/shm", n)) for n in names)

    def test_worker_error_still_propagates_under_shm(self):
        with ProcessComm(2, payload_transport="shm") as comm:
            handle = comm.create_pe_state(counter_state, per_pe_args=[(0,), (0,)])
            with pytest.raises(WorkerError, match="injected failure"):
                comm.run_per_pe(handle, fail_on_pe_one)
            assert all(comm.workers_alive)

    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError, match="unknown payload transport"):
            ProcessComm(2, payload_transport="carrier-pigeon")

    def test_pickle_transport_has_no_ring(self):
        with ProcessComm(2) as comm:
            assert comm.payload_transport == "pickle"
            assert comm._codec.ring is None


class TestMailboxTimeout:
    def test_empty_queue_raises_descriptive_timeout(self):
        """The mailbox must surface the diagnostic TimeoutError, not let the
        bare ``queue.Empty`` from ``Queue.get`` escape and kill the worker
        without naming the likely cause."""
        import queue as queue_module

        from repro.network.process_comm import _Mailbox, _PayloadCodec

        mailbox = _Mailbox(queue_module.Queue(), timeout=0.05, codec=_PayloadCodec("pickle", 0))
        with pytest.raises(TimeoutError, match="peer worker likely died") as excinfo:
            mailbox.recv(seq=3, src=1)
        # the diagnostic names the message being waited for
        assert "seq=3" in str(excinfo.value)
        assert not isinstance(excinfo.value, queue_module.Empty)

    def test_stashed_message_is_returned_without_waiting(self):
        import queue as queue_module

        from repro.network.process_comm import _Mailbox, _PayloadCodec

        q = queue_module.Queue()
        q.put((7, 0, 0, "later"))  # message for a different (seq, src)
        q.put((3, 1, 0, "wanted"))
        mailbox = _Mailbox(q, timeout=0.5, codec=_PayloadCodec("pickle", 0))
        assert mailbox.recv(seq=3, src=1) == "wanted"
        assert mailbox.recv(seq=7, src=0) == "later"

    def test_terminated_worker_segments_are_reclaimed_best_effort(self):
        """A hard-killed worker never runs its own teardown; shutdown must
        best-effort-unlink the worker segments the coordinator attached."""
        import os
        import signal

        if not os.path.isdir("/dev/shm"):
            pytest.skip("segment existence check needs /dev/shm")
        comm = ProcessComm(2, payload_transport="shm", shm_min_bytes=64)
        try:
            # replies route big arrays through the workers' rings, so the
            # coordinator's cache attaches their segments; in this scenario
            # those reply slots are the killed worker's *only* segments, so
            # the best-effort unlink leaves nothing behind at all
            handle = comm.create_pe_state(counter_state, per_pe_args=[(0,), (0,)])
            comm.run_per_pe(handle, echo_array, [(np.arange(4096.0),), (np.arange(4096.0),)])
            attached = list(comm._codec._cache._segments)
            assert attached
            os.kill(comm._procs[1].pid, signal.SIGKILL)  # cannot clean up
            comm._procs[1].join(timeout=5.0)
        finally:
            comm.shutdown()
        assert all(not os.path.exists(os.path.join("/dev/shm", n)) for n in attached)

"""Tests for the alpha/beta cost model and the accounting ledger."""

import math

import pytest

from repro.network.cost_model import CommEvent, CostLedger, CostParameters


class TestCostParameters:
    def test_defaults_are_positive(self):
        cost = CostParameters()
        assert cost.alpha > 0 and cost.beta > 0 and cost.word_bytes > 0

    def test_message_time_formula(self):
        cost = CostParameters(alpha=2.0, beta=0.5)
        assert cost.message_time(10) == pytest.approx(2.0 + 5.0)

    def test_collective_time_formula(self):
        cost = CostParameters(alpha=1.0, beta=0.25)
        assert cost.collective_time(8, 4) == pytest.approx(1.0 * 3 + 0.25 * 4)

    def test_collective_time_rounds_up_log(self):
        cost = CostParameters(alpha=1.0, beta=0.0 + 1e-12)
        assert cost.collective_time(5, 0) == pytest.approx(3.0, rel=1e-6)

    def test_collective_time_single_pe_is_free(self):
        assert CostParameters().collective_time(1, 100) == 0.0

    def test_gather_time_scales_with_p(self):
        cost = CostParameters(alpha=1.0, beta=1.0)
        assert cost.gather_time(4, 3) == pytest.approx(1.0 * 2 + 1.0 * 3 * 4)

    def test_gather_time_single_pe_is_free(self):
        assert CostParameters().gather_time(1, 5) == 0.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            CostParameters(alpha=0.0)
        with pytest.raises(ValueError):
            CostParameters(beta=-1.0)
        with pytest.raises(ValueError):
            CostParameters(word_bytes=0)

    def test_scaled_copy(self):
        cost = CostParameters(alpha=2.0, beta=4.0)
        scaled = cost.scaled(alpha_factor=0.5, beta_factor=2.0)
        assert scaled.alpha == pytest.approx(1.0)
        assert scaled.beta == pytest.approx(8.0)
        # original untouched (frozen dataclass)
        assert cost.alpha == 2.0


class TestCostLedger:
    def test_record_accumulates_totals(self):
        ledger = CostLedger()
        ledger.record("broadcast", phase="select", p=4, messages=3, words=12, rounds=2, time=1.5)
        ledger.record("reduce", phase="insert", p=4, messages=3, words=3, rounds=2, time=0.5)
        assert ledger.total_time == pytest.approx(2.0)
        assert ledger.total_messages == 6
        assert ledger.total_words == pytest.approx(15)
        assert ledger.total_rounds == 4

    def test_time_by_phase_and_op(self):
        ledger = CostLedger()
        ledger.record("broadcast", phase="a", p=2, messages=1, words=1, rounds=1, time=1.0)
        ledger.record("broadcast", phase="b", p=2, messages=1, words=1, rounds=1, time=2.0)
        ledger.record("gather", phase="b", p=2, messages=1, words=1, rounds=1, time=4.0)
        assert ledger.time_by_phase() == {"a": 1.0, "b": 6.0}
        assert ledger.time_by_op() == {"broadcast": 3.0, "gather": 4.0}

    def test_events_for_phase(self):
        ledger = CostLedger()
        ledger.record("x", phase="p1", p=2, messages=1, words=1, rounds=1, time=1.0)
        ledger.record("y", phase="p2", p=2, messages=1, words=1, rounds=1, time=1.0)
        assert [e.op for e in ledger.events_for_phase("p1")] == ["x"]

    def test_reset_clears_everything(self):
        ledger = CostLedger()
        ledger.record("x", phase="p", p=2, messages=1, words=1, rounds=1, time=1.0)
        ledger.reset()
        assert ledger.total_time == 0.0
        assert ledger.total_messages == 0
        assert ledger.events == []
        assert ledger.time_by_phase() == {}

    def test_merge_with_events(self):
        a = CostLedger()
        b = CostLedger()
        a.record("x", phase="p", p=2, messages=1, words=2, rounds=1, time=1.0)
        b.record("y", phase="q", p=2, messages=2, words=4, rounds=1, time=3.0)
        a.merge(b)
        assert a.total_time == pytest.approx(4.0)
        assert a.total_messages == 3
        assert len(a.events) == 2

    def test_merge_aggregate_only(self):
        a = CostLedger()
        b = CostLedger(keep_events=False)
        b.record("y", phase="q", p=2, messages=2, words=4, rounds=1, time=3.0)
        assert b.events == []
        a.merge(b)
        assert a.total_time == pytest.approx(3.0)
        assert a.time_by_phase() == {"q": 3.0}

    def test_keep_events_false_drops_event_list(self):
        ledger = CostLedger(keep_events=False)
        ledger.record("x", phase="p", p=2, messages=1, words=1, rounds=1, time=1.0)
        assert ledger.events == []
        assert ledger.total_time == pytest.approx(1.0)

    def test_summary_structure(self):
        ledger = CostLedger()
        ledger.record("x", phase="p", p=2, messages=1, words=1, rounds=1, time=1.0)
        summary = ledger.summary()
        assert set(summary) == {"time", "messages", "words", "rounds", "time_by_phase", "time_by_op"}

    def test_event_as_dict(self):
        event = CommEvent(op="x", phase="p", p=2, messages=1, words=1.0, rounds=1, time=0.5)
        assert event.as_dict()["op"] == "x"
        assert event.as_dict()["time"] == 0.5

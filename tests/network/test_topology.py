"""Tests for the binomial-tree / butterfly topology helpers."""

import math

import pytest

from repro.network.topology import Topology


class TestBasics:
    def test_rounds_is_ceil_log2(self):
        assert Topology(1).rounds == 0
        assert Topology(2).rounds == 1
        assert Topology(3).rounds == 2
        assert Topology(8).rounds == 3
        assert Topology(9).rounds == 4

    def test_invalid_p_rejected(self):
        with pytest.raises(ValueError):
            Topology(0)

    def test_validate_rank(self):
        topo = Topology(4)
        assert topo.validate_rank(3) == 3
        with pytest.raises(ValueError):
            topo.validate_rank(4)
        with pytest.raises(ValueError):
            topo.validate_rank(-1)


class TestBinomialTree:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 5, 7, 8, 13, 16, 31, 32])
    @pytest.mark.parametrize("root", [0, 1])
    def test_tree_is_spanning(self, p, root):
        if root >= p:
            pytest.skip("root outside machine")
        topo = Topology(p)
        # Every non-root rank has a parent, and following parents reaches the root.
        for rank in range(p):
            seen = set()
            current = rank
            while current != root:
                assert current not in seen, "cycle in binomial tree"
                seen.add(current)
                current = topo.binomial_parent(current, root)
            assert len(seen) <= topo.rounds + 1 or p == 1

    @pytest.mark.parametrize("p", [2, 3, 5, 8, 16, 21])
    def test_children_parent_consistency(self, p):
        topo = Topology(p)
        root = 0
        for rank in range(p):
            for child in topo.binomial_children(rank, root):
                assert topo.binomial_parent(child, root) == rank

    def test_root_is_own_parent(self):
        topo = Topology(8)
        assert topo.binomial_parent(3, root=3) == 3

    def test_children_count_bounded_by_rounds(self):
        topo = Topology(16)
        assert len(topo.binomial_children(0, 0)) == 4  # log2(16)

    def test_nonzero_root_relabels_tree(self):
        topo = Topology(8)
        children_root0 = topo.binomial_children(0, 0)
        children_root3 = topo.binomial_children(3, 3)
        assert [(c - 3) % 8 for c in children_root3] == children_root0


class TestButterfly:
    def test_partner_is_involution(self):
        topo = Topology(16)
        for r in range(4):
            for rank in range(16):
                partner = topo.butterfly_partner(rank, r)
                assert topo.butterfly_partner(partner, r) == rank

    def test_negative_round_rejected(self):
        with pytest.raises(ValueError):
            Topology(4).butterfly_partner(0, -1)

    @pytest.mark.parametrize("p", [2, 3, 4, 6, 8, 12, 16])
    def test_rounds_pair_each_rank_at_most_once(self, p):
        topo = Topology(p)
        for pairs in topo.butterfly_rounds():
            flat = [rank for pair in pairs for rank in pair]
            assert len(flat) == len(set(flat))

    def test_power_of_two_schedule_is_complete(self):
        topo = Topology(8)
        schedule = topo.butterfly_rounds()
        assert len(schedule) == 3
        assert all(len(pairs) == 4 for pairs in schedule)

"""Communication-efficient (weighted) reservoir sampling — reproduction library.

This package reproduces the algorithms and experiments of

    Lorenz Hübschle-Schneider and Peter Sanders,
    "Communication-Efficient (Weighted) Reservoir Sampling
     from Fully Distributed Data Streams", SPAA 2020 (arXiv:1910.11069).

Quick start (sequential)::

    from repro import ReservoirSampler
    sampler = ReservoirSampler(k=100, weighted=True, seed=1)
    sampler.feed(ids=range(10_000), weights=weights)
    print(sampler.sample_ids())

Quick start (distributed, simulated)::

    from repro import DistributedSamplingRun
    run = DistributedSamplingRun("ours-8", k=1_000, p=64, batch_size=10_000)
    metrics = run.run(rounds=20)
    print(metrics.throughput_per_pe(), run.sample_ids()[:10])

See ``DESIGN.md`` for the full system inventory and ``EXPERIMENTS.md`` for
the mapping between the paper's figures and the benchmark harness.
"""

from repro.checkpoint import CheckpointError, CheckpointManager
from repro.core import (
    CentralizedGatherSampler,
    DistributedBulkPriorityQueue,
    DistributedReservoirSampler,
    DistributedSamplingRun,
    DistributedUniformReservoirSampler,
    DistributedWeightedReservoirSampler,
    LocalReservoir,
    ReservoirSampler,
    SequentialUniformReservoir,
    SequentialWeightedReservoir,
    VariableSizeReservoirSampler,
    make_distributed_sampler,
)
from repro.network import CostLedger, CostParameters, SimComm
from repro.obs import (
    HealthConfig,
    HealthMonitor,
    HealthServer,
    MetricsRegistry,
    NullTracer,
    StallError,
    TraceCollector,
    Tracer,
    get_logger,
)
from repro.pipeline import BatchSizeAutotuner, PipelinedSamplingRun
from repro.runtime import MachineSpec, RunMetrics, StreamingSimulation
from repro.selection import (
    AmsSelection,
    MultiPivotSelection,
    SampledSelection,
    SinglePivotSelection,
    UnsortedSelection,
)
from repro.stream import (
    ItemBatch,
    MiniBatchStream,
    TimestampedItemBatch,
    TimestampedMiniBatchStream,
    UniformWeightGenerator,
)
from repro.window import DecayedReservoir, DistributedWindowSampler, SlidingWindowReservoir

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core samplers
    "ReservoirSampler",
    "SequentialWeightedReservoir",
    "SequentialUniformReservoir",
    "DistributedReservoirSampler",
    "DistributedWeightedReservoirSampler",
    "DistributedUniformReservoirSampler",
    "VariableSizeReservoirSampler",
    "CentralizedGatherSampler",
    "DistributedBulkPriorityQueue",
    "LocalReservoir",
    "make_distributed_sampler",
    "DistributedSamplingRun",
    # windowed / decayed samplers
    "SlidingWindowReservoir",
    "DecayedReservoir",
    "DistributedWindowSampler",
    # asynchronous double-buffered ingestion
    "PipelinedSamplingRun",
    "BatchSizeAutotuner",
    # selection
    "SinglePivotSelection",
    "MultiPivotSelection",
    "AmsSelection",
    "SampledSelection",
    "UnsortedSelection",
    # fault tolerance
    "CheckpointError",
    "CheckpointManager",
    # observability
    "Tracer",
    "NullTracer",
    "TraceCollector",
    "MetricsRegistry",
    "get_logger",
    "HealthConfig",
    "HealthMonitor",
    "HealthServer",
    "StallError",
    # substrate
    "SimComm",
    "CostParameters",
    "CostLedger",
    "MachineSpec",
    "StreamingSimulation",
    "RunMetrics",
    # stream
    "ItemBatch",
    "TimestampedItemBatch",
    "MiniBatchStream",
    "TimestampedMiniBatchStream",
    "UniformWeightGenerator",
]

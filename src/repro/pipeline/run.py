"""Wall-clock driver for asynchronous double-buffered ingestion.

:class:`PipelinedSamplingRun` mirrors
:class:`~repro.runtime.parallel.ParallelStreamingRun` — same constructor
shape, same ``step`` / ``run_rounds`` / ``run_for_wall_time`` loop, same
worker-generated stream shards — but each round runs through a
double-buffered engine (:mod:`repro.pipeline.engine`) that overlaps the
*next* round's batch/key preparation with the *current* round's selection
collectives:

* ``pipeline="strict"`` — overlap only the threshold-independent batch
  materialisation; byte-identical samples to ``ParallelStreamingRun`` for
  the same seed (both backends).
* ``pipeline="relaxed"`` — overlap batch *and* key generation under a
  one-round-stale threshold; a bounded number of extra candidates is
  pruned again at ingest (``stale_extra_candidates``) in exchange for
  hiding the whole prepare behind the selection.

Per-round overlap efficiency lands in the run metrics
(``overlap_saved_time``, the ``"prepare"``/``"overlap"`` phases,
:meth:`~repro.runtime.metrics.RunMetrics.overlap_efficiency`).

``batch_size="auto"`` enables adaptive mini-batch sizing: a
:class:`~repro.pipeline.autotune.BatchSizeAutotuner` resizes the stream
shards between rounds to steer the measured round latency toward
``target_round_time``.

Use as a context manager (or call :meth:`close`) so the process backend's
workers are torn down deterministically.
"""

from __future__ import annotations

import time
from typing import Optional, Union

import numpy as np

from repro.network.base import Communicator, make_communicator
from repro.obs.collect import resolve_trace
from repro.obs.health import resolve_health
from repro.obs.log import get_logger
from repro.obs.serve import resolve_serve
from repro.pipeline.autotune import DEFAULT_TARGET_ROUND_TIME, BatchSizeAutotuner
from repro.pipeline.engine import make_pipeline_engine, normalize_pipeline_mode
from repro.runtime.metrics import RoundMetrics, RunMetrics
from repro.utils.validation import check_positive, check_positive_int

__all__ = ["PipelinedSamplingRun"]

_logger = get_logger("pipeline.run")


class PipelinedSamplingRun:
    """Run a sampler with double-buffered rounds, measuring wall time.

    Parameters
    ----------
    algorithm:
        Paper name of the algorithm (``"ours"``, ``"ours-<d>"``,
        ``"ours-variable"``; the centralized ``"gather"`` baseline cannot
        be pipelined).
    k:
        Sample size.
    p:
        Number of PEs (ignored when ``comm`` is a constructed communicator).
    comm:
        ``"process"`` (default) for real multiprocess workers — overlap is
        measured — or ``"sim"`` for the inline simulator, where overlap is
        modeled (a round costs ``insert + max(prepare, select+threshold)``
        instead of the lock-step sum).  An already constructed
        :class:`~repro.network.base.Communicator` is accepted too.
    pipeline:
        ``"strict"`` or ``"relaxed"`` (see module docstring); ``"off"``
        is rejected — use ``ParallelStreamingRun`` for lock-step runs.
    batch_size:
        Items per PE per round, or ``"auto"`` for adaptive sizing.
    warmup_rounds:
        Rounds processed before measurement starts (also the rounds that
        establish the first threshold, after which the pipeline engages).
    window:
        When given, drive the distributed *sliding-window* sampler over
        the last ``window`` stamp units instead of the unbounded one.
    target_round_time:
        Latency target of the ``"auto"`` batch sizing (seconds/round).
    weighted / store / seed / weights / kernel_tier:
        Forwarded to the sampler / stream shards.
    trace:
        ``True`` or a :class:`~repro.obs.collect.TraceCollector` enables
        distributed tracing (per-PE spans, clock-aligned collection,
        Chrome-trace export; see :mod:`repro.obs`).  Exposed as
        :attr:`trace`; never touches any RNG.
    health / on_stall / serve_metrics:
        Live health monitoring and the HTTP ``/metrics`` + ``/health``
        exporter — same semantics as on
        :class:`~repro.core.api.DistributedSamplingRun`.  Exposed as
        :attr:`health` and :attr:`server`.
    """

    def __init__(
        self,
        algorithm: str = "ours",
        *,
        k: int = 1000,
        p: int = 4,
        comm: Union[str, Communicator] = "process",
        pipeline: str = "relaxed",
        batch_size: Union[int, str] = 4096,
        warmup_rounds: int = 1,
        weighted: bool = True,
        store: str = "merge",
        seed: Optional[int] = 0,
        weights=None,
        window: Optional[int] = None,
        target_round_time: float = DEFAULT_TARGET_ROUND_TIME,
        kernel_tier: str = "numpy",
        trace=None,
        health=None,
        on_stall: Optional[str] = None,
        serve_metrics=None,
        **comm_kwargs,
    ) -> None:
        from repro.core.api import make_distributed_sampler

        mode = normalize_pipeline_mode(pipeline)
        if mode == "off":
            raise ValueError(
                "pipeline='off' is the lock-step schedule; use "
                "repro.runtime.ParallelStreamingRun for that"
            )
        if isinstance(comm, Communicator):
            self.comm = comm
            self._owns_comm = False
        else:
            self.comm = make_communicator(comm, p, **comm_kwargs)
            self._owns_comm = True
        self.algorithm = algorithm
        self.pipeline = mode
        self.warmup_rounds = check_positive_int(warmup_rounds, "warmup_rounds", allow_zero=True)
        self._warmed_up = False
        self.autotuner, initial_batch = BatchSizeAutotuner.from_arg(
            batch_size, check_positive(target_round_time, "target_round_time")
        )
        self.batch_size = initial_batch
        try:
            self.sampler = make_distributed_sampler(
                algorithm,
                k,
                self.comm,
                weighted=weighted,
                store=store,
                seed=seed,
                window=window,
                kernel_tier=kernel_tier,
            )
            attach_kwargs = dict(seed=seed, variable=self.autotuner is not None)
            if weights is not None:
                attach_kwargs["weights"] = weights
            self.sampler.attach_worker_stream(initial_batch, **attach_kwargs)
            self.engine = make_pipeline_engine(self.sampler, mode)
            self.trace = resolve_trace(trace)
            if self.trace is not None:
                self.trace.attach(self.comm, self.sampler._handle)
            shared_registry = self.trace.registry if self.trace is not None else None
            self.health = resolve_health(health, on_stall=on_stall, registry=shared_registry)
            if self.health is not None:
                self.health.attach(self.comm, self.sampler._handle)
            self.server = resolve_serve(
                serve_metrics,
                registry=shared_registry
                if shared_registry is not None
                else (self.health.registry if self.health is not None else None),
                monitor=self.health,
            )
        except BaseException:
            # don't leak the workers we just spawned on invalid arguments
            if self._owns_comm:
                self.comm.shutdown()
            raise
        self.metrics = RunMetrics(
            p=self.comm.p,
            k=int(getattr(self.sampler, "k", k)),
            algorithm=algorithm,
            store=str(getattr(self.sampler, "store", "")),
            comm_backend=self.comm.kind,
            kernel_tier=str(getattr(self.sampler, "kernel_tier", "")),
        )

    # ------------------------------------------------------------------
    @property
    def p(self) -> int:
        return self.comm.p

    def _ensure_warmup(self) -> None:
        if self._warmed_up:
            return
        for _ in range(self.warmup_rounds):
            self.engine.step()
        self._warmed_up = True

    def step(self) -> RoundMetrics:
        """Process one measured round and record its metrics."""
        if self.health is not None:
            self.health.arm(self.metrics.num_rounds)
        try:
            self._ensure_warmup()
            start = time.perf_counter()
            with self.comm.tracer.span("round", cat="round", round=self.metrics.num_rounds):
                round_metrics = self.engine.step()
            elapsed = time.perf_counter() - start
        finally:
            if self.health is not None:
                self.health.disarm()
                self.metrics.stalls = self.health.stalls_detected
                self.metrics.stragglers_detected = self.health.stragglers_detected
        self.metrics.wall_time += elapsed
        self.metrics.add_round(round_metrics)
        if self.trace is not None:
            self.trace.record_round(round_metrics, wall_time=elapsed)
        if self.autotuner is not None:
            resized = self.autotuner.update(elapsed)
            if resized is not None:
                _logger.debug(
                    "autotuner resized batch %d -> %d (round took %.4fs)",
                    self.batch_size,
                    resized,
                    elapsed,
                )
                if self.trace is not None:
                    self.trace.on_autotune(self.batch_size, resized)
                self.batch_size = resized
                self.engine.request_batch_size(resized)
        return round_metrics

    def run_rounds(self, rounds: int) -> RunMetrics:
        """Process a fixed number of measured rounds (after warm-up)."""
        for _ in range(check_positive_int(rounds, "rounds", allow_zero=True)):
            self.step()
        return self.metrics

    def run_for_wall_time(
        self, duration: float, *, max_rounds: int = 10_000, min_rounds: int = 1
    ) -> RunMetrics:
        """Process rounds until ``duration`` seconds of wall time elapsed."""
        check_positive(duration, "duration")
        check_positive_int(max_rounds, "max_rounds")
        rounds_done = 0
        while rounds_done < max_rounds and (
            rounds_done < min_rounds or self.metrics.wall_time < duration
        ):
            self.step()
            rounds_done += 1
        return self.metrics

    # ------------------------------------------------------------------
    def sample_ids(self) -> np.ndarray:
        return self.sampler.sample_ids()

    def communication_summary(self) -> dict:
        """Summary of all communication recorded during the run."""
        return self.comm.ledger.summary()

    def close(self) -> None:
        """Join any in-flight prepare and shut down an owned communicator."""
        self.engine.finish()
        if self.server is not None:
            self.server.close()
        if self.health is not None:
            self.health.finish()
        if self.trace is not None:
            self.trace.finish()
        if self._owns_comm:
            self.comm.shutdown()

    def __enter__(self) -> "PipelinedSamplingRun":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

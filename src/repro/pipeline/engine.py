"""Double-buffered round engines: overlap next-round preparation with selection.

The lock-step round of :class:`~repro.core.distributed.DistributedReservoirSampler`
serialises *insert* (batch generation, key generation, reservoir
insertions) with *select/threshold* (the coordinator-driven collectives).
The paper's remarks on asynchrony observe that this serialisation is not
necessary: with a slightly stale threshold the PEs can keep preparing the
next mini-batch while the previous round's selection finishes, trading a
bounded number of extra buffered candidates for full overlap of
computation and communication.

The engines here implement that trade in three flavours:

* :class:`UnboundedPipelineEngine` with ``mode="strict"`` — only the
  threshold-*independent* work (materialising the next shard batch) runs
  ahead, in a worker background thread, while the current round's
  selection executes; key generation stays synchronous under the fresh
  threshold and consumes the main per-PE RNG in exactly the lock-step
  order.  Strict runs are therefore **byte-identical** to
  :class:`~repro.runtime.parallel.ParallelStreamingRun` for the same seed
  (enforced by ``tests/pipeline/``).
* ``mode="relaxed"`` — the whole prepare (batch + exponential-jump key
  generation) runs ahead under the threshold of the *previous* round.
  Because the global threshold only ever tightens, the prepared candidate
  set is a superset of the strict run's; the extra candidates are pruned
  again at ingest time (the *reconciliation prune*, counted as
  ``stale_extra_candidates``).  Keys come from a dedicated generation RNG
  so the background draws never race the selection's pivot proposals —
  relaxed runs are deterministic (and backend-equivalent), just not
  byte-identical to the lock-step schedule.
* :class:`WindowPipelineEngine` — the sliding-window sampler admits no
  insertion threshold (keys are dense), so its prepare is never stale and
  windowed pipelining is exact by construction; the prepare overlaps the
  expire + re-selection phases.

Overlap is real on the multiprocess backend — the prepare kernels run in
worker background threads dispatched via
:meth:`~repro.network.base.Communicator.run_per_pe_async` while the worker
main loops serve the selection collectives — and *modeled* on the
simulated backend, where a pipelined round costs
``insert + max(prepare, select + threshold)`` instead of the lock-step
sum.  Either way every round reports the hidden time as
:attr:`~repro.runtime.metrics.RoundMetrics.overlap_saved_time` and the
unhidden remainder as the ``"overlap"`` phase.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core import pe_kernels
from repro.core.distributed import DistributedReservoirSampler
from repro.network.base import PerPEFuture
from repro.runtime.clock import PhaseClock
from repro.runtime.metrics import PhaseTimes, RoundMetrics
from repro.window.distributed import DistributedWindowSampler

__all__ = [
    "PIPELINE_MODES",
    "normalize_pipeline_mode",
    "UnboundedPipelineEngine",
    "WindowPipelineEngine",
    "make_pipeline_engine",
]

#: accepted values of the ``pipeline=`` argument on the drivers
PIPELINE_MODES = ("off", "strict", "relaxed")


def normalize_pipeline_mode(mode: str) -> str:
    """Validate and canonicalise a ``pipeline=`` argument."""
    name = str(mode).strip().lower()
    if name not in PIPELINE_MODES:
        raise ValueError(f"unknown pipeline mode {mode!r}; expected one of {PIPELINE_MODES}")
    return name


class _PipelineEngineBase:
    """Shared double-buffering machinery of the pipelined round engines."""

    def __init__(self, sampler) -> None:
        self.sampler = sampler
        self._pending: Optional[PerPEFuture] = None
        self._requested_batch_size: Optional[int] = None
        self._rounds = 0

    # ------------------------------------------------------------------
    @property
    def comm(self):
        return self.sampler.comm

    @property
    def p(self) -> int:
        return self.sampler.p

    @property
    def rounds_processed(self) -> int:
        return self._rounds

    def request_batch_size(self, batch_size: int) -> None:
        """Resize the stream shards before the next prepare dispatch.

        Deferred rather than applied immediately because the shards must
        not be touched while a prepare is in flight.
        """
        self._requested_batch_size = int(batch_size)

    def _apply_batch_size_change(self) -> None:
        """Apply a deferred resize; only valid while no prepare is in flight.

        The in-flight guard makes the join-before-resize ordering an
        enforced invariant rather than a convention: dispatching the resize
        kernel while a background prefetch is still generating would race
        the shard's ``_batch_size``/``_emitted`` bookkeeping (the shard's
        own lock would serialise the mutation, but the round's batch size
        would become schedule-dependent — join first, then resize).
        """
        if self._requested_batch_size is None:
            return
        if self._pending is not None:
            raise RuntimeError(
                "cannot resize stream shards while a prepare is in flight; "
                "join the pending prepare before applying the batch size"
            )
        self.comm.run_per_pe(
            self.sampler._handle,
            pe_kernels.set_batch_size_kernel,
            [(self._requested_batch_size,)] * self.p,
        )
        self._requested_batch_size = None

    def finish(self) -> None:
        """Drop an in-flight prepare (stream items it consumed stay unused)."""
        if self._pending is not None:
            pending, self._pending = self._pending, None
            try:
                pending.wait()
            except Exception:  # pragma: no cover - teardown best effort
                pass

    # ------------------------------------------------------------------
    # checkpoint support
    # ------------------------------------------------------------------
    def export_state(self) -> dict:
        """Capture the engine's state for a checkpoint, draining any prepare.

        If a prepare/prefetch future is pending it is joined *now* and
        replaced, on the live engine, by an already-completed future
        holding the same results — the prepared data itself lives in the
        worker states and is captured by the per-PE export that follows,
        so the continued run and a resumed run stay in lock step.  Call
        this BEFORE exporting the per-PE sampler state.
        """
        pending_results = None
        if self._pending is not None:
            pending_results = self._pending.wait()
            self._pending = PerPEFuture(list(pending_results))
        return {
            "mode": self.mode,
            "rounds": self._rounds,
            "requested_batch_size": self._requested_batch_size,
            "pending_results": pending_results,
        }

    def import_state(self, state: dict) -> None:
        """Re-arm a freshly built engine from an :meth:`export_state` capture.

        The mode must match; a pending prepare captured in the state is
        re-armed as an already-completed future, mirroring what
        :meth:`export_state` left on the original engine.
        """
        if state["mode"] != self.mode:
            raise ValueError(
                f"engine state was captured in pipeline mode {state['mode']!r} but this "
                f"engine runs {self.mode!r}"
            )
        self._rounds = int(state["rounds"])
        requested = state.get("requested_batch_size")
        self._requested_batch_size = None if requested is None else int(requested)
        pending = state.get("pending_results")
        self._pending = PerPEFuture(list(pending)) if pending is not None else None

    def _join_pending(self) -> Tuple[List[object], float, bool]:
        """Wait for the in-flight prepare; returns (results, wait, was_async)."""
        pending = self._pending
        self._pending = None
        with self.comm.phase("overlap"):
            results = pending.wait()
        return results, pending.wait_time, pending.asynchronous

    def _attach_overlap(
        self,
        metrics: RoundMetrics,
        *,
        busy_measured: float,
        wait_time: float,
        was_async: bool,
        overlapped_phases: Sequence[str],
    ) -> None:
        """Fill in the per-round overlap-efficiency counters.

        On the multiprocess backend the saving is *measured*: the prepare
        kernels report their own busy time and the join reports how long
        the coordinator actually had to wait — the difference ran hidden.
        The ``"prepare"`` phase's local time is then replaced with that
        measured busy time so saved/prepare ratios
        (:meth:`~repro.runtime.metrics.RunMetrics.overlap_efficiency`)
        compare measured seconds with measured seconds, like the measured
        ``"overlap"`` wait already in the ledger.  On the simulated
        backend the saving is *modeled*: the prepare's machine-model cost
        overlaps the phases it was dispatched against, so the round pays
        ``max(prepare, overlapped)`` instead of the sum and the unhidden
        remainder surfaces as the ``"overlap"`` phase.
        """
        if was_async:
            current = metrics.phase_times.get("prepare", PhaseTimes())
            metrics.phase_times["prepare"] = PhaseTimes(local=busy_measured, comm=current.comm)
            metrics.overlap_saved_time = max(0.0, busy_measured - wait_time)
            self.comm.tracer.instant(
                "overlap.join",
                cat="pipeline",
                busy=busy_measured,
                wait=wait_time,
                saved=metrics.overlap_saved_time,
            )
            return
        prepare_pt = metrics.phase_times.get("prepare")
        prepare_local = prepare_pt.local if prepare_pt is not None else 0.0
        window = sum(metrics.phase_total(phase) for phase in overlapped_phases)
        saved = min(prepare_local, window)
        unhidden = prepare_local - saved
        if unhidden > 0.0:
            current = metrics.phase_times.get("overlap", PhaseTimes())
            metrics.phase_times["overlap"] = PhaseTimes(
                local=current.local + unhidden, comm=current.comm
            )
        metrics.overlap_saved_time = saved


class UnboundedPipelineEngine(_PipelineEngineBase):
    """Pipelined rounds for the unbounded distributed reservoir samplers.

    Drives a :class:`~repro.core.distributed.DistributedReservoirSampler`
    (or its variable-size subclass) whose worker stream shards are already
    attached.  Rounds before the first global threshold run through the
    lock-step path unchanged — the pipeline engages once a threshold
    exists, which is also what keeps the strict mode byte-identical from
    the very first round.
    """

    def __init__(self, sampler: DistributedReservoirSampler, mode: str) -> None:
        super().__init__(sampler)
        mode = normalize_pipeline_mode(mode)
        if mode == "off":
            raise ValueError("pipeline mode 'off' does not need an engine")
        if not getattr(sampler, "_has_worker_stream", False):
            raise ValueError(
                "pipelined rounds need worker-local stream shards; call "
                "sampler.attach_worker_stream() first"
            )
        self.mode = mode

    # ------------------------------------------------------------------
    def step(self) -> RoundMetrics:
        """Process one round, overlapping next-round preparation."""
        sampler = self.sampler
        if sampler.threshold is None:
            # No threshold yet (warm-up): nothing threshold-dependent can
            # be prepared ahead under the first-batch policy, so run the
            # lock-step round.  This is exactly the sync path, keeping the
            # strict mode byte-identical through the bootstrap.
            self._apply_batch_size_change()
            metrics = sampler.process_stream_round()
            self._rounds += 1
            return metrics
        metrics = self._strict_round() if self.mode == "strict" else self._relaxed_round()
        self._rounds += 1
        return metrics

    # ------------------------------------------------------------------
    def _strict_round(self) -> RoundMetrics:
        """Overlap only the batch materialisation; keys stay synchronous.

        The RNG consumption order is exactly the lock-step one: the shard
        prefetch only advances the shard's own generator (whose values do
        not depend on *when* they are drawn), while key generation runs
        inside :func:`~repro.core.pe_kernels.stream_insert_kernel` under
        the fresh threshold, after the previous round's pivot proposals.
        """
        sampler = self.sampler
        comm = self.comm
        clock = PhaseClock(self.p)
        phase_comm_before = comm.ledger.time_by_phase()

        busy = 0.0
        wait_time = 0.0
        was_async = False
        if self._pending is not None:
            prefetch_results, wait_time, was_async = self._join_pending()
            busy = max(float(r[1]) for r in prefetch_results)
        # insert: the lock-step kernel consumes the prefetched batch
        with comm.phase("insert"):
            results = comm.run_per_pe(
                sampler._handle,
                pe_kernels.stream_insert_kernel,
                [(sampler.threshold, sampler.weighted, sampler.local_thresholding)] * self.p,
            )
        batch_sizes = [int(r[3]) for r in results]
        insertions, sizes = sampler._charge_insert_work(
            clock, [r[:3] for r in results], batch_sizes, threshold_was_set=True
        )
        for pe, b in enumerate(batch_sizes):
            clock.charge("prepare", pe, sampler.machine.key_gen_time(max(b, 1)))
        batch_items = sum(batch_sizes)
        sampler._items_seen += batch_items
        sampler._total_weight += sum(float(r[4]) for r in results)

        # prefetch the next batch; runs while the selection below executes
        self._apply_batch_size_change()
        with comm.phase("prepare"):
            self._pending = comm.run_per_pe_async(
                sampler._handle, pe_kernels.prefetch_stream_kernel
            )

        metrics = sampler._finish_round(
            clock, phase_comm_before, batch_items, insertions, sizes
        )
        self._attach_overlap(
            metrics,
            busy_measured=busy,
            wait_time=wait_time,
            was_async=was_async,
            overlapped_phases=("select", "threshold"),
        )
        return metrics

    def _relaxed_round(self) -> RoundMetrics:
        """Overlap batch *and* key generation under a one-round-stale threshold."""
        sampler = self.sampler
        comm = self.comm
        clock = PhaseClock(self.p)
        phase_comm_before = comm.ledger.time_by_phase()

        if self._pending is None:
            # transition round: nothing in flight yet — prepare now and pay
            # the full cost once; subsequent rounds overlap
            self._dispatch_prepare()
        prep, wait_time, was_async = self._join_pending()

        with comm.phase("insert"):
            results = comm.run_per_pe(
                sampler._handle, pe_kernels.ingest_prepared_kernel, [(sampler.threshold,)] * self.p
            )
        insertions = [int(r[0]) for r in results]
        stale_extra = sum(int(r[1]) for r in results)
        sizes = [int(r[2]) for r in results]
        machine = sampler.machine
        for pe, ((candidates, b, _w, _secs), inserted, size) in enumerate(
            zip(prep, insertions, sizes)
        ):
            if b == 0:
                continue
            scanned = b if sampler.weighted else int(candidates)
            clock.charge(
                "prepare",
                pe,
                machine.scan_time(scanned, batch_size=b)
                + machine.key_gen_time(2 * int(candidates) + 1)
                + machine.key_gen_time(max(b, 1)),
            )
            clock.charge("insert", pe, machine.tree_op_time(inserted, max(size, 1)))
        batch_items = sum(int(r[1]) for r in prep)
        sampler._items_seen += batch_items
        sampler._total_weight += sum(float(r[2]) for r in prep)

        # prepare the next round under the current (soon stale) threshold;
        # runs while the selection below picks the fresh one
        self._dispatch_prepare()

        metrics = sampler._finish_round(
            clock, phase_comm_before, batch_items, insertions, sizes
        )
        metrics.stale_extra_candidates = stale_extra
        busy = max((float(r[3]) for r in prep), default=0.0)
        self._attach_overlap(
            metrics,
            busy_measured=busy,
            wait_time=wait_time,
            was_async=was_async,
            overlapped_phases=("select", "threshold"),
        )
        return metrics

    def _dispatch_prepare(self) -> None:
        sampler = self.sampler
        self._apply_batch_size_change()
        with self.comm.phase("prepare"):
            self._pending = self.comm.run_per_pe_async(
                sampler._handle,
                pe_kernels.prepare_batch_kernel,
                [(sampler.threshold, sampler.weighted)] * self.p,
            )


class WindowPipelineEngine(_PipelineEngineBase):
    """Pipelined rounds for the distributed sliding-window sampler.

    Window keys are dense (expiry admits no insertion threshold), so the
    prepared batches are never stale — both pipeline modes behave
    identically and the pipelined rounds are exact.  Keys come from the
    dedicated generation RNG (the prepare overlaps the selection's pivot
    proposals), so the samples are statistically equivalent but not
    byte-identical to the lock-step windowed run.
    """

    def __init__(self, sampler: DistributedWindowSampler, mode: str) -> None:
        super().__init__(sampler)
        mode = normalize_pipeline_mode(mode)
        if mode == "off":
            raise ValueError("pipeline mode 'off' does not need an engine")
        if not getattr(sampler, "_has_worker_stream", False):
            raise ValueError(
                "pipelined rounds need worker-local stream shards; call "
                "sampler.attach_worker_stream() first"
            )
        self.mode = mode

    def step(self) -> RoundMetrics:
        """Process one windowed round, overlapping next-round preparation."""
        sampler = self.sampler
        comm = self.comm
        clock = PhaseClock(self.p)
        phase_comm_before = comm.ledger.time_by_phase()

        if self._pending is None:
            self._dispatch_prepare()
        prep, wait_time, was_async = self._join_pending()

        with comm.phase("insert"):
            results = comm.run_per_pe(sampler._handle, pe_kernels.window_ingest_prepared_kernel)
        insertions = [int(kept) for kept, _size in results]
        machine = sampler.machine
        for pe, ((b, _w, _stamp, _secs), (kept, size)) in enumerate(zip(prep, results)):
            if b == 0:
                continue
            clock.charge(
                "prepare",
                pe,
                machine.scan_time(b, batch_size=b) + machine.key_gen_time(b),
            )
            clock.charge("insert", pe, machine.tree_op_time(int(kept) + 1, max(int(size), 1)))
        batch_items = sum(int(r[0]) for r in prep)
        sampler._items_seen += batch_items
        sampler._total_weight += sum(float(r[1]) for r in prep)
        for r in prep:
            if int(r[2]) >= 0:
                sampler._max_stamp = max(sampler._max_stamp, int(r[2]))

        # prepare the next round; runs while expiry + re-selection execute
        self._dispatch_prepare()

        metrics = sampler._expire_select_finish(
            clock, phase_comm_before, batch_items, insertions
        )
        busy = max((float(r[3]) for r in prep), default=0.0)
        self._attach_overlap(
            metrics,
            busy_measured=busy,
            wait_time=wait_time,
            was_async=was_async,
            overlapped_phases=("expire", "select", "threshold"),
        )
        self._rounds += 1
        return metrics

    def _dispatch_prepare(self) -> None:
        self._apply_batch_size_change()
        with self.comm.phase("prepare"):
            self._pending = self.comm.run_per_pe_async(
                self.sampler._handle,
                pe_kernels.window_prepare_kernel,
                [(self.sampler.weighted,)] * self.p,
            )


def make_pipeline_engine(sampler, mode: str):
    """Engine for ``sampler`` (unbounded reservoir or sliding-window)."""
    if isinstance(sampler, DistributedWindowSampler):
        return WindowPipelineEngine(sampler, mode)
    if isinstance(sampler, DistributedReservoirSampler):
        return UnboundedPipelineEngine(sampler, mode)
    raise ValueError(
        f"pipelining supports the 'ours' reservoir samplers and the windowed sampler, "
        f"not {type(sampler).__name__} (the centralized 'gather' baseline has no "
        "PE-local reservoir to prepare into)"
    )

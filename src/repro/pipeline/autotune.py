"""Adaptive mini-batch sizing from the measured round-latency ledger.

The wall-clock drivers process one mini-batch per PE per round; the batch
size trades throughput (large batches amortise the per-round collectives)
against latency and staleness (a relaxed-pipeline threshold is stale for
one round, i.e. for one batch per PE).  The benchmarks hand-pick a size
per machine; :class:`BatchSizeAutotuner` picks it from feedback instead:
a multiplicative-increase / multiplicative-decrease controller steering
the measured round latency toward a target.

Rounds faster than the target band grow the batch by ``grow`` (default
2x), rounds slower than the band shrink it by ``shrink`` (default 0.5x),
rounds inside the band leave it alone — the classic MIMD scheme, robust
to the noisy latencies of shared machines.  The drivers expose it as
``batch_size="auto"``; the underlying stream shards must be created
resizable (``variable=True``), which the drivers do automatically.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

from repro.utils.validation import check_positive, check_positive_int

__all__ = ["BatchSizeAutotuner", "DEFAULT_TARGET_ROUND_TIME", "DEFAULT_INITIAL_BATCH"]

#: default per-round latency target (seconds); large enough that the
#: collectives amortise, small enough that the sample stays fresh
DEFAULT_TARGET_ROUND_TIME = 0.05

#: batch size "auto" starts from (per PE per round)
DEFAULT_INITIAL_BATCH = 4096


class BatchSizeAutotuner:
    """MIMD controller steering the per-round batch size to a latency target.

    Parameters
    ----------
    initial:
        Batch size of the first rounds.
    target_round_time:
        Desired wall-clock seconds per round.
    band:
        Dead-band fraction: a round inside
        ``[(1 - band) * target, (1 + band) * target]`` triggers no change.
    grow / shrink:
        Multiplicative factors applied below / above the band.
    min_size / max_size:
        Clamp of the proposed sizes.
    """

    def __init__(
        self,
        initial: int = DEFAULT_INITIAL_BATCH,
        *,
        target_round_time: float = DEFAULT_TARGET_ROUND_TIME,
        band: float = 0.3,
        grow: float = 2.0,
        shrink: float = 0.5,
        min_size: int = 256,
        max_size: int = 1 << 22,
    ) -> None:
        self.size = check_positive_int(initial, "initial")
        self.target_round_time = check_positive(target_round_time, "target_round_time")
        if not 0.0 <= band < 1.0:
            raise ValueError(f"band must lie in [0, 1), got {band}")
        if grow <= 1.0 or not 0.0 < shrink < 1.0:
            raise ValueError("grow must exceed 1 and shrink must lie in (0, 1)")
        self.band = float(band)
        self.grow = float(grow)
        self.shrink = float(shrink)
        self.min_size = check_positive_int(min_size, "min_size")
        self.max_size = check_positive_int(max_size, "max_size")
        if self.max_size < self.min_size:
            raise ValueError("max_size must be at least min_size")
        self.size = min(max(self.size, self.min_size), self.max_size)
        #: number of size changes proposed so far
        self.adjustments = 0

    @classmethod
    def from_arg(
        cls, batch_size: Union[int, str], target_round_time: Optional[float] = None
    ) -> Tuple[Optional["BatchSizeAutotuner"], int]:
        """Resolve a driver's ``batch_size`` argument.

        Returns ``(autotuner, initial_batch_size)``: a fresh tuner when
        ``batch_size`` is the string ``"auto"`` (``None`` otherwise) plus
        the size the stream shards should start with.  Shared by the
        wall-clock drivers so the accepted spelling and defaults cannot
        drift apart.
        """
        if isinstance(batch_size, str):
            if batch_size.strip().lower() != "auto":
                raise ValueError(
                    f"batch_size must be a positive int or 'auto', got {batch_size!r}"
                )
            tuner = cls(
                DEFAULT_INITIAL_BATCH,
                target_round_time=(
                    target_round_time if target_round_time is not None else DEFAULT_TARGET_ROUND_TIME
                ),
            )
            return tuner, tuner.size
        return None, check_positive_int(batch_size, "batch_size")

    def update(self, round_time: float) -> Optional[int]:
        """Feed one measured round latency; returns the new size or ``None``.

        ``None`` means the latency sat inside the dead band (or the clamp
        absorbed the change) and the current size stays in effect.
        """
        if round_time <= 0.0:
            return None
        if round_time < (1.0 - self.band) * self.target_round_time:
            proposed = int(self.size * self.grow)
        elif round_time > (1.0 + self.band) * self.target_round_time:
            proposed = int(self.size * self.shrink)
        else:
            return None
        proposed = min(max(proposed, self.min_size), self.max_size)
        if proposed == self.size:
            return None
        self.size = proposed
        self.adjustments += 1
        return proposed

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"BatchSizeAutotuner(size={self.size}, "
            f"target={self.target_round_time}s, adjustments={self.adjustments})"
        )

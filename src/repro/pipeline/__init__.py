"""Asynchronous double-buffered ingestion (paper remarks on asynchrony).

The lock-step drivers serialise every round's insert phase with its
selection/threshold collectives.  This package overlaps them instead:
while the coordinator finishes round *t*'s selection, the PEs already
prepare round *t+1*'s mini-batch — in worker background threads on the
real multiprocess backend, as a modeled ``max(prepare, select)`` round
cost on the simulator.

* :class:`~repro.pipeline.run.PipelinedSamplingRun` — the wall-clock
  driver (mirrors :class:`~repro.runtime.parallel.ParallelStreamingRun`),
  with ``pipeline="strict"`` (byte-identical to lock-step) or
  ``pipeline="relaxed"`` (stale-by-one-round threshold, superset of
  candidates, reconciliation prune).
* :class:`~repro.pipeline.engine.UnboundedPipelineEngine` /
  :class:`~repro.pipeline.engine.WindowPipelineEngine` — the round
  engines, also driven by
  :class:`~repro.core.api.DistributedSamplingRun` via its ``pipeline=``
  argument.
* :class:`~repro.pipeline.autotune.BatchSizeAutotuner` — adaptive
  mini-batch sizing behind ``batch_size="auto"``.
"""

from repro.pipeline.autotune import BatchSizeAutotuner
from repro.pipeline.engine import (
    PIPELINE_MODES,
    UnboundedPipelineEngine,
    WindowPipelineEngine,
    make_pipeline_engine,
    normalize_pipeline_mode,
)
from repro.pipeline.run import PipelinedSamplingRun

__all__ = [
    "PipelinedSamplingRun",
    "BatchSizeAutotuner",
    "UnboundedPipelineEngine",
    "WindowPipelineEngine",
    "make_pipeline_engine",
    "normalize_pipeline_mode",
    "PIPELINE_MODES",
]

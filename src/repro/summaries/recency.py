"""Recency-biased weighted reservoir over the order-statistics engine.

A recency reservoir holds a weighted sample without replacement in which
an item ingested at stamp ``t`` with weight ``w`` competes as if its
weight were ``w * r^t`` for a recency multiplier ``r >= 1``: recent items
are exponentially favoured, and ``r == 1`` degenerates to classic
weighted reservoir sampling.  This is the time-*forward* mirror of the
time-decayed window sampler — instead of decaying old items at query
time, new items are boosted at insert time — and it reuses the same
log-space key transform (:func:`repro.window.decayed.decayed_log_keys`
with ``log_decay = -ln r``): the keys are *static*, so the samplers'
entire threshold / select / prune machinery applies unchanged and the
summary is byte-identical across execution backends.

Because the boost grows without bound, stamps are kept small (one stamp
per ingest round, not per item); the log-space keys absorb the magnitude
without overflow exactly as the decayed window sampler's do.
"""

from __future__ import annotations

import functools
import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core import pe_kernels
from repro.summaries import kernels
from repro.summaries.base import DistributedSummary, split_batch
from repro.utils.rng import spawn_seed_sequences
from repro.utils.validation import check_positive_int

__all__ = ["RecencyReservoir"]


class RecencyReservoir(DistributedSummary):
    """Distributed weighted sample of size ``k`` with exponential recency bias.

    Parameters
    ----------
    k:
        Sample size.
    recency:
        Recency multiplier ``r >= 1``; every ingest round multiplies the
        effective weight of all *later* items by ``r``.  ``1.0`` (default)
        is classic weighted reservoir sampling.
    weighted:
        ``False`` ignores the provided weights (uniform-with-recency).
    """

    summary_name = "recency"

    def __init__(
        self,
        k: int,
        comm,
        *,
        p: Optional[int] = None,
        recency: float = 1.0,
        weighted: bool = True,
        policy=None,
        seed: Optional[int] = 0,
        kernel_tier: str = "numpy",
    ) -> None:
        super().__init__(comm, p=p, policy=policy)
        self.k = check_positive_int(k, "k")
        if not recency >= 1.0:
            raise ValueError(f"recency multiplier must be >= 1, got {recency}")
        self.recency = float(recency)
        self.weighted = bool(weighted)
        self.kernel_tier = kernel_tier
        self._log_recency = math.log(self.recency)
        seed_seqs = spawn_seed_sequences(seed, self.comm.p)
        self._handle = self.comm.create_pe_state(
            functools.partial(kernels.make_summary_state, k=self.k, kernel_tier=kernel_tier),
            per_pe_args=[(ss,) for ss in seed_seqs],
        )
        #: global insertion threshold (key of the rank-``k`` candidate)
        self.threshold: Optional[float] = None
        self._next_stamp = 0

    # ------------------------------------------------------------------
    def process_round(self, batches: Sequence[Tuple[np.ndarray, np.ndarray]]) -> dict:
        """Ingest one round of per-PE ``(ids, weights)`` batches.

        All items of a round share one recency stamp; the stamp advances
        once per round, so the bias is identical across backends and
        independent of how a round's items are spread over the PEs.
        """
        if len(batches) != self.p:
            raise ValueError(f"expected {self.p} per-PE batches, got {len(batches)}")
        stamp = float(self._next_stamp)
        args = []
        for ids, weights in batches:
            ids = np.asarray(ids, dtype=np.int64)
            weights = np.asarray(weights, dtype=np.float64)
            stamps = np.full(ids.shape[0], stamp, dtype=np.float64)
            args.append((ids, weights, stamps, self.threshold, self._log_recency, self.weighted))
        with self.comm.phase("insert"):
            results = self.comm.run_per_pe(self._handle, kernels.recency_insert_kernel, args)
        sizes = [size for _, size in results]
        self._items_seen += sum(int(arg[0].shape[0]) for arg in args)
        self._total_weight += float(
            sum(arg[1].sum() if self.weighted else arg[0].shape[0] for arg in args)
        )
        self._next_stamp += 1
        self._round += 1

        engine = self.engine()
        with self.comm.phase("select"):
            total = engine.global_size(sizes=sizes)
        update = engine.threshold_update(self.k, total=total)
        if update.threshold is not None:
            self.threshold = update.threshold
            with self.comm.phase("threshold"):
                self.comm.run_per_pe(
                    self._handle, pe_kernels.prune_kernel, [(self.threshold,)] * self.p
                )
        return {
            "total": total,
            "threshold": self.threshold,
            "selection_ran": update.selection_ran,
        }

    def ingest(self, ids: Sequence[int], weights: Sequence[float]) -> dict:
        """Split one logical batch into contiguous per-PE shards and ingest it."""
        return self.process_round(split_batch(ids, weights, self.p))

    # ------------------------------------------------------------------
    def sample_ids(self) -> np.ndarray:
        """The item ids of the current sample (all PEs, unordered)."""
        ids = self.comm.run_per_pe(self._handle, pe_kernels.item_ids_kernel)
        return np.concatenate(ids) if ids else np.empty(0, dtype=np.int64)

    def sample_items(self) -> List[Tuple[int, float]]:
        """The current sample as ``(item id, key)`` pairs (all PEs, unordered)."""
        out: List[Tuple[int, float]] = []
        for items in self.comm.run_per_pe(self._handle, pe_kernels.items_kernel):
            out.extend((item_id, key) for key, item_id in items)
        return out

    def sample_size(self) -> int:
        return self.store_size()

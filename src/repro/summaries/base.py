"""Shared driver plumbing of the sibling summaries.

Every summary in this package is an SPMD driver over the same stack the
reservoir samplers use: per-PE state behind the communicator's PE-state
layer, picklable kernels from :mod:`repro.summaries.kernels` (plus the
generic query kernels of :mod:`repro.core.pe_kernels`), and global
decisions through the :class:`~repro.selection.engine.OrderStatisticsEngine`.
:class:`DistributedSummary` factors out what they all share — communicator
resolution, the keyset/engine views, sizing, batch splitting and
shutdown — so each sibling only implements its ingest round and its
query surface.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core import pe_kernels
from repro.core.distributed import CommBackedKeySet
from repro.network.base import Communicator, make_communicator
from repro.selection.base import SelectionAlgorithm
from repro.selection.bernoulli_pivot import SinglePivotSelection
from repro.selection.engine import OrderStatisticsEngine

__all__ = ["DistributedSummary", "split_batch"]


def split_batch(
    ids: Sequence[int], values: Sequence[float], p: int
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Split one logical batch into ``p`` contiguous per-PE shards.

    Deterministic (no hashing, no randomness): PE ``i`` receives the
    ``i``-th contiguous slice, sized as evenly as possible.  Convenience
    for the ``ingest`` front doors; callers that already own a per-PE
    partition pass it to ``process_round`` directly.
    """
    ids = np.asarray(ids, dtype=np.int64)
    values = np.asarray(values, dtype=np.float64)
    if ids.shape != values.shape:
        raise ValueError(f"ids and values disagree in shape: {ids.shape} vs {values.shape}")
    bounds = np.linspace(0, ids.shape[0], p + 1).astype(np.int64)
    return [
        (ids[bounds[pe] : bounds[pe + 1]], values[bounds[pe] : bounds[pe + 1]])
        for pe in range(p)
    ]


class DistributedSummary:
    """Base class of the engine-backed distributed summaries.

    Parameters
    ----------
    comm:
        A :class:`~repro.network.base.Communicator` instance, or a backend
        name (``"sim"`` / ``"process"``) combined with ``p``; a
        communicator created from a name is owned by the summary and torn
        down by :meth:`close`.
    policy:
        Selection policy the engine uses for its rank selections; defaults
        to the single-pivot general-case algorithm.
    """

    summary_name = "summary"

    def __init__(
        self,
        comm,
        *,
        p: Optional[int] = None,
        policy: Optional[SelectionAlgorithm] = None,
        **comm_kwargs,
    ) -> None:
        if isinstance(comm, Communicator):
            if p is not None and p != comm.p:
                raise ValueError(f"p ({p}) disagrees with communicator ({comm.p} PEs)")
            self.comm = comm
            self._owns_comm = False
        elif isinstance(comm, str):
            if p is None:
                raise ValueError('p is required when comm is a backend name ("sim"/"process")')
            self.comm = make_communicator(comm, p, **comm_kwargs)
            self._owns_comm = True
        else:
            raise TypeError(f"comm must be a Communicator or a backend name, got {type(comm)!r}")
        self.policy = policy if policy is not None else SinglePivotSelection()
        self._handle = None  # set by the subclass once its state factory is bound
        self._round = 0
        self._items_seen = 0
        self._total_weight = 0.0

    # ------------------------------------------------------------------
    @property
    def p(self) -> int:
        """Number of PEs."""
        return self.comm.p

    @property
    def rounds_processed(self) -> int:
        return self._round

    @property
    def items_seen(self) -> int:
        """Total number of items ingested so far (all PEs)."""
        return self._items_seen

    @property
    def total_weight(self) -> float:
        """Total weight (or count mass) ingested so far (all PEs)."""
        return self._total_weight

    def keyset(self) -> CommBackedKeySet:
        """Key-set view over the per-PE candidate stores."""
        return CommBackedKeySet(self.comm, self._handle)

    def engine(self) -> OrderStatisticsEngine:
        """The order-statistics engine over the current candidate stores."""
        return OrderStatisticsEngine(self.keyset(), self.comm, policy=self.policy)

    def store_size(self) -> int:
        """Total number of candidates held across all PEs."""
        return sum(self.comm.run_per_pe(self._handle, pe_kernels.local_size_kernel))

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the communicator if this summary created it."""
        if self._owns_comm:
            self.comm.shutdown()
            self._owns_comm = False

    def __enter__(self) -> "DistributedSummary":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

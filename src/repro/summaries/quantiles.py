"""Streaming quantile cursors over the distributed order-statistics engine.

Each PE keeps its share of the stream as a sorted key multiset; the
summary tracks one *cursor* per requested quantile fraction.  After every
round a single vectorised
:meth:`~repro.selection.engine.OrderStatisticsEngine.count_le_many`
all-reduce re-ranks every cursor at once (one message of ``q`` words, not
``q`` messages); only cursors that have drifted further than
``eps * total`` ranks from their target are re-established with a full
:meth:`~repro.selection.engine.OrderStatisticsEngine.rank_select`.  For
stationary inputs the cursors stop drifting once the empirical
distribution stabilises, so steady-state rounds cost one small all-reduce
and no selection — the same amortisation idea the variable-size sampler
uses for its threshold.

Every reported quantile is an actual stream element whose global rank is
within ``eps * total`` of the target rank (checked cheaply, enforced by
reselection), so the rank-error guarantee holds at every query point.
"""

from __future__ import annotations

import functools
import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.summaries import kernels
from repro.summaries.base import DistributedSummary, split_batch
from repro.utils.rng import spawn_seed_sequences

__all__ = ["StreamingQuantiles"]


class StreamingQuantiles(DistributedSummary):
    """Track a fixed set of quantiles of a distributed value stream.

    Parameters
    ----------
    phis:
        Quantile fractions, each strictly between 0 and 1 (e.g.
        ``(0.5, 0.9, 0.99)``).
    eps:
        Relative rank tolerance: a cursor is only re-selected when its
        global rank drifts further than ``eps * total`` from the target
        rank ``ceil(phi * total)``.
    """

    summary_name = "quantiles"

    def __init__(
        self,
        phis: Sequence[float],
        comm,
        *,
        p: Optional[int] = None,
        eps: float = 0.01,
        policy=None,
        seed: Optional[int] = 0,
        kernel_tier: str = "numpy",
    ) -> None:
        super().__init__(comm, p=p, policy=policy)
        phis = tuple(float(phi) for phi in phis)
        if not phis:
            raise ValueError("at least one quantile fraction is required")
        for phi in phis:
            if not 0.0 < phi < 1.0:
                raise ValueError(f"quantile fractions must lie in (0, 1), got {phi}")
        if not 0.0 < eps < 1.0:
            raise ValueError(f"eps must lie in (0, 1), got {eps}")
        self.phis = phis
        self.eps = float(eps)
        seed_seqs = spawn_seed_sequences(seed, self.comm.p)
        self._handle = self.comm.create_pe_state(
            functools.partial(
                kernels.make_summary_state, k=len(phis), kernel_tier=kernel_tier
            ),
            per_pe_args=[(ss,) for ss in seed_seqs],
        )
        self._cursors: List[Optional[float]] = [None] * len(phis)
        #: number of cursor re-selections run so far (amortisation metric)
        self.reselections = 0
        self._total = 0

    # ------------------------------------------------------------------
    @staticmethod
    def _target_rank(phi: float, total: int) -> int:
        return max(1, int(math.ceil(phi * total)))

    def process_round(self, batches: Sequence[Tuple[np.ndarray, np.ndarray]]) -> dict:
        """Ingest one round of per-PE ``(ids, values)`` batches.

        Returns a metrics dict (``total``, list of drifted-cursor indices
        that were re-selected this round).
        """
        if len(batches) != self.p:
            raise ValueError(f"expected {self.p} per-PE batches, got {len(batches)}")
        args = [
            (np.asarray(values, dtype=np.float64), np.asarray(ids, dtype=np.int64))
            for ids, values in batches
        ]
        with self.comm.phase("insert"):
            results = self.comm.run_per_pe(self._handle, kernels.value_insert_kernel, args)
        sizes = [size for _, size in results]
        self._items_seen += sum(int(values.shape[0]) for values, _ in args)
        self._total_weight += float(sum(values.sum() for values, _ in args))
        self._round += 1

        engine = self.engine()
        with self.comm.phase("select"):
            total = engine.global_size(sizes=sizes)
        self._total = total
        reselected: List[int] = []
        if total == 0:
            return {"total": 0, "reselected": reselected}

        slack = self.eps * total
        stale = [i for i, cursor in enumerate(self._cursors) if cursor is None]
        live = [i for i, cursor in enumerate(self._cursors) if cursor is not None]
        if live:
            with self.comm.phase("select"):
                ranks = engine.count_le_many([self._cursors[i] for i in live])
            for i, rank in zip(live, ranks.tolist()):
                if abs(rank - self._target_rank(self.phis[i], total)) > slack:
                    stale.append(i)
        for i in sorted(stale):
            with self.comm.phase("select"):
                result = engine.rank_select(self._target_rank(self.phis[i], total))
            self._cursors[i] = result.key
            self.reselections += 1
            reselected.append(i)
        return {"total": total, "reselected": reselected}

    def ingest(self, ids: Sequence[int], values: Sequence[float]) -> dict:
        """Split one logical batch into contiguous per-PE shards and ingest it."""
        return self.process_round(split_batch(ids, values, self.p))

    # ------------------------------------------------------------------
    def quantiles(self) -> Dict[float, float]:
        """The current quantile estimates as ``{phi: value}``.

        Each value is an actual stream element whose global rank is within
        ``eps * total`` of ``ceil(phi * total)``.
        """
        if any(cursor is None for cursor in self._cursors):
            raise RuntimeError("no data ingested yet — quantile cursors are unset")
        return {phi: float(cursor) for phi, cursor in zip(self.phis, self._cursors)}

    def quantile(self, phi: float) -> float:
        """The tracked estimate for one of the configured fractions."""
        try:
            index = self.phis.index(float(phi))
        except ValueError:
            raise KeyError(f"phi={phi} is not tracked (configured: {self.phis})") from None
        cursor = self._cursors[index]
        if cursor is None:
            raise RuntimeError("no data ingested yet — quantile cursors are unset")
        return float(cursor)

"""Distributed heavy hitters: Misra–Gries counters + engine-backed pruning.

Each PE runs a batched Misra–Gries sketch over its share of the (id,
count) stream: a bounded counter table whose overflow is resolved by
subtracting the smallest surviving counter value from *every* counter
(one vectorised decrement per batch instead of one per item).  The
classic guarantee carries over — every estimate undercounts its true
total by at most the PE's accumulated ``error`` — and summing tables and
errors across PEs preserves it globally, so :meth:`HeavyHitters.heavy_hitters`
can report every item above the requested frequency with **no false
negatives** (the recall direction of Misra–Gries).

What the engine adds: the union of the per-PE tables can be ``p`` times
the per-PE budget.  :meth:`HeavyHitters.prune_candidates` rebuilds a
derived keyset (key = negated count estimate), asks the
order-statistics engine for the global rank-``keep`` cutoff, and drops
every counter strictly below it — a global, communication-efficient
shrink that touches no raw stream data and widens the error bound by
exactly the largest dropped estimate per PE.
"""

from __future__ import annotations

import functools
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.summaries import kernels
from repro.summaries.base import DistributedSummary, split_batch
from repro.utils.rng import spawn_seed_sequences
from repro.utils.validation import check_positive_int

__all__ = ["HeavyHitters"]


class HeavyHitters(DistributedSummary):
    """Distributed count-based heavy hitters over (id, count) increments.

    Parameters
    ----------
    k:
        Number of heavy hitters the caller is after; sizes the default
        capacity and the default prune budget.
    capacity:
        Per-PE Misra–Gries counter budget; defaults to ``max(8 * k, 64)``.
        Larger capacity → smaller undercount error.
    prune_every:
        Auto-run :meth:`prune_candidates` every this many rounds
        (``0`` = only when called explicitly).
    """

    summary_name = "heavy_hitters"

    def __init__(
        self,
        k: int,
        comm,
        *,
        p: Optional[int] = None,
        capacity: Optional[int] = None,
        prune_every: int = 0,
        policy=None,
        seed: Optional[int] = 0,
        kernel_tier: str = "numpy",
    ) -> None:
        super().__init__(comm, p=p, policy=policy)
        self.k = check_positive_int(k, "k")
        self.capacity = (
            check_positive_int(capacity, "capacity")
            if capacity is not None
            else max(8 * self.k, 64)
        )
        if self.capacity < self.k:
            raise ValueError(f"capacity ({self.capacity}) must be at least k ({self.k})")
        self.prune_every = int(prune_every)
        self.kernel_tier = kernel_tier
        seed_seqs = spawn_seed_sequences(seed, self.comm.p)
        self._handle = self.comm.create_pe_state(
            functools.partial(
                kernels.make_hh_state,
                k=self.k,
                capacity=self.capacity,
                kernel_tier=kernel_tier,
            ),
            per_pe_args=[(ss,) for ss in seed_seqs],
        )
        #: total counters dropped by engine-backed prunes so far
        self.pruned_total = 0

    # ------------------------------------------------------------------
    def process_round(self, batches: Sequence[Tuple[np.ndarray, np.ndarray]]) -> dict:
        """Fold one round of per-PE ``(ids, counts)`` batches into the sketch."""
        if len(batches) != self.p:
            raise ValueError(f"expected {self.p} per-PE batches, got {len(batches)}")
        args = [
            (np.asarray(ids, dtype=np.int64), np.asarray(counts, dtype=np.float64))
            for ids, counts in batches
        ]
        with self.comm.phase("insert"):
            results = self.comm.run_per_pe(self._handle, kernels.hh_update_kernel, args)
        self._items_seen += sum(batch for _, batch in results)
        self._total_weight += float(sum(counts.sum() for _, counts in args))
        self._round += 1
        pruned = 0
        if self.prune_every > 0 and self._round % self.prune_every == 0:
            pruned = self.prune_candidates()
        return {
            "table_sizes": [size for size, _ in results],
            "pruned": pruned,
        }

    def ingest(self, ids: Sequence[int], counts: Optional[Sequence[float]] = None) -> dict:
        """Split one logical batch into contiguous per-PE shards and ingest it.

        ``counts`` defaults to 1 per occurrence (plain frequency counting).
        """
        ids = np.asarray(ids, dtype=np.int64)
        if counts is None:
            counts = np.ones(ids.shape[0], dtype=np.float64)
        return self.process_round(split_batch(ids, counts, self.p))

    # ------------------------------------------------------------------
    def prune_candidates(self, keep: Optional[int] = None) -> int:
        """Shrink the union of counter tables to ~``keep`` global candidates.

        Rebuilds the derived candidate keyset (key = negated count
        estimate) on every PE, selects the global rank-``keep`` cutoff via
        the engine, and drops every counter strictly below the cutoff
        count.  Returns the number of counters dropped.  ``keep`` defaults
        to the per-PE ``capacity`` and must be at least ``k`` — pruning
        never removes a candidate that could still be among the reported
        top-``k``-by-estimate.
        """
        keep = self.capacity if keep is None else check_positive_int(keep, "keep")
        if keep < self.k:
            raise ValueError(f"keep ({keep}) must be at least k ({self.k})")
        with self.comm.phase("select"):
            sizes = self.comm.run_per_pe(self._handle, kernels.hh_sync_kernel)
        engine = self.engine()
        with self.comm.phase("select"):
            total = engine.global_size(sizes=sizes)
        update = engine.threshold_update(keep, total=total, tighten_at_exact=False)
        if update.threshold is None:
            return 0
        with self.comm.phase("threshold"):
            results = self.comm.run_per_pe(
                self._handle, kernels.hh_prune_kernel, [(update.threshold,)] * self.p
            )
        dropped = sum(d for d, _ in results)
        self.pruned_total += dropped
        return dropped

    # ------------------------------------------------------------------
    def candidates(self) -> Tuple[Dict[int, float], float]:
        """Merged candidate table and global error bound.

        Returns ``(estimates, error)`` where every true total satisfies
        ``estimates.get(id, 0) <= true(id) <= estimates.get(id, 0) + error``.
        """
        merged: Dict[int, float] = {}
        error = 0.0
        with self.comm.phase("gather"):
            per_pe = self.comm.run_per_pe(self._handle, kernels.hh_candidates_kernel)
        for ids, counts, pe_error in per_pe:
            error += float(pe_error)
            for item_id, count in zip(ids.tolist(), counts.tolist()):
                merged[item_id] = merged.get(item_id, 0.0) + count
        return merged, error

    def heavy_hitters(self, phi: float) -> List[Tuple[int, float]]:
        """Every item that *may* have total count at least ``phi * N``.

        Misra–Gries recall guarantee: any item whose true total reaches
        ``phi * N`` appears in the output (its estimate is at least
        ``phi * N - error``).  Precision is best-effort — callers needing
        it re-count the (few) returned candidates exactly.  Sorted by
        descending estimate, ties by ascending id.
        """
        if not 0.0 < phi <= 1.0:
            raise ValueError(f"phi must lie in (0, 1], got {phi}")
        merged, error = self.candidates()
        cut = phi * self._total_weight - error
        out = [(item_id, est) for item_id, est in merged.items() if est >= cut]
        out.sort(key=lambda pair: (-pair[1], pair[0]))
        return out

    def top(self, m: Optional[int] = None) -> List[Tuple[int, float]]:
        """The ``m`` (default ``k``) largest estimates, descending."""
        m = self.k if m is None else check_positive_int(m, "m")
        merged, _ = self.candidates()
        out = sorted(merged.items(), key=lambda pair: (-pair[1], pair[0]))
        return out[:m]

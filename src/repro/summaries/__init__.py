"""Sibling summaries built on the distributed order-statistics engine.

The paper's selection machinery answers "what key has global rank ``r``
over ``p`` sorted multisets" with communication independent of the data
size.  Reservoir sampling is one client of that primitive; this package
ships four more, all driven through the same
:class:`~repro.selection.engine.OrderStatisticsEngine` verbs, the same
picklable per-PE kernel pattern, and therefore byte-identical across the
``"sim"`` and ``"process"`` execution backends:

======================================  =====================================
Class                                   Summary
======================================  =====================================
:class:`~repro.summaries.topk.DistributedTopK`
                                        exact weighted top-``k`` (key =
                                        negated weight, rank-``k`` prune)
:class:`~repro.summaries.quantiles.StreamingQuantiles`
                                        quantile cursors re-ranked by one
                                        vector counting all-reduce per round
:class:`~repro.summaries.heavy.HeavyHitters`
                                        Misra–Gries counters with
                                        engine-backed global candidate prune
:class:`~repro.summaries.recency.RecencyReservoir`
                                        weighted sample with exponential
                                        recency boost (log-space static keys)
======================================  =====================================

:class:`~repro.summaries.topk.DistributedTopK` and
:class:`~repro.summaries.recency.RecencyReservoir` checkpoint/restore
through :func:`repro.checkpoint.snapshot_summary` /
:func:`repro.checkpoint.restore_summary`.
"""

from repro.summaries.base import DistributedSummary, split_batch
from repro.summaries.heavy import HeavyHitters
from repro.summaries.quantiles import StreamingQuantiles
from repro.summaries.recency import RecencyReservoir
from repro.summaries.topk import DistributedTopK

__all__ = [
    "DistributedSummary",
    "split_batch",
    "DistributedTopK",
    "StreamingQuantiles",
    "HeavyHitters",
    "RecencyReservoir",
]

"""Per-PE kernels of the sibling summaries.

Same contract as :mod:`repro.core.pe_kernels`: module-level picklable
functions taking the PE-state dict first, returning picklable values, so
both execution backends run the identical code (byte-identical results)
and the multiprocess backend can ship them to its workers by reference.

The summary states deliberately share the slot layout of
:func:`repro.core.pe_kernels.make_pe_state` (``"pe"``, ``"rng"``,
``"gen_rng"``, ``"reservoir"`` holding a
:class:`~repro.core.local_reservoir.LocalReservoir`, ``"kernel_tier"``,
``"stream"``, ``"prepared"``, ``"tracer"``), which buys three things for
free:

* every generic query/selection kernel of :mod:`repro.core.pe_kernels`
  (``count_le_kernel``, ``window_counts_kernel``,
  ``propose_pivots_kernel``, ``prune_kernel``, ``items_kernel``, …) —
  and through them the whole :class:`~repro.core.distributed.CommBackedKeySet`
  + :class:`~repro.selection.engine.OrderStatisticsEngine` stack —
  operates on summary state unchanged;
* checkpointing via ``export_pe_state_kernel`` /
  ``import_pe_state_kernel`` works for the fixed-``k`` summaries;
* tracing heartbeats (``"tracer"`` / ``"beat"`` slots) compose unchanged.

The heavy-hitter state additionally carries a ``"counts"`` dict (the
Misra–Gries counters) and a scalar ``"hh_error"`` undercount bound; its
``"reservoir"`` is a *derived* candidate keyset (key = negated count)
rebuilt by :func:`hh_sync_kernel` before each engine-backed prune.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.core import jit_kernels
from repro.core.local_reservoir import LocalReservoir
from repro.core.pe_kernels import _beat_phase, _state_tracer
from repro.obs.tracer import NULL_TRACER

__all__ = [
    "make_summary_state",
    "make_hh_state",
    "topk_insert_kernel",
    "value_insert_kernel",
    "recency_insert_kernel",
    "hh_update_kernel",
    "hh_sync_kernel",
    "hh_prune_kernel",
    "hh_candidates_kernel",
]


# ---------------------------------------------------------------------------
# state factories
# ---------------------------------------------------------------------------
def make_summary_state(
    pe: int,
    seed_seq: np.random.SeedSequence,
    *,
    k: int,
    kernel_tier: str = "numpy",
) -> Dict[str, object]:
    """PE state shared by the top-k, quantile and recency summaries.

    ``seed_seq`` must come from ``spawn_seed_sequences(seed, p)[pe]`` so
    the per-PE random streams are identical across backends; the pivot
    proposals of the engine's selections consume ``"rng"`` exactly like
    the samplers' do.
    """
    tier = jit_kernels.resolve_kernel_tier(kernel_tier)
    return {
        "pe": int(pe),
        "rng": np.random.default_rng(seed_seq),
        "gen_rng": np.random.default_rng(seed_seq.spawn(1)[0]),
        "reservoir": LocalReservoir(kernel_tier=tier),
        "k": int(k),
        "kernel_tier": tier,
        "stream": None,
        "prepared": None,
        "tracer": NULL_TRACER,
    }


def make_hh_state(
    pe: int,
    seed_seq: np.random.SeedSequence,
    *,
    k: int,
    capacity: int,
    kernel_tier: str = "numpy",
) -> Dict[str, object]:
    """PE state of the heavy-hitter summary: Misra–Gries counters on top.

    ``capacity`` bounds the per-PE counter table; overflowing it triggers
    the batched Misra–Gries decrement in :func:`hh_update_kernel`.
    """
    state = make_summary_state(pe, seed_seq, k=k, kernel_tier=kernel_tier)
    state["counts"] = {}
    state["hh_capacity"] = int(capacity)
    state["hh_error"] = 0.0
    return state


# ---------------------------------------------------------------------------
# weighted top-k
# ---------------------------------------------------------------------------
def topk_insert_kernel(
    state: Dict[str, object], ids: np.ndarray, weights: np.ndarray
) -> Tuple[int, int]:
    """Ingest one batch into the local top-``k`` candidate store.

    Keys are negated weights, so "globally largest ``k`` weights" becomes
    "globally smallest ``k`` keys" and the whole rank-select machinery
    applies verbatim.  The local filter keeps only keys at most the local
    ``k``-th key — *inclusive*, so weight ties at the boundary are never
    lost locally (any globally needed tie survives on some PE; see the
    exactness test).  Returns ``(inserted, size)``.
    """
    res: LocalReservoir = state["reservoir"]
    ids = np.asarray(ids, dtype=np.int64)
    if ids.shape[0] == 0:
        return 0, len(res)
    with _beat_phase(state, "insert", int(ids.shape[0]), bump_round=True), _state_tracer(
        state
    ).span("insert", cat="kernel", items=int(ids.shape[0])):
        keys = -np.asarray(weights, dtype=np.float64)
        k = int(state["k"])
        if len(res) >= k:
            boundary = res.kth_key(k)
            mask = keys <= boundary
            keys, ids = keys[mask], ids[mask]
        inserted = int(res.insert_batch(keys, ids)) if keys.shape[0] else 0
    return inserted, len(res)


# ---------------------------------------------------------------------------
# streaming quantiles
# ---------------------------------------------------------------------------
def value_insert_kernel(
    state: Dict[str, object], values: np.ndarray, ids: np.ndarray
) -> Tuple[int, int]:
    """Ingest one batch of raw values (key = value) into the local store.

    The quantile summary keeps every value, sorted per PE — the engine
    then answers rank/count queries over the exact global distribution.
    Returns ``(inserted, size)``.
    """
    res: LocalReservoir = state["reservoir"]
    values = np.asarray(values, dtype=np.float64)
    if values.shape[0] == 0:
        return 0, len(res)
    with _beat_phase(state, "insert", int(values.shape[0]), bump_round=True), _state_tracer(
        state
    ).span("insert", cat="kernel", items=int(values.shape[0])):
        inserted = int(res.insert_batch(values, np.asarray(ids, dtype=np.int64)))
    return inserted, len(res)


# ---------------------------------------------------------------------------
# recency reservoir
# ---------------------------------------------------------------------------
def recency_insert_kernel(
    state: Dict[str, object],
    ids: np.ndarray,
    weights: np.ndarray,
    stamps: np.ndarray,
    threshold: Optional[float],
    log_recency: float,
    weighted: bool,
) -> Tuple[int, int]:
    """Ingest one stamped batch under the recency-multiplier key transform.

    An item arriving at stamp ``t`` with weight ``w`` behaves as if its
    weight were ``w * r^t`` for recency multiplier ``r >= 1`` — the
    principled version of the ThirdAI recency heuristic.  Factoring out
    the query-time constant leaves the *static* log-space key

        ``L = ln(-ln U) - ln w - t * ln r``

    (:func:`repro.window.decayed.decayed_log_keys` with
    ``log_decay = -ln r``), so the standard threshold / prune / select
    machinery applies unchanged; with ``r == 1`` the summary degenerates
    to classic weighted reservoir sampling.  Keys are generated densely
    (one uniform per item — the stamp term forbids jump skipping) and
    filtered against the global threshold.  Returns ``(inserted, size)``.
    """
    res: LocalReservoir = state["reservoir"]
    from repro.window.decayed import decayed_log_keys

    ids = np.asarray(ids, dtype=np.int64)
    if ids.shape[0] == 0:
        return 0, len(res)
    with _beat_phase(state, "insert", int(ids.shape[0]), bump_round=True), _state_tracer(
        state
    ).span("insert", cat="kernel", items=int(ids.shape[0])):
        weights = (
            np.asarray(weights, dtype=np.float64)
            if weighted
            else np.ones(ids.shape[0], dtype=np.float64)
        )
        keys = decayed_log_keys(weights, stamps, -float(log_recency), state["rng"])
        inserted = int(res.insert_batch(keys, ids, threshold=threshold))
    return inserted, len(res)


# ---------------------------------------------------------------------------
# heavy hitters (Misra–Gries counters + engine-backed candidate pruning)
# ---------------------------------------------------------------------------
def hh_update_kernel(
    state: Dict[str, object], ids: np.ndarray, counts: np.ndarray
) -> Tuple[int, int]:
    """Fold one batch of (id, count) increments into the local counters.

    Batched Misra–Gries: when the counter table outgrows its capacity the
    smallest counters are removed by subtracting the ``excess``-th
    smallest value from *every* counter (dropping the non-positive ones)
    and the subtracted value is added to the PE's ``"hh_error"`` —
    every surviving estimate undercounts its true total by at most the
    accumulated error.  Returns ``(table_size, batch_items)``.
    """
    table: dict = state["counts"]
    ids = np.asarray(ids, dtype=np.int64)
    if ids.shape[0] == 0:
        return len(table), 0
    with _beat_phase(state, "insert", int(ids.shape[0]), bump_round=True), _state_tracer(
        state
    ).span("insert", cat="kernel", items=int(ids.shape[0])):
        counts = np.asarray(counts, dtype=np.float64)
        unique_ids, inverse = np.unique(ids, return_inverse=True)
        added = np.bincount(inverse, weights=counts)
        for item_id, inc in zip(unique_ids.tolist(), added.tolist()):
            table[item_id] = table.get(item_id, 0.0) + inc
        capacity = int(state["hh_capacity"])
        excess = len(table) - capacity
        if excess > 0:
            values = np.fromiter(table.values(), dtype=np.float64, count=len(table))
            delta = float(np.partition(values, excess - 1)[excess - 1])
            state["hh_error"] = float(state["hh_error"]) + delta
            for item_id in [i for i, c in table.items() if c <= delta]:
                del table[item_id]
            for item_id in table:
                table[item_id] -= delta
    return len(table), int(ids.shape[0])


def hh_sync_kernel(state: Dict[str, object]) -> int:
    """Rebuild the derived candidate keyset from the counter table.

    Key = negated count, id = item — "globally largest counts" becomes
    "globally smallest keys", so the engine's ``rank_select`` finds the
    global candidate-count cutoff.  Returns the keyset size.
    """
    res: LocalReservoir = state["reservoir"]
    table: dict = state["counts"]
    res.prune_to_rank(0)
    if table:
        ids = np.fromiter(table.keys(), dtype=np.int64, count=len(table))
        values = np.fromiter(table.values(), dtype=np.float64, count=len(table))
        res.insert_batch(-values, ids)
    return len(res)


def hh_prune_kernel(state: Dict[str, object], cutoff_key: float) -> Tuple[int, int]:
    """Drop counters whose negated count exceeds the agreed cutoff key.

    The engine selected ``cutoff_key`` as the global rank-``m`` candidate
    boundary; counters strictly above it (count strictly below the
    cutoff count) cannot be global heavy hitters *given the error bound*,
    which grows by the largest dropped estimate.  Returns
    ``(dropped, table_size)``.
    """
    table: dict = state["counts"]
    cutoff = float(cutoff_key)
    with _beat_phase(state, "threshold"), _state_tracer(state).span(
        "threshold", cat="kernel"
    ):
        doomed = [item_id for item_id, count in table.items() if -count > cutoff]
        if doomed:
            state["hh_error"] = float(state["hh_error"]) + max(
                table[item_id] for item_id in doomed
            )
            for item_id in doomed:
                del table[item_id]
        res: LocalReservoir = state["reservoir"]
        res.prune_above_key(cutoff, inclusive=False)
    return len(doomed), len(table)


def hh_candidates_kernel(
    state: Dict[str, object],
) -> Tuple[np.ndarray, np.ndarray, float]:
    """The PE's candidate table as ``(ids, counts, error)`` arrays.

    Ids are sorted so the coordinator-side merge is deterministic.
    """
    table: dict = state["counts"]
    with _beat_phase(state, "gather"), _state_tracer(state).span("gather", cat="kernel"):
        if not table:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64), float(
                state["hh_error"]
            )
        ids = np.fromiter(table.keys(), dtype=np.int64, count=len(table))
        order = np.argsort(ids, kind="stable")
        counts = np.fromiter(table.values(), dtype=np.float64, count=len(table))
        return ids[order], counts[order], float(state["hh_error"])

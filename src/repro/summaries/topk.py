"""Exact distributed weighted top-``k`` via rank selection.

The engine makes exact top-``k`` cheap: store candidates under the key
``-weight`` so the globally heaviest ``k`` items are the globally
*smallest* ``k`` keys, re-establish the global rank-``k`` key once per
round with :meth:`~repro.selection.engine.OrderStatisticsEngine.threshold_update`,
and prune everything above it (ties at the boundary survive the prune, so
no globally tied item is ever lost).  Between selections, each PE filters
incoming items against its *local* ``k``-th key — any key strictly above
it is at least the global ``k``-th key and provably cannot belong to the
answer.  The result is exact (not approximate): the returned weight
multiset equals the brute-force top-``k`` of everything ingested, with
ties at the boundary broken deterministically by item id.
"""

from __future__ import annotations

import functools
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core import pe_kernels
from repro.summaries import kernels
from repro.summaries.base import DistributedSummary, split_batch
from repro.utils.rng import spawn_seed_sequences
from repro.utils.validation import check_positive_int

__all__ = ["DistributedTopK"]


class DistributedTopK(DistributedSummary):
    """Exact weighted top-``k`` over a distributed stream.

    Parameters
    ----------
    k:
        Number of heaviest items to maintain.
    comm:
        Communicator instance, or backend name with ``p``.
    seed:
        Per-PE random streams (consumed only by the engine's pivot
        proposals) are derived from this seed, so results are
        byte-identical across execution backends.
    """

    summary_name = "topk"

    def __init__(
        self,
        k: int,
        comm,
        *,
        p: Optional[int] = None,
        policy=None,
        seed: Optional[int] = 0,
        kernel_tier: str = "numpy",
    ) -> None:
        super().__init__(comm, p=p, policy=policy)
        self.k = check_positive_int(k, "k")
        self.kernel_tier = kernel_tier
        seed_seqs = spawn_seed_sequences(seed, self.comm.p)
        self._handle = self.comm.create_pe_state(
            functools.partial(kernels.make_summary_state, k=self.k, kernel_tier=kernel_tier),
            per_pe_args=[(ss,) for ss in seed_seqs],
        )
        #: key of the global rank-``k`` candidate after the last selection
        self.threshold: Optional[float] = None

    # ------------------------------------------------------------------
    def process_round(self, batches: Sequence[Tuple[np.ndarray, np.ndarray]]) -> dict:
        """Ingest one round of per-PE ``(ids, weights)`` batches.

        Returns a small metrics dict (``total`` candidates after insert,
        ``threshold``, whether a ``selection_ran``).
        """
        if len(batches) != self.p:
            raise ValueError(f"expected {self.p} per-PE batches, got {len(batches)}")
        args = [
            (np.asarray(ids, dtype=np.int64), np.asarray(weights, dtype=np.float64))
            for ids, weights in batches
        ]
        with self.comm.phase("insert"):
            results = self.comm.run_per_pe(self._handle, kernels.topk_insert_kernel, args)
        sizes = [size for _, size in results]
        self._items_seen += sum(int(ids.shape[0]) for ids, _ in args)
        self._total_weight += float(sum(weights.sum() for _, weights in args))
        self._round += 1

        engine = self.engine()
        with self.comm.phase("select"):
            total = engine.global_size(sizes=sizes)
        update = engine.threshold_update(self.k, total=total, tighten_at_exact=False)
        if update.threshold is not None:
            self.threshold = update.threshold
            with self.comm.phase("threshold"):
                self.comm.run_per_pe(
                    self._handle, pe_kernels.prune_kernel, [(self.threshold,)] * self.p
                )
        return {
            "total": total,
            "threshold": self.threshold,
            "selection_ran": update.selection_ran,
        }

    def ingest(self, ids: Sequence[int], weights: Sequence[float]) -> dict:
        """Split one logical batch into contiguous per-PE shards and ingest it."""
        return self.process_round(split_batch(ids, weights, self.p))

    # ------------------------------------------------------------------
    def top_k(self) -> List[Tuple[int, float]]:
        """The current top-``k`` as ``(item id, weight)``, heaviest first.

        Ties at the boundary weight are broken by the smaller item id, so
        the answer is deterministic and identical across backends.
        """
        pairs: List[Tuple[float, int]] = []
        with self.comm.phase("gather"):
            for items in self.comm.run_per_pe(self._handle, pe_kernels.items_kernel):
                pairs.extend(items)
        pairs.sort(key=lambda pair: (pair[0], pair[1]))
        return [(item_id, -key) for key, item_id in pairs[: self.k]]

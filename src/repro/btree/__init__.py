"""B+ tree substrate (paper Section 3.2).

The local reservoirs of the distributed sampler are maintained as augmented
B+ trees: search trees whose leaves hold the (key, item) pairs and whose
inner nodes store separator keys plus subtree sizes, so that ``rank`` and
``select`` queries run in logarithmic time.  Leaves are linked, which gives
ordered iteration and next/previous access in constant time per step.
"""

from repro.btree.bplustree import BPlusTree
from repro.btree.node import InnerNode, LeafNode

__all__ = ["BPlusTree", "InnerNode", "LeafNode"]

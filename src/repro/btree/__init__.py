"""B+ tree substrate (paper Section 3.2).

The paper maintains each PE's local reservoir as an augmented B+ tree: a
search tree whose leaves hold the (key, item) pairs and whose inner nodes
store separator keys plus subtree sizes, so that ``rank`` and ``select``
queries run in logarithmic time.  Leaves are linked, which gives ordered
iteration and next/previous access in constant time per step.

In this reproduction the tree backs the ``store="btree"`` reservoir
backend (:class:`repro.core.store.BTreeStore`) — the paper-faithful data
structure, kept for the ablation study — while the default ``"merge"``
backend ingests whole mini-batches with vectorized numpy merges; see
:mod:`repro.core.store` for the trade-offs.
"""

from repro.btree.bplustree import BPlusTree
from repro.btree.node import InnerNode, LeafNode

__all__ = ["BPlusTree", "InnerNode", "LeafNode"]

"""An augmented B+ tree with rank/select and suffix-split support.

This is the search-tree substrate of the paper (Section 3.2), in which the
local reservoirs of the distributed sampler are kept in B+ trees so that

* inserting a new candidate item costs ``O(log n)``,
* ``rank`` (how many stored keys are below a value) and ``select`` (the item
  with the r-th smallest key) queries cost ``O(log n)``, which is what the
  distributed selection algorithms of Section 3.3 need, and
* pruning all items whose keys exceed the new global threshold
  (``splitAt`` in Algorithm 1) walks only the right spine of the tree.

Keys are floats (the exponential/uniform variates associated with the
items); values are opaque payloads, typically integer item identifiers.
Duplicate keys are allowed and handled consistently by all queries.

Notes on fidelity
-----------------
``insert``, ``erase``, ``rank``, ``select`` and ``truncate_to_rank`` follow
the standard logarithmic B+-tree algorithms.  ``split_at_rank`` (which also
*returns* the removed suffix) and ``join`` materialise the affected items
and bulk-load them, i.e. they are linear in the size of the moved part
rather than logarithmic as in the TLX-based C++ implementation used by the
paper; the simulated cost model nevertheless charges the paper's
logarithmic bound.  Algorithm 1 itself only ever needs the suffix *discard*
(:meth:`truncate_to_rank`), which is implemented with the efficient
spine-cut algorithm.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.btree.node import InnerNode, LeafNode

__all__ = ["BPlusTree"]


class BPlusTree:
    """Augmented B+ tree mapping float keys to arbitrary payloads.

    Parameters
    ----------
    order:
        Maximum number of children of an inner node; leaves hold at most
        ``order`` items.  Must be at least 4.  Every node except the root is
        kept at least half full.
    """

    DEFAULT_ORDER = 16

    def __init__(self, order: int = DEFAULT_ORDER) -> None:
        if order < 4:
            raise ValueError(f"order must be at least 4, got {order}")
        self._order = int(order)
        self._leaf_capacity = int(order)
        self._min_leaf = (self._leaf_capacity + 1) // 2
        self._min_children = (self._order + 1) // 2
        self._root: Optional[object] = None
        self._size = 0

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def order(self) -> int:
        """Maximum fan-out of the tree's nodes."""
        return self._order

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    @property
    def height(self) -> int:
        """Number of levels of the tree (0 for an empty tree)."""
        h = 0
        node = self._root
        while node is not None:
            h += 1
            if node.is_leaf:
                break
            node = node.children[0]
        return h

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_sorted_items(
        cls, items: Sequence[Tuple[float, object]], order: int = DEFAULT_ORDER
    ) -> "BPlusTree":
        """Bulk-load a tree from items already sorted by key."""
        tree = cls(order=order)
        tree._bulk_load(list(items))
        return tree

    @classmethod
    def from_items(
        cls, items: Iterable[Tuple[float, object]], order: int = DEFAULT_ORDER
    ) -> "BPlusTree":
        """Build a tree from an arbitrary iterable of (key, value) pairs."""
        pairs = sorted(items, key=lambda kv: kv[0])
        return cls.from_sorted_items(pairs, order=order)

    def _bulk_load(self, pairs: List[Tuple[float, object]]) -> None:
        """Replace the contents of the tree with ``pairs`` (sorted by key)."""
        self._root = None
        self._size = 0
        if not pairs:
            return
        for i in range(1, len(pairs)):
            if pairs[i - 1][0] > pairs[i][0]:
                raise ValueError("bulk load requires items sorted by key")
        # Build leaves with a fill factor that keeps every leaf legal.
        fill = max(self._min_leaf, (self._leaf_capacity * 3) // 4)
        n = len(pairs)
        leaves: List[LeafNode] = []
        start = 0
        while start < n:
            remaining = n - start
            if remaining <= self._leaf_capacity:
                end = n
            else:
                end = start + fill
                # Avoid creating a final underfull leaf.
                if n - end < self._min_leaf:
                    end = n - self._min_leaf
            leaf = LeafNode()
            leaf.keys = [kv[0] for kv in pairs[start:end]]
            leaf.values = [kv[1] for kv in pairs[start:end]]
            leaves.append(leaf)
            start = end
        for left, right in zip(leaves, leaves[1:]):
            left.next = right
            right.prev = left
        # Build inner levels bottom-up.
        level: List[object] = list(leaves)
        while len(level) > 1:
            fanout = max(self._min_children, (self._order * 3) // 4)
            parents: List[InnerNode] = []
            start = 0
            while start < len(level):
                remaining = len(level) - start
                if remaining <= self._order:
                    end = len(level)
                else:
                    end = start + fanout
                    if len(level) - end < self._min_children:
                        end = len(level) - self._min_children
                parent = InnerNode()
                parent.children = level[start:end]
                parent.separators = [child.max_key for child in parent.children]
                parent.counts = [child.size for child in parent.children]
                parents.append(parent)
                start = end
            level = parents
        self._root = level[0]
        self._size = n

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def min_item(self) -> Tuple[float, object]:
        """Return the (key, value) pair with the smallest key."""
        if self._size == 0:
            raise IndexError("min_item of empty tree")
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        return node.keys[0], node.values[0]

    def max_item(self) -> Tuple[float, object]:
        """Return the (key, value) pair with the largest key."""
        if self._size == 0:
            raise IndexError("max_item of empty tree")
        node = self._root
        while not node.is_leaf:
            node = node.children[-1]
        return node.keys[-1], node.values[-1]

    def min_key(self) -> float:
        return self.min_item()[0]

    def max_key(self) -> float:
        return self.max_item()[0]

    def select(self, rank: int) -> Tuple[float, object]:
        """Return the item with the ``rank``-th smallest key (0-indexed)."""
        if rank < 0 or rank >= self._size:
            raise IndexError(f"rank {rank} out of range for tree of size {self._size}")
        node = self._root
        r = int(rank)
        while not node.is_leaf:
            for i, cnt in enumerate(node.counts):
                if r < cnt:
                    node = node.children[i]
                    break
                r -= cnt
            else:  # pragma: no cover - defensive, counts are kept in sync
                raise RuntimeError("subtree counts out of sync")
        return node.keys[r], node.values[r]

    def count_less(self, key: float) -> int:
        """Number of stored items with key strictly smaller than ``key``."""
        node = self._root
        if node is None:
            return 0
        total = 0
        while not node.is_leaf:
            descend = None
            for i, sep in enumerate(node.separators):
                if sep < key:
                    total += node.counts[i]
                else:
                    descend = node.children[i]
                    break
            if descend is None:
                return total
            node = descend
        return total + bisect_left(node.keys, key)

    def count_le(self, key: float) -> int:
        """Number of stored items with key smaller than or equal to ``key``."""
        node = self._root
        if node is None:
            return 0
        total = 0
        while not node.is_leaf:
            descend = None
            for i, sep in enumerate(node.separators):
                if sep <= key:
                    total += node.counts[i]
                else:
                    descend = node.children[i]
                    break
            if descend is None:
                return total
            node = descend
        return total + bisect_right(node.keys, key)

    def rank_of_key(self, key: float) -> int:
        """Alias for :meth:`count_less` (the rank a new ``key`` would get)."""
        return self.count_less(key)

    def __contains__(self, key: float) -> bool:
        return self.count_le(key) > self.count_less(key)

    def get(self, key: float, default: object = None) -> object:
        """Return the payload of the first item with exactly this key."""
        rank = self.count_less(key)
        if rank >= self._size:
            return default
        found_key, value = self.select(rank)
        return value if found_key == key else default

    # ------------------------------------------------------------------
    # iteration
    # ------------------------------------------------------------------
    def _first_leaf(self) -> Optional[LeafNode]:
        node = self._root
        if node is None:
            return None
        while not node.is_leaf:
            node = node.children[0]
        return node

    def _last_leaf(self) -> Optional[LeafNode]:
        node = self._root
        if node is None:
            return None
        while not node.is_leaf:
            node = node.children[-1]
        return node

    def items(self) -> Iterator[Tuple[float, object]]:
        """Iterate over all (key, value) pairs in increasing key order."""
        leaf = self._first_leaf()
        while leaf is not None:
            yield from zip(leaf.keys, leaf.values)
            leaf = leaf.next

    def keys(self) -> Iterator[float]:
        """Iterate over all keys in increasing order."""
        for key, _ in self.items():
            yield key

    def values(self) -> Iterator[object]:
        """Iterate over all payloads in increasing key order."""
        for _, value in self.items():
            yield value

    def keys_array(self) -> np.ndarray:
        """All keys as a sorted ``float64`` numpy array."""
        return np.fromiter(self.keys(), dtype=np.float64, count=self._size)

    def items_in_rank_range(self, lo: int, hi: int) -> List[Tuple[float, object]]:
        """Items with ranks in ``[lo, hi)`` in increasing key order."""
        lo = max(0, int(lo))
        hi = min(self._size, int(hi))
        if lo >= hi:
            return []
        out: List[Tuple[float, object]] = []
        # Walk to the leaf containing rank ``lo``, then follow leaf links.
        node = self._root
        r = lo
        while not node.is_leaf:
            for i, cnt in enumerate(node.counts):
                if r < cnt:
                    node = node.children[i]
                    break
                r -= cnt
        remaining = hi - lo
        leaf: Optional[LeafNode] = node
        idx = r
        while leaf is not None and remaining > 0:
            take = min(remaining, len(leaf.keys) - idx)
            out.extend(zip(leaf.keys[idx : idx + take], leaf.values[idx : idx + take]))
            remaining -= take
            leaf = leaf.next
            idx = 0
        return out

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------
    def insert(self, key: float, value: object) -> None:
        """Insert an item; duplicate keys are permitted."""
        key = float(key)
        if self._root is None:
            leaf = LeafNode()
            leaf.keys.append(key)
            leaf.values.append(value)
            self._root = leaf
            self._size = 1
            return
        split = self._insert(self._root, key, value)
        if split is not None:
            new_root = InnerNode()
            new_root.children = [self._root, split]
            new_root.separators = [self._root.max_key, split.max_key]
            new_root.counts = [self._root.size, split.size]
            self._root = new_root
        self._size += 1

    def update(self, pairs: Iterable[Tuple[float, object]]) -> None:
        """Insert every (key, value) pair from ``pairs``."""
        for key, value in pairs:
            self.insert(key, value)

    def _insert(self, node: object, key: float, value: object) -> Optional[object]:
        if node.is_leaf:
            idx = bisect_right(node.keys, key)
            node.keys.insert(idx, key)
            node.values.insert(idx, value)
            if len(node.keys) > self._leaf_capacity:
                return self._split_leaf(node)
            return None
        i = node.child_index_for_key(key)
        split = self._insert(node.children[i], key, value)
        node.refresh_child(i)
        if split is not None:
            node.children.insert(i + 1, split)
            node.separators.insert(i + 1, split.max_key)
            node.counts.insert(i + 1, split.size)
            node.refresh_child(i)
            if len(node.children) > self._order:
                return self._split_inner(node)
        return None

    def _split_leaf(self, leaf: LeafNode) -> LeafNode:
        mid = len(leaf.keys) // 2
        right = LeafNode()
        right.keys = leaf.keys[mid:]
        right.values = leaf.values[mid:]
        del leaf.keys[mid:]
        del leaf.values[mid:]
        right.next = leaf.next
        if right.next is not None:
            right.next.prev = right
        right.prev = leaf
        leaf.next = right
        return right

    def _split_inner(self, node: InnerNode) -> InnerNode:
        mid = len(node.children) // 2
        right = InnerNode()
        right.children = node.children[mid:]
        right.separators = node.separators[mid:]
        right.counts = node.counts[mid:]
        del node.children[mid:]
        del node.separators[mid:]
        del node.counts[mid:]
        return right

    # ------------------------------------------------------------------
    # deletion
    # ------------------------------------------------------------------
    def erase_at(self, rank: int) -> Tuple[float, object]:
        """Remove and return the item with the ``rank``-th smallest key."""
        if rank < 0 or rank >= self._size:
            raise IndexError(f"rank {rank} out of range for tree of size {self._size}")
        result = self._erase_at(self._root, int(rank))
        self._size -= 1
        self._collapse_root()
        return result

    def erase(self, key: float) -> object:
        """Remove the first item whose key equals ``key`` and return its payload."""
        rank = self.count_less(key)
        if rank >= self._size:
            raise KeyError(key)
        found_key, _ = self.select(rank)
        if found_key != key:
            raise KeyError(key)
        _, value = self.erase_at(rank)
        return value

    def pop_max(self) -> Tuple[float, object]:
        """Remove and return the item with the largest key."""
        if self._size == 0:
            raise IndexError("pop_max of empty tree")
        return self.erase_at(self._size - 1)

    def pop_min(self) -> Tuple[float, object]:
        """Remove and return the item with the smallest key."""
        if self._size == 0:
            raise IndexError("pop_min of empty tree")
        return self.erase_at(0)

    def _erase_at(self, node: object, rank: int) -> Tuple[float, object]:
        if node.is_leaf:
            key = node.keys.pop(rank)
            value = node.values.pop(rank)
            return key, value
        i = 0
        while rank >= node.counts[i]:
            rank -= node.counts[i]
            i += 1
        result = self._erase_at(node.children[i], rank)
        node.refresh_child(i) if node.children[i].size > 0 else None
        self._fix_child(node, i)
        return result

    def _collapse_root(self) -> None:
        while self._root is not None and not self._root.is_leaf:
            if len(self._root.children) == 1:
                self._root = self._root.children[0]
            else:
                break
        if self._size == 0:
            self._root = None

    # -- rebalancing helpers ---------------------------------------------
    def _node_units(self, node: object) -> int:
        return len(node.keys) if node.is_leaf else len(node.children)

    def _min_units(self, node: object) -> int:
        return self._min_leaf if node.is_leaf else self._min_children

    def _capacity_units(self, node: object) -> int:
        return self._leaf_capacity if node.is_leaf else self._order

    def _remove_child(self, parent: InnerNode, index: int) -> None:
        child = parent.children[index]
        if child.is_leaf:
            if child.prev is not None:
                child.prev.next = child.next
            if child.next is not None:
                child.next.prev = child.prev
        del parent.children[index]
        del parent.separators[index]
        del parent.counts[index]

    def _fix_child(self, parent: InnerNode, index: int) -> None:
        """Restore the minimum-fill invariant of ``parent.children[index]``.

        The child may be empty or arbitrarily underfull (this happens after
        a suffix cut); elements are borrowed from a sibling or the child is
        merged into one.  ``parent`` counts/separators are refreshed.
        """
        child = parent.children[index]
        if self._node_units(child) == 0:
            if len(parent.children) > 1:
                self._remove_child(parent, index)
            else:
                parent.counts[index] = 0
            return
        parent.refresh_child(index)
        if self._node_units(child) >= self._min_units(child):
            return
        if len(parent.children) == 1:
            return  # nothing to rebalance against; root collapse handles it
        # Prefer the left sibling, fall back to the right one.
        if index > 0:
            sib_index = index - 1
        else:
            sib_index = index + 1
        sibling = parent.children[sib_index]
        combined = self._node_units(child) + self._node_units(sibling)
        if combined <= self._capacity_units(child):
            self._merge_children(parent, min(index, sib_index))
        else:
            self._borrow(parent, index, sib_index)

    def _merge_children(self, parent: InnerNode, left_index: int) -> None:
        """Merge ``children[left_index + 1]`` into ``children[left_index]``."""
        left = parent.children[left_index]
        right = parent.children[left_index + 1]
        if left.is_leaf:
            left.keys.extend(right.keys)
            left.values.extend(right.values)
            left.next = right.next
            if right.next is not None:
                right.next.prev = left
        else:
            left.children.extend(right.children)
            left.separators.extend(right.separators)
            left.counts.extend(right.counts)
        del parent.children[left_index + 1]
        del parent.separators[left_index + 1]
        del parent.counts[left_index + 1]
        parent.refresh_child(left_index)

    def _borrow(self, parent: InnerNode, index: int, sib_index: int) -> None:
        """Move units from the sibling until the child reaches minimum fill."""
        child = parent.children[index]
        sibling = parent.children[sib_index]
        need = self._min_units(child) - self._node_units(child)
        if need <= 0:
            return
        # Never let the sibling drop below its own minimum.
        spare = self._node_units(sibling) - self._min_units(sibling)
        move = min(need, max(spare, 0))
        if move <= 0:
            return
        if sib_index < index:
            # take the largest elements of the left sibling
            if child.is_leaf:
                child.keys[:0] = sibling.keys[-move:]
                child.values[:0] = sibling.values[-move:]
                del sibling.keys[-move:]
                del sibling.values[-move:]
            else:
                child.children[:0] = sibling.children[-move:]
                child.separators[:0] = sibling.separators[-move:]
                child.counts[:0] = sibling.counts[-move:]
                del sibling.children[-move:]
                del sibling.separators[-move:]
                del sibling.counts[-move:]
        else:
            # take the smallest elements of the right sibling
            if child.is_leaf:
                child.keys.extend(sibling.keys[:move])
                child.values.extend(sibling.values[:move])
                del sibling.keys[:move]
                del sibling.values[:move]
            else:
                child.children.extend(sibling.children[:move])
                child.separators.extend(sibling.separators[:move])
                child.counts.extend(sibling.counts[:move])
                del sibling.children[:move]
                del sibling.separators[:move]
                del sibling.counts[:move]
        parent.refresh_child(index)
        parent.refresh_child(sib_index)

    # ------------------------------------------------------------------
    # suffix truncation and splitting
    # ------------------------------------------------------------------
    def truncate_to_rank(self, keep: int) -> int:
        """Discard all items except the ``keep`` smallest; return #removed.

        This is the ``splitAt`` of Algorithm 1 when the upper part is not
        needed: the tree is cut along the right spine, which touches only
        ``O(log n)`` nodes plus the rebalancing of the spine.
        """
        keep = int(keep)
        if keep < 0:
            raise ValueError(f"keep must be non-negative, got {keep}")
        removed = max(0, self._size - keep)
        if removed == 0:
            return 0
        if keep == 0:
            self.clear()
            return removed
        self._cut_suffix(keep)
        self._size = keep
        self._collapse_root()
        return removed

    def _cut_suffix(self, keep: int) -> None:
        """Keep only the first ``keep`` items (``0 < keep < size``)."""
        # Descend along the boundary, dropping every child to its right and
        # recording the kept item count of the boundary child as we go.
        node = self._root
        r = keep
        while not node.is_leaf:
            i = 0
            while r > node.counts[i]:
                r -= node.counts[i]
                i += 1
            del node.children[i + 1 :]
            del node.separators[i + 1 :]
            del node.counts[i + 1 :]
            node.counts[i] = r  # exactly r items remain below the boundary child
            node = node.children[i]
        # node is the boundary leaf; keep its first r items (r >= 1).
        del node.keys[r:]
        del node.values[r:]
        node.next = None
        self._refresh_right_spine()
        self._repair_right_spine()

    def _right_spine(self) -> List[InnerNode]:
        """Inner nodes on the path from the root to the rightmost leaf."""
        spine: List[InnerNode] = []
        node = self._root
        while node is not None and not node.is_leaf:
            spine.append(node)
            node = node.children[-1]
        return spine

    def _refresh_right_spine(self) -> None:
        """Re-derive separators/counts of the rightmost child at every level."""
        for parent in reversed(self._right_spine()):
            parent.refresh_child(len(parent.children) - 1)

    def _collapse_root_chain(self) -> None:
        while (
            self._root is not None
            and not self._root.is_leaf
            and len(self._root.children) == 1
        ):
            self._root = self._root.children[0]

    def _repair_right_spine(self) -> None:
        """Restore minimum fill along the right spine after a suffix cut.

        A cut can leave every node on the rightmost path underfull.  Each
        bottom-up pass fixes all spine nodes whose parent has a sibling to
        borrow from or merge with; a node whose parent is a single-child
        chain can only be fixed after an upper-level merge gave that parent
        siblings, hence the outer loop (at most ``height`` passes).
        """
        for _ in range(self.height + 2):
            self._collapse_root_chain()
            if self._root is None or self._root.is_leaf:
                return
            changed = False
            for parent in reversed(self._right_spine()):
                index = len(parent.children) - 1
                child = parent.children[index]
                if len(parent.children) > 1 and self._node_units(child) < self._min_units(child):
                    self._fix_child(parent, index)
                    changed = True
                parent.refresh_child(len(parent.children) - 1)
            if not changed:
                return

    def split_at_rank(self, keep: int) -> "BPlusTree":
        """Split off and return the items with ranks ``>= keep``.

        ``self`` keeps the ``keep`` smallest items; the returned tree holds
        the remainder (possibly empty).
        """
        keep = int(keep)
        if keep < 0:
            raise ValueError(f"keep must be non-negative, got {keep}")
        suffix_items = self.items_in_rank_range(keep, self._size)
        self.truncate_to_rank(keep)
        return BPlusTree.from_sorted_items(suffix_items, order=self._order)

    def split_at_key(self, key: float, inclusive: bool = True) -> "BPlusTree":
        """Split off the items with keys greater than (or equal to) ``key``.

        With ``inclusive=True`` items whose key equals ``key`` are *kept*,
        matching Algorithm 1, which keeps the selected threshold item.
        """
        keep = self.count_le(key) if inclusive else self.count_less(key)
        return self.split_at_rank(keep)

    def join(self, other: "BPlusTree") -> None:
        """Append all items of ``other`` (whose keys must not be smaller).

        ``other`` is emptied.  Joining trees with interleaving key ranges is
        rejected, mirroring the precondition of the classic join operation.
        """
        if len(other) == 0:
            return
        if len(self) == 0:
            self._root = other._root
            self._size = other._size
            other.clear()
            return
        if other.min_key() < self.max_key():
            raise ValueError("join requires all keys of `other` to be >= max key of self")
        merged = list(self.items()) + list(other.items())
        self._bulk_load(merged)
        other.clear()

    def clear(self) -> None:
        """Remove all items."""
        self._root = None
        self._size = 0

    # ------------------------------------------------------------------
    # invariants (used heavily by the test suite)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Raise :class:`AssertionError` if any structural invariant is violated."""
        if self._root is None:
            assert self._size == 0, "empty tree must have size 0"
            return
        total, height = self._check_node(self._root, is_root=True)
        assert total == self._size, f"size mismatch: counted {total}, stored {self._size}"
        # leaf chain must visit exactly the items in sorted order
        chained = list(self.items())
        assert len(chained) == self._size, "leaf chain misses items"
        keys = [k for k, _ in chained]
        assert all(a <= b for a, b in zip(keys, keys[1:])), "leaf chain not sorted"
        del height

    def _check_node(self, node: object, is_root: bool) -> Tuple[int, int]:
        if node.is_leaf:
            assert len(node.keys) == len(node.values), "leaf keys/values length mismatch"
            assert len(node.keys) <= self._leaf_capacity, "leaf overfull"
            if not is_root:
                assert len(node.keys) >= self._min_leaf, "leaf underfull"
            assert all(
                a <= b for a, b in zip(node.keys, node.keys[1:])
            ), "leaf keys not sorted"
            return len(node.keys), 1
        assert len(node.children) == len(node.separators) == len(node.counts), (
            "inner node bookkeeping lists must have equal length"
        )
        assert len(node.children) <= self._order, "inner node overfull"
        if not is_root:
            assert len(node.children) >= self._min_children, "inner node underfull"
        else:
            assert len(node.children) >= 2, "inner root must have at least two children"
        total = 0
        heights = set()
        prev_max = None
        for i, child in enumerate(node.children):
            child_total, child_height = self._check_node(child, is_root=False)
            heights.add(child_height)
            assert node.counts[i] == child_total, "subtree count out of sync"
            assert node.separators[i] == child.max_key, "separator out of sync"
            if prev_max is not None:
                assert child.min_key >= prev_max, "children key ranges overlap"
            prev_max = child.max_key
            total += child_total
        assert len(heights) == 1, "children have differing heights"
        return total, heights.pop() + 1

"""Node types for the augmented B+ tree.

Two node kinds exist:

* :class:`LeafNode` stores the actual (key, value) pairs in sorted key
  order, and is doubly linked with its neighbouring leaves.
* :class:`InnerNode` stores child pointers, the separator keys between
  adjacent children, and the size (number of stored items) of every child
  subtree.  The subtree sizes are what make ``rank``/``select`` queries run
  in time proportional to the height of the tree.

Separator convention: ``separators[i]`` is the largest key stored in the
subtree ``children[i]``; a search for key ``x`` descends into the first
child ``i`` with ``x <= separators[i]`` (or the last child if no such
separator exists).  This "max-key separator" convention keeps separators in
sync with deletions without extra bookkeeping.
"""

from __future__ import annotations

from typing import List, Optional

__all__ = ["LeafNode", "InnerNode"]


class LeafNode:
    """A leaf of the B+ tree holding items in sorted key order."""

    __slots__ = ("keys", "values", "next", "prev")

    def __init__(self) -> None:
        self.keys: List[float] = []
        self.values: List[object] = []
        self.next: Optional["LeafNode"] = None
        self.prev: Optional["LeafNode"] = None

    # -- introspection -----------------------------------------------------
    @property
    def is_leaf(self) -> bool:
        return True

    def __len__(self) -> int:
        return len(self.keys)

    @property
    def size(self) -> int:
        """Number of items stored in this leaf."""
        return len(self.keys)

    @property
    def max_key(self) -> float:
        if not self.keys:
            raise ValueError("empty leaf has no max key")
        return self.keys[-1]

    @property
    def min_key(self) -> float:
        if not self.keys:
            raise ValueError("empty leaf has no min key")
        return self.keys[0]

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"LeafNode(n={len(self.keys)}, keys={self.keys[:4]}...)"


class InnerNode:
    """An inner node of the B+ tree.

    Attributes
    ----------
    children:
        Child nodes (either all :class:`InnerNode` or all :class:`LeafNode`).
    separators:
        ``separators[i]`` is the maximum key in ``children[i]``; the list has
        the same length as ``children``.
    counts:
        ``counts[i]`` is the number of items stored in the subtree rooted at
        ``children[i]``.
    """

    __slots__ = ("children", "separators", "counts")

    def __init__(self) -> None:
        self.children: List[object] = []
        self.separators: List[float] = []
        self.counts: List[int] = []

    @property
    def is_leaf(self) -> bool:
        return False

    def __len__(self) -> int:
        return len(self.children)

    @property
    def size(self) -> int:
        """Total number of items stored below this node."""
        return sum(self.counts)

    @property
    def max_key(self) -> float:
        return self.separators[-1]

    @property
    def min_key(self) -> float:
        child = self.children[0]
        return child.min_key

    def child_index_for_key(self, key: float) -> int:
        """Index of the child subtree a search for ``key`` must descend into."""
        # Linear scan is fine: the fan-out is a small constant (the order).
        for i, sep in enumerate(self.separators):
            if key <= sep:
                return i
        return len(self.children) - 1

    def refresh_child(self, index: int) -> None:
        """Re-derive separator and count for ``children[index]``."""
        child = self.children[index]
        self.counts[index] = child.size
        self.separators[index] = child.max_key

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"InnerNode(children={len(self.children)}, size={self.size})"

"""Batches of weighted items in struct-of-arrays layout.

A batch holds item identifiers and weights in parallel numpy arrays rather
than per-item objects; this is what keeps the pure-Python simulation able to
process millions of items (the per-item loop of the paper's Algorithm 1 is
replaced by vectorised kernels over these arrays, see
:mod:`repro.core.keys`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Sequence, Tuple

import numpy as np

from repro.utils.validation import check_weights

__all__ = ["ItemBatch"]


@dataclass(frozen=True)
class ItemBatch:
    """A batch of weighted items.

    Attributes
    ----------
    ids:
        ``int64`` array of globally unique item identifiers.
    weights:
        ``float64`` array of strictly positive item weights, aligned with
        ``ids``.  For uniform (unweighted) sampling use weight 1 for every
        item; the samplers never rely on the weights being distinct.
    """

    ids: np.ndarray
    weights: np.ndarray

    def __post_init__(self) -> None:
        ids = np.asarray(self.ids, dtype=np.int64)
        weights = check_weights(self.weights)
        if ids.ndim != 1:
            raise ValueError(f"ids must be one-dimensional, got shape {ids.shape}")
        if ids.shape[0] != weights.shape[0]:
            raise ValueError(
                f"ids and weights must have equal length, got {ids.shape[0]} and {weights.shape[0]}"
            )
        object.__setattr__(self, "ids", ids)
        object.__setattr__(self, "weights", weights)

    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "ItemBatch":
        """An empty batch."""
        return cls(ids=np.empty(0, dtype=np.int64), weights=np.empty(0, dtype=np.float64))

    @classmethod
    def from_weights(cls, weights: Sequence[float], start_id: int = 0) -> "ItemBatch":
        """Build a batch with consecutive ids starting at ``start_id``."""
        weights = np.asarray(weights, dtype=np.float64)
        ids = np.arange(start_id, start_id + weights.shape[0], dtype=np.int64)
        return cls(ids=ids, weights=weights)

    @classmethod
    def uniform_items(cls, count: int, start_id: int = 0) -> "ItemBatch":
        """A batch of ``count`` unit-weight items (for uniform sampling)."""
        return cls(
            ids=np.arange(start_id, start_id + count, dtype=np.int64),
            weights=np.ones(count, dtype=np.float64),
        )

    @classmethod
    def concat(cls, batches: Iterable["ItemBatch"]) -> "ItemBatch":
        """Concatenate several batches into one."""
        batches = [b for b in batches if len(b) > 0]
        if not batches:
            return cls.empty()
        return cls(
            ids=np.concatenate([b.ids for b in batches]),
            weights=np.concatenate([b.weights for b in batches]),
        )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.ids.shape[0])

    @property
    def size(self) -> int:
        """Number of items in the batch."""
        return len(self)

    @property
    def total_weight(self) -> float:
        """Sum of all item weights in the batch."""
        return float(self.weights.sum()) if len(self) else 0.0

    def __iter__(self) -> Iterator[Tuple[int, float]]:
        return zip(self.ids.tolist(), self.weights.tolist())

    def take(self, indices: np.ndarray) -> "ItemBatch":
        """Sub-batch with the items at ``indices`` (in that order)."""
        indices = np.asarray(indices, dtype=np.int64)
        return ItemBatch(ids=self.ids[indices], weights=self.weights[indices])

    def split(self, parts: int) -> List["ItemBatch"]:
        """Split into ``parts`` contiguous, nearly equal-sized sub-batches."""
        if parts <= 0:
            raise ValueError("parts must be positive")
        id_chunks = np.array_split(self.ids, parts)
        weight_chunks = np.array_split(self.weights, parts)
        return [ItemBatch(ids=i, weights=w) for i, w in zip(id_chunks, weight_chunks)]

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"ItemBatch(size={len(self)}, total_weight={self.total_weight:.3f})"

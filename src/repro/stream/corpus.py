"""Corpus-replay stream: weighted mini-batches from a scraped document set.

The synthetic weight generators exercise the samplers under controlled
distributions; this adapter replays a *real* document corpus as a
weighted mini-batch stream so the summaries and samplers can be driven by
naturally skewed data.  Each document becomes one stream item whose
weight is the document's length in bytes, and documents are grouped per
site (the corpus layout's top-level directory) so the stream exhibits the
bursty per-source correlation real scrapes have — all of one site's
pages arrive before the next site starts.

The expected corpus is the scraped-marketing-pages set under
``/root/related/Gint367__webscraping_marketing/``.  When that directory
is absent (the usual case on CI and fresh checkouts) the adapter falls
back to a **deterministic synthetic corpus** with the same shape — named
sites, heavy-tailed per-document lengths, site-grouped arrival order —
generated from a fixed seed, so every consumer (tests, benchmarks,
examples) behaves identically with and without the real data, and two
runs with the same parameters replay the identical stream.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

import numpy as np

from repro.stream.items import ItemBatch
from repro.stream.minibatch import DistributedMiniBatch
from repro.utils.validation import check_positive_int

__all__ = [
    "CorpusDocument",
    "DEFAULT_CORPUS_ROOT",
    "load_corpus",
    "synthetic_corpus",
    "CorpusReplayStream",
]

#: where the real scraped corpus lives when it is available
DEFAULT_CORPUS_ROOT = "/root/related/Gint367__webscraping_marketing"

#: file suffixes considered documents when scanning a real corpus
_DOC_SUFFIXES = (".txt", ".md", ".html", ".htm", ".json", ".csv", ".xml")


@dataclass(frozen=True)
class CorpusDocument:
    """One replayable document: a stable name, its site, and its length."""

    name: str
    site: str
    length: int


def load_corpus(root: str = DEFAULT_CORPUS_ROOT) -> List[CorpusDocument]:
    """Scan a corpus directory into a deterministic document list.

    Every file with a document suffix becomes one
    :class:`CorpusDocument`; its site is the top-level subdirectory it
    lives under (files directly in ``root`` fall under site ``"_root"``)
    and its weight is the file size in bytes.  The list is sorted by
    ``(site, name)`` so the replay order does not depend on filesystem
    enumeration order.  Raises :class:`FileNotFoundError` when ``root``
    does not exist — callers wanting the fallback use
    :class:`CorpusReplayStream`, which degrades to
    :func:`synthetic_corpus` on its own.
    """
    if not os.path.isdir(root):
        raise FileNotFoundError(f"corpus directory does not exist: {root}")
    docs: List[CorpusDocument] = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        for filename in sorted(filenames):
            if not filename.lower().endswith(_DOC_SUFFIXES):
                continue
            path = os.path.join(dirpath, filename)
            rel = os.path.relpath(path, root)
            parts = rel.split(os.sep)
            site = parts[0] if len(parts) > 1 else "_root"
            try:
                length = os.path.getsize(path)
            except OSError:
                continue
            if length > 0:
                docs.append(CorpusDocument(name=rel, site=site, length=int(length)))
    docs.sort(key=lambda d: (d.site, d.name))
    return docs


def synthetic_corpus(
    *, n_sites: int = 12, docs_per_site: int = 40, seed: int = 2020
) -> List[CorpusDocument]:
    """A deterministic stand-in corpus with realistic shape.

    Sites differ in size (heavier sites have more pages) and document
    lengths are heavy-tailed (log-normal, like real page sizes), but
    everything is a pure function of the parameters: the same call
    replays the same corpus forever.
    """
    check_positive_int(n_sites, "n_sites")
    check_positive_int(docs_per_site, "docs_per_site")
    rng = np.random.default_rng(seed)
    docs: List[CorpusDocument] = []
    for s in range(n_sites):
        site = f"site-{s:03d}"
        # heavier sites have more pages; at least one page per site
        count = max(1, int(round(docs_per_site * float(rng.pareto(2.0) + 0.5))))
        lengths = np.ceil(rng.lognormal(mean=8.0, sigma=1.2, size=count)).astype(np.int64)
        for d in range(count):
            docs.append(
                CorpusDocument(name=f"{site}/page-{d:04d}.html", site=site, length=int(lengths[d]))
            )
    docs.sort(key=lambda d: (d.site, d.name))
    return docs


class CorpusReplayStream:
    """Replay a document corpus as a distributed weighted mini-batch stream.

    Implements the :class:`~repro.stream.minibatch.MiniBatchStream`
    surface (``p``, ``next_round()``, ``rounds()``, ``round_index``,
    ``items_emitted``) so samplers and summaries consume it unchanged.
    Each round deals the next ``p * batch_size`` documents out in
    contiguous per-PE slices, preserving the site-grouped arrival order;
    item ids are fresh and monotone across replay passes (``cycle=True``,
    the default, restarts at the first document when the corpus is
    exhausted — weights repeat, ids never do).

    Parameters
    ----------
    docs:
        Explicit document list; when ``None``, :func:`load_corpus` is
        tried on ``corpus_root`` and :func:`synthetic_corpus` (with
        ``seed``) is the fallback if the directory is absent.
    """

    def __init__(
        self,
        p: int,
        batch_size: int,
        *,
        docs: Optional[Sequence[CorpusDocument]] = None,
        corpus_root: str = DEFAULT_CORPUS_ROOT,
        seed: int = 2020,
        cycle: bool = True,
        start_id: int = 0,
    ) -> None:
        self.p = check_positive_int(p, "p")
        self.batch_size = check_positive_int(batch_size, "batch_size")
        if docs is None:
            try:
                docs = load_corpus(corpus_root)
                self.source = corpus_root
            except FileNotFoundError:
                docs = synthetic_corpus(seed=seed)
                self.source = "synthetic"
        else:
            docs = list(docs)
            self.source = "explicit"
        if not docs:
            raise ValueError("corpus holds no documents")
        self.docs: List[CorpusDocument] = list(docs)
        self.cycle = bool(cycle)
        self._weights = np.asarray([d.length for d in self.docs], dtype=np.float64)
        self._cursor = 0
        self._round = 0
        self._start_id = check_positive_int(start_id, "start_id", allow_zero=True)
        self._next_id = self._start_id
        self._items_emitted = 0

    # ------------------------------------------------------------------
    @property
    def n_docs(self) -> int:
        return len(self.docs)

    @property
    def round_index(self) -> int:
        """Index of the next round to be produced."""
        return self._round

    @property
    def items_emitted(self) -> int:
        """Total number of items emitted so far across all PEs."""
        return self._items_emitted

    @property
    def exhausted(self) -> bool:
        """Whether a non-cycling stream has replayed every document."""
        return not self.cycle and self._cursor >= self.n_docs

    def doc_for(self, item_id: int) -> CorpusDocument:
        """The document a previously emitted item id replayed."""
        if not self._start_id <= int(item_id) < self._next_id:
            raise KeyError(f"item id {item_id} has not been emitted")
        return self.docs[(int(item_id) - self._start_id) % self.n_docs]

    def _take(self, count: int) -> np.ndarray:
        """The weights of the next ``count`` documents in replay order."""
        out = np.empty(count, dtype=np.float64)
        filled = 0
        while filled < count:
            if self._cursor >= self.n_docs:
                if not self.cycle:
                    break
                self._cursor = 0
            take = min(count - filled, self.n_docs - self._cursor)
            out[filled : filled + take] = self._weights[self._cursor : self._cursor + take]
            self._cursor += take
            filled += take
        return out[:filled]

    def next_round(self) -> DistributedMiniBatch:
        """Produce the batches of the next round.

        A non-cycling stream emits shrinking (eventually empty) batches
        once the corpus is exhausted, mirroring a drying-up scrape.
        """
        batches: List[ItemBatch] = []
        for _ in range(self.p):
            weights = self._take(self.batch_size)
            ids = np.arange(self._next_id, self._next_id + weights.shape[0], dtype=np.int64)
            self._next_id += weights.shape[0]
            batches.append(ItemBatch(ids=ids, weights=weights))
        self._items_emitted += sum(len(b) for b in batches)
        result = DistributedMiniBatch(round_index=self._round, batches=batches)
        self._round += 1
        return result

    def rounds(self, count: int) -> Iterator[DistributedMiniBatch]:
        """Iterate over the next ``count`` rounds."""
        for _ in range(check_positive_int(count, "count", allow_zero=True)):
            yield self.next_round()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"CorpusReplayStream(p={self.p}, docs={self.n_docs}, source={self.source!r}, "
            f"round={self._round}, emitted={self._items_emitted})"
        )

"""Partitioning a globally arriving batch across PEs.

Some applications (see ``examples/``) receive one global stream that must be
spread over the PEs, rather than per-PE streams.  These helpers implement
the common placement policies; all of them return one
:class:`~repro.stream.items.ItemBatch` per PE whose union is exactly the
input batch.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.stream.items import ItemBatch
from repro.utils.rng import ensure_generator
from repro.utils.validation import check_positive_int

__all__ = ["partition_even", "partition_random", "partition_weighted_shares"]


def partition_even(batch: ItemBatch, p: int) -> List[ItemBatch]:
    """Deal the items into ``p`` contiguous, nearly equal-sized parts."""
    check_positive_int(p, "p")
    return batch.split(p)


def partition_random(batch: ItemBatch, p: int, rng=None) -> List[ItemBatch]:
    """Assign every item to a uniformly random PE (multinomial placement)."""
    check_positive_int(p, "p")
    rng = ensure_generator(rng)
    if len(batch) == 0:
        return [ItemBatch.empty() for _ in range(p)]
    assignment = rng.integers(0, p, size=len(batch))
    return [batch.take(np.flatnonzero(assignment == pe)) for pe in range(p)]


def partition_weighted_shares(
    batch: ItemBatch, shares: Sequence[float], rng=None
) -> List[ItemBatch]:
    """Assign items to PEs with probabilities proportional to ``shares``.

    Models skewed arrival rates: PEs with larger shares receive more items
    in expectation.
    """
    shares = np.asarray(shares, dtype=np.float64)
    if shares.ndim != 1 or len(shares) == 0:
        raise ValueError("shares must be a non-empty one-dimensional sequence")
    if np.any(shares < 0) or shares.sum() <= 0:
        raise ValueError("shares must be non-negative and not all zero")
    rng = ensure_generator(rng)
    p = len(shares)
    if len(batch) == 0:
        return [ItemBatch.empty() for _ in range(p)]
    probabilities = shares / shares.sum()
    assignment = rng.choice(p, size=len(batch), p=probabilities)
    return [batch.take(np.flatnonzero(assignment == pe)) for pe in range(p)]

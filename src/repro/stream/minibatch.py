"""Distributed mini-batch stream sources.

A :class:`MiniBatchStream` produces, for every round, one
:class:`~repro.stream.items.ItemBatch` per PE with globally unique item
identifiers.  Batch sizes may differ across PEs and rounds (the paper's
model explicitly allows this); :class:`BatchSizeSchedule` captures the
common cases.

:class:`RecordingStream` wraps any stream and remembers every emitted item;
the test-suite uses it to compare the distributed samplers against ground
truth computed over the full replayed input.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Sequence, Union

import numpy as np

from repro.stream.generators import UniformWeightGenerator, WeightGenerator
from repro.stream.items import ItemBatch
from repro.utils.rng import spawn_generators
from repro.utils.validation import check_positive_int

__all__ = ["BatchSizeSchedule", "DistributedMiniBatch", "MiniBatchStream", "RecordingStream"]


SizeLike = Union[int, Sequence[int], Callable[[int, int], int]]


@dataclass(frozen=True)
class BatchSizeSchedule:
    """Number of items each PE receives in each round.

    ``base`` may be

    * an ``int`` — every PE gets the same number of items each round,
    * a sequence of ``p`` ints — per-PE sizes, constant over rounds, or
    * a callable ``(pe, round_index) -> int`` for full control.

    ``jitter`` optionally adds uniform random variation of ``+- jitter``
    items (clamped at zero) so batch sizes differ between PEs and rounds, as
    the mini-batch model allows.
    """

    base: SizeLike
    jitter: int = 0

    def size_for(self, pe: int, round_index: int, rng: Optional[np.random.Generator] = None) -> int:
        if callable(self.base):
            size = int(self.base(pe, round_index))
        elif isinstance(self.base, (list, tuple, np.ndarray)):
            size = int(self.base[pe])
        else:
            size = int(self.base)
        if self.jitter and rng is not None:
            size += int(rng.integers(-self.jitter, self.jitter + 1))
        return max(size, 0)


@dataclass(frozen=True)
class DistributedMiniBatch:
    """The per-PE batches of one round."""

    round_index: int
    batches: List[ItemBatch]

    @property
    def p(self) -> int:
        return len(self.batches)

    @property
    def total_items(self) -> int:
        """Total number of items across all PEs in this round (``B`` in the paper)."""
        return sum(len(b) for b in self.batches)

    @property
    def total_weight(self) -> float:
        return sum(b.total_weight for b in self.batches)

    def batch_for(self, pe: int) -> ItemBatch:
        return self.batches[pe]


class MiniBatchStream:
    """Synthetic distributed mini-batch source.

    Parameters
    ----------
    p:
        Number of PEs.
    batch_size:
        Items per PE per round; an int, per-PE sequence, callable or
        :class:`BatchSizeSchedule`.
    weights:
        Weight generator; defaults to the paper's uniform 0..100 weights.
    seed:
        Seed for the per-PE random streams.
    start_id:
        First item id to emit (default 0).  Elastic re-sharding resumes a
        stream on a different PE count with ``start_id`` set past every
        previously emitted id so the phases never collide.
    """

    def __init__(
        self,
        p: int,
        batch_size: Union[SizeLike, BatchSizeSchedule],
        weights: Optional[WeightGenerator] = None,
        seed: Optional[int] = 0,
        *,
        start_id: int = 0,
    ) -> None:
        self.p = check_positive_int(p, "p")
        self.schedule = (
            batch_size if isinstance(batch_size, BatchSizeSchedule) else BatchSizeSchedule(batch_size)
        )
        self.weights = weights if weights is not None else UniformWeightGenerator()
        self._rngs = spawn_generators(seed, self.p)
        self._round = 0
        self._next_id = check_positive_int(start_id, "start_id", allow_zero=True)
        self._items_emitted = 0

    # ------------------------------------------------------------------
    @property
    def round_index(self) -> int:
        """Index of the next round to be produced."""
        return self._round

    @property
    def items_emitted(self) -> int:
        """Total number of items emitted so far across all PEs."""
        return self._items_emitted

    def next_round(self) -> DistributedMiniBatch:
        """Produce the batches of the next round."""
        batches: List[ItemBatch] = []
        for pe in range(self.p):
            rng = self._rngs[pe]
            size = self.schedule.size_for(pe, self._round, rng)
            weights = self.weights(size, rng, pe=pe, round_index=self._round)
            ids = np.arange(self._next_id, self._next_id + size, dtype=np.int64)
            self._next_id += size
            batches.append(ItemBatch(ids=ids, weights=weights))
        self._items_emitted += sum(len(b) for b in batches)
        result = DistributedMiniBatch(round_index=self._round, batches=batches)
        self._round += 1
        return result

    def rounds(self, count: int) -> Iterator[DistributedMiniBatch]:
        """Iterate over the next ``count`` rounds."""
        for _ in range(check_positive_int(count, "count", allow_zero=True)):
            yield self.next_round()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"MiniBatchStream(p={self.p}, round={self._round}, emitted={self._items_emitted})"


class RecordingStream:
    """Wrap a stream and remember every emitted item.

    Provides the ground truth (all ids and weights seen so far) that the
    integration tests and statistical checks compare the samplers against.
    Only suitable for small test inputs — recording defeats the purpose of
    streaming for real workloads.
    """

    def __init__(self, inner: MiniBatchStream) -> None:
        self.inner = inner
        self._ids: List[np.ndarray] = []
        self._weights: List[np.ndarray] = []

    @property
    def p(self) -> int:
        return self.inner.p

    @property
    def round_index(self) -> int:
        return self.inner.round_index

    @property
    def items_emitted(self) -> int:
        return self.inner.items_emitted

    def next_round(self) -> DistributedMiniBatch:
        round_batches = self.inner.next_round()
        for batch in round_batches.batches:
            if len(batch):
                self._ids.append(batch.ids)
                self._weights.append(batch.weights)
        return round_batches

    def rounds(self, count: int) -> Iterator[DistributedMiniBatch]:
        for _ in range(count):
            yield self.next_round()

    def all_items(self) -> ItemBatch:
        """All items emitted so far, as one batch."""
        if not self._ids:
            return ItemBatch.empty()
        return ItemBatch(ids=np.concatenate(self._ids), weights=np.concatenate(self._weights))

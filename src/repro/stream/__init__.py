"""Mini-batch stream model (paper Section 3, "Mini-Batch Model").

Items arrive at the PEs as a series of mini-batches; only the current batch
is available in memory.  This package provides

* :class:`~repro.stream.items.ItemBatch` — a struct-of-arrays batch of
  (item id, weight) pairs,
* weight generators matching the paper's inputs (uniform weights in
  ``0..100``, the skewed drifting-normal weights of the preliminary
  experiments) plus further distributions for the examples,
* :class:`~repro.stream.minibatch.MiniBatchStream` — the distributed stream
  source yielding one batch per PE per round,
* :class:`~repro.stream.shard.WorkerStreamShard` — one PE's share of such a
  stream, generated locally inside a worker process of the real execution
  backend, and
* partitioning helpers for splitting a globally arriving batch across PEs.
"""

from repro.stream.corpus import (
    CorpusDocument,
    CorpusReplayStream,
    load_corpus,
    synthetic_corpus,
)
from repro.stream.generators import (
    BurstyWeightGenerator,
    ExponentialWeightGenerator,
    NormalDriftWeightGenerator,
    UniformWeightGenerator,
    UnitWeightGenerator,
    WeightGenerator,
    ZipfWeightGenerator,
)
from repro.stream.items import ItemBatch
from repro.stream.minibatch import BatchSizeSchedule, DistributedMiniBatch, MiniBatchStream, RecordingStream
from repro.stream.shard import StreamShardSpec, WorkerStreamShard
from repro.stream.stamped import TimestampedItemBatch, TimestampedMiniBatchStream
from repro.stream.partition import partition_even, partition_random, partition_weighted_shares

__all__ = [
    "ItemBatch",
    "CorpusDocument",
    "CorpusReplayStream",
    "load_corpus",
    "synthetic_corpus",
    "TimestampedItemBatch",
    "WeightGenerator",
    "UniformWeightGenerator",
    "UnitWeightGenerator",
    "NormalDriftWeightGenerator",
    "ExponentialWeightGenerator",
    "ZipfWeightGenerator",
    "BurstyWeightGenerator",
    "MiniBatchStream",
    "TimestampedMiniBatchStream",
    "RecordingStream",
    "DistributedMiniBatch",
    "BatchSizeSchedule",
    "StreamShardSpec",
    "WorkerStreamShard",
    "partition_even",
    "partition_random",
    "partition_weighted_shares",
]

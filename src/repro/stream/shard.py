"""Worker-local stream shards for the real execution backend.

When the mini-batch stream is generated *inside* each worker process
(:meth:`~repro.core.distributed.DistributedReservoirSampler.attach_worker_stream`),
the coordinator no longer has to materialise and ship every batch over a
pipe — stream generation and ingestion both run in parallel on the
workers, which is what makes the multiprocess backend scale.

:class:`WorkerStreamShard` reproduces exactly the per-PE sub-stream a
:class:`~repro.stream.minibatch.MiniBatchStream` with a *constant* batch
size (no jitter) would deliver to one PE: the same
``SeedSequence``-spawned random stream, the same weight generator call
pattern, and the same globally unique contiguous item ids.  The shard
equivalence test asserts this batch-for-batch.

Two extensions serve the asynchronous ingestion pipeline
(:mod:`repro.pipeline`):

* :meth:`WorkerStreamShard.prefetch` materialises the next batch ahead of
  time (the strict pipeline mode calls it from a background thread while
  the coordinator finishes the previous round's selection) — the values
  delivered by the following :meth:`next_batch` are unchanged, only the
  moment they are computed moves;
* ``variable=True`` shards accept :meth:`set_batch_size` between rounds
  (adaptive mini-batch sizing).  Variable shards switch to PE-interleaved
  item ids (``id = index * p + pe``), which stay globally unique for any
  sequence of batch sizes; the contiguous-id replica guarantee only holds
  for fixed-size shards.

``stamped=True`` shards emit :class:`~repro.stream.stamped.TimestampedItemBatch`
batches whose stamps equal the global arrival index — for a constant batch
size this reproduces :class:`~repro.stream.stamped.TimestampedMiniBatchStream`
exactly (there, too, the stamp of every item equals its id).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.stream.generators import UniformWeightGenerator, WeightGenerator
from repro.stream.items import ItemBatch
from repro.stream.stamped import TimestampedItemBatch
from repro.utils.rng import spawn_seed_sequences
from repro.utils.validation import check_positive_int

__all__ = ["StreamShardSpec", "WorkerStreamShard", "make_shard_specs"]


@dataclass(frozen=True)
class StreamShardSpec:
    """Picklable description of one PE's share of a synthetic stream.

    Attributes
    ----------
    p:
        Total number of PEs of the stream (needed for globally unique ids
        and for spawning the same per-PE seed sequences as
        :class:`~repro.stream.minibatch.MiniBatchStream`).
    pe:
        The PE this shard belongs to.
    batch_size:
        Items per round for this PE (the initial size for variable shards,
        constant across rounds otherwise).
    seed:
        Stream seed; must be the same on every PE.
    weights:
        Weight generator; defaults to the paper's uniform 0..100 weights.
    stamped:
        Emit timestamped batches whose stamps are the items' global
        arrival indices (equal to the ids for this synthetic stream).
    variable:
        Allow :meth:`WorkerStreamShard.set_batch_size` between rounds;
        switches the id layout to PE-interleaved (collision-free for any
        size sequence) instead of the fixed-size contiguous layout.
    id_offset:
        Constant added to every generated item id.  Elastic re-sharding
        (:mod:`repro.checkpoint.elastic`) uses it to start a resharded
        stream's ids past everything the pre-reshard stream emitted; the
        same offset must be used on every PE (distinctness across PEs is
        preserved because the whole id grid shifts together).
    """

    p: int
    pe: int
    batch_size: int
    seed: Optional[int] = 0
    weights: WeightGenerator = field(default_factory=UniformWeightGenerator)
    stamped: bool = False
    variable: bool = False
    id_offset: int = 0

    def __post_init__(self) -> None:
        check_positive_int(self.p, "p")
        check_positive_int(self.batch_size, "batch_size")
        if not 0 <= self.pe < self.p:
            raise ValueError(f"pe {self.pe} out of range 0..{self.p - 1}")
        if self.id_offset < 0:
            raise ValueError(f"id_offset must be non-negative, got {self.id_offset}")


def make_shard_specs(
    p: int,
    batch_size: int,
    *,
    seed: Optional[int] = 0,
    weights: Optional[WeightGenerator] = None,
    variable: bool = False,
    stamped: bool = False,
    id_offset: int = 0,
) -> list:
    """One :class:`StreamShardSpec` per PE for the same synthetic stream.

    Shared by every sampler's ``attach_worker_stream`` so the shard
    parameters cannot drift between the sampler families.
    """
    check_positive_int(batch_size, "batch_size")
    return [
        StreamShardSpec(
            p=p,
            pe=pe,
            batch_size=batch_size,
            seed=seed,
            variable=variable,
            stamped=stamped,
            id_offset=id_offset,
            **({"weights": weights} if weights is not None else {}),
        )
        for pe in range(p)
    ]


class WorkerStreamShard:
    """Generates one PE's mini-batches locally, round by round."""

    def __init__(self, spec: StreamShardSpec) -> None:
        self.spec = spec
        self._rng = np.random.default_rng(spawn_seed_sequences(spec.seed, spec.p)[spec.pe])
        self._round = 0
        self._batch_size = spec.batch_size
        self._emitted = 0  # items produced so far (drives interleaved ids)
        self._id_high = spec.id_offset  # exclusive upper bound on emitted ids
        self._prefetched: Optional[ItemBatch] = None
        # Serialises generation against resizes: a background prefetch
        # (async pipeline dispatch) may still be generating when an autotune
        # resize arrives on the worker's main thread, and an unguarded
        # resize would mutate _batch_size/_emitted mid-generation.
        self._lock = threading.RLock()

    @property
    def round_index(self) -> int:
        """Index of the next round to be *delivered* by :meth:`next_batch`.

        A prefetched-but-unconsumed batch still counts as undelivered, so
        prefetching never shows up as a phantom extra round.
        """
        return self._round - (1 if self._prefetched is not None else 0)

    @property
    def batch_size(self) -> int:
        """Items per round currently in effect."""
        return self._batch_size

    def set_batch_size(self, batch_size: int) -> None:
        """Change the per-round batch size (variable shards only).

        Takes effect from the next generated batch; an already prefetched
        batch keeps the size it was generated with.  Safe to call while a
        background :meth:`prefetch` is in flight — the resize waits for the
        in-progress generation rather than mutating its inputs.
        """
        check_positive_int(batch_size, "batch_size")
        if not self.spec.variable:
            raise ValueError(
                "shard batch size is fixed; create the shard with variable=True "
                "(e.g. batch_size='auto' on the run drivers) to resize it"
            )
        with self._lock:
            self._batch_size = batch_size

    def _ids_for_round(self, size: int) -> np.ndarray:
        spec = self.spec
        if spec.variable:
            # PE-interleaved ids stay globally unique for any size sequence.
            start = spec.id_offset + self._emitted * spec.p + spec.pe
            return np.arange(start, start + size * spec.p, spec.p, dtype=np.int64)
        start = spec.id_offset + (self._round * spec.p + spec.pe) * size
        return np.arange(start, start + size, dtype=np.int64)

    def _generate(self) -> ItemBatch:
        spec = self.spec
        with self._lock:
            size = self._batch_size
            weights = spec.weights(size, self._rng, pe=spec.pe, round_index=self._round)
            ids = self._ids_for_round(size)
            self._round += 1
            self._emitted += size
            if ids.size:
                self._id_high = max(self._id_high, int(ids[-1]) + 1)
        if spec.stamped:
            # For this synthetic stream the global arrival index IS the id
            # (items arrive in id order across PEs within a round), matching
            # TimestampedMiniBatchStream's stamping convention.
            return TimestampedItemBatch(ids=ids, weights=weights, stamps=ids.copy())
        return ItemBatch(ids=ids, weights=weights)

    def prefetch(self) -> int:
        """Materialise the next batch ahead of time; returns its length.

        Idempotent until the batch is consumed by :meth:`next_batch`.  Only
        the shard's own random stream is touched, so a prefetch may run in
        a background thread while the PE participates in collectives.
        """
        with self._lock:
            if self._prefetched is None:
                self._prefetched = self._generate()
            return len(self._prefetched)

    def next_batch(self) -> ItemBatch:
        """The PE's batch of the next round (ids match ``MiniBatchStream``)."""
        # The fallback _generate stays under the (re-entrant) lock: a
        # prefetch landing between the check and the generation would
        # otherwise orphan its batch and deliver rounds out of order.
        with self._lock:
            if self._prefetched is not None:
                batch, self._prefetched = self._prefetched, None
                return batch
            return self._generate()

    # ------------------------------------------------------------------
    # checkpoint support
    # ------------------------------------------------------------------
    def export_state(self) -> dict:
        """Picklable snapshot of the shard's replay position.

        The snapshot is field-wise (the shard itself holds an unpicklable
        lock): the spec, the generator's bit-generator state, the round
        and emission counters, and any prefetched-but-unconsumed batch.
        Restoring it with :meth:`from_state` and generating onward yields
        exactly the batches the original shard would have produced.
        """
        with self._lock:
            prefetched = self._prefetched
            if prefetched is not None:
                prefetched = {
                    "ids": prefetched.ids.copy(),
                    "weights": prefetched.weights.copy(),
                    "stamps": (
                        prefetched.stamps.copy()
                        if isinstance(prefetched, TimestampedItemBatch)
                        else None
                    ),
                }
            return {
                "spec": self.spec,
                "rng": self._rng.bit_generator.state,
                "round": self._round,
                "batch_size": self._batch_size,
                "emitted": self._emitted,
                "id_high": self._id_high,
                "prefetched": prefetched,
            }

    @classmethod
    def from_state(cls, state: dict) -> "WorkerStreamShard":
        """Rebuild a shard at the exact position of an :meth:`export_state`."""
        shard = cls(state["spec"])
        shard._rng.bit_generator.state = state["rng"]
        shard._round = int(state["round"])
        shard._batch_size = int(state["batch_size"])
        shard._emitted = int(state["emitted"])
        shard._id_high = int(state["id_high"])
        prefetched = state.get("prefetched")
        if prefetched is not None:
            if prefetched["stamps"] is not None:
                shard._prefetched = TimestampedItemBatch(
                    ids=prefetched["ids"],
                    weights=prefetched["weights"],
                    stamps=prefetched["stamps"],
                )
            else:
                shard._prefetched = ItemBatch(ids=prefetched["ids"], weights=prefetched["weights"])
        return shard

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"WorkerStreamShard(pe={self.spec.pe}/{self.spec.p}, round={self.round_index})"

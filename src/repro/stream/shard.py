"""Worker-local stream shards for the real execution backend.

When the mini-batch stream is generated *inside* each worker process
(:meth:`~repro.core.distributed.DistributedReservoirSampler.attach_worker_stream`),
the coordinator no longer has to materialise and ship every batch over a
pipe — stream generation and ingestion both run in parallel on the
workers, which is what makes the multiprocess backend scale.

:class:`WorkerStreamShard` reproduces exactly the per-PE sub-stream a
:class:`~repro.stream.minibatch.MiniBatchStream` with a *constant* batch
size (no jitter) would deliver to one PE: the same
``SeedSequence``-spawned random stream, the same weight generator call
pattern, and the same globally unique contiguous item ids.  The shard
equivalence test asserts this batch-for-batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.stream.generators import UniformWeightGenerator, WeightGenerator
from repro.stream.items import ItemBatch
from repro.utils.rng import spawn_seed_sequences
from repro.utils.validation import check_positive_int

__all__ = ["StreamShardSpec", "WorkerStreamShard"]


@dataclass(frozen=True)
class StreamShardSpec:
    """Picklable description of one PE's share of a synthetic stream.

    Attributes
    ----------
    p:
        Total number of PEs of the stream (needed for globally unique ids
        and for spawning the same per-PE seed sequences as
        :class:`~repro.stream.minibatch.MiniBatchStream`).
    pe:
        The PE this shard belongs to.
    batch_size:
        Items per round for this PE (constant across rounds).
    seed:
        Stream seed; must be the same on every PE.
    weights:
        Weight generator; defaults to the paper's uniform 0..100 weights.
    """

    p: int
    pe: int
    batch_size: int
    seed: Optional[int] = 0
    weights: WeightGenerator = field(default_factory=UniformWeightGenerator)

    def __post_init__(self) -> None:
        check_positive_int(self.p, "p")
        check_positive_int(self.batch_size, "batch_size")
        if not 0 <= self.pe < self.p:
            raise ValueError(f"pe {self.pe} out of range 0..{self.p - 1}")


class WorkerStreamShard:
    """Generates one PE's mini-batches locally, round by round."""

    def __init__(self, spec: StreamShardSpec) -> None:
        self.spec = spec
        self._rng = np.random.default_rng(spawn_seed_sequences(spec.seed, spec.p)[spec.pe])
        self._round = 0

    @property
    def round_index(self) -> int:
        """Index of the next round to be produced."""
        return self._round

    def next_batch(self) -> ItemBatch:
        """The PE's batch of the next round (ids match ``MiniBatchStream``)."""
        spec = self.spec
        size = spec.batch_size
        weights = spec.weights(size, self._rng, pe=spec.pe, round_index=self._round)
        start = (self._round * spec.p + spec.pe) * size
        ids = np.arange(start, start + size, dtype=np.int64)
        self._round += 1
        return ItemBatch(ids=ids, weights=weights)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"WorkerStreamShard(pe={self.spec.pe}/{self.spec.p}, round={self._round})"

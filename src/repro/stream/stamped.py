"""Timestamped item batches and streams for the windowed samplers.

The sliding-window samplers need every item to carry an arrival timestamp
so that expiry ("is this item still inside the last ``W`` stamp units?")
is well defined independently of the item id.
:class:`TimestampedItemBatch` extends the struct-of-arrays
:class:`~repro.stream.items.ItemBatch` with an ``int64`` stamp array, and
:class:`TimestampedMiniBatchStream` wraps the synthetic
:class:`~repro.stream.minibatch.MiniBatchStream` to stamp every emitted
item with its global arrival index (counted in PE order within a round) —
the convention under which ``window=W`` means "the last ``W`` items
across all PEs".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

import numpy as np

from repro.stream.items import ItemBatch
from repro.stream.minibatch import DistributedMiniBatch, MiniBatchStream

__all__ = ["TimestampedItemBatch", "TimestampedMiniBatchStream"]


@dataclass(frozen=True)
class TimestampedItemBatch(ItemBatch):
    """An :class:`~repro.stream.items.ItemBatch` whose items carry timestamps.

    Attributes
    ----------
    stamps:
        ``int64`` array of arrival timestamps aligned with ``ids``.
        Stamps must be non-decreasing in array order (array order *is*
        arrival order) and any unit works — arrival indices, epoch
        milliseconds — as long as the window length uses the same unit.
    """

    stamps: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.stamps is None:
            raise ValueError("a TimestampedItemBatch requires a stamps array")
        stamps = np.asarray(self.stamps, dtype=np.int64)
        if stamps.shape != self.ids.shape:
            raise ValueError(
                f"stamps must align with ids, got shapes {stamps.shape} and {self.ids.shape}"
            )
        if stamps.shape[0] > 1 and np.any(np.diff(stamps) < 0):
            raise ValueError("stamps must be non-decreasing in arrival order")
        object.__setattr__(self, "stamps", stamps)

    @classmethod
    def empty(cls) -> "TimestampedItemBatch":
        """An empty timestamped batch."""
        return cls(
            ids=np.empty(0, dtype=np.int64),
            weights=np.empty(0, dtype=np.float64),
            stamps=np.empty(0, dtype=np.int64),
        )

    @classmethod
    def with_arrival_stamps(cls, batch: ItemBatch, start: int = 0) -> "TimestampedItemBatch":
        """Stamp a plain batch with consecutive arrival indices from ``start``."""
        return cls(
            ids=batch.ids,
            weights=batch.weights,
            stamps=np.arange(start, start + len(batch), dtype=np.int64),
        )

    def take(self, indices: np.ndarray) -> "TimestampedItemBatch":
        """Sub-batch with the items at ``indices``.

        Unlike the plain :meth:`ItemBatch.take`, the indices must be in
        increasing order: array order is arrival order, so a reordering
        that makes the stamps decrease is rejected by validation.
        """
        indices = np.asarray(indices, dtype=np.int64)
        return TimestampedItemBatch(
            ids=self.ids[indices], weights=self.weights[indices], stamps=self.stamps[indices]
        )

    def split(self, parts: int) -> List["TimestampedItemBatch"]:
        """Split into ``parts`` contiguous sub-batches, stamps included."""
        if parts <= 0:
            raise ValueError("parts must be positive")
        return [
            TimestampedItemBatch(ids=i, weights=w, stamps=s)
            for i, w, s in zip(
                np.array_split(self.ids, parts),
                np.array_split(self.weights, parts),
                np.array_split(self.stamps, parts),
            )
        ]

    @classmethod
    def concat(cls, batches: Iterable["TimestampedItemBatch"]) -> "TimestampedItemBatch":
        """Concatenate several timestamped batches into one."""
        batches = [b for b in batches if len(b) > 0]
        if not batches:
            return cls.empty()
        return cls(
            ids=np.concatenate([b.ids for b in batches]),
            weights=np.concatenate([b.weights for b in batches]),
            stamps=np.concatenate([b.stamps for b in batches]),
        )


class TimestampedMiniBatchStream(MiniBatchStream):
    """A :class:`MiniBatchStream` that stamps items with arrival indices.

    Within a round the PE batches are stamped in PE order (PE 0's items
    first), matching the id-assignment order of the base stream and the
    stamping convention of
    :class:`~repro.window.distributed.DistributedWindowSampler` for
    un-stamped batches — so explicit and implicit stamping agree.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._next_stamp = 0

    def next_round(self) -> DistributedMiniBatch:
        plain = super().next_round()
        batches: List[TimestampedItemBatch] = []
        for batch in plain.batches:
            batches.append(TimestampedItemBatch.with_arrival_stamps(batch, self._next_stamp))
            self._next_stamp += len(batch)
        return DistributedMiniBatch(round_index=plain.round_index, batches=batches)

"""Weight generators for synthetic mini-batch streams.

The paper's experiments use *uniformly random floating point weights from
the range 0..100* as the main input and, in preliminary experiments,
*normally distributed weights with the mean increasing based on the
iteration and the PE's rank* (Section 6.1).  Both are provided here, plus a
few further distributions (Zipf/heavy-tailed, exponential, unit weights)
used by the examples and by the statistical tests.

Each generator is a small stateless object; the stream passes in the PE
index, the round index and the PE's random generator so that runs are fully
reproducible and independent across PEs.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from repro.utils.validation import check_positive

__all__ = [
    "WeightGenerator",
    "UniformWeightGenerator",
    "UnitWeightGenerator",
    "NormalDriftWeightGenerator",
    "ExponentialWeightGenerator",
    "ZipfWeightGenerator",
    "BurstyWeightGenerator",
]

_MIN_WEIGHT = 1e-12


class WeightGenerator(abc.ABC):
    """Produces the weights of one local mini-batch."""

    @abc.abstractmethod
    def generate(
        self, size: int, rng: np.random.Generator, *, pe: int = 0, round_index: int = 0
    ) -> np.ndarray:
        """Return ``size`` strictly positive weights for PE ``pe`` in the given round."""

    def __call__(
        self, size: int, rng: np.random.Generator, *, pe: int = 0, round_index: int = 0
    ) -> np.ndarray:
        weights = self.generate(size, rng, pe=pe, round_index=round_index)
        return np.maximum(np.asarray(weights, dtype=np.float64), _MIN_WEIGHT)


class UniformWeightGenerator(WeightGenerator):
    """Uniform weights from ``(low, high]`` — the paper's main input (0..100)."""

    def __init__(self, low: float = 0.0, high: float = 100.0) -> None:
        if high <= low:
            raise ValueError("high must exceed low")
        if low < 0:
            raise ValueError("low must be non-negative (weights are positive)")
        self.low = float(low)
        self.high = float(high)

    def generate(self, size, rng, *, pe=0, round_index=0):
        # Map the half-open [0, 1) deviate to (low, high] so a weight of
        # exactly ``low`` (possibly zero) never occurs.
        u = 1.0 - rng.random(size)
        return self.low + u * (self.high - self.low)

    def __repr__(self) -> str:
        return f"UniformWeightGenerator(low={self.low}, high={self.high})"


class UnitWeightGenerator(WeightGenerator):
    """All weights equal to one; used for uniform (unweighted) sampling."""

    def generate(self, size, rng, *, pe=0, round_index=0):
        return np.ones(size, dtype=np.float64)

    def __repr__(self) -> str:
        return "UnitWeightGenerator()"


class NormalDriftWeightGenerator(WeightGenerator):
    """Normally distributed weights whose mean drifts with round and PE rank.

    Mirrors the skewed input of the paper's preliminary experiments: the
    mean increases based on the iteration (round) and the PE's rank, so
    later rounds and higher-ranked PEs produce heavier items.
    """

    def __init__(
        self,
        base_mean: float = 50.0,
        std: float = 10.0,
        round_drift: float = 1.0,
        pe_drift: float = 0.5,
    ) -> None:
        self.base_mean = check_positive(base_mean, "base_mean")
        self.std = check_positive(std, "std")
        self.round_drift = float(round_drift)
        self.pe_drift = float(pe_drift)

    def generate(self, size, rng, *, pe=0, round_index=0):
        mean = self.base_mean + self.round_drift * round_index + self.pe_drift * pe
        return rng.normal(loc=mean, scale=self.std, size=size)

    def __repr__(self) -> str:
        return (
            f"NormalDriftWeightGenerator(base_mean={self.base_mean}, std={self.std}, "
            f"round_drift={self.round_drift}, pe_drift={self.pe_drift})"
        )


class ExponentialWeightGenerator(WeightGenerator):
    """Exponentially distributed weights (moderately heavy upper tail)."""

    def __init__(self, scale: float = 1.0) -> None:
        self.scale = check_positive(scale, "scale")

    def generate(self, size, rng, *, pe=0, round_index=0):
        return rng.exponential(scale=self.scale, size=size)

    def __repr__(self) -> str:
        return f"ExponentialWeightGenerator(scale={self.scale})"


class ZipfWeightGenerator(WeightGenerator):
    """Heavy-tailed (Pareto/Zipf-like) weights.

    Useful for the heavy-hitter style example applications: a small number
    of items carry a large share of the total weight.
    """

    def __init__(self, exponent: float = 1.5, scale: float = 1.0) -> None:
        if exponent <= 1.0:
            raise ValueError("exponent must exceed 1 for a finite mean")
        self.exponent = float(exponent)
        self.scale = check_positive(scale, "scale")

    def generate(self, size, rng, *, pe=0, round_index=0):
        # Inverse-CDF sampling of a Pareto distribution with shape a-1.
        u = 1.0 - rng.random(size)
        return self.scale * u ** (-1.0 / (self.exponent - 1.0))

    def __repr__(self) -> str:
        return f"ZipfWeightGenerator(exponent={self.exponent}, scale={self.scale})"


class BurstyWeightGenerator(WeightGenerator):
    """Periodic bursts of heavy items — a recency-sensitive workload.

    Every ``period`` rounds, the first ``burst_rounds`` rounds draw
    weights uniformly from ``(0, burst_high]`` while the remaining rounds
    draw from ``(0, base_high]``.  Under unbounded sampling old bursts
    dominate the sample forever; a sliding window or decayed sampler
    tracks the current regime — which is what the windowed examples and
    benchmarks demonstrate.
    """

    def __init__(
        self,
        base_high: float = 1.0,
        burst_high: float = 100.0,
        period: int = 8,
        burst_rounds: int = 2,
    ) -> None:
        self.base_high = check_positive(base_high, "base_high")
        self.burst_high = check_positive(burst_high, "burst_high")
        if period <= 0:
            raise ValueError("period must be positive")
        if not 0 < burst_rounds <= period:
            raise ValueError("burst_rounds must lie in 1..period")
        self.period = int(period)
        self.burst_rounds = int(burst_rounds)

    def generate(self, size, rng, *, pe=0, round_index=0):
        high = self.burst_high if (round_index % self.period) < self.burst_rounds else self.base_high
        u = 1.0 - rng.random(size)
        return u * high

    def __repr__(self) -> str:
        return (
            f"BurstyWeightGenerator(base_high={self.base_high}, burst_high={self.burst_high}, "
            f"period={self.period}, burst_rounds={self.burst_rounds})"
        )

"""Threshold recomputation over surviving keysets after window expiry.

Under a sliding window the global threshold of the distributed sampler
cannot be maintained incrementally: eviction removes keys *below* the old
threshold, so after every round of expiry the key with global rank ``k``
over the union of the surviving per-PE keysets must be re-selected from
scratch.  :func:`recompute_window_threshold` is that entry point — it runs
any :class:`~repro.selection.base.SelectionAlgorithm` over a
:class:`~repro.selection.base.DistributedKeySet` view of the post-eviction
buffers (the windowed sampler passes the communicator-backed keyset, so
the batched all-PE operations are reused unchanged) and returns ``None``
when the union is small enough that no selection is needed.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.selection.base import DistributedKeySet, SelectionAlgorithm, SelectionResult

__all__ = ["recompute_window_threshold"]


def recompute_window_threshold(
    keyset: DistributedKeySet,
    k: int,
    comm,
    selection: SelectionAlgorithm,
    *,
    total: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> Optional[SelectionResult]:
    """Re-establish the global rank-``k`` threshold over surviving keysets.

    Parameters
    ----------
    keyset:
        View over the per-PE candidate buffers *after* expired items have
        been evicted.
    k:
        Sample size; the returned key has global rank ``k``.
    comm:
        Communicator the selection's collectives run (and are charged) on.
    selection:
        The selection algorithm to run (single-/multi-pivot, AMS, …).
    total:
        Total surviving key count, if the caller already agreed on it via
        an all-reduction; computed from the keyset otherwise.
    rng:
        Driver-side generator for pivot proposals; leave ``None`` for
        communicator-backed keysets, whose proposals consume the
        worker-held per-PE generators.

    Returns ``None`` when the union holds at most ``k`` keys (everything
    is in the sample; no threshold separates candidates).
    """
    if total is None:
        total = keyset.total_size()
    if total <= k:
        return None
    return selection.select(keyset, k, comm, rng)

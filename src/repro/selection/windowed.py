"""Deprecated shim: threshold recomputation is an engine call now.

The select-then-agree sequence this module used to implement for the
sliding-window sampler lives in
:meth:`repro.selection.engine.OrderStatisticsEngine.threshold_update`,
shared with the unbounded sampler's per-round selection.
:func:`recompute_window_threshold` is kept as a thin wrapper so existing
imports (``from repro.selection import recompute_window_threshold``)
keep working; new code should construct an
:class:`~repro.selection.engine.OrderStatisticsEngine` and call
:meth:`~repro.selection.engine.OrderStatisticsEngine.rank_select` or
:meth:`~repro.selection.engine.OrderStatisticsEngine.threshold_update`
directly.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.selection.base import DistributedKeySet, SelectionAlgorithm, SelectionResult
from repro.selection.engine import OrderStatisticsEngine

__all__ = ["recompute_window_threshold"]


def recompute_window_threshold(
    keyset: DistributedKeySet,
    k: int,
    comm,
    selection: SelectionAlgorithm,
    *,
    total: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> Optional[SelectionResult]:
    """Re-establish the global rank-``k`` threshold over surviving keysets.

    .. deprecated::
        Thin wrapper over
        :meth:`~repro.selection.engine.OrderStatisticsEngine.rank_select`.

    Returns ``None`` when the union holds at most ``k`` keys (everything
    is in the sample; no threshold separates candidates).
    """
    if total is None:
        total = keyset.total_size()
    if total <= k:
        return None
    return OrderStatisticsEngine(keyset, comm, policy=selection, rng=rng).rank_select(k)

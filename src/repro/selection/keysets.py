"""Concrete :class:`DistributedKeySet` backends.

``ArrayKeySet`` wraps one sorted numpy array per PE and is the reference
backend used throughout the selection tests; the sampling core provides an
equivalent adapter over its local reservoirs
(:class:`repro.core.distributed.ReservoirKeySet`).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.selection.base import DistributedKeySet

__all__ = ["ArrayKeySet"]


class ArrayKeySet(DistributedKeySet):
    """A distributed key set backed by one sorted float array per PE."""

    def __init__(self, arrays: Sequence[np.ndarray], *, assume_sorted: bool = False) -> None:
        self._arrays: List[np.ndarray] = []
        for arr in arrays:
            arr = np.asarray(arr, dtype=np.float64)
            if arr.ndim != 1:
                raise ValueError("each local key set must be one-dimensional")
            if not assume_sorted:
                arr = np.sort(arr)
            self._arrays.append(arr)
        if not self._arrays:
            raise ValueError("at least one PE is required")

    @classmethod
    def from_global(cls, keys: np.ndarray, p: int, rng=None) -> "ArrayKeySet":
        """Scatter a global key array over ``p`` PEs (round-robin or random)."""
        keys = np.asarray(keys, dtype=np.float64)
        if rng is None:
            parts = [keys[pe::p] for pe in range(p)]
        else:
            assignment = rng.integers(0, p, size=keys.shape[0])
            parts = [keys[assignment == pe] for pe in range(p)]
        return cls(parts)

    # ------------------------------------------------------------------
    @property
    def p(self) -> int:
        return len(self._arrays)

    def local_size(self, pe: int) -> int:
        return int(self._arrays[pe].shape[0])

    def count_le(self, pe: int, key: float) -> int:
        return int(np.searchsorted(self._arrays[pe], key, side="right"))

    def count_less(self, pe: int, key: float) -> int:
        return int(np.searchsorted(self._arrays[pe], key, side="left"))

    def select_local(self, pe: int, rank: int) -> float:
        arr = self._arrays[pe]
        if not 1 <= rank <= arr.shape[0]:
            raise IndexError(f"local rank {rank} out of range for PE {pe} with {arr.shape[0]} keys")
        return float(arr[rank - 1])

    def select_local_many(self, pe: int, ranks: np.ndarray) -> np.ndarray:
        arr = self._arrays[pe]
        ranks = np.asarray(ranks, dtype=np.int64)
        if ranks.size and (ranks.min() < 1 or ranks.max() > arr.shape[0]):
            raise IndexError(f"local ranks out of range for PE {pe} with {arr.shape[0]} keys")
        return arr[ranks - 1].copy()

    def keys_in_rank_range(self, pe: int, lo: int, hi: int) -> np.ndarray:
        arr = self._arrays[pe]
        lo = max(0, int(lo))
        hi = min(arr.shape[0], int(hi))
        return arr[lo:hi].copy()

    def all_keys(self) -> np.ndarray:
        """All keys across PEs, sorted (test helper)."""
        return np.sort(np.concatenate(self._arrays)) if self._arrays else np.empty(0)

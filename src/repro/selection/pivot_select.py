"""Pivot-based distributed selection (paper Sections 3.3.2 and 3.3.3).

This module implements the selection engine used by the distributed
reservoir sampler:

* the **general-case single-pivot algorithm** (Section 3.3.3): each PE draws
  a Bernoulli sample of its candidate keys with success probability ``1/k``;
  the globally smallest sampled key — whose expected rank is ``k`` — becomes
  the pivot; an all-reduction counts the keys at most as large as the pivot;
  depending on the count the search recurses below or above the pivot.
  When ``k`` is large relative to the number of remaining candidates the
  symmetric variant samples with probability ``1/(N-k+1)`` and uses the
  largest sampled key.
* the **multi-pivot variant** (Section 3.3.2 applied in 3.3.3): sampling with
  probability ``d/k`` and keeping the ``d`` smallest sampled keys yields
  ``d`` pivots whose expected ranks are spread over ``k/d, 2k/d, ..., k``;
  one counting all-reduction then narrows the active range by an expected
  factor of ``d``, reducing the recursion depth accordingly.
* **approximate (banded) selection** ``amsSelect`` (Section 3.3.2 / 4.4):
  the same loop terminates as soon as any pivot's global rank falls inside
  the requested band ``[k_lo, k_hi]``, which gives expected constant
  recursion depth when the band is wide enough.

All communication goes through the simulated communicator; every round
costs one small all-reduction for the pivot proposal and one for the rank
counts, which is exactly the ``O(alpha * log p)`` latency per round the
paper's analysis charges.
"""

from __future__ import annotations

from typing import List, Sequence, Union

import numpy as np

from repro.network.base import Communicator, merge_largest, merge_smallest
from repro.selection.base import (
    DistributedKeySet,
    SelectionAlgorithm,
    SelectionError,
    SelectionResult,
    SelectionStats,
)
from repro.utils.rng import ensure_generator
from repro.utils.validation import check_positive_int

__all__ = ["PivotSelection"]

RngLike = Union[np.random.Generator, Sequence[np.random.Generator], int, None]


class PivotSelection(SelectionAlgorithm):
    """Exact and banded distributed selection with 1 or more pivots.

    Parameters
    ----------
    num_pivots:
        Number of pivots ``d`` proposed per round.  ``1`` gives the paper's
        "ours"; ``8`` the "ours-8" configuration.
    gather_cutoff:
        Once fewer than this many candidate keys remain in the active
        window, they are gathered at a root PE and the answer is computed
        sequentially.  This bounds the recursion depth in degenerate cases
        (e.g. massive key duplication) and mirrors practical
        implementations; set to ``0`` to disable.
    max_rounds:
        Hard safety bound on the number of pivot rounds.
    """

    def __init__(self, num_pivots: int = 1, *, gather_cutoff: int = 16, max_rounds: int = 200) -> None:
        self.num_pivots = check_positive_int(num_pivots, "num_pivots")
        self.gather_cutoff = check_positive_int(gather_cutoff, "gather_cutoff", allow_zero=True)
        self.max_rounds = check_positive_int(max_rounds, "max_rounds")

    @property
    def name(self) -> str:
        return "single-pivot" if self.num_pivots == 1 else f"multi-pivot-{self.num_pivots}"

    # ------------------------------------------------------------------
    def select(self, keyset: DistributedKeySet, k: int, comm: Communicator, rng: RngLike = None) -> SelectionResult:
        return self.select_range(keyset, k, k, comm, rng)

    def select_range(
        self,
        keyset: DistributedKeySet,
        k_lo: int,
        k_hi: int,
        comm: Communicator,
        rng: RngLike = None,
    ) -> SelectionResult:
        p = keyset.p
        if comm.p != p:
            raise ValueError(f"communicator has {comm.p} PEs but key set has {p}")
        if k_lo < 1 or k_lo > k_hi:
            raise ValueError(f"invalid rank band [{k_lo}, {k_hi}]")
        rngs = self._normalise_rngs(rng, p)
        stats = SelectionStats()

        lo = [0] * p
        hi = list(keyset.local_sizes())
        # One all-reduction establishes the total number of candidates; the
        # loop afterwards tracks the active-window size without extra
        # communication because every rank count is learned globally.
        total = int(comm.allreduce([float(h) for h in hi], Communicator.SUM)[0])
        stats.collective_calls += 1
        if total == 0:
            raise SelectionError("cannot select from an empty key set")
        if k_hi > total:
            raise SelectionError(f"rank band [{k_lo}, {k_hi}] exceeds total size {total}")

        offset = 0
        window = total
        boost = 1.0  # sampling-probability boost after empty proposal rounds

        while True:
            target_lo = k_lo - offset
            target_hi = k_hi - offset
            if window <= 0:  # pragma: no cover - defensive
                raise SelectionError("selection window collapsed without an answer")
            if target_hi >= window:
                # The largest key of the window is inside the band.
                return self._finish_by_gather(
                    keyset, lo, hi, offset, min(target_hi, window), comm, stats
                )
            if (self.gather_cutoff and window <= self.gather_cutoff) or (
                stats.recursion_depth >= self.max_rounds
            ):
                stats.used_fallback = stats.recursion_depth >= self.max_rounds
                return self._finish_by_gather(keyset, lo, hi, offset, target_lo, comm, stats)

            from_below = target_hi <= window - target_lo + 1
            pivots = self._propose_pivots(
                keyset, lo, hi, window, target_lo, target_hi, from_below, boost, comm, rngs, stats
            )
            if pivots.shape[0] == 0:
                stats.sample_retries += 1
                boost *= 2.0
                continue
            boost = 1.0

            # Count, for every pivot, the number of active keys <= pivot
            # (one batched dispatch to all PEs, then one all-reduction).
            local_counts = keyset.window_counts_all(pivots, lo, hi)
            global_counts = comm.allreduce(local_counts, Communicator.SUM, words=float(pivots.shape[0]))[0]
            global_counts = np.asarray(global_counts, dtype=np.float64).astype(np.int64)
            stats.collective_calls += 1
            stats.recursion_depth += 1

            # A pivot inside the band finishes the selection.
            in_band = np.flatnonzero((global_counts >= target_lo) & (global_counts <= target_hi))
            if in_band.size:
                j = int(in_band[0])
                return SelectionResult(
                    key=float(pivots[j]), rank=int(offset + global_counts[j]), stats=stats
                )

            # Otherwise narrow the window between the bracketing pivots.
            below = np.flatnonzero(global_counts < target_lo)
            above = np.flatnonzero(global_counts > target_hi)
            j_lo = int(below[np.argmax(global_counts[below])]) if below.size else None
            j_hi = int(above[np.argmin(global_counts[above])]) if above.size else None

            new_window = window
            if j_hi is not None:
                new_window = int(global_counts[j_hi])
            if j_lo is not None:
                new_window -= int(global_counts[j_lo])
            if new_window >= window:
                # No progress (can only happen with heavy key duplication):
                # fall back to gathering the remaining window.
                stats.used_fallback = True
                return self._finish_by_gather(keyset, lo, hi, offset, target_lo, comm, stats)

            # The clipped per-PE window counts already computed above are
            # exactly the new window bounds — no further rank queries needed.
            for pe in range(p):
                if j_hi is not None:
                    hi[pe] = lo[pe] + int(local_counts[pe][j_hi])
                if j_lo is not None:
                    lo[pe] = lo[pe] + int(local_counts[pe][j_lo])
            if j_lo is not None:
                offset += int(global_counts[j_lo])
            window = new_window

    # ------------------------------------------------------------------
    def _normalise_rngs(self, rng: RngLike, p: int) -> List[np.random.Generator]:
        if isinstance(rng, (list, tuple)):
            if len(rng) != p:
                raise ValueError(f"expected {p} per-PE generators, got {len(rng)}")
            return list(rng)
        generator = ensure_generator(rng)
        return [generator] * p

    def _propose_pivots(
        self,
        keyset: DistributedKeySet,
        lo: List[int],
        hi: List[int],
        window: int,
        target_lo: int,
        target_hi: int,
        from_below: bool,
        boost: float,
        comm: Communicator,
        rngs: List[np.random.Generator],
        stats: SelectionStats,
    ) -> np.ndarray:
        """One pivot-proposal round: Bernoulli sample + merging all-reduction."""
        d = self.num_pivots
        if from_below:
            prob = min(1.0, boost * d / max(target_hi, 1))
        else:
            prob = min(1.0, boost * d / max(window - target_lo + 1, 1))
        contributions = keyset.propose_all(lo, hi, prob, d, from_below, rngs)
        op = merge_smallest(d) if from_below else merge_largest(d)
        merged = comm.allreduce(contributions, op, words=float(d))[0]
        stats.collective_calls += 1
        pivots = np.sort(np.asarray(merged, dtype=np.float64))
        stats.pivots_proposed += int(pivots.shape[0])
        return pivots

    def _finish_by_gather(
        self,
        keyset: DistributedKeySet,
        lo: List[int],
        hi: List[int],
        offset: int,
        target: int,
        comm: Communicator,
        stats: SelectionStats,
    ) -> SelectionResult:
        """Gather the remaining window at a root PE and finish sequentially."""
        p = keyset.p
        arrays = keyset.window_keys_all(lo, hi)
        gathered = comm.gather(arrays, root=0, words_per_pe=[float(a.shape[0]) for a in arrays])
        stats.collective_calls += 1
        window_keys = np.sort(np.concatenate([np.asarray(a, dtype=np.float64) for a in gathered]))
        if window_keys.shape[0] == 0:
            raise SelectionError("selection window is empty")
        target = min(max(target, 1), window_keys.shape[0])
        key = float(window_keys[target - 1])
        rank = offset + int(np.searchsorted(window_keys, key, side="right"))
        stats.final_gather_items += int(window_keys.shape[0])
        broadcast = comm.broadcast([key] * p, root=0, words=1.0)
        stats.collective_calls += 1
        return SelectionResult(key=float(broadcast[0]), rank=rank, stats=stats)

"""Single-pivot general-case selection ("ours" in the paper's experiments).

This is the universally applicable selection algorithm of Section 3.3.3
with a single Bernoulli pivot per round: expected recursion depth
``O(log(kp))`` and latency ``O(alpha * log^2(kp))``.  It is a thin
specialisation of :class:`repro.selection.pivot_select.PivotSelection` with
``num_pivots = 1``; see that module for the algorithm description.
"""

from __future__ import annotations

from repro.selection.pivot_select import PivotSelection

__all__ = ["SinglePivotSelection"]


class SinglePivotSelection(PivotSelection):
    """General-case distributed selection with one pivot per round."""

    def __init__(self, *, gather_cutoff: int = 16, max_rounds: int = 200) -> None:
        super().__init__(1, gather_cutoff=gather_cutoff, max_rounds=max_rounds)

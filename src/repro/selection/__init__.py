"""Distributed selection algorithms (paper Section 3.3).

The distributed reservoir sampler re-establishes its global insertion
threshold once per mini-batch by selecting the key with global rank ``k``
over the union of the local reservoirs.  This package provides every
selection strategy the paper discusses:

==============================  ============================================
Class                           Paper reference
==============================  ============================================
:class:`SinglePivotSelection`   general case, single Bernoulli pivot (§3.3.3)
:class:`MultiPivotSelection`    general case with ``d`` pivots (§3.3.2+§3.3.3)
:class:`AmsSelection`           approximate / banded selection (§3.3.2, §4.4)
:class:`SampledSelection`       randomly distributed items, two pivots (§3.3.1)
:class:`UnsortedSelection`      unsorted fallback (§3.3.4)
:func:`quickselect_nth`         sequential quickselect for the root of the
                                centralized baseline (§4.5)
==============================  ============================================

All algorithms speak to the data only through :class:`DistributedKeySet`
and communicate only through the simulated communicator, so their
communication cost is fully accounted.
"""

from repro.selection.ams_select import AmsSelection
from repro.selection.base import (
    DistributedKeySet,
    SelectionAlgorithm,
    SelectionError,
    SelectionResult,
    SelectionStats,
)
from repro.selection.bernoulli_pivot import SinglePivotSelection
from repro.selection.keysets import ArrayKeySet
from repro.selection.multi_pivot import MultiPivotSelection
from repro.selection.pivot_select import PivotSelection
from repro.selection.quickselect import nth_smallest_numpy, quickselect_nth, smallest_k
from repro.selection.sampled_select import SampledSelection
from repro.selection.unsorted_select import UnsortedSelection
from repro.selection.windowed import recompute_window_threshold

__all__ = [
    "DistributedKeySet",
    "SelectionAlgorithm",
    "SelectionError",
    "SelectionResult",
    "SelectionStats",
    "ArrayKeySet",
    "PivotSelection",
    "SinglePivotSelection",
    "MultiPivotSelection",
    "AmsSelection",
    "SampledSelection",
    "UnsortedSelection",
    "quickselect_nth",
    "nth_smallest_numpy",
    "smallest_k",
    "recompute_window_threshold",
]

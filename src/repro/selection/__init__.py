"""Distributed selection algorithms and the order-statistics engine.

The distributed reservoir sampler re-establishes its global insertion
threshold once per mini-batch by selecting the key with global rank ``k``
over the union of the local reservoirs.  Since the engine refactor the
package has two layers:

**The engine** — :class:`OrderStatisticsEngine` wraps a
:class:`DistributedKeySet` (``p`` locally sorted key multisets) and a
communicator behind four verbs: ``rank_select`` (global order
statistics), ``count_le`` / ``count_le_many`` (global ranks of probe
keys), ``threshold_update`` (the samplers' full count → select/tighten →
agree round sequence) and ``global_merge`` (sorted union, small inputs).
The sibling summaries of :mod:`repro.summaries` are built on the same
verbs.

**The policies** — every selection strategy the paper discusses plugs
into the engine (and remains directly usable):

==============================  ============================================
Class                           Paper reference
==============================  ============================================
:class:`SinglePivotSelection`   general case, single Bernoulli pivot (§3.3.3)
:class:`MultiPivotSelection`    general case with ``d`` pivots (§3.3.2+§3.3.3)
:class:`AmsSelection`           approximate / banded selection (§3.3.2, §4.4)
:class:`SampledSelection`       randomly distributed items, two pivots (§3.3.1)
:class:`UnsortedSelection`      unsorted fallback (§3.3.4)
:func:`quickselect_nth`         sequential quickselect for the root of the
                                centralized baseline (§4.5)
==============================  ============================================

All algorithms speak to the data only through :class:`DistributedKeySet`
and communicate only through the communicator, so their communication
cost is fully accounted.  :func:`recompute_window_threshold` is a
deprecated thin wrapper kept for backwards compatibility; the window
sampler issues one ``threshold_update`` engine call instead.
"""

from repro.selection.ams_select import AmsSelection
from repro.selection.base import (
    DistributedKeySet,
    SelectionAlgorithm,
    SelectionError,
    SelectionResult,
    SelectionStats,
)
from repro.selection.bernoulli_pivot import SinglePivotSelection
from repro.selection.engine import OrderStatisticsEngine, ThresholdUpdate
from repro.selection.keysets import ArrayKeySet
from repro.selection.multi_pivot import MultiPivotSelection
from repro.selection.pivot_select import PivotSelection
from repro.selection.quickselect import nth_smallest_numpy, quickselect_nth, smallest_k
from repro.selection.sampled_select import SampledSelection
from repro.selection.unsorted_select import UnsortedSelection
from repro.selection.windowed import recompute_window_threshold

__all__ = [
    "DistributedKeySet",
    "SelectionAlgorithm",
    "SelectionError",
    "SelectionResult",
    "SelectionStats",
    "OrderStatisticsEngine",
    "ThresholdUpdate",
    "ArrayKeySet",
    "PivotSelection",
    "SinglePivotSelection",
    "MultiPivotSelection",
    "AmsSelection",
    "SampledSelection",
    "UnsortedSelection",
    "quickselect_nth",
    "nth_smallest_numpy",
    "smallest_k",
    "recompute_window_threshold",
]

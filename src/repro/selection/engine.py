"""The distributed order-statistics engine.

The paper's selection machinery — per-PE sorted keysets, Bernoulli pivot
proposals, counting all-reductions — answers a far more general question
than "what is the reservoir threshold": it computes *order statistics over
the union of ``p`` locally sorted multisets* with communication that is
polylogarithmic in ``p`` and independent of the data size.
:class:`OrderStatisticsEngine` packages that machinery behind four
verbs:

* :meth:`~OrderStatisticsEngine.rank_select` — the key with global rank
  ``r`` (or any rank inside a band), delegated to an interchangeable
  selection *policy* (:class:`~repro.selection.bernoulli_pivot.SinglePivotSelection`,
  :class:`~repro.selection.multi_pivot.MultiPivotSelection`,
  :class:`~repro.selection.ams_select.AmsSelection`, …);
* :meth:`~OrderStatisticsEngine.count_le` /
  :meth:`~OrderStatisticsEngine.count_le_many` — global ranks of one or
  many probe keys via a single counting all-reduction;
* :meth:`~OrderStatisticsEngine.threshold_update` — the full
  select-then-agree "dance" every round of the distributed samplers ends
  with (count → select or tighten → boundary all-reduction), factored out
  of :mod:`repro.core.distributed` and :mod:`repro.window.distributed` so
  it exists exactly once;
* :meth:`~OrderStatisticsEngine.global_merge` — gather the union, sorted
  (the small-input escape hatch).

The engine is deliberately thin: it holds no state beyond the keyset view
and the policy, so one engine call maps to the exact collective sequence
the samplers issued before the refactor — same phases ("select" for
counting and selection, "threshold" for tighten/agree), same all-reduce
order, same kernels — which keeps samples byte-identical across the
refactor and across execution backends.  The sibling summaries of
:mod:`repro.summaries` (top-k, quantiles, heavy hitters, recency
reservoir) are built on the same four verbs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.network.base import Communicator
from repro.selection.base import (
    DistributedKeySet,
    SelectionAlgorithm,
    SelectionResult,
)

__all__ = ["OrderStatisticsEngine", "ThresholdUpdate"]


@dataclass(frozen=True)
class ThresholdUpdate:
    """Outcome of one :meth:`OrderStatisticsEngine.threshold_update` call.

    Attributes
    ----------
    threshold:
        The agreed global boundary key, or ``None`` when the union holds
        fewer keys than the target rank (no boundary separates anything).
        Callers decide what ``None`` means for them: the unbounded sampler
        keeps its previous threshold, the window sampler clears it.
    total:
        Total key count across all PEs this update was based on.
    action:
        ``"selected"`` (a distributed selection ran and its key was agreed
        via a MAX all-reduction), ``"tightened"`` (the union held exactly
        the target count, so the boundary is the global max key — one
        all-reduction, no selection) or ``"none"``.
    result:
        The :class:`~repro.selection.base.SelectionResult` when a
        selection ran, else ``None``.
    """

    threshold: Optional[float]
    total: int
    action: str
    result: Optional[SelectionResult] = None

    @property
    def selection_ran(self) -> bool:
        return self.action == "selected"


class OrderStatisticsEngine:
    """Order statistics over a :class:`~repro.selection.base.DistributedKeySet`.

    Parameters
    ----------
    keyset:
        View over the ``p`` locally sorted key multisets.  The samplers and
        summaries pass a :class:`~repro.core.distributed.CommBackedKeySet`
        so every batched operation is one kernel dispatch to all PEs;
        tests pass :class:`~repro.selection.keysets.ArrayKeySet`.
    comm:
        Communicator the collectives run (and are cost-attributed) on.
    policy:
        Selection strategy used by :meth:`rank_select`; any
        :class:`~repro.selection.base.SelectionAlgorithm`.  Defaults to
        single-pivot selection.
    rng:
        Driver-side generator for pivot proposals; leave ``None`` for
        communicator-backed keysets, whose proposals consume the
        worker-held per-PE generators (this is what keeps samples
        byte-identical across execution backends).
    """

    def __init__(
        self,
        keyset: DistributedKeySet,
        comm: Communicator,
        *,
        policy: Optional[SelectionAlgorithm] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if comm.p != keyset.p:
            raise ValueError(f"communicator has {comm.p} PEs but key set has {keyset.p}")
        from repro.selection.bernoulli_pivot import SinglePivotSelection

        self.keyset = keyset
        self.comm = comm
        self.policy = policy if policy is not None else SinglePivotSelection()
        self.rng = rng

    @property
    def p(self) -> int:
        """Number of PEs."""
        return self.keyset.p

    # ------------------------------------------------------------------
    # counting primitives (callers attribute phases)
    # ------------------------------------------------------------------
    def global_size(self, *, sizes: Optional[Sequence[int]] = None) -> int:
        """Total key count across all PEs, agreed via a SUM all-reduction.

        ``sizes`` short-circuits the per-PE size query when the caller
        already knows the local sizes (e.g. from this round's insert
        kernel results) — only the all-reduction is issued then.
        """
        if sizes is None:
            sizes = self.keyset.local_sizes()
        return int(self.comm.allreduce([float(s) for s in sizes], Communicator.SUM)[0])

    def count_le(self, key: float) -> int:
        """Global number of keys ``<= key`` (one counting all-reduction)."""
        counts = self.keyset.count_le_all(float(key))
        return int(self.comm.allreduce([float(c) for c in counts], Communicator.SUM)[0])

    def count_le_many(self, keys: Sequence[float]) -> np.ndarray:
        """Global ranks of many probe keys in one batched all-reduction.

        Returns ``count_le(key)`` for every probe, computed with a single
        per-PE kernel dispatch plus one vector all-reduction of
        ``len(keys)`` words — the primitive the streaming-quantile summary
        tracks its cursors with.
        """
        probes = np.asarray(keys, dtype=np.float64)
        if probes.shape[0] == 0:
            return np.zeros(0, dtype=np.int64)
        sizes = self.keyset.local_sizes()
        counts = self.keyset.window_counts_all(probes, [0] * self.p, sizes)
        summed = self.comm.allreduce(counts, Communicator.SUM, words=float(probes.shape[0]))[0]
        return np.asarray(summed, dtype=np.float64).astype(np.int64)

    # ------------------------------------------------------------------
    # selection
    # ------------------------------------------------------------------
    def rank_select(self, rank: int, *, rank_hi: Optional[int] = None) -> SelectionResult:
        """The key with global rank ``rank`` (1-based), via the policy.

        With ``rank_hi`` the policy may stop at any rank inside
        ``[rank, rank_hi]`` (banded selection, Section 4.4).
        """
        if rank_hi is not None:
            # Always routed through select_range, even for a width-0 band:
            # policies like AmsSelection treat a bare select() as "expand
            # my default band around the rank", which is not what an
            # explicit band requests.
            return self.policy.select_range(self.keyset, int(rank), int(rank_hi), self.comm, self.rng)
        return self.policy.select(self.keyset, int(rank), self.comm, self.rng)

    def tighten_to_max(self) -> float:
        """The globally largest key, agreed via a MAX all-reduction.

        Used instead of a full selection when the union is known to hold
        exactly the target count: the boundary is then simply the maximum.
        """
        maxes = self.keyset.local_maxes()
        return float(self.comm.allreduce([float(m) for m in maxes], Communicator.MAX)[0])

    def threshold_update(
        self,
        k: int,
        *,
        k_hi: Optional[int] = None,
        total: Optional[int] = None,
        tighten_at_exact: bool = True,
    ) -> ThresholdUpdate:
        """One full boundary re-establishment: count, select/tighten, agree.

        This is the shared round-ending sequence of the distributed
        samplers, phase-attributed exactly as they issued it before the
        refactor:

        1. (phase ``"select"``) agree on the total key count — skipped
           when the caller passes ``total`` from an earlier all-reduction;
        2. if ``total`` exceeds ``k_hi or k``: (phase ``"select"``) run the
           selection policy for rank ``k`` (or the band ``[k, k_hi]``),
           then (phase ``"threshold"``) agree on the selected key via a
           MAX all-reduction;
        3. else if ``total == k`` and ``tighten_at_exact``: (phase
           ``"threshold"``) tighten the boundary to the global max key;
        4. else: no boundary exists (``threshold=None``).

        The variable-size sampler passes ``k_hi`` (band) and
        ``tighten_at_exact=False`` (inside the band the old threshold
        stays valid).
        """
        cap = int(k if k_hi is None else k_hi)
        if total is None:
            with self.comm.phase("select"):
                total = self.global_size()
        total = int(total)
        if total > cap:
            with self.comm.phase("select"):
                result = self.rank_select(int(k), rank_hi=k_hi)
            with self.comm.phase("threshold"):
                agreed = self.comm.allreduce([float(result.key)] * self.p, Communicator.MAX)
            return ThresholdUpdate(
                threshold=float(agreed[0]), total=total, action="selected", result=result
            )
        if tighten_at_exact and total == int(k) and total > 0:
            with self.comm.phase("threshold"):
                boundary = self.tighten_to_max()
            return ThresholdUpdate(threshold=boundary, total=total, action="tightened")
        return ThresholdUpdate(threshold=None, total=total, action="none")

    # ------------------------------------------------------------------
    # small-input escape hatch
    # ------------------------------------------------------------------
    def global_merge(self) -> np.ndarray:
        """The sorted union of all local keys, gathered at the root.

        Communication is linear in the data size — this is the escape
        hatch for unions known to be small (the pivot loop's gather
        cutoff uses the same idea internally), not a substitute for
        :meth:`rank_select`.
        """
        sizes: List[int] = self.keyset.local_sizes()
        arrays = self.keyset.window_keys_all([0] * self.p, sizes)
        gathered = self.comm.gather(
            arrays, root=0, words_per_pe=[float(np.asarray(a).shape[0]) for a in arrays]
        )
        if not gathered:
            return np.empty(0, dtype=np.float64)
        merged = np.concatenate([np.asarray(a, dtype=np.float64) for a in gathered])
        merged.sort()
        return merged

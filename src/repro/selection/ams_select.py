"""Approximate (banded) selection ``amsSelect`` (paper Sections 3.3.2 / 4.4).

When the requested output rank may vary inside a band ``[k_lo, k_hi]`` the
pivot loop of :class:`~repro.selection.pivot_select.PivotSelection` stops as
soon as any pivot's rank lands inside the band.  For a band of width
``Omega(k/d)`` the expected recursion depth is constant (paper Lemma 3 /
Corollary 5), which is what makes the variable-reservoir-size sampler of
Section 4.4 cheap.

:class:`AmsSelection` packages this: it remembers a *relative* band and, on
:meth:`select`, expands the requested rank ``k`` into ``[k, k * (1 +
slack)]`` — exactly the way the variable-size sampler uses it.
"""

from __future__ import annotations

import numpy as np

from repro.selection.base import DistributedKeySet, SelectionResult
from repro.selection.pivot_select import PivotSelection

__all__ = ["AmsSelection"]


class AmsSelection(PivotSelection):
    """Banded selection with expected constant recursion depth.

    Parameters
    ----------
    num_pivots:
        Pivots per round (``d``); the band only needs width ``Omega(k/d)``.
    relative_slack:
        When :meth:`select` is called with a single rank ``k``, it is
        expanded to the band ``[k, ceil(k * (1 + relative_slack))]``.
        Explicit bands can always be requested through
        :meth:`select_range`.
    """

    def __init__(
        self,
        num_pivots: int = 2,
        *,
        relative_slack: float = 0.25,
        gather_cutoff: int = 16,
        max_rounds: int = 200,
    ) -> None:
        super().__init__(num_pivots, gather_cutoff=gather_cutoff, max_rounds=max_rounds)
        if relative_slack < 0:
            raise ValueError("relative_slack must be non-negative")
        self.relative_slack = float(relative_slack)

    @property
    def name(self) -> str:
        return f"ams-select-{self.num_pivots}"

    def band_for(self, k: int, total: int) -> tuple:
        """The rank band used when a single rank ``k`` is requested."""
        k_hi = int(np.ceil(k * (1.0 + self.relative_slack)))
        if total >= k:
            k_hi = max(k, min(k_hi, total))
        return k, k_hi

    def select(self, keyset: DistributedKeySet, k: int, comm, rng=None) -> SelectionResult:
        k_lo, k_hi = self.band_for(k, keyset.total_size())
        return self.select_range(keyset, k_lo, k_hi, comm, rng)

"""Interfaces shared by the distributed selection algorithms (paper Section 3.3).

The selection algorithms find the item with a given global rank (or with a
rank inside a given band) over the union of ``p`` *sorted* local key sets —
in Algorithm 1 these are the local reservoirs.  They only interact with the
data through the :class:`DistributedKeySet` interface, so the same
implementations serve the B+-tree reservoirs of the distributed sampler,
plain sorted arrays in tests, and any future backend.

Rank convention: ranks are **1-based** ("the k-th smallest key"), matching
the paper's ``select(R, k)``.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

__all__ = [
    "DistributedKeySet",
    "SelectionStats",
    "SelectionResult",
    "SelectionAlgorithm",
    "SelectionError",
]


class SelectionError(RuntimeError):
    """Raised when a selection cannot be carried out (e.g. empty key set)."""


class DistributedKeySet(abc.ABC):
    """Read-only view over ``p`` locally sorted key multisets."""

    @property
    @abc.abstractmethod
    def p(self) -> int:
        """Number of PEs."""

    @abc.abstractmethod
    def local_size(self, pe: int) -> int:
        """Number of keys held by PE ``pe``."""

    @abc.abstractmethod
    def count_le(self, pe: int, key: float) -> int:
        """Number of keys of PE ``pe`` that are ``<= key``."""

    @abc.abstractmethod
    def count_less(self, pe: int, key: float) -> int:
        """Number of keys of PE ``pe`` that are ``< key``."""

    @abc.abstractmethod
    def select_local(self, pe: int, rank: int) -> float:
        """The ``rank``-th smallest key of PE ``pe`` (1-based)."""

    @abc.abstractmethod
    def keys_in_rank_range(self, pe: int, lo: int, hi: int) -> np.ndarray:
        """Keys of PE ``pe`` with local 0-based ranks in ``[lo, hi)``, sorted."""

    # -- conveniences with default implementations -------------------------
    def select_local_many(self, pe: int, ranks: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`select_local` for an array of 1-based ranks.

        Backends with array storage override this with a single fancy-index
        operation; the default falls back to one query per rank.
        """
        ranks = np.asarray(ranks, dtype=np.int64)
        return np.array([self.select_local(pe, int(r)) for r in ranks], dtype=np.float64)

    def total_size(self) -> int:
        """Total number of keys across all PEs (computed locally by the driver)."""
        return sum(self.local_size(pe) for pe in range(self.p))

    def local_min(self, pe: int) -> float:
        """Smallest key of PE ``pe`` (``+inf`` when empty)."""
        return self.select_local(pe, 1) if self.local_size(pe) else np.inf

    def local_max(self, pe: int) -> float:
        """Largest key of PE ``pe`` (``-inf`` when empty)."""
        size = self.local_size(pe)
        return self.select_local(pe, size) if size else -np.inf

    def local_keys(self, pe: int) -> np.ndarray:
        """All keys of PE ``pe`` as a sorted array."""
        return self.keys_in_rank_range(pe, 0, self.local_size(pe))


@dataclass
class SelectionStats:
    """Diagnostics of one distributed selection.

    ``recursion_depth`` is the number of pivot rounds, the quantity the
    paper reports in Section 6.3 (e.g. 7.3 with a single pivot vs 2.7 with
    8 pivots for k = 1e5).
    """

    recursion_depth: int = 0
    collective_calls: int = 0
    pivots_proposed: int = 0
    sample_retries: int = 0
    final_gather_items: int = 0
    used_fallback: bool = False

    def merge(self, other: "SelectionStats") -> "SelectionStats":
        """Aggregate two stats records (used when averaging over batches)."""
        return SelectionStats(
            recursion_depth=self.recursion_depth + other.recursion_depth,
            collective_calls=self.collective_calls + other.collective_calls,
            pivots_proposed=self.pivots_proposed + other.pivots_proposed,
            sample_retries=self.sample_retries + other.sample_retries,
            final_gather_items=self.final_gather_items + other.final_gather_items,
            used_fallback=self.used_fallback or other.used_fallback,
        )


@dataclass(frozen=True)
class SelectionResult:
    """Outcome of a distributed selection.

    Attributes
    ----------
    key:
        The selected key value.
    rank:
        Global rank of the selected key, i.e. the number of keys ``<= key``
        (1-based).  For exact selection this equals the requested ``k``;
        for approximate (banded) selection it lies inside ``[k_lo, k_hi]``.
    stats:
        Diagnostics about the selection run.
    """

    key: float
    rank: int
    stats: SelectionStats = field(default_factory=SelectionStats)


class SelectionAlgorithm(abc.ABC):
    """A distributed selection strategy.

    Implementations communicate exclusively through the provided
    :class:`~repro.network.communicator.SimComm`, so every message they
    would send on a real machine is accounted in the cost ledger.
    """

    name: str = "selection"

    @abc.abstractmethod
    def select(
        self,
        keyset: DistributedKeySet,
        k: int,
        comm,
        rng: np.random.Generator,
    ) -> SelectionResult:
        """Return the key with global rank ``k`` (1-based)."""

    def select_range(
        self,
        keyset: DistributedKeySet,
        k_lo: int,
        k_hi: int,
        comm,
        rng: np.random.Generator,
    ) -> SelectionResult:
        """Return a key whose global rank lies in ``[k_lo, k_hi]``.

        The default implementation simply selects rank ``k_hi`` exactly;
        algorithms with genuine approximate support override this.
        """
        if k_lo > k_hi:
            raise ValueError(f"empty rank band [{k_lo}, {k_hi}]")
        return self.select(keyset, k_hi, comm, rng)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"{type(self).__name__}()"

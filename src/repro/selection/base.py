"""Interfaces shared by the distributed selection algorithms (paper Section 3.3).

The selection algorithms find the item with a given global rank (or with a
rank inside a given band) over the union of ``p`` *sorted* local key sets —
in Algorithm 1 these are the local reservoirs.  They only interact with the
data through the :class:`DistributedKeySet` interface, so the same
implementations serve the store-backed reservoirs of the distributed
sampler (merge store or B+ tree), plain sorted arrays in tests, and any
future backend.

Besides the per-PE point queries, the interface offers *batched all-PE*
operations (:meth:`DistributedKeySet.local_sizes`,
:meth:`~DistributedKeySet.window_counts_all`,
:meth:`~DistributedKeySet.propose_all`,
:meth:`~DistributedKeySet.window_keys_all`).  The defaults loop over the
point queries; the communicator-backed key set of the samplers overrides
them with a single dispatch to all PEs so that, under the multiprocess
backend, one selection round costs one round trip instead of ``p``.

Rank convention: ranks are **1-based** ("the k-th smallest key"), matching
the paper's ``select(R, k)``.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

__all__ = [
    "DistributedKeySet",
    "SelectionStats",
    "SelectionResult",
    "SelectionAlgorithm",
    "SelectionError",
]


class SelectionError(RuntimeError):
    """Raised when a selection cannot be carried out (e.g. empty key set)."""


class DistributedKeySet(abc.ABC):
    """Read-only view over ``p`` locally sorted key multisets."""

    @property
    @abc.abstractmethod
    def p(self) -> int:
        """Number of PEs."""

    @abc.abstractmethod
    def local_size(self, pe: int) -> int:
        """Number of keys held by PE ``pe``."""

    @abc.abstractmethod
    def count_le(self, pe: int, key: float) -> int:
        """Number of keys of PE ``pe`` that are ``<= key``."""

    @abc.abstractmethod
    def count_less(self, pe: int, key: float) -> int:
        """Number of keys of PE ``pe`` that are ``< key``."""

    @abc.abstractmethod
    def select_local(self, pe: int, rank: int) -> float:
        """The ``rank``-th smallest key of PE ``pe`` (1-based)."""

    @abc.abstractmethod
    def keys_in_rank_range(self, pe: int, lo: int, hi: int) -> np.ndarray:
        """Keys of PE ``pe`` with local 0-based ranks in ``[lo, hi)``, sorted."""

    # -- conveniences with default implementations -------------------------
    def select_local_many(self, pe: int, ranks: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`select_local` for an array of 1-based ranks.

        Backends with array storage override this with a single fancy-index
        operation; the default falls back to one query per rank.
        """
        ranks = np.asarray(ranks, dtype=np.int64)
        return np.array([self.select_local(pe, int(r)) for r in ranks], dtype=np.float64)

    def total_size(self) -> int:
        """Total number of keys across all PEs (computed locally by the driver)."""
        return sum(self.local_size(pe) for pe in range(self.p))

    def local_min(self, pe: int) -> float:
        """Smallest key of PE ``pe`` (``+inf`` when empty)."""
        return self.select_local(pe, 1) if self.local_size(pe) else np.inf

    def local_max(self, pe: int) -> float:
        """Largest key of PE ``pe`` (``-inf`` when empty)."""
        size = self.local_size(pe)
        return self.select_local(pe, size) if size else -np.inf

    def local_keys(self, pe: int) -> np.ndarray:
        """All keys of PE ``pe`` as a sorted array."""
        return self.keys_in_rank_range(pe, 0, self.local_size(pe))

    # -- batched all-PE operations ------------------------------------------
    def local_sizes(self) -> List[int]:
        """Per-PE key counts, in rank order."""
        return [self.local_size(pe) for pe in range(self.p)]

    def count_le_all(self, key: float) -> List[int]:
        """Per-PE counts of keys ``<= key``, in rank order.

        The communicator-backed key set overrides this with a single
        batched kernel dispatch; the engine's global ``count_le`` sums the
        result with one all-reduction.
        """
        return [self.count_le(pe, float(key)) for pe in range(self.p)]

    def local_maxes(self) -> List[float]:
        """Per-PE largest keys (``-inf`` where empty), in rank order."""
        return [self.local_max(pe) for pe in range(self.p)]

    def window_counts_all(
        self, pivots: np.ndarray, lo: Sequence[int], hi: Sequence[int]
    ) -> List[np.ndarray]:
        """Per-PE, per-pivot counts of active keys at most as large as each pivot.

        The active window of PE ``pe`` holds the keys with local 0-based
        ranks in ``[lo[pe], hi[pe])``; counts are clipped to that window.
        """
        pivots = np.asarray(pivots, dtype=np.float64)
        counts: List[np.ndarray] = []
        for pe in range(self.p):
            if hi[pe] > lo[pe]:
                counts.append(
                    np.array(
                        [
                            min(max(self.count_le(pe, float(piv)) - lo[pe], 0), hi[pe] - lo[pe])
                            for piv in pivots
                        ],
                        dtype=np.float64,
                    )
                )
            else:
                counts.append(np.zeros(pivots.shape[0], dtype=np.float64))
        return counts

    def propose_all(
        self,
        lo: Sequence[int],
        hi: Sequence[int],
        prob: float,
        d: int,
        from_below: bool,
        rngs: Sequence[np.random.Generator],
    ) -> List[np.ndarray]:
        """Per-PE pivot-proposal contributions (sorted key arrays).

        Each PE Bernoulli-samples its active window with probability
        ``prob`` and contributes the ``d`` smallest (or largest) sampled
        keys.  The default runs driver-side using the supplied per-PE
        generators; the communicator-backed key set instead executes the
        identical kernel against the worker-held generators (and ignores
        ``rngs``).
        """
        from repro.core.pe_kernels import propose_window_positions

        contributions: List[np.ndarray] = []
        for pe in range(self.p):
            m = hi[pe] - lo[pe]
            if m <= 0:
                contributions.append(np.empty(0, dtype=np.float64))
                continue
            positions = propose_window_positions(rngs[pe], m, prob, d, from_below)
            if positions is None:
                contributions.append(np.empty(0, dtype=np.float64))
                continue
            keys = self.select_local_many(pe, lo[pe] + positions.astype(np.int64) + 1)
            contributions.append(np.sort(keys))
        return contributions

    def window_keys_all(self, lo: Sequence[int], hi: Sequence[int]) -> List[np.ndarray]:
        """Per-PE sorted key arrays of the active windows ``[lo[pe], hi[pe])``."""
        return [self.keys_in_rank_range(pe, lo[pe], hi[pe]) for pe in range(self.p)]


@dataclass
class SelectionStats:
    """Diagnostics of one distributed selection.

    ``recursion_depth`` is the number of pivot rounds, the quantity the
    paper reports in Section 6.3 (e.g. 7.3 with a single pivot vs 2.7 with
    8 pivots for k = 1e5).
    """

    recursion_depth: int = 0
    collective_calls: int = 0
    pivots_proposed: int = 0
    sample_retries: int = 0
    final_gather_items: int = 0
    used_fallback: bool = False

    def merge(self, other: "SelectionStats") -> "SelectionStats":
        """Aggregate two stats records (used when averaging over batches)."""
        return SelectionStats(
            recursion_depth=self.recursion_depth + other.recursion_depth,
            collective_calls=self.collective_calls + other.collective_calls,
            pivots_proposed=self.pivots_proposed + other.pivots_proposed,
            sample_retries=self.sample_retries + other.sample_retries,
            final_gather_items=self.final_gather_items + other.final_gather_items,
            used_fallback=self.used_fallback or other.used_fallback,
        )


@dataclass(frozen=True)
class SelectionResult:
    """Outcome of a distributed selection.

    Attributes
    ----------
    key:
        The selected key value.
    rank:
        Global rank of the selected key, i.e. the number of keys ``<= key``
        (1-based).  For exact selection this equals the requested ``k``;
        for approximate (banded) selection it lies inside ``[k_lo, k_hi]``.
    stats:
        Diagnostics about the selection run.
    """

    key: float
    rank: int
    stats: SelectionStats = field(default_factory=SelectionStats)


class SelectionAlgorithm(abc.ABC):
    """A distributed selection strategy.

    Implementations communicate exclusively through the provided
    :class:`~repro.network.communicator.SimComm`, so every message they
    would send on a real machine is accounted in the cost ledger.
    """

    name: str = "selection"

    @abc.abstractmethod
    def select(
        self,
        keyset: DistributedKeySet,
        k: int,
        comm,
        rng: np.random.Generator,
    ) -> SelectionResult:
        """Return the key with global rank ``k`` (1-based)."""

    def select_range(
        self,
        keyset: DistributedKeySet,
        k_lo: int,
        k_hi: int,
        comm,
        rng: np.random.Generator,
    ) -> SelectionResult:
        """Return a key whose global rank lies in ``[k_lo, k_hi]``.

        The default implementation simply selects rank ``k_hi`` exactly;
        algorithms with genuine approximate support override this.
        """
        if k_lo > k_hi:
            raise ValueError(f"empty rank band [{k_lo}, {k_hi}]")
        return self.select(keyset, k_hi, comm, rng)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"{type(self).__name__}()"

"""Sequential selection used by the centralized baseline (paper Section 4.5).

The centralized gathering algorithm's root PE uses "a standard sequential
selection algorithm (e.g., quickselect)" to keep the ``k`` smallest keys of
the gathered candidates.  This module provides

* :func:`quickselect_nth` — an in-place iterative quickselect with
  median-of-three pivoting and an insertion-sort cutoff, and
* :func:`smallest_k` / :func:`nth_smallest_numpy` — numpy-partition based
  helpers used where raw speed matters more than algorithmic fidelity.
"""

from __future__ import annotations

import numpy as np

__all__ = ["quickselect_nth", "nth_smallest_numpy", "smallest_k"]

_SMALL_CUTOFF = 16


def _median_of_three(values: np.ndarray, lo: int, hi: int) -> float:
    mid = (lo + hi) // 2
    a, b, c = values[lo], values[mid], values[hi]
    if a > b:
        a, b = b, a
    if b > c:
        b = c if a <= c else a
    return float(b)


def quickselect_nth(values: np.ndarray, k: int) -> float:
    """Return the ``k``-th smallest element of ``values`` (1-based).

    The input array is copied; the original order is preserved for the
    caller.  Runs in expected linear time.
    """
    values = np.array(values, dtype=np.float64, copy=True)
    n = values.shape[0]
    if not 1 <= k <= n:
        raise IndexError(f"rank {k} out of range for array of length {n}")
    lo, hi = 0, n - 1
    target = k - 1
    while True:
        if hi - lo < _SMALL_CUTOFF:
            segment = np.sort(values[lo : hi + 1])
            return float(segment[target - lo])
        pivot = _median_of_three(values, lo, hi)
        # three-way partition of values[lo..hi] around pivot
        i, j, eq = lo, hi, lo
        # Dutch national flag partitioning
        while eq <= j:
            v = values[eq]
            if v < pivot:
                values[i], values[eq] = values[eq], values[i]
                i += 1
                eq += 1
            elif v > pivot:
                values[eq], values[j] = values[j], values[eq]
                j -= 1
            else:
                eq += 1
        # values[lo..i-1] < pivot, values[i..j] == pivot, values[j+1..hi] > pivot
        if target < i:
            hi = i - 1
        elif target <= j:
            return float(pivot)
        else:
            lo = j + 1


def nth_smallest_numpy(values: np.ndarray, k: int) -> float:
    """The ``k``-th smallest element (1-based) via :func:`numpy.partition`."""
    values = np.asarray(values, dtype=np.float64)
    n = values.shape[0]
    if not 1 <= k <= n:
        raise IndexError(f"rank {k} out of range for array of length {n}")
    return float(np.partition(values, k - 1)[k - 1])


def smallest_k(values: np.ndarray, k: int, *, sort: bool = False) -> np.ndarray:
    """Return the ``k`` smallest elements of ``values``.

    If ``k`` is at least the array length, a copy of the full array is
    returned.  With ``sort=True`` the result is sorted ascending.
    """
    values = np.asarray(values, dtype=np.float64)
    if k <= 0:
        return np.empty(0, dtype=np.float64)
    if k >= values.shape[0]:
        out = values.copy()
    else:
        out = np.partition(values, k - 1)[:k].copy()
    return np.sort(out) if sort else out

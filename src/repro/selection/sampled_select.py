"""Selection for randomly distributed items (paper Section 3.3.1).

When the candidate keys are randomly distributed over the PEs — which holds
for the reservoir keys because they are i.i.d. exponential/uniform variates
— selection can avoid recursion altogether: a small random sample of the
keys is sorted, two pivots bracketing the target rank with high probability
are chosen from it, the few keys between the pivots are gathered, and the
exact answer is read off.  Expected cost ``O(log(N/p) + alpha*log p)``.

The implementation follows the scheme of Sanders' randomized priority
queues [29] as summarised in the paper: a random sample of the keys is
sorted, two pivots are placed a few sample standard deviations around the
expected position of rank ``k``, and only the keys between the pivots are
collected.  The sample size used here is ``oversampling * sqrt(max(p, N))``
— proportional to ``sqrt(N)`` rather than the paper's ``sqrt(p)`` — which
keeps the bracketed middle window (and thus the exactness-restoring gather)
at ``O(sqrt(N))`` keys in expectation at the price of a slightly larger
sample; the asymptotic latency of ``O(log p)`` collectives is unchanged.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Union

import numpy as np

from repro.network.communicator import SimComm
from repro.selection.base import (
    DistributedKeySet,
    SelectionAlgorithm,
    SelectionError,
    SelectionResult,
    SelectionStats,
)
from repro.utils.rng import ensure_generator

__all__ = ["SampledSelection"]

RngLike = Union[np.random.Generator, Sequence[np.random.Generator], int, None]


class SampledSelection(SelectionAlgorithm):
    """Two-pivot sampled selection for randomly distributed keys.

    Parameters
    ----------
    oversampling:
        Multiplier on the ``sqrt(p)`` base sample size; larger values make
        the bracketing more reliable at slightly higher cost.
    safety:
        Number of sample standard deviations the pivots are placed away from
        the expected position of the target rank.  If the bracket misses the
        target (low probability), the attempt is retried with doubled
        safety margin.
    max_attempts:
        Bound on the number of bracketing attempts before giving up and
        gathering the full window (recorded as a fallback in the stats).
    """

    name = "sampled-select"

    def __init__(self, *, oversampling: float = 2.0, safety: float = 3.0, max_attempts: int = 8) -> None:
        if oversampling <= 0:
            raise ValueError("oversampling must be positive")
        if safety <= 0:
            raise ValueError("safety must be positive")
        self.oversampling = float(oversampling)
        self.safety = float(safety)
        self.max_attempts = int(max_attempts)

    # ------------------------------------------------------------------
    def _normalise_rngs(self, rng: RngLike, p: int) -> List[np.random.Generator]:
        if isinstance(rng, (list, tuple)):
            if len(rng) != p:
                raise ValueError(f"expected {p} per-PE generators, got {len(rng)}")
            return list(rng)
        generator = ensure_generator(rng)
        return [generator] * p

    def select(self, keyset: DistributedKeySet, k: int, comm: SimComm, rng: RngLike = None) -> SelectionResult:
        p = keyset.p
        if comm.p != p:
            raise ValueError(f"communicator has {comm.p} PEs but key set has {p}")
        rngs = self._normalise_rngs(rng, p)
        stats = SelectionStats()

        sizes = [keyset.local_size(pe) for pe in range(p)]
        total = int(comm.allreduce([float(s) for s in sizes], SimComm.SUM)[0])
        stats.collective_calls += 1
        if total == 0:
            raise SelectionError("cannot select from an empty key set")
        if not 1 <= k <= total:
            raise SelectionError(f"rank {k} out of range 1..{total}")

        sample_target = max(4.0, self.oversampling * math.sqrt(max(p, total)))
        prob = min(1.0, sample_target / total)
        safety = self.safety

        for attempt in range(self.max_attempts):
            # 1. Bernoulli sample of the keys, gathered (they are few).
            contributions: List[np.ndarray] = []
            for pe in range(p):
                m = sizes[pe]
                if m == 0:
                    contributions.append(np.empty(0, dtype=np.float64))
                    continue
                count = int(rngs[pe].binomial(m, prob))
                if count == 0:
                    contributions.append(np.empty(0, dtype=np.float64))
                    continue
                positions = np.sort(rngs[pe].choice(m, size=count, replace=False))
                keys = keyset.select_local_many(pe, positions.astype(np.int64) + 1)
                contributions.append(keys)
            gathered = comm.gather(
                contributions, root=0, words_per_pe=[float(c.shape[0]) for c in contributions]
            )
            stats.collective_calls += 1
            sample = np.sort(np.concatenate(gathered))
            s = sample.shape[0]
            stats.pivots_proposed += int(s)
            if s == 0:
                stats.sample_retries += 1
                prob = min(1.0, prob * 2)
                continue

            # 2. Choose two bracketing pivots around the expected sample
            #    position of rank k and broadcast them.
            expected_pos = k / total * s
            margin = safety * math.sqrt(max(expected_pos * (1.0 - k / total), 1.0)) + 1.0
            lo_idx = int(np.floor(expected_pos - margin))
            hi_idx = int(np.ceil(expected_pos + margin))
            lo_pivot = -np.inf if lo_idx < 1 else float(sample[min(lo_idx, s) - 1])
            hi_pivot = np.inf if hi_idx >= s else float(sample[hi_idx])
            pivots = comm.broadcast([(lo_pivot, hi_pivot)] * p, root=0, words=2.0)[0]
            stats.collective_calls += 1
            lo_pivot, hi_pivot = pivots

            # 3. Count keys below/inside the bracket.
            counts_local = [
                np.array(
                    [keyset.count_le(pe, lo_pivot) if np.isfinite(lo_pivot) else 0.0,
                     keyset.count_le(pe, hi_pivot) if np.isfinite(hi_pivot) else float(sizes[pe])],
                    dtype=np.float64,
                )
                for pe in range(p)
            ]
            counts = np.asarray(comm.allreduce(counts_local, SimComm.SUM, words=2.0)[0], dtype=np.float64)
            stats.collective_calls += 1
            below = int(counts[0])
            upto = int(counts[1])
            stats.recursion_depth += 1

            if not (below < k <= upto):
                stats.sample_retries += 1
                safety *= 2.0
                continue

            # 4. Gather the keys strictly above lo_pivot and at most hi_pivot.
            middles: List[np.ndarray] = []
            for pe in range(p):
                lo_rank = keyset.count_le(pe, lo_pivot) if np.isfinite(lo_pivot) else 0
                hi_rank = keyset.count_le(pe, hi_pivot) if np.isfinite(hi_pivot) else sizes[pe]
                middles.append(keyset.keys_in_rank_range(pe, lo_rank, hi_rank))
            gathered_mid = comm.gather(
                middles, root=0, words_per_pe=[float(m.shape[0]) for m in middles]
            )
            stats.collective_calls += 1
            window = np.sort(np.concatenate(gathered_mid))
            stats.final_gather_items += int(window.shape[0])
            if window.shape[0] < k - below:  # pragma: no cover - defensive
                stats.sample_retries += 1
                safety *= 2.0
                continue
            key = float(window[k - below - 1])
            result_key = comm.broadcast([key] * p, root=0, words=1.0)[0]
            stats.collective_calls += 1
            rank = below + int(np.searchsorted(window, key, side="right"))
            return SelectionResult(key=float(result_key), rank=rank, stats=stats)

        # All attempts failed (extremely unlikely): gather everything.
        stats.used_fallback = True
        everything: List[np.ndarray] = [keyset.local_keys(pe) for pe in range(p)]
        gathered_all = comm.gather(everything, root=0, words_per_pe=[float(a.shape[0]) for a in everything])
        stats.collective_calls += 1
        window = np.sort(np.concatenate(gathered_all))
        stats.final_gather_items += int(window.shape[0])
        key = float(window[k - 1])
        result_key = comm.broadcast([key] * p, root=0, words=1.0)[0]
        stats.collective_calls += 1
        return SelectionResult(key=float(result_key), rank=int(np.searchsorted(window, key, side="right")), stats=stats)

"""Multi-pivot selection ("ours-d" in the paper's experiments).

Uses ``d`` Bernoulli pivots per round (Section 3.3.2 applied to the
general-case algorithm of Section 3.3.3), which reduces the expected
recursion depth by roughly a factor ``log d`` at the price of ``O(beta*d)``
extra communication volume per round.  The paper uses ``d = 8`` and reports
a depth reduction of about 2.5x for large sample sizes.
"""

from __future__ import annotations

from repro.selection.pivot_select import PivotSelection

__all__ = ["MultiPivotSelection"]


class MultiPivotSelection(PivotSelection):
    """General-case distributed selection with ``d`` pivots per round."""

    DEFAULT_PIVOTS = 8

    def __init__(self, num_pivots: int = DEFAULT_PIVOTS, *, gather_cutoff: int = 16, max_rounds: int = 200) -> None:
        if num_pivots < 2:
            raise ValueError("MultiPivotSelection requires at least 2 pivots; use SinglePivotSelection otherwise")
        super().__init__(num_pivots, gather_cutoff=gather_cutoff, max_rounds=max_rounds)

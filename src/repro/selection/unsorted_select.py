"""Unsorted selection fallback (paper Section 3.3.4).

This algorithm does not require the local key sets to support logarithmic
rank/select queries: it works on plain (conceptually unsorted) local key
arrays and repeatedly partitions them around a uniformly random pivot drawn
from the remaining candidates.  Expected ``O(log N)`` rounds of latency, but
linear local work and higher communication volume than the sorted
algorithms — exactly the trade-off the paper describes for the case where
``O(log^2(kp))`` latency is undesirable.

A uniformly random global pivot is chosen without a coordinator: every PE
nominates one of its remaining keys uniformly at random together with an
exponential "clock" with rate equal to its candidate count; the nomination
with the smallest clock wins the all-reduction, which selects each PE with
probability proportional to its number of candidates and therefore every
remaining key with equal probability.
"""

from __future__ import annotations

from typing import List, Sequence, Union

import numpy as np

from repro.network.communicator import ReduceOp, SimComm
from repro.selection.base import (
    DistributedKeySet,
    SelectionAlgorithm,
    SelectionError,
    SelectionResult,
    SelectionStats,
)
from repro.utils.rng import ensure_generator

__all__ = ["UnsortedSelection"]

RngLike = Union[np.random.Generator, Sequence[np.random.Generator], int, None]

_MIN_PAIR = ReduceOp("min_pair", lambda a, b: a if a[0] <= b[0] else b)


class UnsortedSelection(SelectionAlgorithm):
    """Random-pivot selection over unsorted local key arrays."""

    name = "unsorted-select"

    def __init__(self, *, gather_cutoff: int = 16, max_rounds: int = 400) -> None:
        self.gather_cutoff = int(gather_cutoff)
        self.max_rounds = int(max_rounds)

    def _normalise_rngs(self, rng: RngLike, p: int) -> List[np.random.Generator]:
        if isinstance(rng, (list, tuple)):
            if len(rng) != p:
                raise ValueError(f"expected {p} per-PE generators, got {len(rng)}")
            return list(rng)
        generator = ensure_generator(rng)
        return [generator] * p

    def select(self, keyset: DistributedKeySet, k: int, comm: SimComm, rng: RngLike = None) -> SelectionResult:
        p = keyset.p
        if comm.p != p:
            raise ValueError(f"communicator has {comm.p} PEs but key set has {p}")
        rngs = self._normalise_rngs(rng, p)
        stats = SelectionStats()

        # Working copies of the local candidate keys (unsorted model).
        candidates: List[np.ndarray] = [np.asarray(keyset.local_keys(pe), dtype=np.float64) for pe in range(p)]
        total = int(comm.allreduce([float(c.shape[0]) for c in candidates], SimComm.SUM)[0])
        stats.collective_calls += 1
        if total == 0:
            raise SelectionError("cannot select from an empty key set")
        if not 1 <= k <= total:
            raise SelectionError(f"rank {k} out of range 1..{total}")

        target = k
        remaining = total
        while True:
            if remaining <= max(self.gather_cutoff, 1) or stats.recursion_depth >= self.max_rounds:
                stats.used_fallback = stats.recursion_depth >= self.max_rounds
                gathered = comm.gather(
                    candidates, root=0, words_per_pe=[float(c.shape[0]) for c in candidates]
                )
                stats.collective_calls += 1
                window = np.sort(np.concatenate(gathered))
                stats.final_gather_items += int(window.shape[0])
                key = float(window[target - 1])
                key = comm.broadcast([key] * p, root=0, words=1.0)[0]
                stats.collective_calls += 1
                return SelectionResult(key=float(key), rank=k, stats=stats)

            # 1. Nominate a uniformly random global pivot.
            nominations = []
            for pe in range(p):
                m = candidates[pe].shape[0]
                if m == 0:
                    nominations.append((np.inf, np.nan))
                else:
                    clock = rngs[pe].exponential(1.0 / m)
                    pick = float(candidates[pe][int(rngs[pe].integers(0, m))])
                    nominations.append((clock, pick))
            winner = comm.allreduce(nominations, _MIN_PAIR, words=2.0)[0]
            stats.collective_calls += 1
            pivot = float(winner[1])
            stats.pivots_proposed += 1

            # 2. Count candidates <= pivot.
            counts = [float(np.count_nonzero(c <= pivot)) for c in candidates]
            below = int(comm.allreduce(counts, SimComm.SUM)[0])
            stats.collective_calls += 1
            stats.recursion_depth += 1

            if below == target:
                key = comm.broadcast([pivot] * p, root=0, words=1.0)[0]
                stats.collective_calls += 1
                return SelectionResult(key=float(key), rank=k, stats=stats)
            if below > target:
                candidates = [c[c <= pivot] for c in candidates]
                new_remaining = below
            else:
                candidates = [c[c > pivot] for c in candidates]
                new_remaining = remaining - below
                target -= below
            if new_remaining >= remaining:  # pragma: no cover - heavy duplication guard
                stats.used_fallback = True
                remaining = self.gather_cutoff  # force the gather branch next round
            else:
                remaining = new_remaining

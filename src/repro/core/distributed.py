"""The fully distributed mini-batch reservoir sampler (paper Algorithm 1).

Every PE keeps the candidate items it has seen in a local reservoir
(:class:`~repro.core.local_reservoir.LocalReservoir`).  A *global insertion
threshold* ``T`` — the key of the globally ``k``-th smallest candidate — is
known to all PEs and stays fixed while a mini-batch is processed:

1. **insert** — each PE runs the exponential-jumps (or geometric-jumps)
   traversal of its local batch under ``T`` and inserts the surviving
   candidates into its local reservoir;
2. **select** — the PEs jointly select the key with global rank ``k`` over
   the union of the local reservoirs using a communication-efficient
   selection algorithm (Section 3.3);
3. **threshold** — the selected key is established as the new ``T`` via an
   all-reduction and every PE prunes its local reservoir with a ``splitAt``.

The union of the local reservoirs is then a weighted (or uniform) sample
without replacement of size ``min(k, n)`` of everything seen so far.  No PE
plays a special role.

The implementation is SPMD-style: one process simulates all ``p`` PEs, all
communication goes through :class:`~repro.network.communicator.SimComm`
(and is therefore cost-accounted), and local work is charged to a
:class:`~repro.runtime.clock.PhaseClock` using the
:class:`~repro.runtime.machine.MachineSpec` operation costs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core import keys as keymod
from repro.core.local_reservoir import LocalReservoir, LocalThresholdPolicy
from repro.core.store import normalize_store_name
from repro.network.communicator import SimComm
from repro.runtime.clock import PhaseClock
from repro.runtime.machine import MachineSpec
from repro.runtime.metrics import PhaseTimes, RoundMetrics
from repro.selection.base import DistributedKeySet, SelectionAlgorithm, SelectionResult
from repro.selection.bernoulli_pivot import SinglePivotSelection
from repro.stream.items import ItemBatch
from repro.utils.rng import spawn_generators
from repro.utils.validation import check_positive_int

__all__ = [
    "ReservoirKeySet",
    "DistributedReservoirSampler",
    "DistributedWeightedReservoirSampler",
    "DistributedUniformReservoirSampler",
]


class ReservoirKeySet(DistributedKeySet):
    """Adapter exposing a list of local reservoirs as a distributed key set."""

    def __init__(self, reservoirs: Sequence[LocalReservoir]) -> None:
        if not reservoirs:
            raise ValueError("at least one reservoir is required")
        self._reservoirs = list(reservoirs)

    @property
    def p(self) -> int:
        return len(self._reservoirs)

    def local_size(self, pe: int) -> int:
        return len(self._reservoirs[pe])

    def count_le(self, pe: int, key: float) -> int:
        return self._reservoirs[pe].count_le(key)

    def count_less(self, pe: int, key: float) -> int:
        return self._reservoirs[pe].count_less(key)

    def select_local(self, pe: int, rank: int) -> float:
        return self._reservoirs[pe].kth_key(rank)

    def select_local_many(self, pe: int, ranks: np.ndarray) -> np.ndarray:
        return self._reservoirs[pe].kth_keys(ranks)

    def keys_in_rank_range(self, pe: int, lo: int, hi: int) -> np.ndarray:
        return self._reservoirs[pe].keys_in_rank_range(lo, hi)


class DistributedReservoirSampler:
    """Algorithm 1: distributed weighted/uniform reservoir sampling.

    Parameters
    ----------
    k:
        Sample size.
    comm:
        Simulated communicator over the ``p`` PEs.
    selection:
        Distributed selection algorithm used to re-establish the threshold;
        defaults to the single-pivot general-case algorithm ("ours").
    machine:
        Machine model used to charge simulated local-work time.
    weighted:
        ``True`` for weighted sampling (exponential keys/jumps), ``False``
        for uniform sampling (uniform keys, geometric jumps).
    store:
        Local reservoir store backend, ``"merge"`` (vectorized sorted-array
        merge store, default) or ``"btree"`` (paper's data structure).
    backend:
        Deprecated alias of ``store`` (kept for backwards compatibility;
        takes precedence when given).
    local_thresholding:
        Enable the Section-5 first-batch local-thresholding optimisation.
    seed:
        Seed from which the per-PE random streams are derived.
    """

    algorithm_name = "ours"

    def __init__(
        self,
        k: int,
        comm: SimComm,
        *,
        selection: Optional[SelectionAlgorithm] = None,
        machine: Optional[MachineSpec] = None,
        weighted: bool = True,
        store: str = "merge",
        backend: Optional[str] = None,
        order: int = 16,
        local_thresholding: bool = True,
        seed: Optional[int] = 0,
    ) -> None:
        self.k = check_positive_int(k, "k")
        self.comm = comm
        self.selection = selection if selection is not None else SinglePivotSelection()
        self.machine = machine if machine is not None else MachineSpec.forhlr_like()
        self.weighted = bool(weighted)
        self.store = normalize_store_name(backend if backend is not None else store)
        self.backend = self.store  # deprecated alias
        self.local_thresholding = bool(local_thresholding)
        self.reservoirs: List[LocalReservoir] = [
            LocalReservoir(backend=self.store, order=order) for _ in range(comm.p)
        ]
        self._rngs = spawn_generators(seed, comm.p)
        self._policy = LocalThresholdPolicy(self.k)
        self.threshold: Optional[float] = None
        self._items_seen = 0
        self._total_weight = 0.0
        self._round = 0

    # ------------------------------------------------------------------
    @property
    def p(self) -> int:
        """Number of PEs."""
        return self.comm.p

    @property
    def items_seen(self) -> int:
        """Total number of items processed so far (all PEs)."""
        return self._items_seen

    @property
    def total_weight(self) -> float:
        """Total weight processed so far (all PEs)."""
        return self._total_weight

    @property
    def rounds_processed(self) -> int:
        return self._round

    def sample_size(self) -> int:
        """Current size of the distributed sample (union of local reservoirs)."""
        return sum(len(r) for r in self.reservoirs)

    def sample_items(self) -> List[Tuple[int, float]]:
        """The current sample as ``(item id, key)`` pairs (all PEs, unordered)."""
        out: List[Tuple[int, float]] = []
        for reservoir in self.reservoirs:
            out.extend((item_id, key) for key, item_id in reservoir.items())
        return out

    def sample_ids(self) -> np.ndarray:
        """The item ids of the current sample."""
        ids = [reservoir.item_ids() for reservoir in self.reservoirs]
        return np.concatenate(ids) if ids else np.empty(0, dtype=np.int64)

    def keyset(self) -> ReservoirKeySet:
        """A selection view over the current local reservoirs."""
        return ReservoirKeySet(self.reservoirs)

    def preload(
        self,
        per_pe_items: Sequence[Sequence[Tuple[float, int]]],
        *,
        items_seen: int,
        total_weight: float,
        threshold: Optional[float],
    ) -> None:
        """Install a pre-computed sampler state (steady-state warm start).

        ``per_pe_items`` holds, per PE, the (key, item id) pairs of its local
        reservoir.  ``items_seen``/``total_weight`` describe the stream that
        is considered to have been processed already, and ``threshold`` is
        the global insertion threshold in effect.  Used by the scaling
        experiments to start measurements in the steady state (``n >> k``)
        that the paper's 30-second runs operate in, without paying the cost
        of streaming ``n`` items through the simulator.
        """
        if len(per_pe_items) != self.p:
            raise ValueError(f"expected {self.p} per-PE item lists, got {len(per_pe_items)}")
        if self._items_seen:
            raise RuntimeError("preload is only valid on a fresh sampler")
        for pe, items in enumerate(per_pe_items):
            for key, item_id in items:
                self.reservoirs[pe].insert(float(key), int(item_id))
        self._items_seen = int(items_seen)
        self._total_weight = float(total_weight)
        self.threshold = float(threshold) if threshold is not None else None

    # ------------------------------------------------------------------
    def process_round(self, batches: Sequence[ItemBatch]) -> RoundMetrics:
        """Process one mini-batch round (one batch per PE)."""
        if len(batches) != self.p:
            raise ValueError(f"expected {self.p} batches (one per PE), got {len(batches)}")
        clock = PhaseClock(self.p)
        phase_comm_before = self.comm.ledger.time_by_phase()

        # ---------------- insert phase ----------------
        insertions = [0] * self.p
        for pe, batch in enumerate(batches):
            if len(batch) == 0:
                continue
            if self.threshold is None:
                insertions[pe] = self._insert_without_threshold(pe, batch, clock)
            else:
                insertions[pe] = self._insert_with_threshold(pe, batch, clock)
        batch_items = sum(len(batch) for batch in batches)
        self._items_seen += batch_items
        self._total_weight += sum(batch.total_weight for batch in batches)

        # ---------------- select phase ----------------
        selection_result: Optional[SelectionResult] = None
        selection_ran = False
        sizes = [float(len(r)) for r in self.reservoirs]
        with self.comm.phase("select"):
            total_candidates = int(self.comm.allreduce(sizes, SimComm.SUM)[0])
        if self._needs_selection(total_candidates):
            keyset = ReservoirKeySet(self.reservoirs)
            with self.comm.phase("select"):
                selection_result = self._run_selection(keyset)
            selection_ran = True
            self._charge_selection_work(clock, selection_result)
            new_threshold = float(selection_result.key)
        else:
            new_threshold = self._tighten_without_selection(total_candidates)

        # ---------------- threshold phase ----------------
        if selection_ran:
            with self.comm.phase("threshold"):
                agreed = self.comm.allreduce([new_threshold] * self.p, SimComm.MAX)
            new_threshold = float(agreed[0])
        if new_threshold is not None:
            self.threshold = new_threshold
            for pe, reservoir in enumerate(self.reservoirs):
                size_before = len(reservoir)
                keep = reservoir.count_le(self.threshold)
                reservoir.prune_to_rank(keep)
                clock.charge("threshold", pe, self.machine.tree_op_time(2, size_before))

        self._round += 1
        metrics = self._build_metrics(
            clock,
            phase_comm_before,
            batch_items=batch_items,
            insertions=insertions,
            selection_result=selection_result,
            selection_ran=selection_ran,
        )
        return metrics

    # ------------------------------------------------------------------
    # insert-phase kernels
    # ------------------------------------------------------------------
    def _generate_keys(self, batch: ItemBatch, rng: np.random.Generator) -> np.ndarray:
        if self.weighted:
            return keymod.exponential_keys(batch.weights, rng)
        return keymod.uniform_keys(len(batch), rng)

    def _insert_without_threshold(self, pe: int, batch: ItemBatch, clock: PhaseClock) -> int:
        """First-phase processing: no global threshold exists yet.

        Every item is a candidate and receives a key.  If the batch is large
        compared to ``k`` and local thresholding is enabled, the Section-5
        policy keeps the reservoir close to ``k`` items.
        """
        reservoir = self.reservoirs[pe]
        rng = self._rngs[pe]
        b = len(batch)
        inserted = 0
        pruned = 0
        use_policy = self.local_thresholding and self._policy.applies_to_batch(b + len(reservoir))
        if not use_policy:
            keys = self._generate_keys(batch, rng)
            inserted = reservoir.insert_batch(keys, batch.ids)
        else:
            chunk = max(self._policy.refresh_size - self.k, 64)
            local_threshold: Optional[float] = None
            if len(reservoir) >= self.k:
                local_threshold = reservoir.kth_key(self.k)
            for start in range(0, b, chunk):
                stop = min(start + chunk, b)
                sub = ItemBatch(ids=batch.ids[start:stop], weights=batch.weights[start:stop])
                keys = self._generate_keys(sub, rng)
                inserted += reservoir.insert_batch(keys, sub.ids, threshold=local_threshold)
                local_threshold, removed = self._policy.refresh_if_needed(reservoir)
                pruned += removed
        clock.charge(
            "insert",
            pe,
            self.machine.scan_time(b, batch_size=b)
            + self.machine.key_gen_time(b)
            + self.machine.tree_op_time(inserted + pruned, max(len(reservoir), 1)),
        )
        return inserted

    def _insert_with_threshold(self, pe: int, batch: ItemBatch, clock: PhaseClock) -> int:
        """Steady-state processing under the fixed global threshold."""
        reservoir = self.reservoirs[pe]
        rng = self._rngs[pe]
        b = len(batch)
        if self.weighted:
            idx, keys = keymod.weighted_jump_positions(batch.weights, self.threshold, rng)
            scan_time = self.machine.scan_time(b, batch_size=b)
        else:
            idx, keys = keymod.uniform_jump_positions(b, self.threshold, rng)
            # Skipping items is O(1) per accepted item for uniform sampling
            # (Corollary 4): only the accepted items cost local work.
            scan_time = self.machine.scan_time(len(idx), batch_size=b)
        inserted = reservoir.insert_batch(keys, batch.ids[idx])
        clock.charge(
            "insert",
            pe,
            scan_time
            + self.machine.key_gen_time(2 * inserted + 1)
            + self.machine.tree_op_time(inserted, max(len(reservoir), 1)),
        )
        return inserted

    # ------------------------------------------------------------------
    # selection helpers (overridden by the variable-size sampler)
    # ------------------------------------------------------------------
    def _needs_selection(self, total_candidates: int) -> bool:
        """Whether the candidate count requires re-establishing the threshold."""
        return total_candidates > self.k

    def _tighten_without_selection(self, total_candidates: int) -> Optional[float]:
        """Threshold update used when no full selection is necessary.

        When the candidate count equals ``k`` exactly, the sample is the
        union of the reservoirs and the threshold can be tightened to the
        globally largest key with a single all-reduction, letting the next
        batch skip items already.
        """
        if total_candidates != self.k:
            return None
        local_max = [
            self.reservoirs[pe].max_key() if len(self.reservoirs[pe]) else -np.inf
            for pe in range(self.p)
        ]
        with self.comm.phase("threshold"):
            return float(self.comm.allreduce(local_max, SimComm.MAX)[0])

    def _run_selection(self, keyset: ReservoirKeySet) -> SelectionResult:
        return self.selection.select(keyset, self.k, self.comm, self._rngs)

    def _charge_selection_work(self, clock: PhaseClock, result: SelectionResult) -> None:
        """Charge the local part of the distributed selection."""
        stats = result.stats
        pivots = max(int(getattr(self.selection, "num_pivots", 1)), 1)
        for pe, reservoir in enumerate(self.reservoirs):
            size = max(len(reservoir), 1)
            # per pivot round: one Bernoulli sample draw plus `pivots` rank
            # queries and `pivots` select queries on the local reservoir
            ops = stats.recursion_depth * (2 * pivots + 1)
            clock.charge("select", pe, self.machine.tree_op_time(ops, size))
        if stats.final_gather_items:
            clock.charge(
                "select", 0, self.machine.sequential_select_time(stats.final_gather_items)
            )

    # ------------------------------------------------------------------
    def _build_metrics(
        self,
        clock: PhaseClock,
        phase_comm_before: Dict[str, float],
        *,
        batch_items: int,
        insertions: List[int],
        selection_result: Optional[SelectionResult],
        selection_ran: bool,
    ) -> RoundMetrics:
        phase_comm_after = self.comm.ledger.time_by_phase()
        phases = set(phase_comm_after) | set(clock.phases()) | set(phase_comm_before)
        phase_times: Dict[str, PhaseTimes] = {}
        for phase in phases:
            comm_delta = phase_comm_after.get(phase, 0.0) - phase_comm_before.get(phase, 0.0)
            local = clock.max_time(phase)
            if comm_delta > 0.0 or local > 0.0:
                phase_times[phase] = PhaseTimes(local=local, comm=comm_delta)
        return RoundMetrics(
            round_index=self._round - 1,
            batch_items=batch_items,
            items_seen_total=self._items_seen,
            sample_size=self.sample_size(),
            threshold=self.threshold,
            phase_times=phase_times,
            insertions_per_pe=list(insertions),
            selection_stats=selection_result.stats if selection_result is not None else None,
            selection_ran=selection_ran,
        )


class DistributedWeightedReservoirSampler(DistributedReservoirSampler):
    """Weighted instantiation of Algorithm 1 (exponential keys and jumps)."""

    algorithm_name = "ours"

    def __init__(self, k: int, comm: SimComm, **kwargs) -> None:
        kwargs.setdefault("weighted", True)
        super().__init__(k, comm, **kwargs)


class DistributedUniformReservoirSampler(DistributedReservoirSampler):
    """Uniform (unweighted) instantiation (Section 4.3, geometric jumps)."""

    algorithm_name = "ours-uniform"

    def __init__(self, k: int, comm: SimComm, **kwargs) -> None:
        kwargs.setdefault("weighted", False)
        super().__init__(k, comm, **kwargs)

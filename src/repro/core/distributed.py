"""The fully distributed mini-batch reservoir sampler (paper Algorithm 1).

Every PE keeps the candidate items it has seen in a local reservoir
(:class:`~repro.core.local_reservoir.LocalReservoir`).  A *global insertion
threshold* ``T`` — the key of the globally ``k``-th smallest candidate — is
known to all PEs and stays fixed while a mini-batch is processed:

1. **insert** — each PE runs the exponential-jumps (or geometric-jumps)
   traversal of its local batch under ``T`` and inserts the surviving
   candidates into its local reservoir;
2. **select** — the PEs jointly select the key with global rank ``k`` over
   the union of the local reservoirs using a communication-efficient
   selection algorithm (Section 3.3);
3. **threshold** — the selected key is established as the new ``T`` via an
   all-reduction and every PE prunes its local reservoir with a ``splitAt``.

The union of the local reservoirs is then a weighted (or uniform) sample
without replacement of size ``min(k, n)`` of everything seen so far.  No PE
plays a special role.

The implementation is SPMD-style against the
:class:`~repro.network.base.Communicator` protocol: per-PE state (local
reservoir + random generator) lives behind the communicator's PE-state
layer and all local work runs as kernels from
:mod:`repro.core.pe_kernels`.  Under
:class:`~repro.network.communicator.SimComm` the kernels run inline and
communication is cost-accounted under the paper's machine model; under
:class:`~repro.network.process_comm.ProcessComm` each PE is a real worker
process, kernels run in parallel, and the same seed yields byte-identical
samples (the equivalence tests enforce this).
"""

from __future__ import annotations

import functools
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core import pe_kernels
from repro.core.local_reservoir import LocalReservoir, LocalThresholdPolicy
from repro.core.store import normalize_store_name
from repro.network.base import Communicator, PEStateHandle
from repro.runtime.clock import PhaseClock
from repro.runtime.machine import MachineSpec
from repro.runtime.metrics import PhaseTimes, RoundMetrics
from repro.selection.base import DistributedKeySet, SelectionAlgorithm, SelectionResult
from repro.selection.bernoulli_pivot import SinglePivotSelection
from repro.selection.engine import OrderStatisticsEngine, ThresholdUpdate
from repro.stream.items import ItemBatch
from repro.stream.shard import make_shard_specs
from repro.utils.rng import spawn_seed_sequences
from repro.utils.validation import check_positive_int

__all__ = [
    "ReservoirKeySet",
    "CommBackedKeySet",
    "DistributedReservoirSampler",
    "DistributedWeightedReservoirSampler",
    "DistributedUniformReservoirSampler",
]


def charge_selection_work(
    clock: PhaseClock,
    machine: MachineSpec,
    selection: SelectionAlgorithm,
    result: SelectionResult,
    sizes: Sequence[int],
) -> None:
    """Charge the local part of a distributed selection to the clock.

    Per pivot round: one Bernoulli sample draw plus ``pivots`` rank
    queries and ``pivots`` select queries on the local reservoir.  Shared
    by the unbounded and the sliding-window samplers so the cost model
    stays comparable across workloads.
    """
    stats = result.stats
    pivots = max(int(getattr(selection, "num_pivots", 1)), 1)
    for pe, size in enumerate(sizes):
        ops = stats.recursion_depth * (2 * pivots + 1)
        clock.charge("select", pe, machine.tree_op_time(ops, max(int(size), 1)))
    if stats.final_gather_items:
        clock.charge("select", 0, machine.sequential_select_time(stats.final_gather_items))


def collect_phase_times(
    clock: PhaseClock,
    phase_comm_before: Dict[str, float],
    phase_comm_after: Dict[str, float],
) -> Dict[str, PhaseTimes]:
    """Assemble per-phase local/comm times from the clock and ledger deltas."""
    phases = set(phase_comm_after) | set(clock.phases()) | set(phase_comm_before)
    phase_times: Dict[str, PhaseTimes] = {}
    for phase in phases:
        comm_delta = phase_comm_after.get(phase, 0.0) - phase_comm_before.get(phase, 0.0)
        local = clock.max_time(phase)
        if comm_delta > 0.0 or local > 0.0:
            phase_times[phase] = PhaseTimes(local=local, comm=comm_delta)
    return phase_times


class ReservoirKeySet(DistributedKeySet):
    """Adapter exposing a list of local reservoirs as a distributed key set.

    Used by callers that hold the reservoir objects directly (e.g. the bulk
    priority queue and the selection tests).  The sampler itself uses
    :class:`CommBackedKeySet`, which reaches the reservoirs through the
    communicator so the same code works when they live in worker processes.
    """

    def __init__(self, reservoirs: Sequence[LocalReservoir]) -> None:
        if not reservoirs:
            raise ValueError("at least one reservoir is required")
        self._reservoirs = list(reservoirs)

    @property
    def p(self) -> int:
        return len(self._reservoirs)

    def local_size(self, pe: int) -> int:
        return len(self._reservoirs[pe])

    def count_le(self, pe: int, key: float) -> int:
        return self._reservoirs[pe].count_le(key)

    def count_less(self, pe: int, key: float) -> int:
        return self._reservoirs[pe].count_less(key)

    def select_local(self, pe: int, rank: int) -> float:
        return self._reservoirs[pe].kth_key(rank)

    def select_local_many(self, pe: int, ranks: np.ndarray) -> np.ndarray:
        return self._reservoirs[pe].kth_keys(ranks)

    def keys_in_rank_range(self, pe: int, lo: int, hi: int) -> np.ndarray:
        return self._reservoirs[pe].keys_in_rank_range(lo, hi)


class CommBackedKeySet(DistributedKeySet):
    """Key-set view over reservoirs held behind a communicator's PE states.

    The per-PE point queries dispatch to a single PE; the batched all-PE
    operations dispatch one kernel to every PE at once, so a selection
    round costs a constant number of coordinator↔worker round trips under
    the multiprocess backend.  The pivot proposals consume the *worker*
    random generators (the ``rngs`` argument is ignored), which keeps the
    random stream identical across execution backends.
    """

    def __init__(self, comm: Communicator, handle: PEStateHandle) -> None:
        self._comm = comm
        self._handle = handle

    @property
    def p(self) -> int:
        return self._comm.p

    # -- per-PE point queries ------------------------------------------------
    def local_size(self, pe: int) -> int:
        return self._comm.run_on_pe(self._handle, pe, pe_kernels.local_size_kernel)

    def count_le(self, pe: int, key: float) -> int:
        return self._comm.run_on_pe(self._handle, pe, pe_kernels.count_le_kernel, float(key))

    def count_less(self, pe: int, key: float) -> int:
        return self._comm.run_on_pe(self._handle, pe, pe_kernels.count_less_kernel, float(key))

    def select_local(self, pe: int, rank: int) -> float:
        return self._comm.run_on_pe(self._handle, pe, pe_kernels.kth_key_kernel, int(rank))

    def select_local_many(self, pe: int, ranks: np.ndarray) -> np.ndarray:
        return self._comm.run_on_pe(
            self._handle, pe, pe_kernels.kth_keys_kernel, np.asarray(ranks, dtype=np.int64)
        )

    def keys_in_rank_range(self, pe: int, lo: int, hi: int) -> np.ndarray:
        return self._comm.run_on_pe(self._handle, pe, pe_kernels.range_keys_kernel, int(lo), int(hi))

    # -- batched all-PE operations ------------------------------------------
    def local_sizes(self) -> List[int]:
        return self._comm.run_per_pe(self._handle, pe_kernels.local_size_kernel)

    def count_le_all(self, key: float) -> List[int]:
        return self._comm.run_per_pe(
            self._handle, pe_kernels.count_le_kernel, [(float(key),)] * self.p
        )

    def local_maxes(self) -> List[float]:
        return self._comm.run_per_pe(self._handle, pe_kernels.max_key_kernel)

    def window_counts_all(
        self, pivots: np.ndarray, lo: Sequence[int], hi: Sequence[int]
    ) -> List[np.ndarray]:
        pivots = np.asarray(pivots, dtype=np.float64)
        return self._comm.run_per_pe(
            self._handle,
            pe_kernels.window_counts_kernel,
            [(pivots, int(lo[pe]), int(hi[pe])) for pe in range(self.p)],
        )

    def propose_all(
        self,
        lo: Sequence[int],
        hi: Sequence[int],
        prob: float,
        d: int,
        from_below: bool,
        rngs: Sequence[np.random.Generator],
    ) -> List[np.ndarray]:
        del rngs  # the worker-held per-PE generators are used instead
        return self._comm.run_per_pe(
            self._handle,
            pe_kernels.propose_pivots_kernel,
            [
                (int(lo[pe]), int(hi[pe]), float(prob), int(d), bool(from_below))
                for pe in range(self.p)
            ],
        )

    def window_keys_all(self, lo: Sequence[int], hi: Sequence[int]) -> List[np.ndarray]:
        return self._comm.run_per_pe(
            self._handle,
            pe_kernels.range_keys_kernel,
            [(int(lo[pe]), int(hi[pe])) for pe in range(self.p)],
        )


class DistributedReservoirSampler:
    """Algorithm 1: distributed weighted/uniform reservoir sampling.

    Parameters
    ----------
    k:
        Sample size.
    comm:
        Communicator over the ``p`` PEs — the simulated backend
        (:class:`~repro.network.communicator.SimComm`) or the real
        multiprocess backend
        (:class:`~repro.network.process_comm.ProcessComm`).
    selection:
        Distributed selection algorithm used to re-establish the threshold;
        defaults to the single-pivot general-case algorithm ("ours").
    machine:
        Machine model used to charge simulated local-work time.
    weighted:
        ``True`` for weighted sampling (exponential keys/jumps), ``False``
        for uniform sampling (uniform keys, geometric jumps).
    store:
        Local reservoir store backend, ``"merge"`` (vectorized sorted-array
        merge store, default) or ``"btree"`` (paper's data structure).
    backend:
        Deprecated alias of ``store`` (kept for backwards compatibility;
        takes precedence when given).
    local_thresholding:
        Enable the Section-5 first-batch local-thresholding optimisation.
    seed:
        Seed from which the per-PE random streams are derived.
    kernel_tier:
        ``"numpy"`` (default), ``"jit"`` or ``"auto"`` — which
        implementation of the jump/merge hot loops the PEs run (see
        :mod:`repro.core.jit_kernels`).  Resolved here, before any worker
        process is created; samples are byte-identical across tiers.
    """

    algorithm_name = "ours"

    def __init__(
        self,
        k: int,
        comm: Communicator,
        *,
        selection: Optional[SelectionAlgorithm] = None,
        machine: Optional[MachineSpec] = None,
        weighted: bool = True,
        store: str = "merge",
        backend: Optional[str] = None,
        order: int = 16,
        local_thresholding: bool = True,
        seed: Optional[int] = 0,
        kernel_tier: str = "numpy",
    ) -> None:
        from repro.core.jit_kernels import resolve_kernel_tier

        self.k = check_positive_int(k, "k")
        self.comm = comm
        self.selection = selection if selection is not None else SinglePivotSelection()
        self.machine = machine if machine is not None else MachineSpec.forhlr_like()
        self.weighted = bool(weighted)
        self.store = normalize_store_name(backend if backend is not None else store)
        self.backend = self.store  # deprecated alias
        self.local_thresholding = bool(local_thresholding)
        # resolved before worker creation: "jit" without numba fails here
        self.kernel_tier = resolve_kernel_tier(kernel_tier)
        self._policy = LocalThresholdPolicy(self.k)
        seed_seqs = spawn_seed_sequences(seed, comm.p)
        self._handle = comm.create_pe_state(
            functools.partial(
                pe_kernels.make_pe_state,
                k=self.k,
                store=self.store,
                order=order,
                kernel_tier=self.kernel_tier,
            ),
            per_pe_args=[(ss,) for ss in seed_seqs],
        )
        self._has_worker_stream = False
        self.threshold: Optional[float] = None
        self._items_seen = 0
        self._total_weight = 0.0
        self._round = 0

    # ------------------------------------------------------------------
    @property
    def p(self) -> int:
        """Number of PEs."""
        return self.comm.p

    @property
    def items_seen(self) -> int:
        """Total number of items processed so far (all PEs)."""
        return self._items_seen

    @property
    def total_weight(self) -> float:
        """Total weight processed so far (all PEs)."""
        return self._total_weight

    @property
    def rounds_processed(self) -> int:
        return self._round

    @property
    def reservoirs(self) -> List[LocalReservoir]:
        """The local reservoir objects (simulated backend only).

        Under the multiprocess backend the reservoirs live inside the
        worker processes; use :meth:`sample_items` / :meth:`keyset` to
        inspect them instead.
        """
        return [
            self.comm.local_pe_state(self._handle, pe)["reservoir"] for pe in range(self.p)
        ]

    def sample_size(self) -> int:
        """Current size of the distributed sample (union of local reservoirs)."""
        return sum(self.comm.run_per_pe(self._handle, pe_kernels.local_size_kernel))

    def sample_items(self) -> List[Tuple[int, float]]:
        """The current sample as ``(item id, key)`` pairs (all PEs, unordered)."""
        out: List[Tuple[int, float]] = []
        for items in self.comm.run_per_pe(self._handle, pe_kernels.items_kernel):
            out.extend((item_id, key) for key, item_id in items)
        return out

    def sample_ids(self) -> np.ndarray:
        """The item ids of the current sample."""
        ids = self.comm.run_per_pe(self._handle, pe_kernels.item_ids_kernel)
        return np.concatenate(ids) if ids else np.empty(0, dtype=np.int64)

    def keyset(self) -> CommBackedKeySet:
        """A selection view over the current local reservoirs."""
        return CommBackedKeySet(self.comm, self._handle)

    def engine(self) -> OrderStatisticsEngine:
        """The order-statistics engine over the current local reservoirs.

        Each round's threshold re-establishment is one
        :meth:`~repro.selection.engine.OrderStatisticsEngine.threshold_update`
        call on this engine; the selection algorithm acts as its policy.
        """
        return OrderStatisticsEngine(self.keyset(), self.comm, policy=self.selection)

    def preload(
        self,
        per_pe_items: Sequence[Sequence[Tuple[float, int]]],
        *,
        items_seen: int,
        total_weight: float,
        threshold: Optional[float],
    ) -> None:
        """Install a pre-computed sampler state (steady-state warm start).

        ``per_pe_items`` holds, per PE, the (key, item id) pairs of its local
        reservoir.  ``items_seen``/``total_weight`` describe the stream that
        is considered to have been processed already, and ``threshold`` is
        the global insertion threshold in effect.  Used by the scaling
        experiments to start measurements in the steady state (``n >> k``)
        that the paper's 30-second runs operate in, without paying the cost
        of streaming ``n`` items through the simulator.
        """
        if len(per_pe_items) != self.p:
            raise ValueError(f"expected {self.p} per-PE item lists, got {len(per_pe_items)}")
        if self._items_seen:
            raise RuntimeError("preload is only valid on a fresh sampler")
        self.comm.run_per_pe(
            self._handle,
            pe_kernels.preload_kernel,
            [([(float(key), int(item_id)) for key, item_id in items],) for items in per_pe_items],
        )
        self._items_seen = int(items_seen)
        self._total_weight = float(total_weight)
        self.threshold = float(threshold) if threshold is not None else None

    def attach_worker_stream(
        self,
        batch_size: int,
        *,
        seed: Optional[int] = 0,
        weights=None,
        variable: bool = False,
        stamped: bool = False,
        id_offset: int = 0,
    ) -> None:
        """Install a worker-local stream shard on every PE.

        Subsequent :meth:`process_stream_round` calls generate each PE's
        batch *inside* that PE (in the worker process under the
        multiprocess backend) instead of shipping coordinator-built
        batches.  The shards replicate a constant-batch-size
        :class:`~repro.stream.minibatch.MiniBatchStream` exactly.

        ``variable=True`` allows the shards to be resized between rounds
        (adaptive mini-batch sizing; switches to interleaved item ids) and
        ``stamped=True`` makes them emit timestamped batches — both are
        used by the pipelined drivers of :mod:`repro.pipeline`.
        ``id_offset`` shifts every emitted id (elastic re-sharding starts
        a resharded stream past the ids the old shard layout emitted).
        """
        specs = make_shard_specs(
            self.p,
            batch_size,
            seed=seed,
            weights=weights,
            variable=variable,
            stamped=stamped,
            id_offset=id_offset,
        )
        self.comm.run_per_pe(
            self._handle, pe_kernels.install_stream_kernel, [(spec,) for spec in specs]
        )
        self._has_worker_stream = True

    # ------------------------------------------------------------------
    def process_round(self, batches: Sequence[ItemBatch]) -> RoundMetrics:
        """Process one mini-batch round (one batch per PE)."""
        if len(batches) != self.p:
            raise ValueError(f"expected {self.p} batches (one per PE), got {len(batches)}")
        clock = PhaseClock(self.p)
        phase_comm_before = self.comm.ledger.time_by_phase()
        threshold_was_set = self.threshold is not None

        with self.comm.phase("insert"):
            results = self.comm.run_per_pe(
                self._handle,
                pe_kernels.insert_batch_kernel,
                [
                    (batch.ids, batch.weights, self.threshold, self.weighted, self.local_thresholding)
                    for batch in batches
                ],
            )
        batch_sizes = [len(batch) for batch in batches]
        insertions, sizes = self._charge_insert_work(clock, results, batch_sizes, threshold_was_set)
        batch_items = sum(batch_sizes)
        self._items_seen += batch_items
        self._total_weight += sum(batch.total_weight for batch in batches)
        return self._finish_round(clock, phase_comm_before, batch_items, insertions, sizes)

    def process_stream_round(self) -> RoundMetrics:
        """Process one round whose batches are generated worker-locally.

        Requires :meth:`attach_worker_stream`.  Under the multiprocess
        backend both the batch generation and the ingestion run in
        parallel in the workers; this is the hot path of
        :class:`~repro.runtime.parallel.ParallelStreamingRun`.
        """
        if not self._has_worker_stream:
            raise RuntimeError("no worker stream attached; call attach_worker_stream() first")
        clock = PhaseClock(self.p)
        phase_comm_before = self.comm.ledger.time_by_phase()
        threshold_was_set = self.threshold is not None

        with self.comm.phase("insert"):
            results = self.comm.run_per_pe(
                self._handle,
                pe_kernels.stream_insert_kernel,
                [(self.threshold, self.weighted, self.local_thresholding)] * self.p,
            )
        batch_sizes = [r[3] for r in results]
        insert_results = [r[:3] for r in results]
        insertions, sizes = self._charge_insert_work(
            clock, insert_results, batch_sizes, threshold_was_set
        )
        batch_items = sum(batch_sizes)
        self._items_seen += batch_items
        self._total_weight += sum(r[4] for r in results)
        return self._finish_round(clock, phase_comm_before, batch_items, insertions, sizes)

    # ------------------------------------------------------------------
    # round phases
    # ------------------------------------------------------------------
    def _charge_insert_work(
        self,
        clock: PhaseClock,
        results: Sequence[Tuple[int, int, int]],
        batch_sizes: Sequence[int],
        threshold_was_set: bool,
    ) -> Tuple[List[int], List[int]]:
        """Charge the insert phase from the kernel results.

        Returns ``(insertions, sizes)``: per-PE insertion counts and
        post-insert reservoir sizes.
        """
        insertions: List[int] = []
        sizes: List[int] = []
        for pe, ((inserted, pruned, size), b) in enumerate(zip(results, batch_sizes)):
            insertions.append(int(inserted))
            sizes.append(int(size))
            if b == 0:
                continue
            if not threshold_was_set:
                time = (
                    self.machine.scan_time(b, batch_size=b)
                    + self.machine.key_gen_time(b)
                    + self.machine.tree_op_time(inserted + pruned, max(size, 1))
                )
            else:
                if self.weighted:
                    scan_time = self.machine.scan_time(b, batch_size=b)
                else:
                    # Skipping items is O(1) per accepted item for uniform
                    # sampling (Corollary 4): only accepted items cost work.
                    scan_time = self.machine.scan_time(inserted, batch_size=b)
                time = (
                    scan_time
                    + self.machine.key_gen_time(2 * inserted + 1)
                    + self.machine.tree_op_time(inserted, max(size, 1))
                )
            clock.charge("insert", pe, time)
        return insertions, sizes

    def _finish_round(
        self,
        clock: PhaseClock,
        phase_comm_before: Dict[str, float],
        batch_items: int,
        insertions: List[int],
        sizes: List[int],
    ) -> RoundMetrics:
        """Select + threshold phases and metric assembly (shared by both
        round entry points)."""
        engine = self.engine()
        with self.comm.phase("select"):
            total_candidates = engine.global_size(sizes=sizes)
        update = self._update_threshold(engine, total_candidates)
        if update.result is not None:
            self._charge_selection_work(clock, update.result, sizes)
        if update.threshold is not None:
            # A ThresholdUpdate without a boundary (total below k) leaves
            # the previous threshold in place — nothing tightened it.
            self.threshold = update.threshold
            with self.comm.phase("threshold"):
                prune_results = self.comm.run_per_pe(
                    self._handle, pe_kernels.prune_kernel, [(self.threshold,)] * self.p
                )
            for pe, (size_before, size_after) in enumerate(prune_results):
                clock.charge("threshold", pe, self.machine.tree_op_time(2, size_before))
            sizes = [int(size_after) for _, size_after in prune_results]

        self._round += 1
        return self._build_metrics(
            clock,
            phase_comm_before,
            batch_items=batch_items,
            insertions=insertions,
            sample_size=sum(sizes),
            selection_result=update.result,
            selection_ran=update.selection_ran,
        )

    # ------------------------------------------------------------------
    # threshold re-establishment (overridden by the variable-size sampler)
    # ------------------------------------------------------------------
    def _update_threshold(self, engine: OrderStatisticsEngine, total: int) -> ThresholdUpdate:
        """Re-establish the global threshold: one engine call.

        Selection runs when the candidate count exceeds ``k``; at exactly
        ``k`` the engine tightens the boundary to the global max key with a
        single all-reduction.  The comm-backed keyset draws pivot proposals
        from the worker-held per-PE generators, so no driver-side generator
        is involved.
        """
        return engine.threshold_update(self.k, total=total)

    def _charge_selection_work(
        self, clock: PhaseClock, result: SelectionResult, sizes: Sequence[int]
    ) -> None:
        charge_selection_work(clock, self.machine, self.selection, result, sizes)

    # ------------------------------------------------------------------
    def _build_metrics(
        self,
        clock: PhaseClock,
        phase_comm_before: Dict[str, float],
        *,
        batch_items: int,
        insertions: List[int],
        sample_size: int,
        selection_result: Optional[SelectionResult],
        selection_ran: bool,
    ) -> RoundMetrics:
        phase_times = collect_phase_times(
            clock, phase_comm_before, self.comm.ledger.time_by_phase()
        )
        return RoundMetrics(
            round_index=self._round - 1,
            batch_items=batch_items,
            items_seen_total=self._items_seen,
            sample_size=sample_size,
            threshold=self.threshold,
            phase_times=phase_times,
            insertions_per_pe=list(insertions),
            selection_stats=selection_result.stats if selection_result is not None else None,
            selection_ran=selection_ran,
        )


class DistributedWeightedReservoirSampler(DistributedReservoirSampler):
    """Weighted instantiation of Algorithm 1 (exponential keys and jumps)."""

    algorithm_name = "ours"

    def __init__(self, k: int, comm: Communicator, **kwargs) -> None:
        kwargs.setdefault("weighted", True)
        super().__init__(k, comm, **kwargs)


class DistributedUniformReservoirSampler(DistributedReservoirSampler):
    """Uniform (unweighted) instantiation (Section 4.3, geometric jumps)."""

    algorithm_name = "ours-uniform"

    def __init__(self, k: int, comm: Communicator, **kwargs) -> None:
        kwargs.setdefault("weighted", False)
        super().__init__(k, comm, **kwargs)

"""Bulk priority-queue view over the union of the local reservoirs.

The paper frames the distributed reservoir as "a communication-efficient
bulk priority queue" [21]: a distributed collection of keyed items that
supports bulk operations on the globally smallest elements.  This module
provides that view as a thin facade used by the public API, the tests and
the examples — all heavy lifting is delegated to the selection algorithms
and the communicator, so every operation's communication cost is accounted.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.distributed import ReservoirKeySet
from repro.core.local_reservoir import LocalReservoir
from repro.network.communicator import SimComm
from repro.selection.base import SelectionAlgorithm, SelectionResult
from repro.selection.bernoulli_pivot import SinglePivotSelection

__all__ = ["DistributedBulkPriorityQueue"]


class DistributedBulkPriorityQueue:
    """Bulk operations over the union of per-PE reservoirs.

    Parameters
    ----------
    reservoirs:
        The per-PE local reservoirs (not copied; the queue is a live view).
    comm:
        Simulated communicator used for the distributed operations.
    selection:
        Selection algorithm used by rank-based queries; defaults to the
        single-pivot algorithm.
    """

    def __init__(
        self,
        reservoirs: Sequence[LocalReservoir],
        comm: SimComm,
        *,
        selection: Optional[SelectionAlgorithm] = None,
        seed: Optional[int] = 0,
    ) -> None:
        if len(reservoirs) != comm.p:
            raise ValueError(f"expected {comm.p} reservoirs, got {len(reservoirs)}")
        self.reservoirs = list(reservoirs)
        self.comm = comm
        self.selection = selection if selection is not None else SinglePivotSelection()
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def keyset(self) -> ReservoirKeySet:
        return ReservoirKeySet(self.reservoirs)

    def global_size(self) -> int:
        """Total number of items (one all-reduction)."""
        sizes = [float(len(r)) for r in self.reservoirs]
        return int(self.comm.allreduce(sizes, SimComm.SUM)[0])

    def global_min(self) -> float:
        """Globally smallest key (one all-reduction)."""
        mins = [r.min_key() if len(r) else np.inf for r in self.reservoirs]
        return float(self.comm.allreduce(mins, SimComm.MIN)[0])

    def global_max(self) -> float:
        """Globally largest key (one all-reduction)."""
        maxs = [r.max_key() if len(r) else -np.inf for r in self.reservoirs]
        return float(self.comm.allreduce(maxs, SimComm.MAX)[0])

    def global_rank(self, key: float) -> int:
        """Number of items with keys at most ``key`` (one all-reduction)."""
        counts = [float(r.count_le(key)) for r in self.reservoirs]
        return int(self.comm.allreduce(counts, SimComm.SUM)[0])

    def global_select(self, k: int) -> SelectionResult:
        """The key with global rank ``k`` (communication-efficient selection)."""
        return self.selection.select(self.keyset(), k, self.comm, self._rng)

    def top_k_items(self, k: int) -> List[Tuple[int, float]]:
        """The ``k`` items with the globally smallest keys as (id, key) pairs.

        Uses one distributed selection to find the rank-``k`` key and then
        collects the qualifying items from each reservoir.  Intended for
        result extraction, not for the per-batch hot path.
        """
        total = self.global_size()
        if total == 0 or k <= 0:
            return []
        if k >= total:
            out: List[Tuple[int, float]] = []
            for reservoir in self.reservoirs:
                out.extend((item_id, key) for key, item_id in reservoir.items())
            return sorted(out, key=lambda pair: pair[1])
        result = self.global_select(k)
        out = []
        for reservoir in self.reservoirs:
            keys = reservoir.keys_array()
            ids = reservoir.item_ids()
            cut = int(np.searchsorted(keys, result.key, side="right"))
            out.extend(zip(ids[:cut].tolist(), keys[:cut].tolist()))
        out.sort(key=lambda pair: pair[1])
        return out[:k]

    def prune_to_top_k(self, k: int) -> Tuple[Optional[float], int]:
        """Discard all but the ``k`` globally smallest items.

        Returns the threshold key used and the number of removed items.
        This is exactly the select + splitAt step of Algorithm 1.
        """
        total = self.global_size()
        if total <= k:
            return None, 0
        result = self.global_select(k)
        removed = 0
        for reservoir in self.reservoirs:
            removed += reservoir.prune_above_key(result.key, inclusive=True)
        return float(result.key), removed

"""Sequential reservoir samplers (paper Sections 4.1 and 4.3).

These are the single-PE building blocks of the distributed algorithm and
double as baselines and as reference implementations for the statistical
tests:

* :class:`SequentialWeightedReservoir` — weighted reservoir sampling with
  the exponential-jumps skip values adapted to exponential keys
  (Section 4.1).  The threshold (largest key in the reservoir) is updated
  after every insertion, unlike the distributed mini-batch algorithm which
  freezes it per batch.
* :class:`SequentialUniformReservoir` — uniform reservoir sampling with
  geometric jumps (Section 4.3, following Devroye/Li).
* :func:`dense_weighted_sample` / :func:`dense_uniform_sample` — brute-force
  reference samplers that give every item a key and keep the ``k`` smallest;
  the distribution of their output is by construction correct, so they are
  the ground truth for the statistical equivalence tests.
"""

from __future__ import annotations

import heapq
import math
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core import keys as keymod
from repro.core.store import ReservoirStore, make_store, normalize_store_name
from repro.stream.items import ItemBatch
from repro.utils.rng import ensure_generator
from repro.utils.validation import check_positive, check_positive_int

__all__ = [
    "SequentialWeightedReservoir",
    "SequentialUniformReservoir",
    "dense_weighted_sample",
    "dense_uniform_sample",
]


def ingest_keyed_batch(
    store: ReservoirStore,
    keys: np.ndarray,
    ids: np.ndarray,
    k: int,
    *,
    threshold: Optional[float] = None,
    weights: Optional[np.ndarray] = None,
    weights_by_id: Optional[dict] = None,
) -> int:
    """Shared store-backed batch ingestion: prefilter, merge, truncate.

    Keys at or above ``threshold`` are dropped, the survivors are merged
    into ``store`` truncated to ``k`` items, and the returned count is the
    number of batch items that ended up *in* the reservoir (matching the
    per-item path's notion of "entered the reservoir", not merely "passed
    the prefilter").  When ``weights_by_id`` is given, the surviving
    weights are recorded and the mapping is pruned to the stored ids once
    it grows past ``4 * k + 64`` entries.  Shared by the sequential
    samplers and :class:`repro.window.decayed.DecayedReservoir`, whose
    batch paths differ only in how the keys are generated.
    """
    if threshold is not None:
        mask = keys < threshold
        keys, ids = keys[mask], ids[mask]
        if weights is not None:
            weights = weights[mask]
    inserted = store.insert_batch(keys, ids, capacity=k)
    if inserted and len(store) >= k:
        inserted = int(np.count_nonzero(keys <= store.max_key()))
    if weights_by_id is not None:
        if weights is None:
            raise ValueError("weights_by_id bookkeeping requires the weight array")
        for item_id, weight in zip(ids.tolist(), weights.tolist()):
            weights_by_id[int(item_id)] = float(weight)
        if len(weights_by_id) > 4 * k + 64:
            kept = set(store.ids_array().tolist())
            for item_id in [i for i in weights_by_id if i not in kept]:
                del weights_by_id[item_id]
    return inserted


class _ReservoirHeap:
    """A max-heap of (key, item id, weight) capped at ``k`` entries."""

    def __init__(self, k: int) -> None:
        self.k = k
        # store negated keys so that heapq (a min-heap) pops the largest key
        self._heap: List[Tuple[float, int, float]] = []

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def full(self) -> bool:
        return len(self._heap) >= self.k

    @property
    def max_key(self) -> float:
        if not self._heap:
            raise ValueError("empty reservoir has no threshold")
        return -self._heap[0][0]

    def push(self, key: float, item_id: int, weight: float) -> None:
        heapq.heappush(self._heap, (-key, item_id, weight))

    def replace_max(self, key: float, item_id: int, weight: float) -> None:
        heapq.heapreplace(self._heap, (-key, item_id, weight))

    def items(self) -> List[Tuple[float, int, float]]:
        return [(-neg_key, item_id, weight) for neg_key, item_id, weight in self._heap]


class SequentialWeightedReservoir:
    """Weighted reservoir sampler over a stream of (id, weight) items.

    Parameters
    ----------
    k:
        Sample size.
    seed:
        Seed or generator for the random key stream.
    store:
        ``None`` (default) keeps the classic per-item heap with exponential
        jumps.  A store backend name (``"merge"`` or ``"btree"``) switches
        to the vectorized mini-batch path: every batch gets dense
        exponential keys, is prefiltered against the current threshold and
        merged into a :class:`~repro.core.store.ReservoirStore` truncated
        to ``k`` — statistically equivalent, and far faster per batch.

    Notes
    -----
    The sampler keeps the ``k`` items with the smallest exponential keys
    seen so far.  After the reservoir is full it uses exponential jumps: it
    draws how much *weight* may pass before the next insertion and examines
    only the items that exhaust the skip, as in Section 4.1 of the paper.
    """

    def __init__(
        self, k: int, seed=None, *, store: Optional[str] = None, kernel_tier: str = "numpy"
    ) -> None:
        self.k = check_positive_int(k, "k")
        self._rng = ensure_generator(seed)
        self.store = normalize_store_name(store) if store is not None else None
        self._store: Optional[ReservoirStore] = (
            make_store(store, kernel_tier=kernel_tier) if store is not None else None
        )
        self._weights_by_id = {} if store is not None else None
        self._reservoir = _ReservoirHeap(self.k)
        self._items_seen = 0
        self._total_weight = 0.0
        self._weight_to_skip = 0.0  # remaining weight of the current jump
        self._skips_drawn = 0
        self._insertions = 0

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Current number of items in the reservoir (``min(k, n)``)."""
        if self._store is not None:
            return len(self._store)
        return len(self._reservoir)

    @property
    def items_seen(self) -> int:
        return self._items_seen

    @property
    def total_weight(self) -> float:
        return self._total_weight

    @property
    def insertions(self) -> int:
        """Number of reservoir insertions performed so far (diagnostics)."""
        return self._insertions

    @property
    def threshold(self) -> Optional[float]:
        """Current insertion threshold (largest key), ``None`` while filling."""
        if self._store is not None:
            return self._store.max_key() if len(self._store) >= self.k else None
        return self._reservoir.max_key if self._reservoir.full else None

    # ------------------------------------------------------------------
    def _process_store_batch(self, ids: np.ndarray, weights: np.ndarray) -> int:
        """Vectorized batch path: dense keys, prefilter, one merge, truncate.

        Returns the number of batch items that ended up *in* the reservoir
        after the merge and capacity truncation (matching the classic
        path's notion of "entered the reservoir", not merely "passed the
        threshold prefilter").
        """
        keys = keymod.exponential_keys(weights, self._rng)
        inserted = ingest_keyed_batch(
            self._store,
            keys,
            ids,
            self.k,
            threshold=self.threshold,
            weights=weights,
            weights_by_id=self._weights_by_id,
        )
        self._insertions += inserted
        return inserted

    def insert(self, item_id: int, weight: float) -> bool:
        """Process one item; returns ``True`` if it entered the reservoir."""
        if self._store is not None:
            weight = check_positive(weight, "weight")
            self._items_seen += 1
            self._total_weight += weight
            return (
                self._process_store_batch(
                    np.array([item_id], dtype=np.int64), np.array([weight], dtype=np.float64)
                )
                > 0
            )
        weight = check_positive(weight, "weight")
        self._items_seen += 1
        self._total_weight += weight
        if not self._reservoir.full:
            key = float(-math.log(1.0 - self._rng.random()) / weight)
            self._reservoir.push(key, int(item_id), weight)
            self._insertions += 1
            if self._reservoir.full:
                self._weight_to_skip = keymod.weighted_skip(self._reservoir.max_key, self._rng)
                self._skips_drawn += 1
            return True
        self._weight_to_skip -= weight
        if self._weight_to_skip > 0.0:
            return False
        threshold = self._reservoir.max_key
        key = keymod.weighted_key_below_threshold(weight, threshold, self._rng)
        self._reservoir.replace_max(key, int(item_id), weight)
        self._insertions += 1
        self._weight_to_skip = keymod.weighted_skip(self._reservoir.max_key, self._rng)
        self._skips_drawn += 1
        return True

    def process(self, batch: ItemBatch) -> int:
        """Process a whole batch; returns the number of insertions."""
        if self._store is not None:
            self._items_seen += len(batch)
            self._total_weight += batch.total_weight
            return self._process_store_batch(batch.ids, batch.weights)
        before = self._insertions
        for item_id, weight in zip(batch.ids.tolist(), batch.weights.tolist()):
            self.insert(item_id, weight)
        return self._insertions - before

    def extend(self, items: Iterable[Tuple[int, float]]) -> None:
        """Process an iterable of ``(id, weight)`` pairs."""
        for item_id, weight in items:
            self.insert(item_id, weight)

    # ------------------------------------------------------------------
    def sample(self) -> List[Tuple[int, float]]:
        """The current sample as ``(item id, weight)`` pairs (unordered)."""
        if self._store is not None:
            return [
                (int(i), self._weights_by_id[int(i)]) for i in self._store.ids_array()
            ]
        return [(item_id, weight) for _, item_id, weight in self._reservoir.items()]

    def sample_ids(self) -> np.ndarray:
        """The current sample's item ids."""
        if self._store is not None:
            return self._store.ids_array()
        return np.array([item_id for _, item_id, _ in self._reservoir.items()], dtype=np.int64)

    def sample_with_keys(self) -> List[Tuple[float, int, float]]:
        """The current sample as ``(key, id, weight)`` triples."""
        if self._store is not None:
            return [
                (key, int(item_id), self._weights_by_id[int(item_id)])
                for key, item_id in self._store.items()
            ]
        return self._reservoir.items()


class SequentialUniformReservoir:
    """Uniform reservoir sampler with geometric jumps (Section 4.3).

    As with :class:`SequentialWeightedReservoir`, passing ``store=`` selects
    the vectorized mini-batch path over a pluggable reservoir store.
    """

    def __init__(
        self, k: int, seed=None, *, store: Optional[str] = None, kernel_tier: str = "numpy"
    ) -> None:
        self.k = check_positive_int(k, "k")
        self._rng = ensure_generator(seed)
        self.store = normalize_store_name(store) if store is not None else None
        self._store: Optional[ReservoirStore] = (
            make_store(store, kernel_tier=kernel_tier) if store is not None else None
        )
        self._reservoir = _ReservoirHeap(self.k)
        self._items_seen = 0
        self._items_to_skip = 0
        self._insertions = 0

    @property
    def size(self) -> int:
        if self._store is not None:
            return len(self._store)
        return len(self._reservoir)

    @property
    def items_seen(self) -> int:
        return self._items_seen

    @property
    def insertions(self) -> int:
        return self._insertions

    @property
    def threshold(self) -> Optional[float]:
        if self._store is not None:
            return self._store.max_key() if len(self._store) >= self.k else None
        return self._reservoir.max_key if self._reservoir.full else None

    # ------------------------------------------------------------------
    def _process_store_batch(self, ids: np.ndarray) -> int:
        """Vectorized batch path: dense uniform keys, prefilter, merge.

        As in the weighted sampler, the return value counts batch items
        that ended up in the reservoir after the capacity truncation.
        """
        keys = keymod.uniform_keys(ids.shape[0], self._rng)
        inserted = ingest_keyed_batch(self._store, keys, ids, self.k, threshold=self.threshold)
        self._insertions += inserted
        return inserted

    def insert(self, item_id: int) -> bool:
        """Process one item; returns ``True`` if it entered the reservoir."""
        if self._store is not None:
            self._items_seen += 1
            return self._process_store_batch(np.array([item_id], dtype=np.int64)) > 0
        self._items_seen += 1
        if not self._reservoir.full:
            key = float(1.0 - self._rng.random())
            self._reservoir.push(key, int(item_id), 1.0)
            self._insertions += 1
            if self._reservoir.full:
                self._items_to_skip = keymod.geometric_skip(self._reservoir.max_key, self._rng)
            return True
        if self._items_to_skip > 0:
            self._items_to_skip -= 1
            return False
        threshold = self._reservoir.max_key
        key = keymod.uniform_key_below_threshold(threshold, self._rng)
        self._reservoir.replace_max(key, int(item_id), 1.0)
        self._insertions += 1
        self._items_to_skip = keymod.geometric_skip(self._reservoir.max_key, self._rng)
        return True

    def process(self, batch: ItemBatch) -> int:
        """Process a batch (weights ignored); returns the number of insertions."""
        if self._store is not None:
            self._items_seen += len(batch)
            return self._process_store_batch(batch.ids)
        before = self._insertions
        for item_id in batch.ids.tolist():
            self.insert(item_id)
        return self._insertions - before

    def extend_ids(self, ids: Iterable[int]) -> None:
        for item_id in ids:
            self.insert(item_id)

    def sample_ids(self) -> np.ndarray:
        if self._store is not None:
            return self._store.ids_array()
        return np.array([item_id for _, item_id, _ in self._reservoir.items()], dtype=np.int64)

    def sample_with_keys(self) -> List[Tuple[float, int, float]]:
        if self._store is not None:
            return [(key, int(item_id), 1.0) for key, item_id in self._store.items()]
        return self._reservoir.items()


# ---------------------------------------------------------------------------
# dense reference samplers
# ---------------------------------------------------------------------------
def dense_weighted_sample(
    ids: Sequence[int], weights: Sequence[float], k: int, rng=None
) -> np.ndarray:
    """Brute-force weighted sample without replacement of size ``min(k, n)``.

    Gives every item an exponential key and returns the ids of the ``k``
    smallest.  Correct by construction (Section 3.1); used as ground truth.
    """
    rng = ensure_generator(rng)
    ids = np.asarray(ids, dtype=np.int64)
    keys = keymod.exponential_keys(np.asarray(weights, dtype=np.float64), rng)
    k = min(int(k), ids.shape[0])
    if k <= 0:
        return np.empty(0, dtype=np.int64)
    order = np.argpartition(keys, k - 1)[:k]
    return ids[order]


def dense_uniform_sample(ids: Sequence[int], k: int, rng=None) -> np.ndarray:
    """Brute-force uniform sample without replacement of size ``min(k, n)``."""
    rng = ensure_generator(rng)
    ids = np.asarray(ids, dtype=np.int64)
    keys = keymod.uniform_keys(ids.shape[0], rng)
    k = min(int(k), ids.shape[0])
    if k <= 0:
        return np.empty(0, dtype=np.int64)
    order = np.argpartition(keys, k - 1)[:k]
    return ids[order]

"""Pluggable reservoir store backends (batch-insertion fast path).

The per-PE local reservoir of the distributed sampler is an ordered map
from key to item id that must support rank/select queries, pruning and —
critically for the mini-batch hot path — *batch* insertion.  This module
defines the :class:`ReservoirStore` protocol those operations form, plus
two implementations:

* :class:`BTreeStore` — the paper's augmented B+ tree.  Insertion descends
  the tree once per item, which in pure Python costs far more than the
  algorithmic ``O(log n)`` suggests; it is kept as the faithful rendition
  of the paper's data structure and for the ablation study.
* :class:`MergeStore` — sorted numpy arrays with a vectorized batch path:
  the whole incoming batch is key-filtered against the current threshold
  (one boolean mask), sorted once, merged into the store with a single
  ``np.searchsorted`` + ``np.insert`` pass and truncated to capacity.
  Cost per batch of ``m`` items: ``O(n + m log m)`` with numpy constants,
  instead of ``m`` interpreter-level tree descents.

Both stores order equal keys identically (existing entries before newly
inserted ones), so for the same stream of random keys the two backends
hold byte-identical reservoirs — which the store-equivalence tests check
and the ablation benchmark relies on.

:func:`make_store` resolves a backend by name.  ``"merge"`` is the default
throughout the library; ``"btree"`` selects the paper's structure and
``"sorted_array"`` is kept as a backwards-compatible alias of ``"merge"``.

Both factories additionally take a ``kernel_tier`` (``"numpy"``, ``"jit"``
or ``"auto"``, see :mod:`repro.core.jit_kernels`): under the ``"jit"`` tier
:class:`MergeStore` replaces the ``searchsorted`` + ``np.insert`` merge
with a single compiled two-pointer pass.  The merge is pure
comparisons/moves, so the stored arrays are byte-identical across tiers.
"""

from __future__ import annotations

import abc
from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.btree import BPlusTree

__all__ = [
    "ReservoirStore",
    "BTreeStore",
    "MergeStore",
    "STORE_BACKENDS",
    "make_store",
    "normalize_store_name",
]


class ReservoirStore(abc.ABC):
    """Ordered key -> item-id store with rank/select queries and batch insert.

    Keys are ``float64``; item ids are ``int64``.  Ranks are 1-based in
    ``kth_key``/``kth_keys`` ("the rank-th smallest key"), matching the
    paper's ``select`` convention, and 0-based half-open in
    ``keys_in_rank_range``.
    """

    #: backend name the store was created under (set by subclasses)
    name: str = "store"

    # -- size ---------------------------------------------------------------
    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of stored items."""

    # -- insertion ----------------------------------------------------------
    @abc.abstractmethod
    def insert(self, key: float, item_id: int) -> None:
        """Insert a single candidate item."""

    @abc.abstractmethod
    def insert_batch(
        self,
        keys: np.ndarray,
        ids: np.ndarray,
        *,
        threshold: Optional[float] = None,
        capacity: Optional[int] = None,
    ) -> int:
        """Ingest a whole batch of candidates at once.

        ``threshold`` (if given) prefilters the batch to keys strictly
        below it before any insertion work happens; ``capacity`` (if
        given) truncates the store to its ``capacity`` smallest items
        after the merge.  Returns the number of items that survived the
        prefilter and were inserted (before capacity truncation).
        """

    def insert_many(self, keys: Sequence[float], ids: Sequence[int]) -> int:
        """Insert several candidates (no prefilter); returns how many."""
        keys = np.asarray(keys, dtype=np.float64)
        ids = np.asarray(ids, dtype=np.int64)
        if keys.shape[0] != ids.shape[0]:
            raise ValueError("keys and ids must have equal length")
        return self.insert_batch(keys, ids)

    # -- rank / select queries ----------------------------------------------
    @abc.abstractmethod
    def count_le(self, key: float) -> int:
        """Number of stored keys ``<= key``."""

    @abc.abstractmethod
    def count_less(self, key: float) -> int:
        """Number of stored keys ``< key``."""

    @abc.abstractmethod
    def kth_key(self, rank: int) -> float:
        """The ``rank``-th smallest key (1-based; caller validates range)."""

    @abc.abstractmethod
    def kth_keys(self, ranks: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`kth_key` for an array of 1-based ranks."""

    @abc.abstractmethod
    def keys_in_rank_range(self, lo: int, hi: int) -> np.ndarray:
        """Keys with 0-based ranks in ``[lo, hi)``, sorted ascending."""

    def max_key(self) -> float:
        if not len(self):
            raise IndexError("empty store has no max key")
        return self.kth_key(len(self))

    def min_key(self) -> float:
        if not len(self):
            raise IndexError("empty store has no min key")
        return self.kth_key(1)

    # -- pruning ------------------------------------------------------------
    @abc.abstractmethod
    def truncate_to_rank(self, keep: int) -> int:
        """Keep only the ``keep`` smallest items; returns how many removed."""

    # -- extraction ---------------------------------------------------------
    @abc.abstractmethod
    def keys_array(self) -> np.ndarray:
        """All keys, sorted ascending."""

    @abc.abstractmethod
    def ids_array(self) -> np.ndarray:
        """All item ids, in increasing key order."""

    @abc.abstractmethod
    def items(self) -> Iterable[Tuple[float, int]]:
        """(key, item id) pairs in increasing key order."""


class MergeStore(ReservoirStore):
    """Keys and item ids in sorted numpy arrays with a vectorized batch path.

    Single insertions are ``O(n)`` (array shift), but the batch path does a
    single mask + sort + merge per mini-batch, which makes it the fast
    backend for the mini-batch setting this library simulates.
    """

    name = "merge"

    def __init__(self, *, kernel_tier: str = "numpy") -> None:
        from repro.core.jit_kernels import resolve_kernel_tier

        self._keys = np.empty(0, dtype=np.float64)
        self._ids = np.empty(0, dtype=np.int64)
        self.kernel_tier = resolve_kernel_tier(kernel_tier)

    def __len__(self) -> int:
        return int(self._keys.shape[0])

    # -- insertion ----------------------------------------------------------
    def insert(self, key: float, item_id: int) -> None:
        pos = int(np.searchsorted(self._keys, key, side="right"))
        self._keys = np.insert(self._keys, pos, key)
        self._ids = np.insert(self._ids, pos, item_id)

    def insert_batch(
        self,
        keys: np.ndarray,
        ids: np.ndarray,
        *,
        threshold: Optional[float] = None,
        capacity: Optional[int] = None,
    ) -> int:
        keys = np.asarray(keys, dtype=np.float64)
        ids = np.asarray(ids, dtype=np.int64)
        if keys.shape[0] != ids.shape[0]:
            raise ValueError("keys and ids must have equal length")
        if threshold is not None and keys.shape[0]:
            mask = keys < threshold
            keys, ids = keys[mask], ids[mask]
        inserted = int(keys.shape[0])
        if inserted:
            order = np.argsort(keys, kind="stable")
            keys, ids = keys[order], ids[order]
            if self._keys.shape[0] == 0:
                self._keys, self._ids = keys.copy(), ids.copy()
            elif self.kernel_tier == "jit":
                from repro.core.jit_kernels import merge_sorted_jit

                self._keys, self._ids = merge_sorted_jit(self._keys, self._ids, keys, ids)
            else:
                # one merge pass: equal keys keep existing entries first
                positions = np.searchsorted(self._keys, keys, side="right")
                self._keys = np.insert(self._keys, positions, keys)
                self._ids = np.insert(self._ids, positions, ids)
        if capacity is not None:
            self.truncate_to_rank(capacity)
        return inserted

    # -- queries ------------------------------------------------------------
    def count_le(self, key: float) -> int:
        return int(np.searchsorted(self._keys, key, side="right"))

    def count_less(self, key: float) -> int:
        return int(np.searchsorted(self._keys, key, side="left"))

    def kth_key(self, rank: int) -> float:
        return float(self._keys[rank - 1])

    def kth_keys(self, ranks: np.ndarray) -> np.ndarray:
        ranks = np.asarray(ranks, dtype=np.int64)
        if ranks.size and (ranks.min() < 1 or ranks.max() > len(self)):
            raise IndexError(f"ranks out of range 1..{len(self)}")
        return self._keys[ranks - 1].copy()

    def keys_in_rank_range(self, lo: int, hi: int) -> np.ndarray:
        return self._keys[lo:hi].copy()

    def truncate_to_rank(self, keep: int) -> int:
        removed = max(0, len(self) - max(keep, 0))
        if removed:
            keep = len(self) - removed
            self._keys = self._keys[:keep].copy()
            self._ids = self._ids[:keep].copy()
        return removed

    # -- extraction ---------------------------------------------------------
    def keys_array(self) -> np.ndarray:
        return self._keys.copy()

    def ids_array(self) -> np.ndarray:
        return self._ids.copy()

    def items(self) -> Iterable[Tuple[float, int]]:
        return zip(self._keys.tolist(), self._ids.tolist())


class BTreeStore(ReservoirStore):
    """The paper's augmented B+ tree behind the :class:`ReservoirStore` protocol.

    Batch insertion prefilters with the same vectorized mask as
    :class:`MergeStore` (so both backends see identical candidate sets)
    but then descends the tree once per surviving item — the behaviour the
    ablation study quantifies.
    """

    name = "btree"

    def __init__(self, *, order: int = 16) -> None:
        self._tree = BPlusTree(order=order)

    def __len__(self) -> int:
        return len(self._tree)

    # -- insertion ----------------------------------------------------------
    def insert(self, key: float, item_id: int) -> None:
        self._tree.insert(float(key), int(item_id))

    def insert_batch(
        self,
        keys: np.ndarray,
        ids: np.ndarray,
        *,
        threshold: Optional[float] = None,
        capacity: Optional[int] = None,
    ) -> int:
        keys = np.asarray(keys, dtype=np.float64)
        ids = np.asarray(ids, dtype=np.int64)
        if keys.shape[0] != ids.shape[0]:
            raise ValueError("keys and ids must have equal length")
        if threshold is not None and keys.shape[0]:
            mask = keys < threshold
            keys, ids = keys[mask], ids[mask]
        for key, item_id in zip(keys.tolist(), ids.tolist()):
            self._tree.insert(key, item_id)
        if capacity is not None:
            self.truncate_to_rank(capacity)
        return int(keys.shape[0])

    # -- queries ------------------------------------------------------------
    def count_le(self, key: float) -> int:
        return self._tree.count_le(key)

    def count_less(self, key: float) -> int:
        return self._tree.count_less(key)

    def kth_key(self, rank: int) -> float:
        return float(self._tree.select(rank - 1)[0])

    def kth_keys(self, ranks: np.ndarray) -> np.ndarray:
        ranks = np.asarray(ranks, dtype=np.int64)
        if ranks.size and (ranks.min() < 1 or ranks.max() > len(self)):
            raise IndexError(f"ranks out of range 1..{len(self)}")
        return np.array([self._tree.select(int(r) - 1)[0] for r in ranks], dtype=np.float64)

    def keys_in_rank_range(self, lo: int, hi: int) -> np.ndarray:
        return np.array(
            [k for k, _ in self._tree.items_in_rank_range(lo, hi)], dtype=np.float64
        )

    def max_key(self) -> float:
        if not len(self):
            raise IndexError("empty store has no max key")
        return float(self._tree.max_key())

    def min_key(self) -> float:
        if not len(self):
            raise IndexError("empty store has no min key")
        return float(self._tree.min_key())

    def truncate_to_rank(self, keep: int) -> int:
        return self._tree.truncate_to_rank(max(keep, 0))

    # -- extraction ---------------------------------------------------------
    def keys_array(self) -> np.ndarray:
        return self._tree.keys_array()

    def ids_array(self) -> np.ndarray:
        return np.fromiter(self._tree.values(), dtype=np.int64, count=len(self._tree))

    def items(self) -> Iterable[Tuple[float, int]]:
        return self._tree.items()


#: registry of store backends; "sorted_array" is the historic alias of "merge"
STORE_BACKENDS = {
    "btree": BTreeStore,
    "merge": MergeStore,
    "sorted_array": MergeStore,
}


def normalize_store_name(name: str) -> str:
    """Canonical backend name ("sorted_array" folds into "merge")."""
    key = str(name).strip().lower()
    if key not in STORE_BACKENDS:
        raise ValueError(
            f"unknown store backend {name!r}; use one of {sorted(STORE_BACKENDS)}"
        )
    return "merge" if key == "sorted_array" else key


def make_store(
    name: str = "merge", *, order: int = 16, kernel_tier: str = "numpy"
) -> ReservoirStore:
    """Create a reservoir store backend by name (``"merge"`` or ``"btree"``).

    ``kernel_tier`` selects the merge implementation of :class:`MergeStore`
    (see :mod:`repro.core.jit_kernels`); the B+ tree has no compiled path,
    so for ``"btree"`` the tier is validated and otherwise ignored.
    """
    from repro.core.jit_kernels import resolve_kernel_tier

    canonical = normalize_store_name(name)
    cls = STORE_BACKENDS[canonical]
    if issubclass(cls, BTreeStore):
        resolve_kernel_tier(kernel_tier)
        return cls(order=order)
    return cls(kernel_tier=kernel_tier)

"""Reservoir sampling with a variable reservoir size (paper Section 4.4).

For any threshold ``T`` the items with keys below ``T`` form a valid sample
without replacement; its size ``s`` just is not fixed.  If the application
tolerates ``s`` anywhere in a band ``[k_lo, k_hi]``, two savings follow:

* the expensive selection only has to run when the sample has *grown out of
  the band* (for a stationary input the turnover is tiny once ``n >> k``,
  so whole batches pass without any selection at all), and
* when a selection does run, the approximate ``amsSelect`` algorithm may
  stop at any rank inside the band, which gives expected **constant**
  recursion depth when the band is wide enough (Corollary 5), so
  ``T_sel = O(alpha * log p)``.

The implementation reuses the machinery of
:class:`~repro.core.distributed.DistributedReservoirSampler` and only
replaces the "when to select and which rank to accept" decisions.
"""

from __future__ import annotations

from repro.core.distributed import DistributedReservoirSampler
from repro.network.base import Communicator
from repro.selection.ams_select import AmsSelection
from repro.selection.engine import OrderStatisticsEngine, ThresholdUpdate
from repro.utils.validation import check_positive_int

__all__ = ["VariableSizeReservoirSampler"]


class VariableSizeReservoirSampler(DistributedReservoirSampler):
    """Distributed reservoir sampling with sample size in ``[k_lo, k_hi]``.

    Parameters
    ----------
    k_lo, k_hi:
        Band of acceptable sample sizes (``k_lo <= k_hi``).  After every
        round the sample holds at least ``min(k_lo, n)`` and at most
        ``k_hi`` items.
    selection:
        Banded selection algorithm; defaults to
        :class:`~repro.selection.ams_select.AmsSelection` with two pivots.
    """

    algorithm_name = "ours-variable"

    def __init__(
        self,
        k_lo: int,
        k_hi: int,
        comm: Communicator,
        *,
        selection=None,
        **kwargs,
    ) -> None:
        check_positive_int(k_lo, "k_lo")
        check_positive_int(k_hi, "k_hi")
        if k_hi < k_lo:
            raise ValueError(f"k_hi ({k_hi}) must be at least k_lo ({k_lo})")
        selection = selection if selection is not None else AmsSelection(num_pivots=2)
        super().__init__(k_lo, comm, selection=selection, **kwargs)
        self.k_lo = int(k_lo)
        self.k_hi = int(k_hi)
        #: number of rounds in which a (banded) selection actually ran
        self.selections_run = 0
        #: number of rounds that needed no selection at all
        self.rounds_without_selection = 0

    # ------------------------------------------------------------------
    def _update_threshold(self, engine: OrderStatisticsEngine, total: int) -> ThresholdUpdate:
        """Only re-threshold when the sample outgrew the upper band limit.

        The engine runs the banded selection (any rank in ``[k_lo, k_hi]``
        is acceptable); inside the band the existing threshold remains
        valid, so no exact-count tightening happens either
        (``tighten_at_exact=False``).
        """
        update = engine.threshold_update(
            self.k_lo, k_hi=self.k_hi, total=total, tighten_at_exact=False
        )
        if update.selection_ran:
            self.selections_run += 1
        else:
            self.rounds_without_selection += 1
        return update

"""Random keys and skip values for reservoir sampling (paper Sections 3.1, 4.1, 4.3).

Sampling by sorting random variates
-----------------------------------
A weighted sample without replacement of size ``k`` is obtained by giving
every item ``i`` an exponential key ``v_i = -ln(rand()) / w_i`` and keeping
the ``k`` items with the *smallest* keys (the "exponential clocks" method,
numerically more stable than the classic ``rand()**(1/w_i)`` formulation).
For uniform sampling the key is simply ``rand()`` itself.

Skip values ("exponential jumps")
---------------------------------
Given the current threshold ``T`` (the largest key in the reservoir), the
amount of *weight* to skip before the next item enters the reservoir is an
exponential deviate with rate ``T``: ``X = -ln(rand()) / T``.  The key of
the item ``j`` that exhausts the skip is drawn from the part of its key
distribution below ``T``: ``v_j = -ln(rand(e^{-T w_j}, 1)) / w_j``.

For uniform sampling the number of *items* to skip is geometric with
success probability ``T`` and the accepted item's key is ``rand() * T``.

This module provides scalar forms (used by the sequential samplers, which
update ``T`` after every insertion) and vectorised batch kernels (used by
the distributed sampler, whose threshold is fixed for a whole mini-batch).
The batch kernel walks the cumulative weights with ``searchsorted``, which
is exactly the exponential-jumps traversal — including the Section-5
optimisation of skipping whole blocks of items at once — expressed as array
operations.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.utils.rng import ensure_generator
from repro.utils.validation import check_positive, check_weights

__all__ = [
    "exponential_keys",
    "uniform_keys",
    "weighted_skip",
    "weighted_key_below_threshold",
    "geometric_skip",
    "uniform_key_below_threshold",
    "check_jump_arguments",
    "check_uniform_jump_arguments",
    "weighted_jump_positions",
    "uniform_jump_positions",
    "dense_weighted_candidates",
    "dense_uniform_candidates",
]

_TINY = np.finfo(np.float64).tiny


def _rand_open(rng: np.random.Generator, size=None):
    """Uniform deviates from the half-open interval ``(0, 1]``.

    ``numpy`` draws from ``[0, 1)``; the reflection avoids taking
    ``log(0)``.
    """
    return 1.0 - rng.random(size)


# ---------------------------------------------------------------------------
# keys
# ---------------------------------------------------------------------------
def exponential_keys(weights: np.ndarray, rng=None) -> np.ndarray:
    """Exponential keys ``-ln(U)/w`` for an array of weights."""
    weights = check_weights(weights)
    rng = ensure_generator(rng)
    if weights.size == 0:
        return np.empty(0, dtype=np.float64)
    return -np.log(_rand_open(rng, weights.shape[0])) / weights


def uniform_keys(count: int, rng=None) -> np.ndarray:
    """Uniform keys in ``(0, 1]`` for uniform (unweighted) sampling."""
    if count < 0:
        raise ValueError("count must be non-negative")
    rng = ensure_generator(rng)
    return _rand_open(rng, count)


# ---------------------------------------------------------------------------
# scalar skip values (sequential samplers)
# ---------------------------------------------------------------------------
def weighted_skip(threshold: float, rng=None) -> float:
    """Amount of weight to skip before the next insertion (rate ``T``)."""
    check_positive(threshold, "threshold")
    rng = ensure_generator(rng)
    return float(-math.log(_rand_open(rng)) / threshold)


def weighted_key_below_threshold(weight: float, threshold: float, rng=None) -> float:
    """Key of an item that was determined to enter the reservoir.

    Draws ``v = -ln(rand(e^{-T w}, 1)) / w``, i.e. the key distribution of
    an item of weight ``w`` conditioned on being below the threshold ``T``.
    """
    check_positive(weight, "weight")
    check_positive(threshold, "threshold")
    rng = ensure_generator(rng)
    lower = math.exp(-threshold * weight)
    u = lower + _rand_open(rng) * (1.0 - lower)
    u = max(u, _TINY)
    return float(-math.log(u) / weight)


def geometric_skip(threshold: float, rng=None) -> int:
    """Number of items to skip for uniform sampling (geometric jumps)."""
    if not 0.0 < threshold <= 1.0:
        raise ValueError(f"uniform threshold must lie in (0, 1], got {threshold}")
    rng = ensure_generator(rng)
    if threshold >= 1.0:
        return 0
    u = _rand_open(rng)
    return int(math.floor(math.log(u) / math.log(1.0 - threshold)))


def uniform_key_below_threshold(threshold: float, rng=None) -> float:
    """Key (uniform in ``(0, T]``) of an accepted item in uniform sampling."""
    if not 0.0 < threshold <= 1.0:
        raise ValueError(f"uniform threshold must lie in (0, 1], got {threshold}")
    rng = ensure_generator(rng)
    return float(_rand_open(rng) * threshold)


# ---------------------------------------------------------------------------
# vectorised batch kernels (mini-batch processing with a fixed threshold)
# ---------------------------------------------------------------------------
def check_jump_arguments(weights: np.ndarray, threshold: float) -> np.ndarray:
    """Validate (weights, threshold) of a weighted jump traversal.

    Shared by the numpy reference kernel and the compiled tier
    (:mod:`repro.core.jit_kernels`), so both reject bad input identically.
    Returns the validated weights array.
    """
    weights = check_weights(weights)
    check_positive(threshold, "threshold")
    return weights


def check_uniform_jump_arguments(count: int, threshold: float) -> int:
    """Validate (count, threshold) of a uniform (geometric) jump traversal."""
    if count < 0:
        raise ValueError("count must be non-negative")
    if not 0.0 < threshold <= 1.0:
        raise ValueError(f"uniform threshold must lie in (0, 1], got {threshold}")
    return int(count)


def weighted_jump_positions(
    weights: np.ndarray, threshold: float, rng=None
) -> Tuple[np.ndarray, np.ndarray]:
    """Exponential-jumps traversal of a batch under a fixed threshold.

    Returns ``(indices, keys)``: the positions (in batch order) of the items
    whose keys fall below ``threshold`` and the keys assigned to them.  The
    expected number of returned items is small once many items have been
    seen, so the per-jump ``searchsorted`` on the cumulative weights keeps
    the whole batch scan at ``O(b)`` vectorised work plus
    ``O(#insertions * log b)``.
    """
    weights = check_jump_arguments(weights, threshold)
    rng = ensure_generator(rng)
    n = weights.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
    cumulative = np.cumsum(weights)
    total = float(cumulative[-1])
    indices = []
    keys = []
    consumed = 0.0
    while True:
        skip = -math.log(_rand_open(rng)) / threshold
        target = consumed + skip
        if target > total or not np.isfinite(target):
            break
        j = int(np.searchsorted(cumulative, target, side="left"))
        if j >= n:  # numerical edge when target == total
            break
        w = float(weights[j])
        lower = math.exp(-threshold * w)
        u = lower + _rand_open(rng) * (1.0 - lower)
        u = max(u, _TINY)
        keys.append(-math.log(u) / w)
        indices.append(j)
        consumed = float(cumulative[j])
        if j == n - 1:
            break
    return np.asarray(indices, dtype=np.int64), np.asarray(keys, dtype=np.float64)


def uniform_jump_positions(
    count: int, threshold: float, rng=None
) -> Tuple[np.ndarray, np.ndarray]:
    """Geometric-jumps traversal of ``count`` uniform items under threshold ``T``.

    Returns ``(indices, keys)`` of the accepted items.  Skipping items is a
    constant-time operation per accepted item, which is why the uniform
    sampler's local time does not depend on the batch size (Corollary 4).
    """
    count = check_uniform_jump_arguments(count, threshold)
    rng = ensure_generator(rng)
    indices = []
    keys = []
    position = -1
    log1mt = math.log(1.0 - threshold) if threshold < 1.0 else None
    while True:
        if log1mt is None:
            skip = 0
        else:
            skip = int(math.floor(math.log(_rand_open(rng)) / log1mt))
        position += skip + 1
        if position >= count:
            break
        indices.append(position)
        keys.append(_rand_open(rng) * threshold)
    return np.asarray(indices, dtype=np.int64), np.asarray(keys, dtype=np.float64)


# ---------------------------------------------------------------------------
# dense kernels (reference implementations / first batch)
# ---------------------------------------------------------------------------
def dense_weighted_candidates(
    weights: np.ndarray, threshold: float, rng=None
) -> Tuple[np.ndarray, np.ndarray]:
    """Generate a key for *every* item and keep those below ``threshold``.

    Statistically equivalent to :func:`weighted_jump_positions`; used as the
    reference kernel in tests and when a threshold is not yet known
    (``threshold = inf`` keeps every item).
    """
    weights = check_weights(weights)
    rng = ensure_generator(rng)
    keys = exponential_keys(weights, rng)
    if math.isinf(threshold):
        return np.arange(weights.shape[0], dtype=np.int64), keys
    mask = keys < threshold
    return np.flatnonzero(mask).astype(np.int64), keys[mask]


def dense_uniform_candidates(
    count: int, threshold: float, rng=None
) -> Tuple[np.ndarray, np.ndarray]:
    """Uniform-key analogue of :func:`dense_weighted_candidates`."""
    if count < 0:
        raise ValueError("count must be non-negative")
    rng = ensure_generator(rng)
    keys = uniform_keys(count, rng)
    if math.isinf(threshold) or threshold >= 1.0:
        return np.arange(count, dtype=np.int64), keys
    mask = keys < threshold
    return np.flatnonzero(mask).astype(np.int64), keys[mask]

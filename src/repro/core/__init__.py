"""Core reservoir-sampling algorithms (paper Sections 4 and 5).

This package holds the paper's primary contribution and the algorithms it
is compared against:

* :mod:`~repro.core.keys` — exponential/uniform keys, exponential and
  geometric jumps (skip values),
* :mod:`~repro.core.jit_kernels` — the optional numba-compiled kernel tier
  (gated import; ``kernel_tier="numpy"|"jit"|"auto"`` across the API),
* :mod:`~repro.core.sequential` — sequential weighted/uniform reservoir
  samplers (building blocks and baselines),
* :mod:`~repro.core.store` — the pluggable :class:`ReservoirStore` backends
  (vectorized numpy merge store and the paper's B+ tree),
* :mod:`~repro.core.local_reservoir` — per-PE reservoirs over a pluggable
  store backend and the Section-5 local-thresholding policy,
* :mod:`~repro.core.distributed` — the fully distributed mini-batch
  reservoir sampler (Algorithm 1), weighted and uniform,
* :mod:`~repro.core.variable_size` — the variable-reservoir-size variant
  (Section 4.4),
* :mod:`~repro.core.centralized` — the centralized gathering baseline
  (Section 4.5),
* :mod:`~repro.core.bulk_pq` — a bulk priority-queue view over the union of
  the local reservoirs,
* :mod:`~repro.core.api` — the convenience facade re-exported at package
  top level.
"""

from repro.core.api import DistributedSamplingRun, ReservoirSampler, make_distributed_sampler
from repro.core.bulk_pq import DistributedBulkPriorityQueue
from repro.core.centralized import CentralizedGatherSampler
from repro.core.distributed import (
    DistributedReservoirSampler,
    DistributedUniformReservoirSampler,
    DistributedWeightedReservoirSampler,
    ReservoirKeySet,
)
from repro.core.jit_kernels import (
    KERNEL_TIERS,
    normalize_kernel_tier,
    numba_available,
    resolve_kernel_tier,
)
from repro.core.local_reservoir import LocalReservoir, LocalThresholdPolicy, SortedArrayStore
from repro.core.store import (
    STORE_BACKENDS,
    BTreeStore,
    MergeStore,
    ReservoirStore,
    make_store,
)
from repro.core.sequential import (
    SequentialUniformReservoir,
    SequentialWeightedReservoir,
    dense_uniform_sample,
    dense_weighted_sample,
)
from repro.core.variable_size import VariableSizeReservoirSampler

__all__ = [
    "ReservoirSampler",
    "DistributedSamplingRun",
    "make_distributed_sampler",
    "DistributedReservoirSampler",
    "DistributedWeightedReservoirSampler",
    "DistributedUniformReservoirSampler",
    "ReservoirKeySet",
    "VariableSizeReservoirSampler",
    "CentralizedGatherSampler",
    "DistributedBulkPriorityQueue",
    "LocalReservoir",
    "LocalThresholdPolicy",
    "SortedArrayStore",
    "ReservoirStore",
    "MergeStore",
    "BTreeStore",
    "STORE_BACKENDS",
    "make_store",
    "KERNEL_TIERS",
    "normalize_kernel_tier",
    "resolve_kernel_tier",
    "numba_available",
    "SequentialWeightedReservoir",
    "SequentialUniformReservoir",
    "dense_weighted_sample",
    "dense_uniform_sample",
]

"""Per-PE kernel functions shared by the execution backends.

These module-level functions are the *local work* of the distributed
samplers: key generation, exponential-jump batch ingestion, rank/select
queries, pruning, pivot proposals.  They operate on a **PE state** — a
plain dict holding the PE's local reservoir, its random generator and
(optionally) its stream shard — created by :func:`make_pe_state` through
:meth:`repro.network.base.Communicator.create_pe_state`.

Both backends execute the *same* functions against states seeded the same
way: :class:`~repro.network.communicator.SimComm` runs them inline in the
driver process, :class:`~repro.network.process_comm.ProcessComm` pickles
them (by reference — everything here is module-level) to its worker
processes.  This is what guarantees byte-identical samples across
backends.

The hot kernels additionally dispatch on the state's **kernel tier**
(``state["kernel_tier"]``, resolved to ``"numpy"`` or ``"jit"`` at sampler
construction): the ``"jit"`` tier runs the numba-compiled jump/merge loops
of :mod:`repro.core.jit_kernels`, which consume the per-PE random streams
identically to the numpy reference — so samples are byte-identical across
tiers as well, not just across backends.

Every kernel takes the state dict as its first argument and only
picklable values otherwise, and returns only picklable values.
"""

from __future__ import annotations

import contextlib
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core import jit_kernels
from repro.core import keys as keymod
from repro.core.local_reservoir import LocalReservoir, LocalThresholdPolicy
from repro.obs.tracer import NULL_TRACER
from repro.stream.shard import StreamShardSpec, WorkerStreamShard

__all__ = [
    "make_pe_state",
    "make_centralized_state",
    "make_window_pe_state",
    "install_stream_kernel",
    "set_batch_size_kernel",
    "prefetch_stream_kernel",
    "insert_batch_kernel",
    "stream_insert_kernel",
    "prepare_batch_kernel",
    "ingest_prepared_kernel",
    "window_prepare_kernel",
    "window_ingest_prepared_kernel",
    "local_size_kernel",
    "max_key_kernel",
    "prune_kernel",
    "items_kernel",
    "item_ids_kernel",
    "keys_array_kernel",
    "preload_kernel",
    "count_le_kernel",
    "count_less_kernel",
    "kth_key_kernel",
    "kth_keys_kernel",
    "range_keys_kernel",
    "window_counts_kernel",
    "propose_pivots_kernel",
    "propose_window_positions",
    "window_insert_kernel",
    "window_evict_kernel",
    "window_sample_ids_kernel",
    "window_sample_items_kernel",
    "centralized_candidates_kernel",
    "centralized_stream_candidates_kernel",
    "export_pe_state_kernel",
    "import_pe_state_kernel",
]


# ---------------------------------------------------------------------------
# state factories
# ---------------------------------------------------------------------------
def make_pe_state(
    pe: int,
    seed_seq: np.random.SeedSequence,
    *,
    k: int,
    store: str = "merge",
    order: int = 16,
    kernel_tier: str = "numpy",
) -> Dict[str, object]:
    """PE state of the distributed sampler: local reservoir + random stream.

    ``seed_seq`` must come from ``spawn_seed_sequences(seed, p)[pe]`` so the
    per-PE random streams are identical across backends.

    ``"gen_rng"`` is a second generator spawned from the same sequence: the
    relaxed pipeline mode draws next-round keys from it in a background
    thread, so the draws neither race with nor reorder the main ``"rng"``
    stream that the selection pivot proposals consume.  (Spawning a child
    does not perturb the parent-derived ``"rng"`` stream.)

    ``kernel_tier`` arrives already resolved (``"numpy"`` or ``"jit"``) —
    the sampler resolves ``"auto"`` before any worker is created, so a
    missing numba can never fail inside a worker process.
    """
    tier = jit_kernels.resolve_kernel_tier(kernel_tier)
    return {
        "pe": int(pe),
        "rng": np.random.default_rng(seed_seq),
        "gen_rng": np.random.default_rng(seed_seq.spawn(1)[0]),
        "reservoir": LocalReservoir(backend=store, order=order, kernel_tier=tier),
        "k": int(k),
        "policy": LocalThresholdPolicy(int(k)),
        "kernel_tier": tier,
        "stream": None,
        "prepared": None,
        "tracer": NULL_TRACER,
    }


def make_centralized_state(
    pe: int, seed_seq: np.random.SeedSequence, *, kernel_tier: str = "numpy"
) -> Dict[str, object]:
    """PE state of the centralized baseline: only the random stream.

    The reservoir of the centralized algorithm lives at the root
    (coordinator side); the PEs only filter their local batches (under the
    resolved ``kernel_tier``'s jump kernels once a threshold exists).
    """
    return {
        "pe": int(pe),
        "rng": np.random.default_rng(seed_seq),
        "kernel_tier": jit_kernels.resolve_kernel_tier(kernel_tier),
        "stream": None,
        "tracer": NULL_TRACER,
    }


def make_window_pe_state(
    pe: int, seed_seq: np.random.SeedSequence, *, k: int, kernel_tier: str = "numpy"
) -> Dict[str, object]:
    """PE state of the distributed sliding-window sampler.

    The ``"reservoir"`` slot holds a
    :class:`~repro.window.buffer.SlidingWindowBuffer`, which answers the
    same rank/select queries as a :class:`LocalReservoir` — so the generic
    query and pivot-proposal kernels above (and through them the whole
    selection stack) operate on windowed state unchanged.

    Windowed ingestion always generates dense keys (no insertion threshold
    exists), which stay on numpy ufuncs in every tier; the resolved
    ``kernel_tier`` is recorded for the run metrics.
    """
    # Imported here, not at module top: repro.window itself imports this
    # module (for the distributed sampler), and the state factory only runs
    # at sampler construction time — long after both packages initialised.
    from repro.window.buffer import SlidingWindowBuffer

    return {
        "pe": int(pe),
        "rng": np.random.default_rng(seed_seq),
        "gen_rng": np.random.default_rng(seed_seq.spawn(1)[0]),
        "reservoir": SlidingWindowBuffer(int(k)),
        "k": int(k),
        "kernel_tier": jit_kernels.resolve_kernel_tier(kernel_tier),
        "stream": None,
        "prepared": None,
        "tracer": NULL_TRACER,
    }


def install_stream_kernel(state: Dict[str, object], spec: StreamShardSpec) -> None:
    """Attach a worker-local stream shard to the PE state."""
    state["stream"] = WorkerStreamShard(spec)


def set_batch_size_kernel(state: Dict[str, object], batch_size: int) -> int:
    """Resize the stream shard's per-round batch (variable shards only)."""
    stream = _require_stream(state)
    stream.set_batch_size(int(batch_size))
    return stream.batch_size


def prefetch_stream_kernel(state: Dict[str, object]) -> Tuple[int, float]:
    """Materialise the shard's next batch ahead of time.

    Safe to dispatch via ``run_per_pe_async``: only the shard is touched,
    so the prefetch can run in a background thread while the PE
    participates in selection collectives.  Returns ``(items, seconds)``
    — the batch length and the kernel's own busy time (the
    measured-overlap numerator of the strict pipeline mode).
    """
    start = time.perf_counter()
    with _beat_phase(state, "prepare"), _state_tracer(state).span("prepare", cat="kernel"):
        items = _require_stream(state).prefetch()
    return items, time.perf_counter() - start


def _require_stream(state: Dict[str, object]) -> WorkerStreamShard:
    stream: Optional[WorkerStreamShard] = state.get("stream")
    if stream is None:
        raise RuntimeError("no stream shard installed; call attach_worker_stream() first")
    return stream


def _state_tracer(state: Dict[str, object]):
    """The PE's tracer (the Null stub unless a trace collector installed one).

    States always carry the ``"tracer"`` slot, but snapshots exported
    before the obs layer existed may lack it — hence ``get``.
    """
    tracer = state.get("tracer")
    return tracer if tracer is not None else NULL_TRACER


@contextlib.contextmanager
def _beat_phase(state: Dict[str, object], phase: str, items: int = 0, *, bump_round: bool = False):
    """Bracket a kernel's phase work with heartbeats when monitoring is on.

    No-op (no beat channel in the state) unless a
    :class:`~repro.obs.health.HealthMonitor` installed one — so like the
    tracer stub this costs a dict lookup on unmonitored runs and never
    touches any random generator.  ``bump_round`` marks the once-per-round
    ingestion kernels, giving each rank its own live round counter.
    """
    beat = state.get("beat")
    if beat is None:
        yield
        return
    beat.begin(phase)
    try:
        yield
    finally:
        beat.end(phase, items=items, bump_round=bump_round)


# ---------------------------------------------------------------------------
# insert-phase kernels (distributed sampler)
# ---------------------------------------------------------------------------
def _generate_keys(batch_weights: np.ndarray, weighted: bool, rng: np.random.Generator) -> np.ndarray:
    if weighted:
        return keymod.exponential_keys(batch_weights, rng)
    return keymod.uniform_keys(batch_weights.shape[0], rng)


def _jump_positions(
    state: Dict[str, object],
    weights: np.ndarray,
    threshold: float,
    weighted: bool,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray]:
    """Below-threshold jump traversal under the state's kernel tier.

    Single dispatch point of the steady-state hot path: the numpy reference
    kernels and the compiled tier consume ``rng`` identically, so the
    returned ``(indices, keys)`` do not depend on the tier.
    """
    return jit_kernels.jump_positions(
        threshold,
        rng,
        weighted=weighted,
        tier=str(state.get("kernel_tier", "numpy")),
        weights=weights if weighted else None,
        count=0 if weighted else weights.shape[0],
    )


def _insert_without_threshold(
    state: Dict[str, object],
    ids: np.ndarray,
    weights: np.ndarray,
    weighted: bool,
    local_thresholding: bool,
) -> Tuple[int, int]:
    """First-phase ingestion: no global threshold exists yet.

    Every item is a candidate and receives a key.  If the batch is large
    compared to ``k`` and local thresholding is enabled, the Section-5
    policy keeps the reservoir close to ``k`` items.  Returns
    ``(inserted, pruned)``.
    """
    reservoir: LocalReservoir = state["reservoir"]
    policy: LocalThresholdPolicy = state["policy"]
    rng: np.random.Generator = state["rng"]
    k = state["k"]
    b = ids.shape[0]
    inserted = 0
    pruned = 0
    use_policy = local_thresholding and policy.applies_to_batch(b + len(reservoir))
    if not use_policy:
        keys = _generate_keys(weights, weighted, rng)
        inserted = reservoir.insert_batch(keys, ids)
    else:
        chunk = max(policy.refresh_size - k, 64)
        local_threshold: Optional[float] = None
        if len(reservoir) >= k:
            local_threshold = reservoir.kth_key(k)
        for start in range(0, b, chunk):
            stop = min(start + chunk, b)
            keys = _generate_keys(weights[start:stop], weighted, rng)
            inserted += reservoir.insert_batch(keys, ids[start:stop], threshold=local_threshold)
            local_threshold, removed = policy.refresh_if_needed(reservoir)
            pruned += removed
    return inserted, pruned


def _insert_with_threshold(
    state: Dict[str, object],
    ids: np.ndarray,
    weights: np.ndarray,
    threshold: float,
    weighted: bool,
) -> Tuple[int, int]:
    """Steady-state ingestion under the fixed global threshold.

    The exponential/geometric jump traversal (per the state's kernel tier)
    skips whole runs of non-candidate items without generating their keys.
    """
    reservoir: LocalReservoir = state["reservoir"]
    rng: np.random.Generator = state["rng"]
    idx, keys = _jump_positions(state, weights, threshold, weighted, rng)
    inserted = reservoir.insert_batch(keys, ids[idx])
    return inserted, 0


def insert_batch_kernel(
    state: Dict[str, object],
    ids: np.ndarray,
    weights: np.ndarray,
    threshold: Optional[float],
    weighted: bool,
    local_thresholding: bool,
) -> Tuple[int, int, int]:
    """Ingest one mini-batch; returns ``(inserted, pruned, reservoir_size)``."""
    if ids.shape[0] == 0:
        return 0, 0, len(state["reservoir"])
    with _beat_phase(state, "insert", int(ids.shape[0]), bump_round=True), _state_tracer(
        state
    ).span("insert", cat="kernel", items=int(ids.shape[0])):
        if threshold is None:
            inserted, pruned = _insert_without_threshold(state, ids, weights, weighted, local_thresholding)
        else:
            inserted, pruned = _insert_with_threshold(state, ids, weights, threshold, weighted)
    return inserted, pruned, len(state["reservoir"])


def stream_insert_kernel(
    state: Dict[str, object],
    threshold: Optional[float],
    weighted: bool,
    local_thresholding: bool,
) -> Tuple[int, int, int, int, float]:
    """Generate the next batch from the worker-local stream shard and ingest it.

    Returns ``(inserted, pruned, reservoir_size, batch_items, batch_weight)``.
    """
    batch = _require_stream(state).next_batch()
    inserted, pruned, size = insert_batch_kernel(
        state, batch.ids, batch.weights, threshold, weighted, local_thresholding
    )
    return inserted, pruned, size, len(batch), float(batch.total_weight)


# ---------------------------------------------------------------------------
# pipelined ingestion kernels (repro.pipeline)
# ---------------------------------------------------------------------------
def prepare_batch_kernel(
    state: Dict[str, object],
    threshold: Optional[float],
    weighted: bool,
) -> Tuple[int, int, float, float]:
    """Generate the next shard batch and its candidate keys ahead of time.

    The relaxed pipeline mode's prepare: candidates that survive the
    (possibly stale) ``threshold`` are parked in ``state["prepared"]`` for
    a later :func:`ingest_prepared_kernel`.  Keys come from the dedicated
    generation RNG and nothing else in the state is touched, so the kernel
    may run in a background thread (``run_per_pe_async``) while the PE
    participates in the current round's selection — the background draws
    can never race the pivot proposals on the main state RNG.  (The strict
    mode does not use this kernel: it prefetches only the raw batch via
    :func:`prefetch_stream_kernel` and keeps key generation inside
    :func:`stream_insert_kernel`, which is what makes it byte-identical.)

    With ``threshold=None`` every item receives a dense key (the
    first-batch local-thresholding policy does not apply here; the
    pipelined drivers run pre-threshold rounds through the lock-step path
    instead).  Returns ``(candidates, batch_items, batch_weight, seconds)``
    where ``seconds`` is the kernel's own busy time — the measured-overlap
    numerator.
    """
    start = time.perf_counter()
    with _beat_phase(state, "prepare"), _state_tracer(state).span("prepare", cat="kernel"):
        batch = _require_stream(state).next_batch()
        rng: np.random.Generator = state["gen_rng"]
        if threshold is None:
            keys = _generate_keys(batch.weights, weighted, rng)
            ids = batch.ids
        else:
            idx, keys = _jump_positions(state, batch.weights, threshold, weighted, rng)
            ids = batch.ids[idx]
    state["prepared"] = {
        "keys": keys,
        "ids": ids,
        "threshold": threshold,
        "batch_items": len(batch),
        "batch_weight": float(batch.total_weight),
    }
    return keys.shape[0], len(batch), float(batch.total_weight), time.perf_counter() - start


def ingest_prepared_kernel(
    state: Dict[str, object], threshold: Optional[float]
) -> Tuple[int, int, int]:
    """Insert the parked candidates, reconciling a stale prepare threshold.

    Candidates were filtered against the threshold in effect when
    :func:`prepare_batch_kernel` ran; if the global threshold has tightened
    since (relaxed mode: it is stale by one round), the extra candidates
    are pruned here before insertion — the *reconciliation prune*.  Because
    exponential/uniform keys conditioned below the stale threshold and
    re-truncated to the fresh one follow exactly the distribution of keys
    drawn below the fresh threshold, the surviving insertions match the
    lock-step run statistically.

    Returns ``(inserted, stale_extra, reservoir_size)``.
    """
    prepared = state.get("prepared")
    if prepared is None:
        raise RuntimeError("no prepared batch; dispatch prepare_batch_kernel first")
    state["prepared"] = None
    keys: np.ndarray = prepared["keys"]
    ids: np.ndarray = prepared["ids"]
    stale_extra = 0
    with _beat_phase(state, "insert", int(keys.shape[0]), bump_round=True), _state_tracer(
        state
    ).span("insert", cat="kernel", items=int(keys.shape[0])):
        stale = prepared["threshold"]
        if threshold is not None and (stale is None or stale > threshold):
            mask = keys <= threshold
            stale_extra = int(keys.shape[0] - int(mask.sum()))
            keys, ids = keys[mask], ids[mask]
        reservoir: LocalReservoir = state["reservoir"]
        inserted = reservoir.insert_batch(keys, ids)
    return int(inserted), stale_extra, len(reservoir)


def window_prepare_kernel(
    state: Dict[str, object], weighted: bool
) -> Tuple[int, float, int, float]:
    """Pipelined prepare for the sliding-window sampler: stamped batch + keys.

    Sliding windows admit no insertion threshold, so the prepared keys are
    dense and never stale — windowed pipelining is exact by construction.
    Keys always come from the dedicated generation RNG, since the kernel
    is designed to overlap the selection's pivot proposals.  Returns
    ``(batch_items, batch_weight, max_stamp, seconds)``.
    """
    start = time.perf_counter()
    with _beat_phase(state, "prepare"), _state_tracer(state).span("prepare", cat="kernel"):
        batch = _require_stream(state).next_batch()
        stamps = getattr(batch, "stamps", None)
        if stamps is None:
            raise RuntimeError("window_prepare_kernel needs a stamped stream shard")
        keys = _generate_keys(batch.weights, weighted, state["gen_rng"])
        state["prepared"] = {"keys": keys, "ids": batch.ids, "stamps": stamps}
    max_stamp = int(stamps[-1]) if stamps.shape[0] else -1
    return len(batch), float(batch.total_weight), max_stamp, time.perf_counter() - start


def window_ingest_prepared_kernel(state: Dict[str, object]) -> Tuple[int, int]:
    """Append the parked stamped candidates to the window buffer.

    Returns ``(kept, buffer_size)`` like :func:`window_insert_kernel`.
    """
    prepared = state.get("prepared")
    if prepared is None:
        raise RuntimeError("no prepared batch; dispatch window_prepare_kernel first")
    state["prepared"] = None
    buffer = state["reservoir"]
    if prepared["ids"].shape[0] == 0:
        return 0, len(buffer)
    kept = buffer.append(prepared["stamps"], prepared["keys"], prepared["ids"])
    return int(kept), len(buffer)


# ---------------------------------------------------------------------------
# query / maintenance kernels (distributed sampler)
# ---------------------------------------------------------------------------
def local_size_kernel(state: Dict[str, object]) -> int:
    return len(state["reservoir"])


def max_key_kernel(state: Dict[str, object]) -> float:
    reservoir: LocalReservoir = state["reservoir"]
    return reservoir.max_key() if len(reservoir) else -np.inf


def prune_kernel(state: Dict[str, object], threshold: float) -> Tuple[int, int]:
    """Prune above the threshold; returns ``(size_before, size_after)``."""
    reservoir: LocalReservoir = state["reservoir"]
    size_before = len(reservoir)
    keep = reservoir.count_le(threshold)
    reservoir.prune_to_rank(keep)
    return size_before, len(reservoir)


def items_kernel(state: Dict[str, object]) -> List[Tuple[float, int]]:
    with _beat_phase(state, "gather"), _state_tracer(state).span("gather", cat="kernel"):
        return state["reservoir"].items()


def item_ids_kernel(state: Dict[str, object]) -> np.ndarray:
    with _beat_phase(state, "gather"), _state_tracer(state).span("gather", cat="kernel"):
        return state["reservoir"].item_ids()


def keys_array_kernel(state: Dict[str, object]) -> np.ndarray:
    return state["reservoir"].keys_array()


def preload_kernel(state: Dict[str, object], items: Sequence[Tuple[float, int]]) -> int:
    """Install pre-computed (key, id) pairs; returns the reservoir size."""
    reservoir: LocalReservoir = state["reservoir"]
    for key, item_id in items:
        reservoir.insert(float(key), int(item_id))
    return len(reservoir)


def count_le_kernel(state: Dict[str, object], key: float) -> int:
    return state["reservoir"].count_le(key)


def count_less_kernel(state: Dict[str, object], key: float) -> int:
    return state["reservoir"].count_less(key)


def kth_key_kernel(state: Dict[str, object], rank: int) -> float:
    return state["reservoir"].kth_key(rank)


def kth_keys_kernel(state: Dict[str, object], ranks: np.ndarray) -> np.ndarray:
    return state["reservoir"].kth_keys(ranks)


def range_keys_kernel(state: Dict[str, object], lo: int, hi: int) -> np.ndarray:
    return state["reservoir"].keys_in_rank_range(lo, hi)


# ---------------------------------------------------------------------------
# selection kernels
# ---------------------------------------------------------------------------
def window_counts_kernel(
    state: Dict[str, object], pivots: np.ndarray, lo: int, hi: int
) -> np.ndarray:
    """Per-pivot counts of active keys (local ranks in ``[lo, hi)``) at most
    as large as each pivot, clipped to the window."""
    reservoir: LocalReservoir = state["reservoir"]
    if hi <= lo:
        return np.zeros(np.asarray(pivots).shape[0], dtype=np.float64)
    return np.array(
        [
            min(max(reservoir.count_le(float(piv)) - lo, 0), hi - lo)
            for piv in np.asarray(pivots, dtype=np.float64)
        ],
        dtype=np.float64,
    )


def propose_window_positions(
    rng: np.random.Generator, m: int, prob: float, d: int, from_below: bool
) -> Optional[np.ndarray]:
    """Bernoulli-sample local window positions for a pivot proposal round.

    Shared by the comm-backed kernel below and the master-side default of
    :meth:`repro.selection.base.DistributedKeySet.propose_all` so both
    consume the random stream identically.  Returns 0-based window
    positions (at most ``d`` of them) or ``None`` when the sample is empty.
    """
    count = int(rng.binomial(m, prob))
    if count == 0:
        return None
    positions = rng.choice(m, size=count, replace=False)
    if from_below:
        return np.sort(positions)[:d]
    return np.sort(positions)[-d:]


def propose_pivots_kernel(
    state: Dict[str, object], lo: int, hi: int, prob: float, d: int, from_below: bool
) -> np.ndarray:
    """One PE's pivot-proposal contribution (sorted candidate keys)."""
    reservoir: LocalReservoir = state["reservoir"]
    rng: np.random.Generator = state["rng"]
    m = hi - lo
    if m <= 0:
        return np.empty(0, dtype=np.float64)
    with _beat_phase(state, "select"), _state_tracer(state).span("select", cat="kernel"):
        positions = propose_window_positions(rng, m, prob, d, from_below)
        if positions is None:
            return np.empty(0, dtype=np.float64)
        keys = reservoir.kth_keys(lo + positions.astype(np.int64) + 1)
        return np.sort(keys)


# ---------------------------------------------------------------------------
# sliding-window kernels (distributed windowed sampler)
# ---------------------------------------------------------------------------
def window_insert_kernel(
    state: Dict[str, object],
    ids: np.ndarray,
    weights: np.ndarray,
    stamps: np.ndarray,
    weighted: bool,
) -> Tuple[int, int]:
    """Ingest one timestamped mini-batch into the window candidate buffer.

    Every item receives a dense key — sliding windows admit no insertion
    threshold, since an item above today's sample boundary may enter the
    sample once smaller keys expire.  Pruning instead happens inside the
    buffer via the suffix-top-k invariant.  Returns
    ``(kept, buffer_size)``.
    """
    buffer = state["reservoir"]
    if ids.shape[0] == 0:
        return 0, len(buffer)
    with _beat_phase(state, "insert", int(ids.shape[0]), bump_round=True), _state_tracer(
        state
    ).span("insert", cat="kernel", items=int(ids.shape[0])):
        rng: np.random.Generator = state["rng"]
        keys = _generate_keys(weights, weighted, rng)
        kept = buffer.append(stamps, keys, ids)
    return kept, len(buffer)


def window_evict_kernel(state: Dict[str, object], cutoff: int) -> Tuple[int, int]:
    """Expire buffered items with ``stamp <= cutoff``; returns
    ``(evicted, live_size)``."""
    buffer = state["reservoir"]
    with _beat_phase(state, "expire"), _state_tracer(state).span("expire", cat="kernel"):
        evicted = buffer.evict_older_than(int(cutoff))
    return evicted, len(buffer)


def window_sample_ids_kernel(state: Dict[str, object], threshold: float) -> np.ndarray:
    """Ids of the buffered items whose keys are at most the sample boundary.

    Unlike :func:`prune_kernel` this does **not** remove the items above
    the boundary — they stay buffered to backfill the sample after future
    expiry."""
    return state["reservoir"].ids_at_most(float(threshold))


def window_sample_items_kernel(
    state: Dict[str, object], threshold: float
) -> List[Tuple[float, int]]:
    """(key, id) pairs at most the sample boundary, in key order.

    Filtering PE-side keeps the above-boundary backfill candidates out of
    the coordinator transfer (they can be several times the sample size)."""
    return state["reservoir"].items_at_most(float(threshold))


# ---------------------------------------------------------------------------
# centralized-baseline kernels
# ---------------------------------------------------------------------------
def centralized_candidates_kernel(
    state: Dict[str, object],
    ids: np.ndarray,
    weights: np.ndarray,
    threshold: Optional[float],
    weighted: bool,
    k: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Filter one local batch to the candidates below the current threshold.

    Mirrors the insert phase of the centralized algorithm: dense keys while
    no threshold exists (keeping only the ``k`` smallest of a large first
    batch), exponential/geometric jumps afterwards.
    """
    rng: np.random.Generator = state["rng"]
    b = ids.shape[0]
    if b == 0:
        return np.empty(0, dtype=np.float64), np.empty(0, dtype=np.int64)
    with _beat_phase(state, "gather", int(b), bump_round=True), _state_tracer(state).span(
        "gather", cat="kernel", items=int(b)
    ):
        if threshold is None:
            if weighted:
                keys = keymod.exponential_keys(weights, rng)
            else:
                keys = keymod.uniform_keys(b, rng)
            if b > k:
                order = np.argpartition(keys, k - 1)[:k]
                keys, ids = keys[order], ids[order]
            return keys, ids
        idx, keys = _jump_positions(state, weights, threshold, weighted, rng)
        return keys, ids[idx]


def centralized_stream_candidates_kernel(
    state: Dict[str, object], threshold: Optional[float], weighted: bool, k: int
) -> Tuple[np.ndarray, np.ndarray, int, float]:
    """Stream-shard variant; also returns ``(batch_items, batch_weight)``."""
    batch = _require_stream(state).next_batch()
    keys, ids = centralized_candidates_kernel(
        state, batch.ids, batch.weights, threshold, weighted, k
    )
    return keys, ids, len(batch), float(batch.total_weight)


# ---------------------------------------------------------------------------
# checkpoint kernels
# ---------------------------------------------------------------------------
def _copy_prepared(prepared: Optional[Dict[str, object]]) -> Optional[Dict[str, object]]:
    if prepared is None:
        return None
    return {
        key: (value.copy() if isinstance(value, np.ndarray) else value)
        for key, value in prepared.items()
    }


def export_pe_state_kernel(state: Dict[str, object]) -> Dict[str, object]:
    """Snapshot everything mutable in a PE state for a checkpoint.

    The snapshot is field-wise (generators export their bit-generator
    state, stream shards export their replay position, reservoirs export
    their sorted contents) rather than a pickle of the live objects, so
    it contains no locks and travels through either payload transport.
    Works for all three state shapes (:func:`make_pe_state`,
    :func:`make_window_pe_state`, :func:`make_centralized_state`).
    """
    with _state_tracer(state).span("checkpoint.export", cat="checkpoint"):
        snapshot: Dict[str, object] = {
            "pe": int(state["pe"]),
            "kernel_tier": state["kernel_tier"],
            "rng": state["rng"].bit_generator.state,
            "gen_rng": None,
            "reservoir": None,
            "stream": None,
            "prepared": None,
        }
        gen_rng = state.get("gen_rng")
        if gen_rng is not None:
            snapshot["gen_rng"] = gen_rng.bit_generator.state
        reservoir = state.get("reservoir")
        if reservoir is not None:
            snapshot["reservoir"] = reservoir.export_state()
        stream = state.get("stream")
        if stream is not None:
            snapshot["stream"] = stream.export_state()
        snapshot["prepared"] = _copy_prepared(state.get("prepared"))
        return snapshot


def import_pe_state_kernel(state: Dict[str, object], snapshot: Dict[str, object]) -> int:
    """Overwrite a (freshly factory-created) PE state with a snapshot.

    The state dict keeps its factory-built objects — reservoir, policy,
    generators — and only their *contents* are replaced, so a respawned
    worker first re-runs the original state factory and then imports the
    checkpoint.  Returns the PE index as a cheap sanity echo.
    """
    if int(snapshot["pe"]) != int(state["pe"]):
        raise ValueError(
            f"checkpoint snapshot for PE {snapshot['pe']} applied to PE {state['pe']}"
        )
    with _state_tracer(state).span("checkpoint.import", cat="checkpoint"):
        state["rng"].bit_generator.state = snapshot["rng"]
        if snapshot.get("gen_rng") is not None:
            state["gen_rng"].bit_generator.state = snapshot["gen_rng"]
        if snapshot.get("reservoir") is not None:
            state["reservoir"].restore_state(snapshot["reservoir"])
        stream_snapshot = snapshot.get("stream")
        state["stream"] = (
            WorkerStreamShard.from_state(stream_snapshot) if stream_snapshot is not None else None
        )
        state["prepared"] = _copy_prepared(snapshot.get("prepared"))
        return int(state["pe"])

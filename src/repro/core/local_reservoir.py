"""Per-PE local reservoirs and the Section-5 local-thresholding policy.

Each PE of the distributed sampler keeps the candidate items it has seen in
a *local reservoir*: an ordered map from key to item id that supports

* insertion of new candidates (one item or a whole mini-batch at once),
* ``count_le`` / ``kth_key`` (rank and select) queries — what the
  distributed selection needs,
* pruning of all items whose keys exceed the new global threshold
  (Algorithm 1's ``splitAt``), and
* a Bernoulli sample of the stored keys (pivot proposals).

The storage itself is a pluggable :class:`~repro.core.store.ReservoirStore`
backend: the paper's augmented **B+ tree** (``backend="btree"``) or the
vectorized numpy **sorted-array merge store** (``backend="merge"``, the
default; ``"sorted_array"`` is the historic alias).  See
:mod:`repro.core.store` for the trade-offs and the ablation rationale.

:class:`LocalThresholdPolicy` implements the first optimisation of
Section 5: while no *global* threshold exists yet (fewer than ``k`` items
seen globally), a PE that receives a huge first batch would insert every
item; the policy installs a *local* threshold as soon as the reservoir
grows beyond ``max(1.5k, k + 500)`` items and re-tightens it whenever the
reservoir exceeds ``max(1.1k, k + 250)``, never pruning below ``k`` items,
so the union of the local reservoirs always remains a valid sample.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.store import MergeStore, ReservoirStore, make_store, normalize_store_name
from repro.utils.validation import check_positive_int

__all__ = ["SortedArrayStore", "LocalReservoir", "LocalThresholdPolicy"]


class SortedArrayStore(MergeStore):
    """Backwards-compatible alias of :class:`repro.core.store.MergeStore`.

    Early versions of this library exposed the sorted-array backend under
    this name; it is now exactly the merge store.
    """

    name = "sorted_array"


class LocalReservoir:
    """A PE's local reservoir with a pluggable ordered-map store backend.

    Parameters
    ----------
    backend:
        ``"merge"`` (vectorized numpy sorted-array merge store, default),
        ``"btree"`` (paper's data structure) or ``"sorted_array"`` (alias
        of ``"merge"``).
    order:
        Fan-out of the B+ tree backend (ignored by the merge store).
    kernel_tier:
        ``"numpy"`` (default), ``"jit"`` or ``"auto"`` — the merge store's
        batch-merge implementation (see :mod:`repro.core.jit_kernels`).
    """

    def __init__(
        self, backend: str = "merge", *, order: int = 16, kernel_tier: str = "numpy"
    ) -> None:
        self.backend = normalize_store_name(backend)
        self._order = order
        self._kernel_tier = kernel_tier
        self._store: ReservoirStore = make_store(
            self.backend, order=order, kernel_tier=kernel_tier
        )

    # ------------------------------------------------------------------
    @property
    def store(self) -> ReservoirStore:
        """The underlying store backend."""
        return self._store

    # ------------------------------------------------------------------
    # checkpoint support
    # ------------------------------------------------------------------
    def export_state(self) -> dict:
        """Copy the reservoir contents (sorted keys + aligned ids)."""
        return {
            "backend": self.backend,
            "keys": self._store.keys_array(),
            "ids": self._store.ids_array(),
        }

    def restore_state(self, state: dict) -> None:
        """Rebuild the store from an :meth:`export_state` snapshot.

        The exported keys are already sorted, so inserting them into a
        fresh merge store takes its empty-store copy path and reproduces
        the internal arrays byte-for-byte.
        """
        self._store = make_store(self.backend, order=self._order, kernel_tier=self._kernel_tier)
        keys = np.asarray(state["keys"], dtype=np.float64)
        ids = np.asarray(state["ids"], dtype=np.int64)
        if keys.shape[0]:
            self._store.insert_batch(keys, ids)

    def __len__(self) -> int:
        return len(self._store)

    @property
    def size(self) -> int:
        return len(self)

    def insert(self, key: float, item_id: int) -> None:
        """Insert one candidate item."""
        self._store.insert(float(key), int(item_id))

    def insert_many(self, keys: Sequence[float], ids: Sequence[int]) -> int:
        """Insert several candidates; returns how many were inserted."""
        keys = np.asarray(keys, dtype=np.float64)
        ids = np.asarray(ids, dtype=np.int64)
        if keys.shape[0] != ids.shape[0]:
            raise ValueError("keys and ids must have equal length")
        return self._store.insert_batch(keys, ids)

    def insert_batch(
        self,
        keys: np.ndarray,
        ids: np.ndarray,
        *,
        threshold: Optional[float] = None,
        capacity: Optional[int] = None,
    ) -> int:
        """Batch ingestion with optional threshold prefilter and capacity.

        The hot path of the distributed sampler: keys at or above
        ``threshold`` are dropped before any insertion work happens, the
        survivors are merged in one pass (for the merge store), and the
        reservoir is truncated to its ``capacity`` smallest items.
        Returns the number of items inserted (post-filter, pre-truncate).
        """
        return self._store.insert_batch(keys, ids, threshold=threshold, capacity=capacity)

    # -- queries -----------------------------------------------------------
    def count_le(self, key: float) -> int:
        return self._store.count_le(key)

    def count_less(self, key: float) -> int:
        return self._store.count_less(key)

    def kth_key(self, rank: int) -> float:
        """The ``rank``-th smallest key (1-based)."""
        if not 1 <= rank <= len(self):
            raise IndexError(f"rank {rank} out of range for reservoir of size {len(self)}")
        return self._store.kth_key(rank)

    def kth_keys(self, ranks: Sequence[int]) -> np.ndarray:
        """Vectorized :meth:`kth_key`: keys for an array of 1-based ranks."""
        return self._store.kth_keys(np.asarray(ranks, dtype=np.int64))

    def max_key(self) -> float:
        return self._store.max_key()

    def min_key(self) -> float:
        return self._store.min_key()

    def keys_array(self) -> np.ndarray:
        """All keys in increasing order."""
        return self._store.keys_array()

    def keys_in_rank_range(self, lo: int, hi: int) -> np.ndarray:
        """Keys with 0-based local ranks in ``[lo, hi)``."""
        return self._store.keys_in_rank_range(lo, hi)

    def items(self) -> List[Tuple[float, int]]:
        """(key, item id) pairs in increasing key order."""
        return list(self._store.items())

    def item_ids(self) -> np.ndarray:
        """Item ids currently stored (in increasing key order)."""
        return self._store.ids_array()

    # -- pruning -------------------------------------------------------------
    def prune_to_rank(self, keep: int) -> int:
        """Keep only the ``keep`` smallest items; returns how many were removed."""
        return self._store.truncate_to_rank(keep)

    def prune_above_key(self, key: float, *, inclusive: bool = True) -> int:
        """Discard items with keys above ``key`` (keeping ties when inclusive)."""
        keep = self.count_le(key) if inclusive else self.count_less(key)
        return self.prune_to_rank(keep)

    # -- sampling -------------------------------------------------------------
    def sample_keys(self, probability: float, rng: np.random.Generator, *, limit: Optional[int] = None) -> np.ndarray:
        """Bernoulli sample of the stored keys (at most ``limit`` smallest)."""
        size = len(self)
        if size == 0 or probability <= 0.0:
            return np.empty(0, dtype=np.float64)
        count = int(rng.binomial(size, min(probability, 1.0)))
        if count == 0:
            return np.empty(0, dtype=np.float64)
        ranks = np.sort(rng.choice(size, size=count, replace=False))
        if limit is not None:
            ranks = ranks[:limit]
        return self._store.kth_keys(ranks + 1)


@dataclass(frozen=True)
class LocalThresholdPolicy:
    """First-batch local thresholding (paper Section 5).

    While the global threshold is unknown, a PE applies a purely local
    threshold once its reservoir grows beyond ``hard_limit(k)`` items and
    re-tightens the reservoir to ``k`` items whenever it exceeds
    ``refresh_limit(k)`` items.  Correctness: the reservoir is never pruned
    below ``k`` items, so every local reservoir remains a size->=k sample of
    the items the PE has seen, and the union remains a valid candidate set.
    """

    k: int
    hard_factor: float = 1.5
    hard_slack: int = 500
    refresh_factor: float = 1.1
    refresh_slack: int = 250

    def __post_init__(self) -> None:
        check_positive_int(self.k, "k")
        if self.hard_factor < 1.0 or self.refresh_factor < 1.0:
            raise ValueError("threshold factors must be at least 1")

    @property
    def activation_size(self) -> int:
        """Reservoir size beyond which the local threshold is first applied."""
        return int(max(self.hard_factor * self.k, self.k + self.hard_slack))

    @property
    def refresh_size(self) -> int:
        """Reservoir size beyond which the reservoir is re-tightened to ``k``."""
        return int(max(self.refresh_factor * self.k, self.k + self.refresh_slack))

    def applies_to_batch(self, batch_size: int) -> bool:
        """Whether a first batch of ``batch_size`` items triggers the policy."""
        return batch_size >= self.activation_size

    def refresh_if_needed(self, reservoir: LocalReservoir) -> Tuple[Optional[float], int]:
        """Re-tighten ``reservoir`` if it grew beyond the refresh size.

        Returns ``(local_threshold, removed)``: the key of local rank ``k``
        to use as the threshold for subsequent items (``None`` while the
        reservoir still holds fewer than ``k`` items) and the number of
        items pruned by this call.  The reservoir is never pruned below
        ``k`` items.
        """
        size = len(reservoir)
        removed = 0
        if size > self.refresh_size:
            removed = reservoir.prune_to_rank(self.k)
            size = self.k
        if size >= self.k:
            return reservoir.kth_key(self.k), removed
        return None, removed

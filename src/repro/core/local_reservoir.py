"""Per-PE local reservoirs and the Section-5 local-thresholding policy.

Each PE of the distributed sampler keeps the candidate items it has seen in
a *local reservoir*: an ordered map from key to item id that supports

* insertion of a new candidate,
* ``count_le`` / ``kth_key`` (rank and select) queries — what the
  distributed selection needs,
* pruning of all items whose keys exceed the new global threshold
  (Algorithm 1's ``splitAt``), and
* a Bernoulli sample of the stored keys (pivot proposals).

Two backends are provided: the paper's augmented **B+ tree**
(:class:`repro.btree.BPlusTree`) and a numpy **sorted array**
(:class:`SortedArrayStore`).  The sorted array has ``O(n)`` insertion but a
tiny constant, and is used for the ablation study comparing the two (the
paper briefly notes the gathering algorithm benefits from array storage).

:class:`LocalThresholdPolicy` implements the first optimisation of
Section 5: while no *global* threshold exists yet (fewer than ``k`` items
seen globally), a PE that receives a huge first batch would insert every
item; the policy installs a *local* threshold as soon as the reservoir
grows beyond ``max(1.5k, k + 500)`` items and re-tightens it whenever the
reservoir exceeds ``max(1.1k, k + 250)``, never pruning below ``k`` items,
so the union of the local reservoirs always remains a valid sample.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.btree import BPlusTree
from repro.utils.validation import check_positive_int

__all__ = ["SortedArrayStore", "LocalReservoir", "LocalThresholdPolicy"]


class SortedArrayStore:
    """Keys and item ids kept in sorted numpy arrays.

    Single insertions are ``O(n)`` (array shift) but bulk insertions of
    ``m`` items cost ``O(n + m log m)``, which in the mini-batch setting is
    often the better trade-off; the distributed sampler inserts per batch.
    """

    def __init__(self) -> None:
        self._keys = np.empty(0, dtype=np.float64)
        self._ids = np.empty(0, dtype=np.int64)

    def __len__(self) -> int:
        return int(self._keys.shape[0])

    def insert(self, key: float, item_id: int) -> None:
        pos = int(np.searchsorted(self._keys, key, side="right"))
        self._keys = np.insert(self._keys, pos, key)
        self._ids = np.insert(self._ids, pos, item_id)

    def insert_many(self, keys: np.ndarray, ids: np.ndarray) -> None:
        if len(keys) == 0:
            return
        keys = np.asarray(keys, dtype=np.float64)
        ids = np.asarray(ids, dtype=np.int64)
        order = np.argsort(keys, kind="stable")
        keys, ids = keys[order], ids[order]
        merged_keys = np.concatenate([self._keys, keys])
        merged_ids = np.concatenate([self._ids, ids])
        order = np.argsort(merged_keys, kind="stable")
        self._keys = merged_keys[order]
        self._ids = merged_ids[order]

    def count_le(self, key: float) -> int:
        return int(np.searchsorted(self._keys, key, side="right"))

    def count_less(self, key: float) -> int:
        return int(np.searchsorted(self._keys, key, side="left"))

    def kth_key(self, rank: int) -> float:
        return float(self._keys[rank - 1])

    def max_key(self) -> float:
        if not len(self):
            raise IndexError("empty store has no max key")
        return float(self._keys[-1])

    def min_key(self) -> float:
        if not len(self):
            raise IndexError("empty store has no min key")
        return float(self._keys[0])

    def truncate_to_rank(self, keep: int) -> int:
        removed = max(0, len(self) - keep)
        if removed:
            self._keys = self._keys[:keep].copy()
            self._ids = self._ids[:keep].copy()
        return removed

    def keys_array(self) -> np.ndarray:
        return self._keys.copy()

    def keys_in_rank_range(self, lo: int, hi: int) -> np.ndarray:
        return self._keys[lo:hi].copy()

    def items(self) -> Iterable[Tuple[float, int]]:
        return zip(self._keys.tolist(), self._ids.tolist())

    def ids_array(self) -> np.ndarray:
        return self._ids.copy()


class LocalReservoir:
    """A PE's local reservoir with a pluggable ordered-map backend.

    Parameters
    ----------
    backend:
        ``"btree"`` (paper's data structure) or ``"sorted_array"``.
    order:
        Fan-out of the B+ tree backend.
    """

    def __init__(self, backend: str = "btree", *, order: int = 16) -> None:
        if backend not in ("btree", "sorted_array"):
            raise ValueError(f"unknown backend {backend!r}; use 'btree' or 'sorted_array'")
        self.backend = backend
        self._tree: Optional[BPlusTree] = BPlusTree(order=order) if backend == "btree" else None
        self._array: Optional[SortedArrayStore] = SortedArrayStore() if backend == "sorted_array" else None

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._tree) if self._tree is not None else len(self._array)

    @property
    def size(self) -> int:
        return len(self)

    def insert(self, key: float, item_id: int) -> None:
        """Insert one candidate item."""
        if self._tree is not None:
            self._tree.insert(float(key), int(item_id))
        else:
            self._array.insert(float(key), int(item_id))

    def insert_many(self, keys: Sequence[float], ids: Sequence[int]) -> int:
        """Insert several candidates; returns how many were inserted."""
        keys = np.asarray(keys, dtype=np.float64)
        ids = np.asarray(ids, dtype=np.int64)
        if keys.shape[0] != ids.shape[0]:
            raise ValueError("keys and ids must have equal length")
        if self._tree is not None:
            for key, item_id in zip(keys.tolist(), ids.tolist()):
                self._tree.insert(key, item_id)
        else:
            self._array.insert_many(keys, ids)
        return int(keys.shape[0])

    # -- queries -----------------------------------------------------------
    def count_le(self, key: float) -> int:
        return self._tree.count_le(key) if self._tree is not None else self._array.count_le(key)

    def count_less(self, key: float) -> int:
        return self._tree.count_less(key) if self._tree is not None else self._array.count_less(key)

    def kth_key(self, rank: int) -> float:
        """The ``rank``-th smallest key (1-based)."""
        if not 1 <= rank <= len(self):
            raise IndexError(f"rank {rank} out of range for reservoir of size {len(self)}")
        if self._tree is not None:
            return float(self._tree.select(rank - 1)[0])
        return self._array.kth_key(rank)

    def max_key(self) -> float:
        if self._tree is not None:
            return float(self._tree.max_key())
        return self._array.max_key()

    def min_key(self) -> float:
        if self._tree is not None:
            return float(self._tree.min_key())
        return self._array.min_key()

    def keys_array(self) -> np.ndarray:
        """All keys in increasing order."""
        if self._tree is not None:
            return self._tree.keys_array()
        return self._array.keys_array()

    def keys_in_rank_range(self, lo: int, hi: int) -> np.ndarray:
        """Keys with 0-based local ranks in ``[lo, hi)``."""
        if self._tree is not None:
            return np.array([k for k, _ in self._tree.items_in_rank_range(lo, hi)], dtype=np.float64)
        return self._array.keys_in_rank_range(lo, hi)

    def items(self) -> List[Tuple[float, int]]:
        """(key, item id) pairs in increasing key order."""
        if self._tree is not None:
            return list(self._tree.items())
        return list(self._array.items())

    def item_ids(self) -> np.ndarray:
        """Item ids currently stored (in increasing key order)."""
        if self._tree is not None:
            return np.fromiter(self._tree.values(), dtype=np.int64, count=len(self._tree))
        return self._array.ids_array()

    # -- pruning -------------------------------------------------------------
    def prune_to_rank(self, keep: int) -> int:
        """Keep only the ``keep`` smallest items; returns how many were removed."""
        if self._tree is not None:
            return self._tree.truncate_to_rank(keep)
        return self._array.truncate_to_rank(keep)

    def prune_above_key(self, key: float, *, inclusive: bool = True) -> int:
        """Discard items with keys above ``key`` (keeping ties when inclusive)."""
        keep = self.count_le(key) if inclusive else self.count_less(key)
        return self.prune_to_rank(keep)

    # -- sampling -------------------------------------------------------------
    def sample_keys(self, probability: float, rng: np.random.Generator, *, limit: Optional[int] = None) -> np.ndarray:
        """Bernoulli sample of the stored keys (at most ``limit`` smallest)."""
        size = len(self)
        if size == 0 or probability <= 0.0:
            return np.empty(0, dtype=np.float64)
        count = int(rng.binomial(size, min(probability, 1.0)))
        if count == 0:
            return np.empty(0, dtype=np.float64)
        ranks = np.sort(rng.choice(size, size=count, replace=False))
        if limit is not None:
            ranks = ranks[:limit]
        return np.array([self.kth_key(int(r) + 1) for r in ranks], dtype=np.float64)


@dataclass(frozen=True)
class LocalThresholdPolicy:
    """First-batch local thresholding (paper Section 5).

    While the global threshold is unknown, a PE applies a purely local
    threshold once its reservoir grows beyond ``hard_limit(k)`` items and
    re-tightens the reservoir to ``k`` items whenever it exceeds
    ``refresh_limit(k)`` items.  Correctness: the reservoir is never pruned
    below ``k`` items, so every local reservoir remains a size->=k sample of
    the items the PE has seen, and the union remains a valid candidate set.
    """

    k: int
    hard_factor: float = 1.5
    hard_slack: int = 500
    refresh_factor: float = 1.1
    refresh_slack: int = 250

    def __post_init__(self) -> None:
        check_positive_int(self.k, "k")
        if self.hard_factor < 1.0 or self.refresh_factor < 1.0:
            raise ValueError("threshold factors must be at least 1")

    @property
    def activation_size(self) -> int:
        """Reservoir size beyond which the local threshold is first applied."""
        return int(max(self.hard_factor * self.k, self.k + self.hard_slack))

    @property
    def refresh_size(self) -> int:
        """Reservoir size beyond which the reservoir is re-tightened to ``k``."""
        return int(max(self.refresh_factor * self.k, self.k + self.refresh_slack))

    def applies_to_batch(self, batch_size: int) -> bool:
        """Whether a first batch of ``batch_size`` items triggers the policy."""
        return batch_size >= self.activation_size

    def refresh_if_needed(self, reservoir: LocalReservoir) -> Tuple[Optional[float], int]:
        """Re-tighten ``reservoir`` if it grew beyond the refresh size.

        Returns ``(local_threshold, removed)``: the key of local rank ``k``
        to use as the threshold for subsequent items (``None`` while the
        reservoir still holds fewer than ``k`` items) and the number of
        items pruned by this call.  The reservoir is never pruned below
        ``k`` items.
        """
        size = len(reservoir)
        removed = 0
        if size > self.refresh_size:
            removed = reservoir.prune_to_rank(self.k)
            size = self.k
        if size >= self.k:
            return reservoir.kth_key(self.k), removed
        return None, removed

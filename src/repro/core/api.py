"""High-level convenience API.

Three entry points cover the common uses of the library:

* :class:`ReservoirSampler` — a *sequential* weighted or uniform reservoir
  sampler for single-process streams (Sections 4.1/4.3 of the paper).
* :func:`make_distributed_sampler` — factory for the distributed samplers by
  their paper names: ``"ours"``, ``"ours-8"`` (any ``"ours-<d>"``),
  ``"gather"`` and ``"ours-variable"``.
* :class:`DistributedSamplingRun` — binds a mini-batch stream, a distributed
  sampler and a machine model, runs a number of rounds and exposes the
  sample plus the collected metrics.  The scaling benchmarks are thin
  wrappers around this class.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.centralized import CentralizedGatherSampler
from repro.core.distributed import DistributedReservoirSampler
from repro.core.sequential import SequentialUniformReservoir, SequentialWeightedReservoir
from repro.core.store import normalize_store_name
from repro.core.variable_size import VariableSizeReservoirSampler
from repro.network.base import Communicator, make_communicator
from repro.network.process_comm import WorkerError
from repro.obs.collect import TraceCollector, resolve_trace
from repro.obs.health import resolve_health
from repro.obs.serve import resolve_serve
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.runtime.machine import MachineSpec
from repro.runtime.metrics import RunMetrics
from repro.selection.ams_select import AmsSelection
from repro.selection.bernoulli_pivot import SinglePivotSelection
from repro.selection.multi_pivot import MultiPivotSelection
from repro.stream.items import ItemBatch
from repro.stream.minibatch import MiniBatchStream
from repro.stream.stamped import TimestampedMiniBatchStream
from repro.utils.validation import check_positive_int
from repro.window.decayed import DecayedReservoir
from repro.window.distributed import DistributedWindowSampler
from repro.window.sliding import SlidingWindowReservoir

__all__ = ["ReservoirSampler", "make_distributed_sampler", "DistributedSamplingRun"]

CommLike = Union[str, Communicator]

_SIM_ALIASES = ("sim", "simulated", "simcomm")


def _pivot_selection_for(name: str) -> Optional[Union[SinglePivotSelection, MultiPivotSelection]]:
    """Selection algorithm for an ``"ours"`` / ``"ours-<d>"`` algorithm name.

    Returns ``None`` when ``name`` is not in the 'ours' pivot family (the
    caller decides whether that is an error).
    """
    if name == "ours":
        return SinglePivotSelection()
    match = re.fullmatch(r"ours-(\d+)", name)
    if match:
        d = int(match.group(1))
        return MultiPivotSelection(d) if d > 1 else SinglePivotSelection()
    return None


def _resolve_comm(
    comm: CommLike, p: Optional[int], machine: Optional[MachineSpec] = None, **comm_kwargs
) -> Communicator:
    """Accept either a constructed communicator or a backend name + ``p``.

    When the *simulated* backend is requested by name and a machine model
    is given, its network constants (``machine.comm``) parameterise the
    cost simulator, so local-work and communication times come from the
    same machine description.  Extra ``comm_kwargs`` (e.g.
    ``payload_transport="shm"`` for the process backend) are forwarded to
    the backend constructor; passing them alongside an already constructed
    communicator is an error.
    """
    if isinstance(comm, Communicator):
        if comm_kwargs:
            raise ValueError(
                f"comm is an already constructed communicator; backend options "
                f"{sorted(comm_kwargs)} must be passed to its constructor instead"
            )
        return comm
    if p is None:
        raise ValueError(
            f"comm={comm!r} names a backend, so the number of PEs must be given via p="
        )
    kwargs = dict(comm_kwargs)
    if machine is not None and comm.strip().lower() in _SIM_ALIASES:
        kwargs["cost"] = machine.comm
    return make_communicator(comm, p, **kwargs)


class ReservoirSampler:
    """Sequential reservoir sampler (weighted by default).

    A small facade over :class:`SequentialWeightedReservoir` /
    :class:`SequentialUniformReservoir` so that the quickstart fits in a few
    lines::

        sampler = ReservoirSampler(k=100, weighted=True, seed=1)
        sampler.feed(ids, weights)
        sample = sampler.sample_ids()

    ``store`` selects the reservoir storage: ``None`` (default) keeps the
    classic per-item jump algorithm; ``"merge"`` or ``"btree"`` switch to
    the vectorized mini-batch path over a pluggable reservoir store.

    ``kernel_tier`` selects the hot-loop implementation (``"numpy"``,
    ``"jit"`` or ``"auto"``, see :mod:`repro.core.jit_kernels`); it only
    has an effect on store-backed paths and never changes the sample.

    ``trace`` enables span recording (see :mod:`repro.obs`): ``True`` or a
    :class:`~repro.obs.collect.TraceCollector` records insert spans on the
    collector (exposed as :attr:`trace`), a bare
    :class:`~repro.obs.tracer.Tracer` records onto that tracer directly.
    Tracing never touches the RNG — the sample is byte-identical either
    way.

    ``window`` and ``decay`` switch to the recency-weighted samplers of
    :mod:`repro.window` (mutually exclusive):

    * ``window=W`` samples from the **last W items** only
      (:class:`~repro.window.sliding.SlidingWindowReservoir`; ``store``
      does not apply — the window keeps its own candidate buffer),
    * ``decay=lam`` weights item ``i`` by ``w_i * lam**age_i``
      (:class:`~repro.window.decayed.DecayedReservoir`; ``lam = 1``
      reproduces the unbounded sampler exactly).
    """

    def __init__(
        self,
        k: int,
        *,
        weighted: bool = True,
        seed=None,
        store: Optional[str] = None,
        window: Optional[int] = None,
        decay: Optional[float] = None,
        kernel_tier: str = "numpy",
        trace=None,
    ) -> None:
        from repro.core.jit_kernels import resolve_kernel_tier

        # tracing never touches the sampler's RNG, so samples are
        # byte-identical with tracing on or off (test-enforced)
        if isinstance(trace, Tracer):
            self.trace = None
            self._tracer = trace
        else:
            self.trace = resolve_trace(trace)
            self._tracer = self.trace.tracer if self.trace is not None else NULL_TRACER
        self.k = check_positive_int(k, "k")
        self.weighted = bool(weighted)
        self.window = window
        self.decay = decay
        self.kernel_tier = resolve_kernel_tier(kernel_tier)
        if window is not None and decay is not None:
            raise ValueError("window= and decay= are mutually exclusive")
        if window is not None:
            if store is not None:
                raise ValueError("store= does not apply to sliding-window sampling")
            self.store = None
            self._impl = SlidingWindowReservoir(k, window, weighted=weighted, seed=seed)
        elif decay is not None:
            self.store = normalize_store_name(store) if store is not None else "merge"
            self._impl = DecayedReservoir(
                k, decay, weighted=weighted, seed=seed, store=self.store,
                kernel_tier=self.kernel_tier,
            )
        else:
            self.store = normalize_store_name(store) if store is not None else None
            self._impl = (
                SequentialWeightedReservoir(k, seed, store=store, kernel_tier=self.kernel_tier)
                if weighted
                else SequentialUniformReservoir(k, seed, store=store, kernel_tier=self.kernel_tier)
            )

    @property
    def items_seen(self) -> int:
        return self._impl.items_seen

    @property
    def size(self) -> int:
        return self._impl.size

    @property
    def threshold(self) -> Optional[float]:
        return self._impl.threshold

    @property
    def buffer_size(self) -> Optional[int]:
        """Buffered window candidates (``None`` outside window mode)."""
        return self._impl.buffer_size if self.window is not None else None

    def add(self, item_id: int, weight: float = 1.0) -> bool:
        """Feed one item; returns whether it entered the reservoir.

        In window mode the return value means "entered the *candidate
        buffer*" — the item may sit above the current sample boundary and
        only enter the sample once older items expire; check
        :meth:`sample_ids` for membership.  Per-item feeding of a windowed
        sampler costs a vectorized pass over the candidate buffer per
        item; prefer :meth:`feed` with batches on hot paths.
        """
        if self.window is not None or self.decay is not None:
            return self._impl.insert(item_id, weight if self.weighted else 1.0)
        if self.weighted:
            return self._impl.insert(item_id, weight)
        return self._impl.insert(item_id)

    def feed(self, ids: Sequence[int], weights: Optional[Sequence[float]] = None) -> None:
        """Feed a batch of items (weights default to 1)."""
        ids = np.asarray(ids, dtype=np.int64)
        if weights is None:
            weights = np.ones(ids.shape[0], dtype=np.float64)
        batch = ItemBatch(ids=ids, weights=np.asarray(weights, dtype=np.float64))
        self.feed_batch(batch)

    def feed_batch(self, batch: ItemBatch) -> None:
        with self._tracer.span("insert", cat="kernel", items=int(batch.ids.shape[0])):
            self._impl.process(batch)

    def sample_ids(self) -> np.ndarray:
        return self._impl.sample_ids()

    def sample_with_keys(self) -> List[Tuple[float, int, float]]:
        return self._impl.sample_with_keys()

    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        # tracing is a session-scoped observer, not sampler state: a
        # collector may hold process handles, so checkpoints drop it
        state = dict(self.__dict__)
        state["trace"] = None
        state["_tracer"] = NULL_TRACER
        return state

    def save(self, path: Union[str, Path]) -> Path:
        """Checkpoint this sampler to ``path`` (atomic, versioned envelope).

        The sequential samplers hold no OS resources, so the whole object
        pickles; the envelope adds the magic/version/CRC header of
        :mod:`repro.checkpoint.format` so corruption and version skew are
        detected on load.  Continuing a loaded sampler is byte-identical
        to never having stopped.
        """
        from repro.checkpoint.format import save_checkpoint_file

        return save_checkpoint_file(path, {"kind": "sequential_sampler", "sampler": self})

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ReservoirSampler":
        """Restore a sampler previously written by :meth:`save`."""
        from repro.checkpoint.format import CheckpointError, load_checkpoint_file

        payload = load_checkpoint_file(path)
        if not isinstance(payload, dict) or payload.get("kind") != "sequential_sampler":
            raise CheckpointError(
                f"{path} is a valid checkpoint but not a sequential-sampler one; "
                "distributed run checkpoints are restored via DistributedSamplingRun.resume()"
            )
        sampler = payload["sampler"]
        if not isinstance(sampler, cls):
            raise CheckpointError(
                f"{path} holds a {type(sampler).__name__}, not a {cls.__name__}"
            )
        return sampler


def make_distributed_sampler(
    algorithm: str,
    k: int,
    comm: CommLike,
    *,
    p: Optional[int] = None,
    machine: Optional[MachineSpec] = None,
    weighted: bool = True,
    seed: Optional[int] = 0,
    k_hi: Optional[int] = None,
    store: str = "merge",
    backend: Optional[str] = None,
    local_thresholding: bool = True,
    window: Optional[int] = None,
    decay: Optional[float] = None,
    kernel_tier: str = "numpy",
) -> Union[DistributedReservoirSampler, CentralizedGatherSampler, DistributedWindowSampler]:
    """Create a distributed sampler by its paper name.

    ``algorithm`` is one of

    * ``"ours"`` — Algorithm 1 with single-pivot selection,
    * ``"ours-<d>"`` (e.g. ``"ours-8"``) — Algorithm 1 with ``d``-pivot selection,
    * ``"ours-variable"`` — variable reservoir size in ``[k, k_hi]`` (Section 4.4),
    * ``"gather"`` — the centralized gathering baseline (Section 4.5).

    ``comm`` selects the execution backend: an already constructed
    :class:`~repro.network.base.Communicator`, or a backend name —
    ``"sim"`` for the single-process cost simulator or ``"process"`` for
    real ``multiprocessing`` workers — combined with the PE count ``p``
    (e.g. ``make_distributed_sampler("ours", 100, "process", p=4)``).
    The same seed produces byte-identical samples under either backend.

    ``store`` picks the reservoir store backend (``"merge"``, the
    vectorized default, or ``"btree"``, the paper's data structure);
    ``backend`` is its deprecated alias.

    ``window=W`` switches to the **distributed sliding-window sampler**
    (:class:`~repro.window.distributed.DistributedWindowSampler`): the
    sample covers only the last ``W`` stamp units, the selection algorithm
    named by ``algorithm`` (``"ours"`` / ``"ours-<d>"``) re-establishes
    the sample boundary each round, and ``store`` does not apply — each PE
    keeps a window candidate buffer instead of a pruned reservoir.
    ``decay`` is not supported for distributed samplers yet.

    ``kernel_tier`` (``"numpy"``, ``"jit"`` or ``"auto"``) picks the
    hot-loop implementation the PEs run — see
    :mod:`repro.core.jit_kernels`.  The tier never changes the sample.
    """
    from repro.core.jit_kernels import resolve_kernel_tier

    name = algorithm.strip().lower()
    store = backend if backend is not None else store
    # validate the argument combinations *before* resolving the
    # communicator, so an invalid call (including kernel_tier="jit"
    # without numba installed) never spawns and then leaks workers
    kernel_tier = resolve_kernel_tier(kernel_tier)
    if decay is not None:
        raise ValueError("decay= is not supported for distributed samplers yet")
    if window is not None:
        check_positive_int(window, "window")
        if name == "gather" or name in ("ours-variable", "variable"):
            raise ValueError(
                f"window= is only supported for the 'ours' family, not {algorithm!r}"
            )
        if normalize_store_name(store) != "merge":
            raise ValueError(
                "store= does not apply to sliding-window sampling (each PE keeps a "
                "window candidate buffer instead of a pruned reservoir store)"
            )
        if k_hi is not None:
            raise ValueError("k_hi= is only meaningful for 'ours-variable', not with window=")
        if local_thresholding is not True:
            raise ValueError(
                "local_thresholding= does not apply to sliding-window sampling "
                "(windows admit no insertion threshold)"
            )
        selection = _pivot_selection_for(name)
        if selection is None:
            raise ValueError(
                f"unknown algorithm {algorithm!r}; expected 'ours' or 'ours-<d>' with window="
            )
        return DistributedWindowSampler(
            k,
            window,
            _resolve_comm(comm, p, machine),
            selection=selection,
            machine=machine,
            weighted=weighted,
            seed=seed,
            kernel_tier=kernel_tier,
        )
    comm = _resolve_comm(comm, p, machine)
    common = dict(machine=machine, weighted=weighted, seed=seed, kernel_tier=kernel_tier)
    if name == "gather":
        return CentralizedGatherSampler(k, comm, store=store, **common)
    if name in ("ours-variable", "variable"):
        upper = k_hi if k_hi is not None else 2 * k
        return VariableSizeReservoirSampler(
            k,
            upper,
            comm,
            selection=AmsSelection(num_pivots=2),
            store=store,
            local_thresholding=local_thresholding,
            **common,
        )
    selection = _pivot_selection_for(name)
    if selection is not None:
        return DistributedReservoirSampler(
            k,
            comm,
            selection=selection,
            store=store,
            local_thresholding=local_thresholding,
            **common,
        )
    raise ValueError(
        f"unknown algorithm {algorithm!r}; expected 'ours', 'ours-<d>', 'ours-variable' or 'gather'"
    )


class DistributedSamplingRun:
    """Run a distributed sampler over a mini-batch stream and collect metrics.

    Parameters
    ----------
    algorithm:
        Paper name of the algorithm (see :func:`make_distributed_sampler`),
        or an already constructed sampler object.
    k:
        Sample size (ignored when a sampler object is passed).
    p:
        Number of PEs (ignored when a sampler object is passed).
    stream:
        The mini-batch stream to consume; one is built from ``batch_size``
        if not given.
    comm:
        Execution backend when ``algorithm`` is a name: ``"sim"`` (default,
        the cost simulator) or ``"process"`` (real multiprocess workers),
        or an already constructed communicator.  For wall-clock
        measurements of the process backend prefer
        :class:`~repro.runtime.parallel.ParallelStreamingRun`, which also
        generates the stream inside the workers.
    window:
        When given, run the distributed *sliding-window* sampler over the
        last ``window`` items; the default stream becomes a
        :class:`~repro.stream.stamped.TimestampedMiniBatchStream` so every
        item carries its global arrival index.
    pipeline:
        ``"off"`` (default) runs lock-step rounds over the coordinator
        stream.  ``"strict"`` / ``"relaxed"`` switch to the asynchronous
        double-buffered rounds of :mod:`repro.pipeline`: batches are
        generated worker-locally (so ``stream=`` cannot be combined with
        it) and the next round's preparation overlaps the current round's
        selection — genuinely on the multiprocess backend, as a modeled
        ``max(prepare, select)`` round cost on the simulator.  Both the
        unbounded and the windowed samplers support it; the centralized
        ``"gather"`` baseline does not.
    kernel_tier:
        Hot-loop implementation the PEs run (``"numpy"``, ``"jit"`` or
        ``"auto"``, see :mod:`repro.core.jit_kernels`).  The resolved tier
        is recorded in :attr:`metrics` (``RunMetrics.kernel_tier``).
        Ignored when a constructed sampler object is passed — the sampler
        already carries its tier.
    comm_kwargs:
        Extra keyword arguments forwarded to the backend constructor when
        ``comm`` is a name — e.g. ``payload_transport="shm"`` /
        ``shm_min_bytes=`` or ``start_method=`` for the process backend.
    checkpoint_dir:
        Directory for on-disk checkpoints (see :mod:`repro.checkpoint`).
        When set, a round-0 checkpoint is written immediately so
        worker-death recovery always has a restorable base, and
        :meth:`run` transparently recovers from worker deaths on the
        process backend: respawn (``ProcessComm.recover``), restore the
        last checkpoint, replay the lost rounds.  The final sample is
        byte-identical to an undisturbed run.
    checkpoint_every:
        Write a checkpoint every N completed rounds (requires
        ``checkpoint_dir``); ``None`` keeps only the explicit saves.
    keep_checkpoints:
        Retention count for periodic checkpoints (oldest pruned first).
    max_recoveries:
        Worker-death recoveries :meth:`run` attempts before re-raising.
    trace:
        ``True`` or a :class:`~repro.obs.collect.TraceCollector` enables
        distributed tracing: per-PE kernel spans, coordinator phase
        spans, clock-aligned cross-process collection and a live metrics
        registry (see :mod:`repro.obs`).  The collector is exposed as
        :attr:`trace`; export with ``run.trace.export("trace.json")``.
        Tracing never touches any RNG — samples are byte-identical with
        tracing on or off.
    health:
        ``True``, a :class:`~repro.obs.health.HealthConfig` or a
        :class:`~repro.obs.health.HealthMonitor` enables live health
        monitoring: workers publish per-phase heartbeats and a watchdog
        daemon thread classifies every rank as
        ``ok|straggler|stalled|dead`` against adaptive EWMA deadlines
        (see :mod:`repro.obs.health`).  Exposed as :attr:`health`.  Like
        tracing, heartbeats never touch any RNG.
    on_stall:
        Watchdog policy when a rank exceeds its stall deadline (requires
        ``health=``): ``"warn"`` (default) logs and counts,
        ``"recover"`` kills the stuck worker and lets the run's
        checkpoint recovery replay the lost rounds (byte-identical, like
        SIGKILL recovery), ``"raise"`` kills it and raises
        :class:`~repro.obs.health.StallError`.
    serve_metrics:
        ``True`` or an ``("127.0.0.1", 0)``-style address starts the
        live HTTP exporter (:class:`~repro.obs.serve.HealthServer`)
        serving ``GET /metrics`` (Prometheus text) and ``GET /health``
        (per-rank watchdog state); exposed as :attr:`server` —
        ``run.server.address`` has the bound port.
    """

    def __init__(
        self,
        algorithm: Union[
            str, DistributedReservoirSampler, CentralizedGatherSampler, DistributedWindowSampler
        ] = "ours",
        *,
        k: int = 1000,
        p: int = 4,
        stream: Optional[MiniBatchStream] = None,
        batch_size: int = 1000,
        machine: Optional[MachineSpec] = None,
        weighted: bool = True,
        store: str = "merge",
        seed: Optional[int] = 0,
        comm: CommLike = "sim",
        window: Optional[int] = None,
        pipeline: str = "off",
        kernel_tier: str = "numpy",
        checkpoint_dir: Optional[Union[str, Path]] = None,
        checkpoint_every: Optional[int] = None,
        keep_checkpoints: int = 3,
        max_recoveries: int = 3,
        stream_id_offset: int = 0,
        trace=None,
        health=None,
        on_stall: Optional[str] = None,
        serve_metrics=None,
        **comm_kwargs,
    ) -> None:
        # imported lazily: repro.pipeline itself imports from repro.core
        from repro.pipeline.engine import make_pipeline_engine, normalize_pipeline_mode

        pipeline = normalize_pipeline_mode(pipeline)
        if checkpoint_every is not None and checkpoint_dir is None:
            raise ValueError("checkpoint_every= requires checkpoint_dir=")
        if pipeline != "off" and stream is not None:
            raise ValueError(
                "pipeline= generates the stream inside the workers; a custom "
                "stream= cannot be combined with it"
            )
        self.machine = machine if machine is not None else MachineSpec.forhlr_like()
        self._owns_comm = False
        self.window = window
        self.pipeline = pipeline
        self.engine = None
        if isinstance(algorithm, str):
            self._owns_comm = not isinstance(comm, Communicator)
            # _resolve_comm passes a constructed communicator through and
            # rejects stray comm_kwargs alongside one
            comm = _resolve_comm(comm, p, self.machine, **comm_kwargs)
            try:
                self.sampler = make_distributed_sampler(
                    algorithm,
                    k,
                    comm,
                    machine=self.machine,
                    weighted=weighted,
                    store=store,
                    seed=seed,
                    window=window,
                    kernel_tier=kernel_tier,
                )
            except BaseException:
                # don't leak the workers we just spawned on invalid arguments
                if self._owns_comm:
                    comm.shutdown()
                raise
            self.algorithm = algorithm
        else:
            if comm_kwargs:
                raise ValueError(
                    f"algorithm is an already constructed sampler; backend options "
                    f"{sorted(comm_kwargs)} must be passed to its communicator's constructor"
                )
            self.sampler = algorithm
            self.algorithm = getattr(algorithm, "algorithm_name", type(algorithm).__name__)
        if pipeline != "off":
            # worker-local shards replicate the default streams exactly;
            # make_pipeline_engine rejects samplers that cannot pipeline
            self.stream = None
            try:
                if stream_id_offset:
                    self.sampler.attach_worker_stream(
                        batch_size, seed=seed, id_offset=stream_id_offset
                    )
                else:
                    self.sampler.attach_worker_stream(batch_size, seed=seed)
                self.engine = make_pipeline_engine(self.sampler, pipeline)
            except BaseException:
                if self._owns_comm:
                    self.sampler.comm.shutdown()
                raise
        elif stream is not None:
            self.stream = stream
        elif window is not None:
            # stamped stream so the window is defined in global arrival order
            self.stream = TimestampedMiniBatchStream(self.sampler.p, batch_size, seed=seed)
        else:
            self.stream = MiniBatchStream(
                self.sampler.p, batch_size, seed=seed, start_id=stream_id_offset
            )
        if self.stream is not None and self.stream.p != self.sampler.p:
            raise ValueError(
                f"stream has {self.stream.p} PEs but the sampler has {self.sampler.p}"
            )
        self.metrics = RunMetrics(
            p=self.sampler.p,
            k=getattr(self.sampler, "k", k),
            algorithm=self.algorithm,
            store=getattr(self.sampler, "store", ""),
            comm_backend=getattr(self.sampler.comm, "kind", ""),
            kernel_tier=str(getattr(self.sampler, "kernel_tier", "")),
        )
        # ---- tracing --------------------------------------------------
        self.trace = resolve_trace(trace)
        if self.trace is not None:
            try:
                self.trace.attach(self.comm, self.sampler._handle)
            except BaseException:
                if self._owns_comm:
                    self.comm.shutdown()
                raise
        # ---- live health monitoring + HTTP exporter -------------------
        # the monitor shares the trace collector's registry when both are
        # on, so one /metrics scrape sees the whole run
        shared_registry = self.trace.registry if self.trace is not None else None
        self.health = resolve_health(health, on_stall=on_stall, registry=shared_registry)
        self.server = None
        try:
            if self.health is not None:
                self.health.attach(self.comm, self.sampler._handle)
            self.server = resolve_serve(
                serve_metrics,
                registry=shared_registry
                if shared_registry is not None
                else (self.health.registry if self.health is not None else None),
                monitor=self.health,
            )
        except BaseException:
            if self.health is not None:
                self.health.finish()
            if self._owns_comm:
                self.comm.shutdown()
            raise
        # ---- fault tolerance / checkpointing --------------------------
        # the config travels inside every checkpoint so resume() can
        # rebuild an equivalent run without the caller repeating arguments
        self._config = {
            "algorithm": self.algorithm if isinstance(algorithm, str) else None,
            "k": getattr(self.sampler, "k", k),
            "p": self.sampler.p,
            "batch_size": batch_size,
            "weighted": weighted,
            "store": store,
            "seed": seed,
            "comm": comm if isinstance(comm, str) else getattr(comm, "kind", ""),
            "comm_kwargs": dict(comm_kwargs),
            "window": window,
            "pipeline": pipeline,
            "kernel_tier": kernel_tier,
            "machine": self.machine,
            "checkpoint_every": checkpoint_every,
            "keep_checkpoints": keep_checkpoints,
            "max_recoveries": max_recoveries,
        }
        self.max_recoveries = int(max_recoveries)
        self._rounds_completed = 0
        self._pending_recovered: List[int] = []
        self._ckpt = None
        if checkpoint_dir is not None:
            from repro.checkpoint.manager import CheckpointManager

            self._ckpt = CheckpointManager(
                checkpoint_dir, every=checkpoint_every, keep=keep_checkpoints
            )
            if self.trace is not None:
                self._ckpt.tracer = self.trace.tracer
            # round-0 base checkpoint: a worker death in the very first
            # round must still find a restorable state on disk
            self.save_checkpoint()

    # ------------------------------------------------------------------
    @property
    def comm(self) -> Communicator:
        return self.sampler.comm

    @property
    def rounds_completed(self) -> int:
        """Rounds successfully processed (checkpoint numbering unit)."""
        return self._rounds_completed

    def _step_once(self):
        if self.engine is not None:
            return self.engine.step()
        round_batches = self.stream.next_round()
        return self.sampler.process_round(round_batches.batches)

    def run(self, rounds: int) -> RunMetrics:
        """Process ``rounds`` mini-batch rounds and return the run metrics.

        With ``checkpoint_dir`` set and a communicator that supports
        :meth:`~repro.network.process_comm.ProcessComm.recover`, a round
        that fails because a worker died is recovered transparently: the
        dead ranks are respawned, all PEs are restored from the newest
        on-disk checkpoint, and the rounds since that checkpoint are
        replayed from their recorded stream positions — the final sample
        is byte-identical to a run that never crashed.  Recoveries are
        counted in :attr:`RunMetrics.recoveries`, the respawned ranks in
        the first replayed round's
        :attr:`~repro.runtime.metrics.RoundMetrics.recovered_pes`.
        """
        target = self._rounds_completed + check_positive_int(rounds, "rounds", allow_zero=True)
        try:
            while self._rounds_completed < target:
                if self.health is not None:
                    self.health.arm(self._rounds_completed)
                try:
                    # comm.tracer is the collector's tracer when tracing is
                    # attached, the shared NullTracer otherwise
                    with self.comm.tracer.span("round", cat="round", round=self._rounds_completed):
                        round_metrics = self._step_once()
                except WorkerError:
                    if self.health is not None:
                        # keep the watchdog out of the recovery window: a
                        # respawned-but-still-restoring rank must not be
                        # re-flagged (and re-killed) for its silence
                        self.health.disarm()
                        stall = self.health.escalation()
                        if stall is not None:
                            raise stall from None
                    if (
                        self._ckpt is None
                        or not hasattr(self.comm, "recover")
                        or self.metrics.recoveries >= self.max_recoveries
                    ):
                        raise
                    self._recover_and_restore()
                    continue
                if self._pending_recovered:
                    round_metrics.recovered_pes = list(self._pending_recovered)
                    self._pending_recovered = []
                self.metrics.add_round(round_metrics)
                self._rounds_completed += 1
                if self.trace is not None:
                    self.trace.record_round(round_metrics)
                if self._ckpt is not None and self._ckpt.should_checkpoint(self._rounds_completed):
                    self.save_checkpoint()
        finally:
            if self.health is not None:
                self.health.disarm()
                self.metrics.stalls = self.health.stalls_detected
                self.metrics.stragglers_detected = self.health.stragglers_detected
        return self.metrics

    # ------------------------------------------------------------------
    # checkpoint / restore / recovery
    # ------------------------------------------------------------------
    def _snapshot(self) -> dict:
        from repro.checkpoint.state import snapshot_engine, snapshot_sampler

        # engine first: it joins any in-flight prepare and re-arms it, so
        # the per-PE export that follows sees the parked prepared batch
        engine_snapshot = snapshot_engine(self.engine)
        return {
            "config": dict(self._config),
            "sampler": snapshot_sampler(self.sampler),
            "engine": engine_snapshot,
            "driver_stream": self.stream,
            "metrics": self.metrics,
            "rounds_completed": self._rounds_completed,
        }

    def save_checkpoint(self) -> Path:
        """Write a checkpoint of the complete run state to ``checkpoint_dir``.

        Requires the run to have been constructed with ``checkpoint_dir=``.
        Returns the path written.
        """
        if self._ckpt is None:
            raise RuntimeError(
                "this run has no checkpoint directory; construct it with checkpoint_dir="
            )
        return self._ckpt.save(self._rounds_completed, self._snapshot())

    def _restore(self, rounds_completed: int, payload: dict) -> None:
        from repro.checkpoint.state import restore_engine, restore_sampler

        restore_sampler(self.sampler, payload["sampler"])
        restore_engine(self.engine, payload["engine"])
        self.stream = payload["driver_stream"]
        self.metrics = payload["metrics"]
        self._rounds_completed = int(rounds_completed)

    def _recover_and_restore(self) -> None:
        recoveries = self.metrics.recoveries
        dead = self.comm.recover()
        rounds_completed, payload = self._ckpt.load_latest()
        self._restore(rounds_completed, payload)
        # the restored metrics predate this failure: count it now, and tag
        # the first replayed round with the ranks that were respawned
        self.metrics.recoveries = recoveries + 1
        self._pending_recovered = sorted(set(self._pending_recovered) | set(dead))
        if self.trace is not None:
            # roll the trace back with the state: events of rounds about
            # to be replayed are dropped so nothing appears twice
            self.trace.on_recovery(
                epoch=getattr(self.comm, "epoch", 0),
                dead_ranks=dead,
                resume_round=self._rounds_completed,
            )
        if self.health is not None:
            # reinstall beat channels (the respawned ranks lost theirs)
            # and restart every rank's silence clock at the new epoch
            self.health.on_recovery(epoch=getattr(self.comm, "epoch", 0), dead_ranks=dead)

    @classmethod
    def resume(
        cls,
        checkpoint_dir: Union[str, Path],
        *,
        p: Optional[int] = None,
        comm: Optional[CommLike] = None,
        seed: Optional[int] = None,
        **overrides,
    ) -> "DistributedSamplingRun":
        """Rebuild a run from the newest checkpoint in ``checkpoint_dir``.

        With the original PE count (default), the resumed run continues
        **byte-identically**: same per-PE reservoirs, generator states and
        stream positions, so ``sample_ids()`` after N more rounds equals
        that of an uninterrupted run — on either backend (override with
        ``comm=`` to switch, e.g. resume a simulated run on real
        processes).

        Passing a *different* ``p`` re-shards elastically (fixed-k 'ours'
        family only): the surviving (key, id) pairs are dealt round-robin
        onto the new PE grid, the threshold and stream counters carry
        over, and the stream restarts past every previously emitted item
        id — inclusion probabilities are preserved (not byte-identity;
        see :mod:`repro.checkpoint.elastic`).  ``seed`` reseeds the
        resharded run's generators (defaults to the checkpointed seed).
        """
        from repro.checkpoint.format import CheckpointError
        from repro.checkpoint.manager import CheckpointManager

        manager = CheckpointManager(checkpoint_dir)
        rounds_completed, payload = manager.load_latest()
        config = payload["config"]
        if config.get("algorithm") is None:
            raise CheckpointError(
                "checkpoint was taken from a run built around a pre-constructed sampler "
                "object; rebuild the sampler yourself and restore it with "
                "repro.checkpoint.restore_sampler instead of resume()"
            )
        if overrides:
            raise ValueError(
                f"unsupported resume() overrides {sorted(overrides)}; only p=, comm= and "
                "seed= may differ from the checkpointed configuration"
            )
        new_p = config["p"] if p is None else int(p)
        if new_p != config["p"]:
            return cls._resume_elastic(checkpoint_dir, payload, new_p, comm=comm, seed=seed)
        run = cls(
            config["algorithm"],
            k=config["k"],
            p=config["p"],
            batch_size=config["batch_size"],
            machine=config.get("machine"),
            weighted=config["weighted"],
            store=config["store"],
            seed=config["seed"] if seed is None else seed,
            comm=config["comm"] if comm is None else comm,
            window=config["window"],
            pipeline=config["pipeline"],
            kernel_tier=config["kernel_tier"],
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=config["checkpoint_every"],
            keep_checkpoints=config["keep_checkpoints"],
            max_recoveries=config["max_recoveries"],
            **(config["comm_kwargs"] if comm is None else {}),
        )
        run._restore(rounds_completed, payload)
        return run

    @classmethod
    def _resume_elastic(
        cls,
        checkpoint_dir: Union[str, Path],
        payload: dict,
        new_p: int,
        *,
        comm: Optional[CommLike],
        seed: Optional[int],
    ) -> "DistributedSamplingRun":
        from repro.checkpoint.elastic import (
            check_reshardable,
            collect_reservoir_pairs,
            deal_pairs,
            next_free_stream_id,
        )
        from repro.checkpoint.format import CheckpointError

        config = payload["config"]
        sampler_snapshot = payload["sampler"]
        check_reshardable(sampler_snapshot)
        if config["pipeline"] != "off":
            raise CheckpointError(
                "elastic resume supports lock-step runs (pipeline='off'); pipelined runs "
                "park worker-local prepared state that cannot be re-sharded — resume with "
                "the original p instead"
            )
        pairs = collect_reservoir_pairs(sampler_snapshot)
        per_pe_items = deal_pairs(pairs, new_p)
        id_offset = next_free_stream_id(payload)
        run = cls(
            config["algorithm"],
            k=config["k"],
            p=new_p,
            batch_size=config["batch_size"],
            machine=config.get("machine"),
            weighted=config["weighted"],
            store=config["store"],
            seed=config["seed"] if seed is None else seed,
            comm=config["comm"] if comm is None else comm,
            window=config["window"],
            pipeline="off",
            kernel_tier=config["kernel_tier"],
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=config["checkpoint_every"],
            keep_checkpoints=config["keep_checkpoints"],
            max_recoveries=config["max_recoveries"],
            stream_id_offset=id_offset,
            **(config["comm_kwargs"] if comm is None else {}),
        )
        driver = sampler_snapshot["driver"]
        run.sampler.preload(
            per_pe_items,
            items_seen=driver.get("_items_seen", 0),
            total_weight=driver.get("_total_weight", 0.0),
            threshold=driver.get("threshold"),
        )
        run._rounds_completed = int(payload["rounds_completed"])
        run.metrics.recoveries = payload["metrics"].recoveries
        # overwrite the directory's newest entry with the re-sharded state
        # so a later recovery or resume restores at the new PE count
        run.save_checkpoint()
        return run

    def sample_ids(self) -> np.ndarray:
        return self.sampler.sample_ids()

    def sample_items(self) -> List[Tuple[int, float]]:
        return self.sampler.sample_items()

    def communication_summary(self) -> dict:
        """Summary of all communication charged during the run."""
        return self.comm.ledger.summary()

    def close(self) -> None:
        """Shut down the communicator **if this run created it**.

        A communicator passed in by the caller (directly or via a
        pre-built sampler) is left running — the caller owns its
        lifecycle.
        """
        if self.engine is not None:
            self.engine.finish()
        if self.server is not None:
            self.server.close()
        if self.health is not None:
            self.health.finish()
        if self.trace is not None:
            self.trace.finish()
        if self._owns_comm:
            self.comm.shutdown()

    def __enter__(self) -> "DistributedSamplingRun":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

"""High-level convenience API.

Three entry points cover the common uses of the library:

* :class:`ReservoirSampler` — a *sequential* weighted or uniform reservoir
  sampler for single-process streams (Sections 4.1/4.3 of the paper).
* :func:`make_distributed_sampler` — factory for the distributed samplers by
  their paper names: ``"ours"``, ``"ours-8"`` (any ``"ours-<d>"``),
  ``"gather"`` and ``"ours-variable"``.
* :class:`DistributedSamplingRun` — binds a mini-batch stream, a distributed
  sampler and a machine model, runs a number of rounds and exposes the
  sample plus the collected metrics.  The scaling benchmarks are thin
  wrappers around this class.
"""

from __future__ import annotations

import re
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.centralized import CentralizedGatherSampler
from repro.core.distributed import DistributedReservoirSampler
from repro.core.sequential import SequentialUniformReservoir, SequentialWeightedReservoir
from repro.core.store import normalize_store_name
from repro.core.variable_size import VariableSizeReservoirSampler
from repro.network.base import Communicator, make_communicator
from repro.runtime.machine import MachineSpec
from repro.runtime.metrics import RunMetrics
from repro.selection.ams_select import AmsSelection
from repro.selection.bernoulli_pivot import SinglePivotSelection
from repro.selection.multi_pivot import MultiPivotSelection
from repro.stream.items import ItemBatch
from repro.stream.minibatch import MiniBatchStream
from repro.utils.validation import check_positive_int

__all__ = ["ReservoirSampler", "make_distributed_sampler", "DistributedSamplingRun"]

CommLike = Union[str, Communicator]

_SIM_ALIASES = ("sim", "simulated", "simcomm")


def _resolve_comm(
    comm: CommLike, p: Optional[int], machine: Optional[MachineSpec] = None
) -> Communicator:
    """Accept either a constructed communicator or a backend name + ``p``.

    When the *simulated* backend is requested by name and a machine model
    is given, its network constants (``machine.comm``) parameterise the
    cost simulator, so local-work and communication times come from the
    same machine description.
    """
    if isinstance(comm, Communicator):
        return comm
    if p is None:
        raise ValueError(
            f"comm={comm!r} names a backend, so the number of PEs must be given via p="
        )
    kwargs = {}
    if machine is not None and comm.strip().lower() in _SIM_ALIASES:
        kwargs["cost"] = machine.comm
    return make_communicator(comm, p, **kwargs)


class ReservoirSampler:
    """Sequential reservoir sampler (weighted by default).

    A small facade over :class:`SequentialWeightedReservoir` /
    :class:`SequentialUniformReservoir` so that the quickstart fits in a few
    lines::

        sampler = ReservoirSampler(k=100, weighted=True, seed=1)
        sampler.feed(ids, weights)
        sample = sampler.sample_ids()

    ``store`` selects the reservoir storage: ``None`` (default) keeps the
    classic per-item jump algorithm; ``"merge"`` or ``"btree"`` switch to
    the vectorized mini-batch path over a pluggable reservoir store.
    """

    def __init__(
        self, k: int, *, weighted: bool = True, seed=None, store: Optional[str] = None
    ) -> None:
        self.k = check_positive_int(k, "k")
        self.weighted = bool(weighted)
        self.store = normalize_store_name(store) if store is not None else None
        self._impl = (
            SequentialWeightedReservoir(k, seed, store=store)
            if weighted
            else SequentialUniformReservoir(k, seed, store=store)
        )

    @property
    def items_seen(self) -> int:
        return self._impl.items_seen

    @property
    def size(self) -> int:
        return self._impl.size

    @property
    def threshold(self) -> Optional[float]:
        return self._impl.threshold

    def add(self, item_id: int, weight: float = 1.0) -> bool:
        """Feed one item; returns whether it entered the reservoir."""
        if self.weighted:
            return self._impl.insert(item_id, weight)
        return self._impl.insert(item_id)

    def feed(self, ids: Sequence[int], weights: Optional[Sequence[float]] = None) -> None:
        """Feed a batch of items (weights default to 1)."""
        ids = np.asarray(ids, dtype=np.int64)
        if weights is None:
            weights = np.ones(ids.shape[0], dtype=np.float64)
        batch = ItemBatch(ids=ids, weights=np.asarray(weights, dtype=np.float64))
        self._impl.process(batch)

    def feed_batch(self, batch: ItemBatch) -> None:
        self._impl.process(batch)

    def sample_ids(self) -> np.ndarray:
        return self._impl.sample_ids()

    def sample_with_keys(self) -> List[Tuple[float, int, float]]:
        return self._impl.sample_with_keys()


def make_distributed_sampler(
    algorithm: str,
    k: int,
    comm: CommLike,
    *,
    p: Optional[int] = None,
    machine: Optional[MachineSpec] = None,
    weighted: bool = True,
    seed: Optional[int] = 0,
    k_hi: Optional[int] = None,
    store: str = "merge",
    backend: Optional[str] = None,
    local_thresholding: bool = True,
) -> Union[DistributedReservoirSampler, CentralizedGatherSampler]:
    """Create a distributed sampler by its paper name.

    ``algorithm`` is one of

    * ``"ours"`` — Algorithm 1 with single-pivot selection,
    * ``"ours-<d>"`` (e.g. ``"ours-8"``) — Algorithm 1 with ``d``-pivot selection,
    * ``"ours-variable"`` — variable reservoir size in ``[k, k_hi]`` (Section 4.4),
    * ``"gather"`` — the centralized gathering baseline (Section 4.5).

    ``comm`` selects the execution backend: an already constructed
    :class:`~repro.network.base.Communicator`, or a backend name —
    ``"sim"`` for the single-process cost simulator or ``"process"`` for
    real ``multiprocessing`` workers — combined with the PE count ``p``
    (e.g. ``make_distributed_sampler("ours", 100, "process", p=4)``).
    The same seed produces byte-identical samples under either backend.

    ``store`` picks the reservoir store backend (``"merge"``, the
    vectorized default, or ``"btree"``, the paper's data structure);
    ``backend`` is its deprecated alias.
    """
    comm = _resolve_comm(comm, p, machine)
    name = algorithm.strip().lower()
    store = backend if backend is not None else store
    common = dict(machine=machine, weighted=weighted, seed=seed)
    if name == "gather":
        return CentralizedGatherSampler(k, comm, store=store, **common)
    if name == "ours":
        return DistributedReservoirSampler(
            k,
            comm,
            selection=SinglePivotSelection(),
            store=store,
            local_thresholding=local_thresholding,
            **common,
        )
    if name in ("ours-variable", "variable"):
        upper = k_hi if k_hi is not None else 2 * k
        return VariableSizeReservoirSampler(
            k,
            upper,
            comm,
            selection=AmsSelection(num_pivots=2),
            store=store,
            local_thresholding=local_thresholding,
            **common,
        )
    match = re.fullmatch(r"ours-(\d+)", name)
    if match:
        d = int(match.group(1))
        selection = MultiPivotSelection(d) if d > 1 else SinglePivotSelection()
        return DistributedReservoirSampler(
            k,
            comm,
            selection=selection,
            store=store,
            local_thresholding=local_thresholding,
            **common,
        )
    raise ValueError(
        f"unknown algorithm {algorithm!r}; expected 'ours', 'ours-<d>', 'ours-variable' or 'gather'"
    )


class DistributedSamplingRun:
    """Run a distributed sampler over a mini-batch stream and collect metrics.

    Parameters
    ----------
    algorithm:
        Paper name of the algorithm (see :func:`make_distributed_sampler`),
        or an already constructed sampler object.
    k:
        Sample size (ignored when a sampler object is passed).
    p:
        Number of PEs (ignored when a sampler object is passed).
    stream:
        The mini-batch stream to consume; one is built from ``batch_size``
        if not given.
    comm:
        Execution backend when ``algorithm`` is a name: ``"sim"`` (default,
        the cost simulator) or ``"process"`` (real multiprocess workers),
        or an already constructed communicator.  For wall-clock
        measurements of the process backend prefer
        :class:`~repro.runtime.parallel.ParallelStreamingRun`, which also
        generates the stream inside the workers.
    """

    def __init__(
        self,
        algorithm: Union[str, DistributedReservoirSampler, CentralizedGatherSampler] = "ours",
        *,
        k: int = 1000,
        p: int = 4,
        stream: Optional[MiniBatchStream] = None,
        batch_size: int = 1000,
        machine: Optional[MachineSpec] = None,
        weighted: bool = True,
        store: str = "merge",
        seed: Optional[int] = 0,
        comm: CommLike = "sim",
    ) -> None:
        self.machine = machine if machine is not None else MachineSpec.forhlr_like()
        self._owns_comm = False
        if isinstance(algorithm, str):
            if not isinstance(comm, Communicator):
                comm = _resolve_comm(comm, p, self.machine)
                self._owns_comm = True
            self.sampler = make_distributed_sampler(
                algorithm, k, comm, machine=self.machine, weighted=weighted, store=store, seed=seed
            )
            self.algorithm = algorithm
        else:
            self.sampler = algorithm
            self.algorithm = getattr(algorithm, "algorithm_name", type(algorithm).__name__)
        self.stream = stream if stream is not None else MiniBatchStream(
            self.sampler.p, batch_size, seed=seed
        )
        if self.stream.p != self.sampler.p:
            raise ValueError(
                f"stream has {self.stream.p} PEs but the sampler has {self.sampler.p}"
            )
        self.metrics = RunMetrics(
            p=self.sampler.p,
            k=getattr(self.sampler, "k", k),
            algorithm=self.algorithm,
            store=getattr(self.sampler, "store", ""),
            comm_backend=getattr(self.sampler.comm, "kind", ""),
        )

    # ------------------------------------------------------------------
    @property
    def comm(self) -> Communicator:
        return self.sampler.comm

    def run(self, rounds: int) -> RunMetrics:
        """Process ``rounds`` mini-batch rounds and return the run metrics."""
        for _ in range(check_positive_int(rounds, "rounds", allow_zero=True)):
            round_batches = self.stream.next_round()
            round_metrics = self.sampler.process_round(round_batches.batches)
            self.metrics.add_round(round_metrics)
        return self.metrics

    def sample_ids(self) -> np.ndarray:
        return self.sampler.sample_ids()

    def sample_items(self) -> List[Tuple[int, float]]:
        return self.sampler.sample_items()

    def communication_summary(self) -> dict:
        """Summary of all communication charged during the run."""
        return self.comm.ledger.summary()

    def close(self) -> None:
        """Shut down the communicator **if this run created it**.

        A communicator passed in by the caller (directly or via a
        pre-built sampler) is left running — the caller owns its
        lifecycle.
        """
        if self._owns_comm:
            self.comm.shutdown()

    def __enter__(self) -> "DistributedSamplingRun":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

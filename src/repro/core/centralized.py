"""Centralized gathering baseline (paper Section 4.5).

To highlight the importance of communication efficiency, the paper compares
against a more centralized approach, which can be seen as an adaptation of
Jayaram et al.'s coordinator-based algorithm to the mini-batch model:

1. **insert** — every PE filters its local batch with the current global
   threshold exactly like Algorithm 1 does, but buffers the surviving
   candidates in a plain array instead of a search tree (in the very first
   batch a PE keeps only its ``k`` smallest keys);
2. **gather** — all candidate (key, id) pairs are gathered at a designated
   root PE;
3. **select** — the root merges the candidates into its reservoir and uses a
   standard sequential selection (quickselect) to keep the ``k`` smallest;
4. **threshold** — the root broadcasts the new threshold.

The reservoir lives solely at the root, whose gather volume and sequential
selection work grow with ``k`` and ``p`` — which is exactly why this
algorithm stops scaling for large sample sizes (Figures 3, 4 and 6 of the
paper).

Like the distributed sampler, the per-PE local filtering runs through the
communicator's PE-state layer (kernels from
:mod:`repro.core.pe_kernels`), so the same code executes inline under
:class:`~repro.network.communicator.SimComm` and in real worker processes
under :class:`~repro.network.process_comm.ProcessComm`.  The root reservoir
is kept coordinator-side, which models the root PE's memory.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core import pe_kernels
from repro.core.store import ReservoirStore, make_store, normalize_store_name
from repro.network.base import Communicator
from repro.runtime.clock import PhaseClock
from repro.runtime.machine import MachineSpec
from repro.runtime.metrics import PhaseTimes, RoundMetrics
from repro.stream.items import ItemBatch
from repro.stream.shard import make_shard_specs
from repro.utils.rng import spawn_seed_sequences
from repro.utils.validation import check_positive_int

__all__ = ["CentralizedGatherSampler"]


class CentralizedGatherSampler:
    """Mini-batch reservoir sampling with a gathering coordinator ("gather")."""

    algorithm_name = "gather"

    def __init__(
        self,
        k: int,
        comm: Communicator,
        *,
        machine: Optional[MachineSpec] = None,
        weighted: bool = True,
        root: int = 0,
        store: str = "merge",
        seed: Optional[int] = 0,
        kernel_tier: str = "numpy",
    ) -> None:
        import functools

        from repro.core.jit_kernels import resolve_kernel_tier

        self.k = check_positive_int(k, "k")
        self.comm = comm
        self.machine = machine if machine is not None else MachineSpec.forhlr_like()
        self.weighted = bool(weighted)
        self.root = comm.topology.validate_rank(root)
        self.store = normalize_store_name(store)
        # resolved before worker creation: "jit" without numba fails here
        self.kernel_tier = resolve_kernel_tier(kernel_tier)
        seed_seqs = spawn_seed_sequences(seed, comm.p)
        self._handle = comm.create_pe_state(
            functools.partial(pe_kernels.make_centralized_state, kernel_tier=self.kernel_tier),
            per_pe_args=[(ss,) for ss in seed_seqs],
        )
        self._has_worker_stream = False
        # Reservoir at the root, behind the pluggable store protocol (the
        # merge store reproduces the historic plain-sorted-array behaviour).
        self._reservoir: ReservoirStore = make_store(self.store, kernel_tier=self.kernel_tier)
        self.threshold: Optional[float] = None
        self._items_seen = 0
        self._total_weight = 0.0
        self._round = 0

    # ------------------------------------------------------------------
    @property
    def p(self) -> int:
        return self.comm.p

    @property
    def items_seen(self) -> int:
        return self._items_seen

    @property
    def total_weight(self) -> float:
        return self._total_weight

    @property
    def rounds_processed(self) -> int:
        return self._round

    def sample_size(self) -> int:
        return len(self._reservoir)

    def sample_ids(self) -> np.ndarray:
        """Item ids of the current sample (held at the root)."""
        return self._reservoir.ids_array()

    def sample_items(self) -> List[Tuple[int, float]]:
        """The current sample as ``(item id, key)`` pairs."""
        return [(item_id, key) for key, item_id in self._reservoir.items()]

    def preload(
        self,
        per_pe_items: Sequence[Sequence[Tuple[float, int]]],
        *,
        items_seen: int,
        total_weight: float,
        threshold: Optional[float],
    ) -> None:
        """Install a pre-computed sampler state (steady-state warm start).

        The centralized algorithm keeps the whole reservoir at the root, so
        the per-PE item lists are simply merged there.  See
        :meth:`repro.core.distributed.DistributedReservoirSampler.preload`.
        """
        if self._items_seen:
            raise RuntimeError("preload is only valid on a fresh sampler")
        keys: List[float] = []
        ids: List[int] = []
        for items in per_pe_items:
            for key, item_id in items:
                keys.append(float(key))
                ids.append(int(item_id))
        self._reservoir.insert_batch(
            np.asarray(keys, dtype=np.float64), np.asarray(ids, dtype=np.int64)
        )
        self._items_seen = int(items_seen)
        self._total_weight = float(total_weight)
        self.threshold = float(threshold) if threshold is not None else None

    def attach_worker_stream(
        self,
        batch_size: int,
        *,
        seed: Optional[int] = 0,
        weights=None,
        variable: bool = False,
        stamped: bool = False,
    ) -> None:
        """Install a worker-local stream shard on every PE.

        See
        :meth:`repro.core.distributed.DistributedReservoirSampler.attach_worker_stream`.
        """
        specs = make_shard_specs(
            self.p, batch_size, seed=seed, weights=weights, variable=variable, stamped=stamped
        )
        self.comm.run_per_pe(
            self._handle, pe_kernels.install_stream_kernel, [(spec,) for spec in specs]
        )
        self._has_worker_stream = True

    # ------------------------------------------------------------------
    def process_round(self, batches: Sequence[ItemBatch]) -> RoundMetrics:
        """Process one mini-batch round (one batch per PE)."""
        if len(batches) != self.p:
            raise ValueError(f"expected {self.p} batches (one per PE), got {len(batches)}")
        clock = PhaseClock(self.p)
        phase_comm_before = self.comm.ledger.time_by_phase()

        # ---------------- insert (local filtering, in the workers) --------
        with self.comm.phase("insert"):
            results = self.comm.run_per_pe(
                self._handle,
                pe_kernels.centralized_candidates_kernel,
                [
                    (batch.ids, batch.weights, self.threshold, self.weighted, self.k)
                    for batch in batches
                ],
            )
        batch_sizes = [len(batch) for batch in batches]
        candidate_keys, candidate_ids = self._charge_insert_work(clock, results, batch_sizes)
        batch_items = sum(batch_sizes)
        self._items_seen += batch_items
        self._total_weight += sum(batch.total_weight for batch in batches)
        return self._finish_round(
            clock, phase_comm_before, batch_items, candidate_keys, candidate_ids
        )

    def process_stream_round(self) -> RoundMetrics:
        """Process one round whose batches are generated worker-locally."""
        if not self._has_worker_stream:
            raise RuntimeError("no worker stream attached; call attach_worker_stream() first")
        clock = PhaseClock(self.p)
        phase_comm_before = self.comm.ledger.time_by_phase()

        with self.comm.phase("insert"):
            results = self.comm.run_per_pe(
                self._handle,
                pe_kernels.centralized_stream_candidates_kernel,
                [(self.threshold, self.weighted, self.k)] * self.p,
            )
        batch_sizes = [r[2] for r in results]
        candidate_keys, candidate_ids = self._charge_insert_work(
            clock, [r[:2] for r in results], batch_sizes
        )
        batch_items = sum(batch_sizes)
        self._items_seen += batch_items
        self._total_weight += sum(r[3] for r in results)
        return self._finish_round(
            clock, phase_comm_before, batch_items, candidate_keys, candidate_ids
        )

    # ------------------------------------------------------------------
    def _charge_insert_work(
        self,
        clock: PhaseClock,
        results: Sequence[Tuple[np.ndarray, np.ndarray]],
        batch_sizes: Sequence[int],
    ) -> Tuple[List[np.ndarray], List[np.ndarray]]:
        candidate_keys: List[np.ndarray] = []
        candidate_ids: List[np.ndarray] = []
        for pe, ((keys, ids), b) in enumerate(zip(results, batch_sizes)):
            candidate_keys.append(np.asarray(keys, dtype=np.float64))
            candidate_ids.append(np.asarray(ids, dtype=np.int64))
            if b == 0:
                continue
            if self.weighted:
                scan = self.machine.scan_time(b, batch_size=b)
            else:
                scan = self.machine.scan_time(len(keys), batch_size=b)
            key_gens = b if self.threshold is None else 2 * len(keys) + 1
            clock.charge(
                "insert",
                pe,
                scan + self.machine.key_gen_time(key_gens) + self.machine.array_append_time(len(keys)),
            )
        return candidate_keys, candidate_ids

    def _finish_round(
        self,
        clock: PhaseClock,
        phase_comm_before: Dict[str, float],
        batch_items: int,
        candidate_keys: List[np.ndarray],
        candidate_ids: List[np.ndarray],
    ) -> RoundMetrics:
        # ---------------- gather ----------------
        payloads = [
            np.stack([candidate_keys[pe], candidate_ids[pe].astype(np.float64)], axis=1)
            for pe in range(self.p)
        ]
        with self.comm.phase("gather"):
            gathered = self.comm.gather(
                payloads,
                root=self.root,
                words_per_pe=[float(2 * candidate_keys[pe].shape[0]) for pe in range(self.p)],
            )
        candidates_gathered = int(sum(candidate_keys[pe].shape[0] for pe in range(self.p)))

        # ---------------- select (sequential, at the root) ----------------
        new_keys = np.concatenate([np.asarray(g[:, 0]) for g in gathered])
        new_ids = np.concatenate([np.asarray(g[:, 1]).astype(np.int64) for g in gathered])
        merged = len(self._reservoir) + int(new_keys.shape[0])
        self._reservoir.insert_batch(new_keys, new_ids, capacity=self.k)
        clock.charge("select", self.root, self.machine.sequential_select_time(merged))

        # ---------------- threshold (broadcast) ----------------
        new_threshold: Optional[float] = None
        if len(self._reservoir) >= self.k:
            new_threshold = self._reservoir.max_key()
        with self.comm.phase("threshold"):
            broadcast = self.comm.broadcast([new_threshold] * self.p, root=self.root, words=1.0)
        self.threshold = broadcast[0]

        self._round += 1
        phase_comm_after = self.comm.ledger.time_by_phase()
        phases = set(phase_comm_after) | set(clock.phases()) | set(phase_comm_before)
        phase_times: Dict[str, PhaseTimes] = {}
        for phase in phases:
            comm_delta = phase_comm_after.get(phase, 0.0) - phase_comm_before.get(phase, 0.0)
            local = clock.max_time(phase)
            if comm_delta > 0.0 or local > 0.0:
                phase_times[phase] = PhaseTimes(local=local, comm=comm_delta)
        insertions = [int(candidate_keys[pe].shape[0]) for pe in range(self.p)]
        return RoundMetrics(
            round_index=self._round - 1,
            batch_items=batch_items,
            items_seen_total=self._items_seen,
            sample_size=self.sample_size(),
            threshold=self.threshold,
            phase_times=phase_times,
            insertions_per_pe=insertions,
            candidates_gathered=candidates_gathered,
            selection_stats=None,
            selection_ran=len(self._reservoir) >= self.k,
        )

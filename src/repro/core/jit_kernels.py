"""Optional numba-compiled kernel tier for the sampling hot loops.

The library ships two kernel tiers:

* ``"numpy"`` — the always-available reference tier: vectorised numpy
  batch kernels (:mod:`repro.core.keys`, :class:`repro.core.store.MergeStore`).
  This tier has no optional dependencies and is what every correctness
  test and statistical suite runs against.
* ``"jit"`` — this module: the same kernels compiled with
  `numba <https://numba.pydata.org>`_ (an *optional* dependency, gated at
  import exactly like the planned ``mpi4py`` backend).  The compiled tier
  replaces the interpreter-level pieces of the hot path — the per-jump
  Python loop of the exponential/geometric jump traversal and the
  ``np.insert``-based merge of the sorted-array store — with fused,
  allocation-light compiled loops.

``"auto"`` resolves to ``"jit"`` when numba is importable and silently
falls back to ``"numpy"`` otherwise; requesting ``"jit"`` without numba
raises an actionable error instead (see :func:`resolve_kernel_tier`).

Byte-identical samples across tiers
-----------------------------------
Tier selection must never change a sample, only its cost.  Three design
rules make the compiled kernels bit-identical to the numpy reference (the
store/sim/process equivalence suites enforce this):

* **Same random stream.**  The compiled jump loops draw from the *same*
  ``np.random.Generator`` objects as the numpy tier, one scalar
  ``rng.random()`` per draw in the same order (numba's ``Generator``
  support consumes the underlying bit generator exactly like numpy).
* **Scalar libm math.**  The jump loops use scalar ``math.log`` /
  ``math.exp`` in both tiers, which resolve to the same C library on the
  same machine.  *Dense* batch key generation
  (:func:`repro.core.keys.exponential_keys`) intentionally stays on the
  numpy tier in both modes: numpy's vectorised transcendentals are not
  guaranteed bit-identical to scalar libm, and the dense path is already
  compiled vectorised code — the jit tier's win is the scalar-bottlenecked
  jump and merge loops, not the ufuncs.
* **Same float summation order.**  The weighted jump scan accumulates the
  cumulative weights left to right, matching ``np.cumsum`` exactly, and
  the store merge is a pure comparison/move pass with no arithmetic.
"""

from __future__ import annotations

import logging
import math
from typing import Optional, Tuple

import numpy as np

_logger = logging.getLogger("repro.core.jit")

__all__ = [
    "KERNEL_TIERS",
    "NUMBA_AVAILABLE",
    "normalize_kernel_tier",
    "resolve_kernel_tier",
    "numba_available",
    "require_numba",
    "weighted_jump_positions_jit",
    "uniform_jump_positions_jit",
    "jump_positions",
    "merge_sorted_jit",
    "take_ranks_jit",
]

# -- gated optional import (the mpi4py-backend pattern) ----------------------
try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit as _njit

    NUMBA_AVAILABLE = True
    NUMBA_IMPORT_ERROR: Optional[str] = None
except ImportError as _exc:  # numba genuinely optional
    _njit = None
    NUMBA_AVAILABLE = False
    NUMBA_IMPORT_ERROR = str(_exc)

#: valid values of the ``kernel_tier=`` argument across the API surface
KERNEL_TIERS = ("numpy", "jit", "auto")

_TINY = float(np.finfo(np.float64).tiny)


def numba_available() -> bool:
    """Whether the optional numba dependency imported successfully."""
    return NUMBA_AVAILABLE


def require_numba(feature: str = "kernel_tier='jit'") -> None:
    """Raise an actionable error when the compiled tier is requested without numba."""
    if not NUMBA_AVAILABLE:
        raise RuntimeError(
            f"{feature} requires the optional dependency numba, which is not "
            f"installed (import failed with: {NUMBA_IMPORT_ERROR}). Install it "
            f"with `pip install numba` (or `pip install "
            f"repro-reservoir-sampling[jit]`), or use kernel_tier='auto' to "
            f"fall back to the numpy reference tier automatically."
        )


def normalize_kernel_tier(tier: str) -> str:
    """Validate a ``kernel_tier=`` value (``"numpy"``, ``"jit"`` or ``"auto"``)."""
    key = str(tier).strip().lower()
    if key not in KERNEL_TIERS:
        raise ValueError(f"unknown kernel_tier {tier!r}; use one of {list(KERNEL_TIERS)}")
    return key


def resolve_kernel_tier(tier: str) -> str:
    """Resolve a requested tier to the concrete one that will run.

    ``"auto"`` picks ``"jit"`` when numba is importable and falls back to
    ``"numpy"`` otherwise (logged at debug level on the
    ``repro.core.jit`` logger).  ``"jit"`` without numba raises a
    :class:`RuntimeError` that names the missing dependency and how to get
    it — samplers resolve the tier at construction time, *before* any
    worker processes are spawned, so the error can never leak workers.
    """
    key = normalize_kernel_tier(tier)
    if key == "auto":
        if NUMBA_AVAILABLE:
            return "jit"
        _logger.debug(
            "kernel_tier='auto' falling back to 'numpy': numba import failed (%s)",
            NUMBA_IMPORT_ERROR,
        )
        return "numpy"
    if key == "jit":
        require_numba()
    return key


# ---------------------------------------------------------------------------
# compiled kernels (defined only when numba imported; the public wrappers
# below raise the actionable error otherwise)
# ---------------------------------------------------------------------------
if NUMBA_AVAILABLE:  # pragma: no cover - compiled paths need numba

    @_njit(cache=True)
    def _weighted_jump_scan(weights, threshold, rng, out_idx, out_keys):
        """Fused exponential-jumps scan of one batch under a fixed threshold.

        Bit-identical replay of
        :func:`repro.core.keys.weighted_jump_positions`: the cumulative
        weights are accumulated left to right (= ``np.cumsum``), the
        ``searchsorted(..., side="left")`` is replayed as a resumable
        linear scan (the scan frontier is *not* advanced past an accepted
        item, so a zero-length skip re-accepts the same item exactly like
        a from-scratch binary search would), and every ``1 - rng.random()``
        draw happens in the same order.
        """
        n = weights.shape[0]
        total = 0.0
        for i in range(n):
            total += weights[i]
        count = 0
        consumed = 0.0
        j = 0
        prefix = 0.0  # cumulative weight of items [0, j)
        while True:
            skip = -math.log(1.0 - rng.random()) / threshold
            target = consumed + skip
            if target > total or math.isinf(target) or math.isnan(target):
                break
            while j < n and prefix + weights[j] < target:
                prefix += weights[j]
                j += 1
            if j >= n:
                break
            w = weights[j]
            lower = math.exp(-threshold * w)
            u = lower + (1.0 - rng.random()) * (1.0 - lower)
            if u < _TINY:
                u = _TINY
            out_idx[count] = j
            out_keys[count] = -math.log(u) / w
            count += 1
            consumed = prefix + w  # == cumulative[j]
            if j == n - 1:
                break
        return count

    @_njit(cache=True)
    def _uniform_jump_scan(n, threshold, rng, out_idx, out_keys):
        """Geometric-jumps scan; replays
        :func:`repro.core.keys.uniform_jump_positions` draw for draw."""
        count = 0
        position = -1
        log1mt = math.log(1.0 - threshold) if threshold < 1.0 else 0.0
        while True:
            if threshold >= 1.0:
                skip = 0
            else:
                skip = int(math.floor(math.log(1.0 - rng.random()) / log1mt))
            position += skip + 1
            if position >= n:
                break
            out_idx[count] = position
            out_keys[count] = (1.0 - rng.random()) * threshold
            count += 1
        return count

    @_njit(cache=True)
    def _merge_sorted(old_keys, old_ids, new_keys, new_ids):
        """One-pass two-pointer merge of two sorted (key, id) arrays.

        Equal keys keep existing entries first (the ``side="right"``
        convention of :class:`repro.core.store.MergeStore`); among equal
        *new* keys the incoming (stable-sorted) order is preserved.  Pure
        comparisons and moves — no arithmetic — so the result is
        bit-identical to the numpy ``searchsorted`` + ``np.insert`` path.
        """
        n = old_keys.shape[0]
        m = new_keys.shape[0]
        out_keys = np.empty(n + m, dtype=np.float64)
        out_ids = np.empty(n + m, dtype=np.int64)
        i = 0
        j = 0
        k = 0
        while i < n and j < m:
            if old_keys[i] <= new_keys[j]:
                out_keys[k] = old_keys[i]
                out_ids[k] = old_ids[i]
                i += 1
            else:
                out_keys[k] = new_keys[j]
                out_ids[k] = new_ids[j]
                j += 1
            k += 1
        while i < n:
            out_keys[k] = old_keys[i]
            out_ids[k] = old_ids[i]
            i += 1
            k += 1
        while j < m:
            out_keys[k] = new_keys[j]
            out_ids[k] = new_ids[j]
            j += 1
            k += 1
        return out_keys, out_ids

    @_njit(cache=True)
    def _take_ranks(keys, ranks):
        """Gather the 1-based ``ranks``-th smallest keys (compiled select)."""
        out = np.empty(ranks.shape[0], dtype=np.float64)
        for i in range(ranks.shape[0]):
            out[i] = keys[ranks[i] - 1]
        return out


# ---------------------------------------------------------------------------
# public wrappers (mirror the signatures of repro.core.keys)
# ---------------------------------------------------------------------------
def weighted_jump_positions_jit(
    weights: np.ndarray, threshold: float, rng: np.random.Generator
) -> Tuple[np.ndarray, np.ndarray]:
    """Compiled :func:`repro.core.keys.weighted_jump_positions` (same stream)."""
    require_numba("weighted_jump_positions_jit")
    weights = np.ascontiguousarray(weights, dtype=np.float64)
    n = weights.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
    out_idx = np.empty(n, dtype=np.int64)
    out_keys = np.empty(n, dtype=np.float64)
    count = _weighted_jump_scan(weights, float(threshold), rng, out_idx, out_keys)
    return out_idx[:count].copy(), out_keys[:count].copy()


def uniform_jump_positions_jit(
    count: int, threshold: float, rng: np.random.Generator
) -> Tuple[np.ndarray, np.ndarray]:
    """Compiled :func:`repro.core.keys.uniform_jump_positions` (same stream)."""
    require_numba("uniform_jump_positions_jit")
    n = int(count)
    if n <= 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
    out_idx = np.empty(n, dtype=np.int64)
    out_keys = np.empty(n, dtype=np.float64)
    accepted = _uniform_jump_scan(n, float(threshold), rng, out_idx, out_keys)
    return out_idx[:accepted].copy(), out_keys[:accepted].copy()


def jump_positions(
    threshold: float,
    rng: np.random.Generator,
    *,
    weighted: bool,
    tier: str,
    weights: Optional[np.ndarray] = None,
    count: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Tier dispatcher for the below-threshold jump traversal.

    The single entry point the PE kernels use for steady-state ingestion:
    ``tier`` must already be resolved (``"numpy"`` or ``"jit"``).  Weighted
    calls pass the batch ``weights``; uniform calls pass the item
    ``count``.  Both tiers consume the random stream identically, so the
    returned ``(indices, keys)`` are byte-identical.
    """
    from repro.core import keys as keymod

    if weighted:
        if weights is None:
            raise ValueError("weighted jump traversal requires the batch weights")
        if tier == "jit":
            keymod.check_jump_arguments(weights, threshold)
            return weighted_jump_positions_jit(weights, threshold, rng)
        return keymod.weighted_jump_positions(weights, threshold, rng)
    if tier == "jit":
        keymod.check_uniform_jump_arguments(count, threshold)
        return uniform_jump_positions_jit(count, threshold, rng)
    return keymod.uniform_jump_positions(count, threshold, rng)


def merge_sorted_jit(
    old_keys: np.ndarray, old_ids: np.ndarray, new_keys: np.ndarray, new_ids: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Compiled merge of a sorted store with a stable-sorted batch."""
    require_numba("merge_sorted_jit")
    return _merge_sorted(old_keys, old_ids, new_keys, new_ids)


def take_ranks_jit(keys: np.ndarray, ranks: np.ndarray) -> np.ndarray:
    """Compiled 1-based rank gather (``kth_keys`` hot loop)."""
    require_numba("take_ranks_jit")
    return _take_ranks(keys, np.asarray(ranks, dtype=np.int64))

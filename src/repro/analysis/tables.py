"""Plain-text table rendering for the benchmark harness.

The benchmark modules print, for every figure of the paper, the same series
the figure plots (speedups per node count, throughput per PE, phase
fractions).  These helpers render them as aligned ASCII tables so the
benchmark output is self-contained and diff-able.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence

__all__ = ["format_table", "format_series_table", "format_fraction_table"]


def _format_cell(value: object, precision: int) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.{precision}e}"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], *, precision: int = 2
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table."""
    rendered_rows: List[List[str]] = [[_format_cell(c, precision) for c in row] for row in rows]
    headers = [str(h) for h in headers]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError("every row must have one cell per header")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    lines.append("  ".join(h.rjust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rendered_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series_table(
    series_by_label: Mapping[str, Mapping[int, float]],
    *,
    x_label: str = "nodes",
    precision: int = 2,
) -> str:
    """Render several series (label -> {x -> value}) against a shared x axis."""
    xs = sorted({x for series in series_by_label.values() for x in series})
    headers = [x_label] + list(series_by_label.keys())
    rows = []
    for x in xs:
        row: List[object] = [x]
        for label in series_by_label:
            value = series_by_label[label].get(x)
            row.append(value if value is not None else "-")
        rows.append(row)
    return format_table(headers, rows, precision=precision)


def format_fraction_table(
    fractions_by_config: Mapping[str, Mapping[str, float]],
    *,
    phases: Sequence[str] = ("insert", "select", "threshold", "gather"),
    precision: int = 3,
) -> str:
    """Render per-configuration phase fractions (Figure 6 style)."""
    headers = ["configuration"] + list(phases)
    rows = []
    for config, fracs in fractions_by_config.items():
        rows.append([config] + [fracs.get(phase, 0.0) for phase in phases])
    return format_table(headers, rows, precision=precision)

"""Statistical validation of the samplers.

Weighted sampling *without replacement* has no simple closed-form inclusion
probability for general ``k``, so the tests validate the samplers in three
complementary ways:

1. **Exact single-draw check** (``k = 1``): the inclusion probability of item
   ``i`` is exactly ``w_i / W``.
2. **Reference comparison**: the empirical inclusion frequencies of the
   sampler under test are compared (chi-square / total-variation distance)
   against those of the *dense* reference sampler
   (:func:`repro.core.sequential.dense_weighted_sample`), whose correctness
   follows directly from the sampling-by-sorting construction.
3. **Uniform check**: for unweighted sampling the inclusion probability is
   exactly ``k / n`` for every item.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

import numpy as np

from repro.core.sequential import dense_weighted_sample
from repro.utils.rng import ensure_generator
from repro.utils.validation import check_positive_int, check_weights

__all__ = [
    "inclusion_counts",
    "empirical_inclusion_frequencies",
    "single_draw_reference_probabilities",
    "weighted_inclusion_reference",
    "chi_square_statistic",
    "total_variation_distance",
]


def inclusion_counts(samples: Iterable[np.ndarray], n_items: int) -> np.ndarray:
    """How often each of ``0..n_items-1`` appeared across the given samples."""
    counts = np.zeros(n_items, dtype=np.int64)
    for sample in samples:
        sample = np.asarray(sample, dtype=np.int64)
        if sample.size == 0:
            continue
        if sample.min() < 0 or sample.max() >= n_items:
            raise ValueError("sample contains ids outside 0..n_items-1")
        counts += np.bincount(sample, minlength=n_items)
    return counts


def empirical_inclusion_frequencies(samples: Iterable[np.ndarray], n_items: int) -> np.ndarray:
    """Per-item inclusion frequencies over a collection of samples."""
    samples = list(samples)
    if not samples:
        raise ValueError("at least one sample is required")
    return inclusion_counts(samples, n_items) / float(len(samples))


def single_draw_reference_probabilities(weights: Sequence[float]) -> np.ndarray:
    """Exact inclusion probabilities for a weighted sample of size 1."""
    weights = check_weights(np.asarray(weights, dtype=np.float64))
    return weights / weights.sum()


def weighted_inclusion_reference(
    weights: Sequence[float], k: int, trials: int, rng=None
) -> np.ndarray:
    """Monte-Carlo inclusion frequencies of the dense reference sampler.

    The dense sampler (generate a key per item, keep the ``k`` smallest) is
    correct by construction; its empirical frequencies serve as the
    reference distribution for the samplers under test.
    """
    weights = check_weights(np.asarray(weights, dtype=np.float64))
    check_positive_int(k, "k")
    check_positive_int(trials, "trials")
    rng = ensure_generator(rng)
    n = weights.shape[0]
    ids = np.arange(n, dtype=np.int64)
    counts = np.zeros(n, dtype=np.int64)
    for _ in range(trials):
        sample = dense_weighted_sample(ids, weights, k, rng)
        counts += np.bincount(sample, minlength=n)
    return counts / float(trials)


def chi_square_statistic(
    observed_counts: np.ndarray, expected_probabilities: np.ndarray, trials: int
) -> Tuple[float, int]:
    """Pearson chi-square statistic of per-item inclusion counts.

    ``observed_counts[i]`` is how often item ``i`` was included over
    ``trials`` independent samples; ``expected_probabilities[i]`` its
    expected inclusion probability.  Returns ``(statistic, degrees of
    freedom)``; the caller compares against a chi-square quantile (the tests
    use ``scipy.stats`` for that).

    Items are treated as independent Bernoulli counts, which is a standard
    (slightly conservative) approximation for inclusion frequencies of
    samples without replacement.
    """
    observed = np.asarray(observed_counts, dtype=np.float64)
    expected_probabilities = np.asarray(expected_probabilities, dtype=np.float64)
    if observed.shape != expected_probabilities.shape:
        raise ValueError("observed and expected arrays must have equal shape")
    trials = check_positive_int(trials, "trials")
    expected = expected_probabilities * trials
    # Guard against zero-expectation cells (items that can never be sampled).
    mask = expected > 0
    statistic = float(np.sum((observed[mask] - expected[mask]) ** 2 / expected[mask]))
    dof = int(mask.sum()) - 1
    return statistic, max(dof, 1)


def total_variation_distance(p: np.ndarray, q: np.ndarray) -> float:
    """Total variation distance between two (sub-)probability vectors.

    Both arguments are normalised to sum to one before comparison, so
    inclusion-frequency vectors (which sum to ``k``) can be passed directly.
    """
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    if p.shape != q.shape:
        raise ValueError("distributions must have equal shape")
    ps = p.sum()
    qs = q.sum()
    if ps <= 0 or qs <= 0:
        raise ValueError("distributions must have positive mass")
    return 0.5 * float(np.abs(p / ps - q / qs).sum())

"""Speedup and throughput series derived from run metrics.

The paper reports *relative speedups*: the time per processed item of a
configuration relative to the reference algorithm ("ours" with single-pivot
selection, same sample size) on one node.  Because different configurations
process different numbers of rounds/items, speedups are computed from the
per-item simulated times rather than the raw run times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.runtime.metrics import RunMetrics

__all__ = ["ScalingSeries", "speedup_series", "throughput_series"]


@dataclass
class ScalingSeries:
    """One line of a scaling plot: a metric per node count."""

    algorithm: str
    k: int
    node_counts: List[int] = field(default_factory=list)
    values: List[float] = field(default_factory=list)

    def add(self, nodes: int, value: float) -> None:
        self.node_counts.append(int(nodes))
        self.values.append(float(value))

    def as_dict(self) -> Dict[int, float]:
        return dict(zip(self.node_counts, self.values))

    def value_at(self, nodes: int) -> Optional[float]:
        for n, v in zip(self.node_counts, self.values):
            if n == nodes:
                return v
        return None


def _time_per_item(metrics: RunMetrics) -> float:
    items = metrics.total_items
    if items <= 0:
        raise ValueError("run processed no items; cannot compute per-item time")
    return metrics.simulated_time / items


def speedup_series(
    runs: Dict[int, RunMetrics], baseline: RunMetrics, *, algorithm: str = "", k: int = 0
) -> ScalingSeries:
    """Relative speedups of ``runs`` (keyed by node count) vs ``baseline``.

    The speedup of a run on ``x`` nodes is
    ``time_per_item(baseline) / time_per_item(run)``: how many times more
    items per unit time the whole machine processes compared to the
    baseline configuration (the reference algorithm on one node).
    """
    base = _time_per_item(baseline)
    series = ScalingSeries(algorithm=algorithm, k=k)
    for nodes in sorted(runs):
        series.add(nodes, base / _time_per_item(runs[nodes]))
    return series


def throughput_series(
    runs: Dict[int, RunMetrics], *, per_pe: bool = True, algorithm: str = "", k: int = 0
) -> ScalingSeries:
    """Throughput (items/s, per PE by default) per node count (Figure 5)."""
    series = ScalingSeries(algorithm=algorithm, k=k)
    for nodes in sorted(runs):
        metrics = runs[nodes]
        value = metrics.throughput_per_pe() if per_pe else metrics.throughput_total()
        series.add(nodes, value)
    return series

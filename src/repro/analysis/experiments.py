"""Parameterised scaling experiments (the engine behind the Figure 3-6 benches).

The paper's evaluation runs three algorithms — ``ours`` (single-pivot
selection), ``ours-8`` (8 pivots) and ``gather`` (centralized baseline) —
in weak- and strong-scaling sweeps over node counts 1..256 (20 PEs per
node), sample sizes ``k`` of 1e3..1e5 and per-PE batch sizes of 1e4..1e6,
and reports relative speedups (Figures 3, 4), per-PE throughput (Figure 5)
and the running-time composition (Figure 6).

Running the original parameter ranges in a pure-Python simulation is not
feasible, so :meth:`ScalingConfig.scaled_default` provides a proportionally
scaled-down sweep: sample sizes, batch sizes, PE counts *and* the machine's
latency constant are all reduced such that the ratios that shape the
curves — local work per batch vs. selection latency, sequential-selection
work at the gather root vs. ``alpha * log p`` — stay in the same regime as
on the paper's machine.  :meth:`ScalingConfig.paper_full` keeps the
original parameters for completeness (expect very long runtimes).

All experiments return an :class:`ExperimentResult`, which holds the raw
:class:`~repro.runtime.metrics.RunMetrics` per configuration plus helpers
to compute the exact series the paper plots.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.scaling import speedup_series, throughput_series
from repro.core.api import make_distributed_sampler
from repro.network.communicator import SimComm
from repro.network.cost_model import CostParameters
from repro.runtime.machine import MachineSpec
from repro.runtime.metrics import RunMetrics
from repro.runtime.simulator import StreamingSimulation
from repro.stream.generators import UniformWeightGenerator, WeightGenerator
from repro.stream.minibatch import MiniBatchStream
from repro.utils.rng import ensure_generator
from repro.utils.validation import check_positive_int

__all__ = [
    "ScalingConfig",
    "ExperimentResult",
    "run_configuration",
    "run_weak_scaling",
    "run_strong_scaling",
    "run_time_composition",
    "steady_state_preload",
]

#: key identifying one experiment cell: (algorithm, k, size parameter, nodes)
CellKey = Tuple[str, int, int, int]


@dataclass(frozen=True)
class ScalingConfig:
    """Parameters of a weak/strong scaling sweep."""

    #: simulated PEs per "node" (the paper uses 20 MPI ranks per node)
    pes_per_node: int = 4
    #: node counts of the sweep (x axis of Figures 3-5)
    node_counts: Tuple[int, ...] = (1, 4, 16, 64, 256)
    #: sample sizes k
    sample_sizes: Tuple[int, ...] = (50, 500, 5000)
    #: per-PE batch sizes for weak scaling (Figure 3)
    weak_batch_sizes: Tuple[int, ...] = (500, 2000, 8000)
    #: total batch sizes B for strong scaling (Figures 4, 5)
    strong_total_batches: Tuple[int, ...] = (64_000, 256_000, 1_024_000)
    #: algorithms to compare
    algorithms: Tuple[str, ...] = ("ours", "ours-8", "gather")
    #: measured mini-batch rounds per configuration
    rounds: int = 4
    #: warm-up rounds excluded from the metrics
    warmup_rounds: int = 1
    #: steady-state warm start: the sampler is preloaded as if this many
    #: rounds had already been processed (0 disables the warm start).  The
    #: paper's 30-second runs measure exactly this ``n >> k`` steady state.
    steady_state_batches: int = 50
    #: machine model (None = scaled default, see :meth:`machine_spec`)
    machine: Optional[MachineSpec] = None
    #: weighted (True) or uniform (False) sampling
    weighted: bool = True
    #: reservoir store backend ("merge" vectorized default, "btree" paper)
    store: str = "merge"
    #: kernel tier the samplers run ("numpy", "jit" or "auto"; the tier
    #: changes wall-clock speed only — never the sample or simulated times)
    kernel_tier: str = "numpy"
    #: base seed; every cell derives its own deterministic seed from it
    seed: int = 0

    # ------------------------------------------------------------------
    @classmethod
    def scaled_machine(cls, *, cache_items: int = 4_000) -> MachineSpec:
        """Machine constants for the scaled-down sweeps.

        The paper's sample sizes and batch sizes are reduced by roughly
        20-125x; to keep the balance between local batch work, the gather
        root's sequential selection and the ``alpha * log p`` selection
        latency in the same regime, the message start-up latency and the
        per-data-structure constants are reduced by similar factors
        (``alpha`` = 20 ns instead of ~2 us, tree/selection costs of a few
        ns per element), and the modelled cache capacity is reduced so the
        strong-scaling cache transition still falls inside the swept range.
        """
        return MachineSpec(
            time_scan_item=1.0e-9,
            out_of_cache_factor=4.0,
            cache_items=cache_items,
            time_key_gen=4.0e-9,
            time_tree_level=2.0e-9,
            time_array_append=1.0e-9,
            time_sequential_select_item=2.0e-9,
            comm=CostParameters(alpha=2.0e-8, beta=1.0e-9),
        )

    @classmethod
    def scaled_default(cls) -> "ScalingConfig":
        """The default scaled-down sweep used by the benchmarks."""
        return cls(machine=cls.scaled_machine())

    @classmethod
    def smoke(cls) -> "ScalingConfig":
        """A tiny sweep for CI/tests (seconds, not minutes)."""
        return cls(
            node_counts=(1, 4, 16),
            sample_sizes=(16, 128),
            weak_batch_sizes=(256,),
            strong_total_batches=(16_384,),
            rounds=2,
            warmup_rounds=1,
            steady_state_batches=20,
            machine=cls.scaled_machine(cache_items=1_000),
        )

    @classmethod
    def paper_full(cls) -> "ScalingConfig":
        """The paper's original parameters (20 PEs/node, k up to 1e5, b up to 1e6).

        Provided for completeness; running this in the pure-Python simulator
        takes a very long time and a lot of memory.
        """
        return cls(
            pes_per_node=20,
            node_counts=(1, 4, 16, 64, 256),
            sample_sizes=(1_000, 10_000, 100_000),
            weak_batch_sizes=(10_000, 100_000, 1_000_000),
            strong_total_batches=(2**10 * 10_000, 2**10 * 100_000, 2**10 * 1_000_000),
            machine=MachineSpec.forhlr_like(),
        )

    # ------------------------------------------------------------------
    def machine_spec(self) -> MachineSpec:
        return self.machine if self.machine is not None else MachineSpec.forhlr_like()

    def pe_count(self, nodes: int) -> int:
        return int(nodes) * self.pes_per_node

    def cell_seed(self, algorithm: str, k: int, size: int, nodes: int) -> int:
        """Deterministic per-cell seed derived from the base seed.

        Uses a CRC rather than Python's built-in ``hash`` so the seed is
        stable across processes (``hash`` of strings is salted per run).
        """
        description = f"{self.seed}|{algorithm}|{int(k)}|{int(size)}|{int(nodes)}"
        return zlib.crc32(description.encode("utf-8")) & 0x7FFFFFFF

    def with_scale(self, **changes) -> "ScalingConfig":
        """A copy of the config with the given fields replaced."""
        return replace(self, **changes)


@dataclass
class ExperimentResult:
    """Raw metrics of a scaling sweep plus derived series."""

    kind: str
    config: ScalingConfig
    #: size parameter semantics: per-PE batch (weak) or total batch (strong)
    size_label: str
    runs: Dict[CellKey, RunMetrics] = field(default_factory=dict)

    def add(self, algorithm: str, k: int, size: int, nodes: int, metrics: RunMetrics) -> None:
        self.runs[(algorithm, int(k), int(size), int(nodes))] = metrics

    def get(self, algorithm: str, k: int, size: int, nodes: int) -> RunMetrics:
        return self.runs[(algorithm, int(k), int(size), int(nodes))]

    # ------------------------------------------------------------------
    def node_counts(self) -> List[int]:
        return sorted({nodes for (_, _, _, nodes) in self.runs})

    def baseline(self, k: int, size: int) -> RunMetrics:
        """The reference run: ``ours`` with the same k/size on one node."""
        base_nodes = min(self.node_counts())
        return self.get("ours", k, size, base_nodes)

    def speedups(self, algorithm: str, k: int, size: int) -> Dict[int, float]:
        """Relative speedups per node count (Figures 3 and 4)."""
        runs = {
            nodes: metrics
            for (algo, kk, ss, nodes), metrics in self.runs.items()
            if algo == algorithm and kk == k and ss == size
        }
        series = speedup_series(runs, self.baseline(k, size), algorithm=algorithm, k=k)
        return series.as_dict()

    def throughputs_per_pe(self, algorithm: str, k: int, size: int) -> Dict[int, float]:
        """Per-PE throughput per node count (Figure 5)."""
        runs = {
            nodes: metrics
            for (algo, kk, ss, nodes), metrics in self.runs.items()
            if algo == algorithm and kk == k and ss == size
        }
        series = throughput_series(runs, per_pe=True, algorithm=algorithm, k=k)
        return series.as_dict()

    def phase_fractions(self, algorithm: str, k: int, size: int, nodes: int) -> Dict[str, float]:
        """Fractions of simulated time per phase for one cell (Figure 6)."""
        return self.get(algorithm, k, size, nodes).phase_fractions()

    def selection_depth(self, algorithm: str, k: int, size: int, nodes: int) -> float:
        return self.get(algorithm, k, size, nodes).mean_selection_depth()

    def selection_time(self, algorithm: str, k: int, size: int, nodes: int) -> float:
        return self.get(algorithm, k, size, nodes).selection_time()


# ---------------------------------------------------------------------------
# steady-state warm start
# ---------------------------------------------------------------------------
def steady_state_preload(
    sampler,
    *,
    k: int,
    items_seen: int,
    weights: Optional[WeightGenerator] = None,
    weighted: bool = True,
    seed: int = 0,
) -> None:
    """Preload ``sampler`` with a synthetic steady state after ``items_seen`` items.

    The reservoir keys of the steady state are the ``k`` smallest of
    ``items_seen`` i.i.d. keys.  Near zero, the key point process is well
    approximated by a Poisson process whose rate is ``items_seen`` times the
    mean weight (weighted case; the rate is just ``items_seen`` for uniform
    keys), so the ``k`` smallest keys are generated directly as the partial
    sums of exponential gaps — no need to stream ``items_seen`` items.  The
    keys are assigned to uniformly random PEs, which matches the behaviour
    of i.i.d. inputs (Section 3.3.1's "randomly distributed items").

    The preloaded items carry negative ids so they can never collide with
    real stream items.
    """
    check_positive_int(k, "k")
    check_positive_int(items_seen, "items_seen")
    if items_seen <= 10 * k:
        raise ValueError("steady-state preload requires items_seen >> k (at least 10k)")
    rng = ensure_generator(seed)
    weights = weights if weights is not None else UniformWeightGenerator(0.0, 100.0)
    if weighted:
        mean_weight = float(np.mean(weights(4096, rng, pe=0, round_index=0)))
        rate = items_seen * mean_weight
        total_weight = items_seen * mean_weight
    else:
        rate = float(items_seen)
        total_weight = float(items_seen)
    keys = np.cumsum(rng.exponential(1.0 / rate, size=k))
    if not weighted:
        # uniform keys live in (0, 1]; for items_seen >> k this never clips
        keys = np.minimum(keys, 1.0)
    threshold = float(keys[-1])
    p = sampler.p
    assignment = rng.integers(0, p, size=k)
    per_pe: List[List[Tuple[float, int]]] = [[] for _ in range(p)]
    for index, (key, pe) in enumerate(zip(keys.tolist(), assignment.tolist())):
        per_pe[pe].append((key, -(index + 1)))
    sampler.preload(
        per_pe, items_seen=items_seen, total_weight=total_weight, threshold=threshold
    )


# ---------------------------------------------------------------------------
# experiment runners
# ---------------------------------------------------------------------------
def run_configuration(
    algorithm: str,
    *,
    p: int,
    k: int,
    batch_per_pe: int,
    rounds: int,
    warmup_rounds: int = 0,
    prewarm_items: int = 0,
    machine: Optional[MachineSpec] = None,
    weighted: bool = True,
    weights: Optional[WeightGenerator] = None,
    store: str = "merge",
    kernel_tier: str = "numpy",
    seed: int = 0,
) -> RunMetrics:
    """Run one (algorithm, p, k, batch size) cell and return its metrics."""
    check_positive_int(p, "p")
    check_positive_int(k, "k")
    check_positive_int(batch_per_pe, "batch_per_pe")
    machine = machine if machine is not None else MachineSpec.forhlr_like()
    comm = SimComm(p, cost=machine.comm)
    sampler = make_distributed_sampler(
        algorithm,
        k,
        comm,
        machine=machine,
        weighted=weighted,
        store=store,
        seed=seed,
        kernel_tier=kernel_tier,
    )
    weight_gen = weights if weights is not None else UniformWeightGenerator(0.0, 100.0)
    if prewarm_items and prewarm_items > 10 * k:
        steady_state_preload(
            sampler,
            k=k,
            items_seen=prewarm_items,
            weights=weight_gen,
            weighted=weighted,
            seed=seed + 17,
        )
    stream = MiniBatchStream(
        p,
        batch_per_pe,
        weights=weight_gen,
        seed=seed + 1,
    )
    simulation = StreamingSimulation(sampler, stream, warmup_rounds=warmup_rounds)
    return simulation.run_rounds(rounds)


def run_weak_scaling(
    config: Optional[ScalingConfig] = None,
    *,
    batch_sizes: Optional[Sequence[int]] = None,
    sample_sizes: Optional[Sequence[int]] = None,
    algorithms: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """Weak scaling (Figure 3): per-PE batch size fixed, machine grows."""
    config = config if config is not None else ScalingConfig.scaled_default()
    batch_sizes = list(batch_sizes if batch_sizes is not None else config.weak_batch_sizes)
    sample_sizes = list(sample_sizes if sample_sizes is not None else config.sample_sizes)
    algorithms = list(algorithms if algorithms is not None else config.algorithms)
    result = ExperimentResult(kind="weak", config=config, size_label="batch_per_pe")
    for batch in batch_sizes:
        for k in sample_sizes:
            for algorithm in algorithms:
                for nodes in config.node_counts:
                    p = config.pe_count(nodes)
                    metrics = run_configuration(
                        algorithm,
                        p=p,
                        k=k,
                        batch_per_pe=batch,
                        rounds=config.rounds,
                        warmup_rounds=config.warmup_rounds,
                        prewarm_items=config.steady_state_batches * p * batch,
                        machine=config.machine_spec(),
                        weighted=config.weighted,
                        store=config.store,
                        kernel_tier=config.kernel_tier,
                        seed=config.cell_seed(algorithm, k, batch, nodes),
                    )
                    result.add(algorithm, k, batch, nodes, metrics)
    return result


def run_strong_scaling(
    config: Optional[ScalingConfig] = None,
    *,
    total_batches: Optional[Sequence[int]] = None,
    sample_sizes: Optional[Sequence[int]] = None,
    algorithms: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """Strong scaling (Figures 4, 5): total batch size fixed, machine grows."""
    config = config if config is not None else ScalingConfig.scaled_default()
    total_batches = list(total_batches if total_batches is not None else config.strong_total_batches)
    sample_sizes = list(sample_sizes if sample_sizes is not None else config.sample_sizes)
    algorithms = list(algorithms if algorithms is not None else config.algorithms)
    result = ExperimentResult(kind="strong", config=config, size_label="total_batch")
    for total in total_batches:
        for k in sample_sizes:
            for algorithm in algorithms:
                for nodes in config.node_counts:
                    p = config.pe_count(nodes)
                    batch_per_pe = max(total // p, 1)
                    metrics = run_configuration(
                        algorithm,
                        p=p,
                        k=k,
                        batch_per_pe=batch_per_pe,
                        rounds=config.rounds,
                        warmup_rounds=config.warmup_rounds,
                        prewarm_items=config.steady_state_batches * p * batch_per_pe,
                        machine=config.machine_spec(),
                        weighted=config.weighted,
                        store=config.store,
                        kernel_tier=config.kernel_tier,
                        seed=config.cell_seed(algorithm, k, total, nodes),
                    )
                    result.add(algorithm, k, total, nodes, metrics)
    return result


def run_time_composition(
    config: Optional[ScalingConfig] = None,
    *,
    mode: str = "strong",
    size: Optional[int] = None,
    k: Optional[int] = None,
    algorithms: Sequence[str] = ("ours-8", "gather"),
) -> ExperimentResult:
    """Running-time composition (Figure 6): phase fractions per node count.

    ``mode`` selects weak (fixed per-PE batch) or strong (fixed total batch)
    scaling; ``size`` is interpreted accordingly; ``k`` defaults to the
    largest sample size of the config, as in the paper's Figure 6.
    """
    config = config if config is not None else ScalingConfig.scaled_default()
    if mode not in ("strong", "weak"):
        raise ValueError("mode must be 'strong' or 'weak'")
    k = int(k) if k is not None else max(config.sample_sizes)
    if mode == "strong":
        size = int(size) if size is not None else max(config.strong_total_batches)
        return run_strong_scaling(
            config, total_batches=[size], sample_sizes=[k], algorithms=algorithms
        )
    size = int(size) if size is not None else max(config.weak_batch_sizes)
    return run_weak_scaling(config, batch_sizes=[size], sample_sizes=[k], algorithms=algorithms)

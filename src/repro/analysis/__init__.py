"""Analysis helpers: statistical validation, scaling experiments, tables.

* :mod:`~repro.analysis.statistics` — correctness evidence: empirical
  inclusion frequencies, chi-square and total-variation comparisons against
  reference samplers.
* :mod:`~repro.analysis.scaling` — speedup/throughput series computed from
  :class:`~repro.runtime.metrics.RunMetrics`.
* :mod:`~repro.analysis.experiments` — the parameterised weak/strong scaling
  and time-composition experiments behind the Figure 3-6 benchmarks.
* :mod:`~repro.analysis.tables` — plain-text table rendering used by the
  benchmark harness to print paper-style rows.
"""

from repro.analysis.experiments import (
    ExperimentResult,
    ScalingConfig,
    run_configuration,
    run_strong_scaling,
    run_time_composition,
    run_weak_scaling,
)
from repro.analysis.scaling import ScalingSeries, speedup_series, throughput_series
from repro.analysis.statistics import (
    chi_square_statistic,
    empirical_inclusion_frequencies,
    inclusion_counts,
    single_draw_reference_probabilities,
    total_variation_distance,
    weighted_inclusion_reference,
)
from repro.analysis.tables import format_fraction_table, format_series_table, format_table

__all__ = [
    "ScalingConfig",
    "ExperimentResult",
    "run_configuration",
    "run_weak_scaling",
    "run_strong_scaling",
    "run_time_composition",
    "ScalingSeries",
    "speedup_series",
    "throughput_series",
    "inclusion_counts",
    "empirical_inclusion_frequencies",
    "weighted_inclusion_reference",
    "single_draw_reference_probabilities",
    "chi_square_statistic",
    "total_variation_distance",
    "format_table",
    "format_series_table",
    "format_fraction_table",
]

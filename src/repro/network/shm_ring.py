"""Shared-memory payload transport for the multiprocess backend.

:class:`~repro.network.process_comm.ProcessComm` moves three kinds of
payloads between processes: coordinator commands (mini-batches shipped by
``process_round``), worker-to-worker collective messages, and worker
replies (gathered candidate arrays, kernel results).  With the default
``payload_transport="pickle"`` every numpy array on those paths is pickled
into a byte stream and squeezed through a pipe or queue — two copies plus
syscalls bounded by the 64 KiB pipe buffer, which dominates the gather
cost of the centralized baseline for large samples.

With ``payload_transport="shm"`` large arrays instead travel through
:mod:`multiprocessing.shared_memory`:

* every endpoint (the coordinator and each worker) owns a
  :class:`ShmRing` — a ring of reusable shared-memory *slots*, created
  lazily, grown geometrically when a payload outgrows its slot, and
  unlinked on shutdown;
* a send *places* the array into a free slot (one ``memcpy``) and ships a
  tiny picklable :class:`ShmDescriptor` — ``(segment name, dtype, shape)``
  — through the existing queue/pipe instead of the pickled bytes;
* the receiver *resolves* the descriptor via an :class:`ShmAttachmentCache`
  (attachments by segment name are cached, so steady state pays one
  ``memcpy`` out of the segment) and releases the slot back to its owner
  by clearing the slot's in-flight flag.

Only C-contiguous numpy arrays of at least ``min_bytes``
(:data:`DEFAULT_SHM_MIN_BYTES` by default) take the shared-memory path —
smaller payloads and non-array objects keep the pickle path, which is
cheaper for them.  :func:`encode_payload` / :func:`decode_payload` walk
tuples, lists and dict values so arrays nested in collective messages
(gather pair lists, all-gather holdings) are transported too.

The descriptor exposes the array's element count as ``.size``, so
:func:`repro.network.collectives.payload_words` reports the same ledger
``words`` for a descriptor-passed array as for the array itself — the
communication-volume accounting stays honest under both transports.

Slot lifecycle
--------------
Each slot is one shared-memory segment with an 8-byte header holding an
in-flight flag.  The sender acquires a free slot (flag ``0``), writes the
payload, sets the flag to ``1`` and sends the descriptor; the receiver
copies the payload out and clears the flag.  Because receivers resolve
descriptors *immediately* when a message leaves the queue (before any
out-of-order stashing), slots are in flight only for the queue latency,
and a small ring suffices.  If every slot is busy the ring appends a new
slot rather than blocking, so no send can deadlock on slot reuse.
"""

from __future__ import annotations

import contextlib
import logging
import threading
import time
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.obs.tracer import process_tracer

_logger = logging.getLogger("repro.network.shm")

__all__ = [
    "DEFAULT_SHM_MIN_BYTES",
    "ShmDescriptor",
    "ShmRing",
    "ShmAttachmentCache",
    "encode_payload",
    "decode_payload",
    "sweep_named_segments",
]

#: default minimum array size (bytes) routed through shared memory; smaller
#: arrays stay on the pickle path where the fixed slot/attach cost would
#: outweigh the copy savings
DEFAULT_SHM_MIN_BYTES = 8192

#: bytes reserved at the start of every segment for the in-flight flag
_HEADER_BYTES = 8

#: smallest payload capacity a freshly created slot gets
_MIN_SLOT_BYTES = 1 << 16

#: hard cap on ring growth — far above any in-flight burst the collective
#: schedules can produce; reaching it indicates a receiver stopped draining
_MAX_SLOTS = 256


_TRACKER_LOCK = threading.Lock()


@contextlib.contextmanager
def _untracked() -> Iterator[None]:
    """Keep ring segments out of multiprocessing's resource tracker.

    The tracker registers shared-memory names on *attach* as well as on
    create (bpo-38119), and under the fork start method some processes
    share one tracker while others lazily start their own — so a ring
    segment ends up registered in several caches, of which the owner's
    ``unlink`` clears at most one.  The leftovers surface as bogus
    "leaked shared_memory objects" warnings (or tracker ``KeyError``\\ s)
    at interpreter shutdown.  Ring lifecycle is deterministic — every
    endpoint unlinks its own segments on shutdown — so these segments opt
    out of tracking entirely.  The trade-off: segments of a hard-killed
    process (``SIGKILL``, ``terminate()`` on a hung worker) are not
    reclaimed by the tracker; they live in ``/dev/shm`` until reboot.
    """
    with _TRACKER_LOCK:
        original_register = resource_tracker.register
        original_unregister = resource_tracker.unregister

        def register(name, rtype):  # pragma: no cover - trivial filter
            if rtype != "shared_memory":
                original_register(name, rtype)

        def unregister(name, rtype):  # pragma: no cover - trivial filter
            if rtype != "shared_memory":
                original_unregister(name, rtype)

        resource_tracker.register = register
        resource_tracker.unregister = unregister
        try:
            yield
        finally:
            resource_tracker.register = original_register
            resource_tracker.unregister = original_unregister


@dataclass(frozen=True)
class ShmDescriptor:
    """Picklable pointer to an array placed in a shared-memory slot.

    Travels through the queues/pipes in place of the array itself.  The
    receiver resolves it with :meth:`ShmAttachmentCache.resolve`, which
    also releases the slot.
    """

    segment: str
    dtype: str
    shape: Tuple[int, ...]

    @property
    def size(self) -> int:
        """Element count — keeps ``payload_words`` honest for descriptors."""
        count = 1
        for dim in self.shape:
            count *= int(dim)
        return count

    @property
    def nbytes(self) -> int:
        return self.size * np.dtype(self.dtype).itemsize


class _Slot:
    """One reusable shared-memory segment with an in-flight flag header.

    With ``name=None`` the segment gets an anonymous random name (the
    historic behaviour).  Rings owned by :class:`ProcessComm` workers pass
    deterministic names (``reprshm_<token>_r<rank>e<epoch>_<slot>``) so
    that the recovery supervisor can sweep exactly the segments a
    hard-killed worker leaked — and nothing else.  A deterministic name
    may collide with a stale segment of a previous incarnation that was
    killed before the sweep ran; creation then unlinks the stale segment
    and retries once.
    """

    __slots__ = ("shm", "capacity")

    def __init__(self, capacity: int, *, name: Optional[str] = None) -> None:
        self.capacity = capacity
        with _untracked():
            try:
                self.shm = shared_memory.SharedMemory(
                    name=name, create=True, size=_HEADER_BYTES + capacity
                )
            except FileExistsError:
                # stale segment from a killed previous incarnation
                stale = shared_memory.SharedMemory(name=name)
                stale.close()
                stale.unlink()
                self.shm = shared_memory.SharedMemory(
                    name=name, create=True, size=_HEADER_BYTES + capacity
                )
        self.shm.buf[0] = 0

    @property
    def free(self) -> bool:
        return self.shm.buf[0] == 0

    def destroy(self) -> None:
        try:
            self.shm.close()
            with _untracked():
                self.shm.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover - already gone
            pass


class ShmRing:
    """A sender-owned ring of reusable shared-memory slots.

    Slots are created lazily on first use and grown geometrically when a
    payload outgrows its slot (the old segment is unlinked; receivers hold
    attachments open until they close their cache, which POSIX permits).
    ``destroy()`` unlinks everything; the owning endpoint calls it on
    shutdown so no segments outlive the communicator.
    """

    def __init__(self, *, reuse_timeout: float = 30.0, name_prefix: Optional[str] = None) -> None:
        self._slots: List[_Slot] = []
        self._cursor = 0
        self._reuse_timeout = float(reuse_timeout)
        self._name_prefix = name_prefix
        self._slot_serial = 0  # never reused, so regrown slots get fresh names
        self._destroyed = False

    def _new_slot(self, capacity: int) -> _Slot:
        name = None
        if self._name_prefix is not None:
            name = f"{self._name_prefix}_{self._slot_serial}"
            self._slot_serial += 1
        return _Slot(capacity, name=name)

    def __len__(self) -> int:
        return len(self._slots)

    @property
    def segment_names(self) -> List[str]:
        """Names of the live segments (diagnostics/tests)."""
        return [slot.shm.name for slot in self._slots]

    def _acquire(self, nbytes: int) -> _Slot:
        """A free slot with at least ``nbytes`` capacity (grown if needed)."""
        if self._destroyed:
            raise RuntimeError("ShmRing has been destroyed")
        n = len(self._slots)
        for probe in range(n):
            index = (self._cursor + probe) % n
            slot = self._slots[index]
            if slot.free:
                self._cursor = (index + 1) % n
                if slot.capacity < nbytes:
                    old_capacity = slot.capacity
                    slot.destroy()
                    slot = self._new_slot(max(nbytes, 2 * slot.capacity, _MIN_SLOT_BYTES))
                    self._slots[index] = slot
                    _logger.debug(
                        "shm slot %d regrown %d -> %d bytes", index, old_capacity, slot.capacity
                    )
                    process_tracer().instant(
                        "shm.slot_grow",
                        cat="shm",
                        slot=index,
                        old_capacity=old_capacity,
                        capacity=slot.capacity,
                    )
                return slot
        if n < _MAX_SLOTS:
            slot = self._new_slot(max(nbytes, _MIN_SLOT_BYTES))
            self._slots.append(slot)
            _logger.debug(
                "shm ring grown to %d slots (new slot %d bytes)", len(self._slots), slot.capacity
            )
            process_tracer().instant(
                "shm.ring_grow", cat="shm", slots=len(self._slots), capacity=slot.capacity
            )
            return slot
        # every slot in a full-grown ring is in flight: a receiver stopped
        # draining; wait briefly for a release instead of growing further
        _logger.debug("shm ring saturated (%d slots in flight); waiting for a release", n)
        process_tracer().instant("shm.ring_saturated", cat="shm", slots=n)
        deadline = time.monotonic() + self._reuse_timeout
        while time.monotonic() < deadline:
            for index, slot in enumerate(self._slots):
                if slot.free:
                    self._cursor = (index + 1) % len(self._slots)
                    if slot.capacity < nbytes:
                        slot.destroy()
                        slot = self._new_slot(max(nbytes, 2 * slot.capacity, _MIN_SLOT_BYTES))
                        self._slots[index] = slot
                    return slot
            time.sleep(0.0005)
        raise TimeoutError(
            f"no shared-memory slot freed within {self._reuse_timeout}s "
            f"({len(self._slots)} slots all in flight); a receiver likely died"
        )

    def place(self, array: np.ndarray) -> ShmDescriptor:
        """Copy ``array`` into a free slot and return its descriptor."""
        array = np.ascontiguousarray(array)
        slot = self._acquire(array.nbytes)
        if array.nbytes:
            slot.shm.buf[_HEADER_BYTES : _HEADER_BYTES + array.nbytes] = array.data.cast("B")
        slot.shm.buf[0] = 1
        tracer = process_tracer()
        if tracer.enabled:
            busy = sum(1 for s in self._slots if not s.free)
            tracer.counter("shm.slots_busy", busy, cat="shm", total=len(self._slots))
        return ShmDescriptor(
            segment=slot.shm.name, dtype=array.dtype.str, shape=tuple(array.shape)
        )

    def destroy(self) -> None:
        """Unlink every segment.  Idempotent."""
        if self._destroyed:
            return
        self._destroyed = True
        for slot in self._slots:
            slot.destroy()
        self._slots = []


class ShmAttachmentCache:
    """Receiver-side cache of segment attachments, keyed by segment name.

    ``resolve`` copies the array out of the slot and releases the slot by
    clearing its in-flight flag; the attachment itself stays open so the
    next payload through the same slot skips the attach syscall.  ``close``
    drops all attachments (never unlinks — segments belong to the sender).
    """

    def __init__(self) -> None:
        self._segments: Dict[str, shared_memory.SharedMemory] = {}

    def __len__(self) -> int:
        return len(self._segments)

    def resolve(self, descriptor: ShmDescriptor) -> np.ndarray:
        shm = self._segments.get(descriptor.segment)
        if shm is None:
            with _untracked():
                shm = shared_memory.SharedMemory(name=descriptor.segment)
            self._segments[descriptor.segment] = shm
        array = (
            np.frombuffer(
                shm.buf,
                dtype=np.dtype(descriptor.dtype),
                count=descriptor.size,
                offset=_HEADER_BYTES,
            )
            .reshape(descriptor.shape)
            .copy()
        )
        shm.buf[0] = 0  # release the slot back to the sending ring
        return array

    def close(self) -> None:
        """Drop all attachments.  Idempotent."""
        for shm in self._segments.values():
            try:
                shm.close()
            except (OSError, BufferError):  # pragma: no cover - defensive
                pass
        self._segments = {}

    def unlink_all(self) -> None:
        """Best-effort unlink of every attached segment, then close.

        Segments belong to their sending ring, which normally unlinks them
        on shutdown — but a hard-killed worker (``terminate()`` after a
        hung join) never runs its teardown, and ring segments opt out of
        the resource tracker (see :func:`_untracked`).  The coordinator
        calls this for the segments it attached so at least those do not
        outlive the communicator; segments the coordinator never saw
        (worker-to-worker traffic) remain the documented trade-off.
        """
        for shm in self._segments.values():
            try:
                with _untracked():
                    shm.unlink()
            except (FileNotFoundError, OSError):  # already gone / owner got it
                pass
        self.close()


def sweep_named_segments(prefix: str) -> List[str]:
    """Unlink every shared-memory segment whose name starts with ``prefix``.

    The recovery path of :class:`~repro.network.process_comm.ProcessComm`
    calls this with a dead worker's rank-scoped ring prefix
    (``reprshm_<token>_r<rank>e``): the token is unique per communicator
    and the rank is in the prefix, so the sweep can never touch a segment
    owned by a live peer — only the dead incarnation's leaked slots.

    Segment enumeration uses ``/dev/shm`` (Linux tmpfs backing of POSIX
    shared memory); on platforms without it the sweep is a no-op and the
    segments remain the pre-existing documented leak.  Returns the names
    that were unlinked.
    """
    if not prefix:
        raise ValueError("refusing to sweep with an empty prefix")
    shm_dir = Path("/dev/shm")
    if not shm_dir.is_dir():  # pragma: no cover - non-Linux
        return []
    swept = []
    for path in shm_dir.glob(prefix + "*"):
        try:
            with _untracked():
                segment = shared_memory.SharedMemory(name=path.name)
                segment.close()
                segment.unlink()
            swept.append(path.name)
        except (FileNotFoundError, OSError):  # pragma: no cover - raced away
            pass
    if swept:
        _logger.debug("swept %d leaked shm segment(s) with prefix %r", len(swept), prefix)
        process_tracer().instant("shm.sweep", cat="shm", prefix=prefix, segments=len(swept))
    return sorted(swept)


def _placeable(value: object, min_bytes: int) -> bool:
    # Structured (record) dtypes are excluded: ``dtype.str`` collapses them
    # to an opaque ``|V<n>`` that drops the field layout, so resolving the
    # descriptor could not reconstruct the original array.  They keep the
    # pickle path, like object arrays.
    return (
        isinstance(value, np.ndarray)
        and not value.dtype.hasobject
        and value.dtype.names is None
        and value.nbytes >= min_bytes
    )


def encode_payload(value: object, ring: ShmRing, min_bytes: int) -> object:
    """Replace large arrays in ``value`` with descriptors into ``ring``.

    Walks tuples, lists and dict values (the shapes collective messages
    take: gather pair lists, all-gather holdings); everything else passes
    through untouched and travels pickled as before.
    """
    if _placeable(value, min_bytes):
        return ring.place(value)  # type: ignore[arg-type]
    if isinstance(value, tuple):
        return tuple(encode_payload(item, ring, min_bytes) for item in value)
    if isinstance(value, list):
        return [encode_payload(item, ring, min_bytes) for item in value]
    if isinstance(value, dict):
        return {key: encode_payload(item, ring, min_bytes) for key, item in value.items()}
    return value


def decode_payload(value: object, cache: ShmAttachmentCache) -> object:
    """Resolve every descriptor in ``value`` back into an array (inverse of
    :func:`encode_payload`)."""
    if isinstance(value, ShmDescriptor):
        return cache.resolve(value)
    if isinstance(value, tuple):
        return tuple(decode_payload(item, cache) for item in value)
    if isinstance(value, list):
        return [decode_payload(item, cache) for item in value]
    if isinstance(value, dict):
        return {key: decode_payload(item, cache) for key, item in value.items()}
    return value
